//! Parity gate between the two virtual executors.
//!
//! `EventSim` (psa-desim, discrete-event core) and `VirtualSim`
//! (psa-runtime, queue-stepped core) drive the *same* shared protocol
//! engine over different fabrics. These tests pin the contract that makes
//! the event-driven executor trustworthy at scale: for every configuration
//! both can express — all chaos scenarios, both paper workloads, 4/8/16
//! calculators, both topologies, every balance mode — the two executors
//! produce **fingerprint-identical** run reports. The BENCH_5 sweep can
//! then use the fast executor knowing every number is the number the
//! reference executor would have produced.

use cluster_sim::Topology;
use psa_chaos::{full_set, MatrixConfig};
use psa_desim::EventSim;
use psa_runtime::{BalanceMode, ExchangeMode, RunConfig, SystemSchedule, VirtualSim};
use psa_workloads::{fountain_scene, myrinet_gcc, snow_scene, WorkloadSize};

fn size() -> WorkloadSize {
    WorkloadSize { systems: 2, particles_per_system: 300, scale: 25.0 }
}

fn config(seed: u64) -> RunConfig {
    RunConfig { frames: 6, dt: 0.1, seed, warmup: 0, ..Default::default() }
}

/// The satellite's core assertion: EventSim fingerprints == VirtualSim
/// fingerprints across the full existing scenario matrix at 4, 8, and 16
/// calculators, for both paper workloads.
#[test]
fn event_sim_matches_virtual_sim_across_scenario_matrix() {
    let mc = MatrixConfig::default();
    let sz = size();
    let mut cells = 0usize;
    for calculators in [4usize, 8, 16] {
        let cluster = myrinet_gcc(calculators, 1);
        for scenario in full_set() {
            let plan = scenario.plan(mc.seed, calculators, &cluster.net);
            for (wl, scene) in [("snow", snow_scene(sz)), ("fountain", fountain_scene(sz))] {
                let virt = VirtualSim::new(
                    scene.clone(),
                    config(mc.seed),
                    cluster.clone(),
                    sz.cost_model(),
                )
                .with_faults(plan.clone())
                .try_run();
                let event = EventSim::new(scene, config(mc.seed), cluster.clone(), sz.cost_model())
                    .with_faults(plan.clone())
                    .try_run();
                match (virt, event) {
                    (Ok(v), Ok(e)) => {
                        assert_eq!(
                            v.fingerprint(),
                            e.fingerprint(),
                            "{wl}/{}/{calculators}c fingerprints diverged",
                            scenario.label()
                        );
                        assert_eq!(
                            v.frames.iter().map(|f| f.checksum).collect::<Vec<_>>(),
                            e.frames.iter().map(|f| f.checksum).collect::<Vec<_>>(),
                            "{wl}/{}/{calculators}c frame checksums diverged",
                            scenario.label()
                        );
                    }
                    (Err(ve), Err(ee)) => assert_eq!(
                        ve.to_string(),
                        ee.to_string(),
                        "{wl}/{}/{calculators}c failed differently",
                        scenario.label()
                    ),
                    (v, e) => panic!(
                        "{wl}/{}/{calculators}c: executors disagree on success: \
                         virtual={v:?} event={e:?}",
                        scenario.label()
                    ),
                }
                cells += 1;
            }
        }
    }
    assert_eq!(cells, 3 * full_set().len() * 2, "matrix coverage shrank");
}

/// Parity must hold for every balance mode and schedule, not only the
/// default FS-DLB path — the BENCH_5 sweep exercises SLB and DLB columns.
#[test]
fn event_sim_matches_virtual_sim_across_modes_and_topologies() {
    let sz = size();
    for topology in [Topology::Flat, Topology::FatTree { radix: 2 }] {
        let mut cluster = myrinet_gcc(4, 1);
        cluster.net = cluster.net.clone().with_topology(topology);
        for balance in [
            BalanceMode::Static,
            BalanceMode::dynamic(),
            BalanceMode::decentralized(),
            BalanceMode::diffusive(),
            BalanceMode::hierarchical(),
        ] {
            for schedule in [SystemSchedule::PerSystem, SystemSchedule::Batched] {
                let cfg = RunConfig { balance, schedule, ..config(0x5EED) };
                let v = VirtualSim::new(
                    fountain_scene(sz),
                    cfg.clone(),
                    cluster.clone(),
                    sz.cost_model(),
                )
                .run();
                let e =
                    EventSim::new(fountain_scene(sz), cfg, cluster.clone(), sz.cost_model()).run();
                assert_eq!(
                    v.fingerprint(),
                    e.fingerprint(),
                    "{topology:?}/{}/{schedule:?} diverged",
                    balance.label()
                );
            }
        }
    }
}

/// Same-seed event-driven runs are byte-identical — determinism of the
/// event loop itself (heap tie-breaking, inbox FIFO, stats quietness).
#[test]
fn same_seed_event_runs_are_byte_identical() {
    let sz = size();
    let cluster = myrinet_gcc(8, 1);
    let run = || {
        let mut sim =
            EventSim::new(fountain_scene(sz), config(0xD15C), cluster.clone(), sz.cost_model());
        let r = sim.run();
        (r, sim.sim_stats())
    };
    let (a, sa) = run();
    let (b, sb) = run();
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(
        a.frames.iter().map(|f| f.checksum).collect::<Vec<_>>(),
        b.frames.iter().map(|f| f.checksum).collect::<Vec<_>>(),
    );
    assert_eq!(sa, sb, "event-loop stats must replay identically");
    assert!(sa.events > 0 && sa.sends > 0, "the heap actually ran: {sa:?}");
    assert!(sa.max_heap_depth > 0);
}

/// Sparse exchange is the at-scale mode: not fingerprint-comparable with
/// dense (empty messages carry virtual cost), but it must be exactly as
/// deterministic, render every frame, and conserve particles.
#[test]
fn sparse_exchange_is_deterministic_and_complete() {
    let sz = size();
    let cluster = myrinet_gcc(8, 1);
    let cfg = RunConfig { exchange: ExchangeMode::Sparse, ..config(0x5EED) };
    let run =
        || EventSim::new(fountain_scene(sz), cfg.clone(), cluster.clone(), sz.cost_model()).run();
    let a = run();
    let b = run();
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.frames.len(), cfg.frames as usize);
    assert_eq!(a.lost_particles, 0);
    // Sparse must move strictly fewer messages than dense on a migrating
    // workload (that is its entire reason to exist).
    let dense =
        EventSim::new(fountain_scene(sz), config(0x5EED), cluster.clone(), sz.cost_model()).run();
    assert!(
        a.traffic.messages < dense.traffic.messages,
        "sparse {} !< dense {}",
        a.traffic.messages,
        dense.traffic.messages
    );
    // And the simulated physics is unchanged: identical frame checksums.
    assert_eq!(
        a.frames.iter().map(|f| f.checksum).collect::<Vec<_>>(),
        dense.frames.iter().map(|f| f.checksum).collect::<Vec<_>>(),
        "exchange mode may change timing, never state"
    );
}
