//! Worker-count invariance of the chunked compute kernel, end to end.
//!
//! `psa_core::kernel` promises byte-identical simulation state for any
//! worker count at a fixed chunk size. The kernel's own unit tests check
//! one store; these tests check the promise through both executors on the
//! paper workloads — chunk layout, chunk-keyed RNG streams, exchange,
//! balancing, everything between the seed and the report.

use particle_cluster_anim::prelude::*;
use particle_cluster_anim::runtime::LoadMetric;

const CHUNKS: [usize; 3] = [64, 1024, 100_000];
const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn scene_for(name: &str, size: WorkloadSize) -> Scene {
    match name {
        "snow" => snow_scene(size),
        _ => fountain_scene(size),
    }
}

fn dt_for(name: &str) -> f32 {
    if name == "snow" {
        0.15
    } else {
        0.04
    }
}

/// Virtual executor: the run fingerprint (every frame's particle checksum,
/// times, traffic) is a function of (seed, chunk) only — never of the
/// worker count.
#[test]
fn virtual_fingerprint_is_worker_count_invariant() {
    let size = WorkloadSize { systems: 2, particles_per_system: 900, scale: 25.0 };
    for exp in ["snow", "fountain"] {
        for &chunk in &CHUNKS {
            let run = |workers: usize| {
                let cfg = RunConfig {
                    frames: 6,
                    dt: dt_for(exp),
                    seed: 42,
                    parallel: ParallelConfig { workers, chunk },
                    ..Default::default()
                };
                let mut sim = VirtualSim::new(
                    scene_for(exp, size),
                    cfg,
                    myrinet_gcc(4, 1),
                    size.cost_model(),
                );
                sim.run()
            };
            let want = run(1).fingerprint();
            for &w in &WORKERS[1..] {
                assert_eq!(
                    run(w).fingerprint(),
                    want,
                    "{exp}: chunk {chunk}, {w} workers drifted from the 1-worker run"
                );
            }
        }
    }
}

/// Threaded executor (real OS threads): per-frame particle-state checksums
/// are identical for every worker count at a fixed chunk size.
#[test]
fn threaded_checksums_are_worker_count_invariant() {
    let size = WorkloadSize { systems: 2, particles_per_system: 500, scale: 25.0 };
    for exp in ["snow", "fountain"] {
        for &chunk in &CHUNKS {
            let run = |workers: usize| {
                let cfg = RunConfig {
                    frames: 5,
                    dt: dt_for(exp),
                    seed: 7,
                    load_metric: LoadMetric::CountProportional,
                    parallel: ParallelConfig { workers, chunk },
                    ..Default::default()
                };
                let report = run_threaded(&scene_for(exp, size), &cfg, 3, None)
                    .expect("threaded run failed");
                report.frames.iter().map(|f| (f.frame, f.alive, f.checksum)).collect::<Vec<_>>()
            };
            let want = run(1);
            for &w in &WORKERS[1..] {
                assert_eq!(
                    run(w),
                    want,
                    "{exp}: chunk {chunk}, {w} workers drifted from the 1-worker run"
                );
            }
        }
    }
}

/// The default configuration (`workers: 1, chunk: 0`) is the legacy serial
/// path: explicitly asking for one worker on the chunked path must still
/// match it only when the chunk layout matches, while `chunk: 0` with extra
/// workers silently upgrades to the default chunk — both documented
/// behaviors are pinned here.
#[test]
fn chunk_zero_with_workers_uses_the_default_chunk() {
    let size = WorkloadSize { systems: 2, particles_per_system: 600, scale: 25.0 };
    let run = |parallel: ParallelConfig| {
        let cfg = RunConfig { frames: 5, dt: 0.15, seed: 9, parallel, ..Default::default() };
        let mut sim = VirtualSim::new(snow_scene(size), cfg, myrinet_gcc(4, 1), size.cost_model());
        sim.run().fingerprint()
    };
    let upgraded = run(ParallelConfig { workers: 4, chunk: 0 });
    let explicit = run(ParallelConfig { workers: 4, chunk: 1024 });
    assert_eq!(upgraded, explicit, "chunk 0 + workers must mean DEFAULT_CHUNK");
    let serial = run(ParallelConfig::default());
    let chunked_1 = run(ParallelConfig { workers: 1, chunk: 1024 });
    assert_eq!(run(ParallelConfig::default()), serial, "serial path must be reproducible");
    // The chunked path re-keys RNG streams per chunk, so it is a different
    // (equally deterministic) trajectory than the legacy serial path.
    assert_ne!(serial, chunked_1, "chunked RNG streams are keyed differently from the serial path");
}
