//! The paper's discussion-level features, implemented and tested:
//! §3.3 multi-system scheduling strategies and the §6 future-work
//! decentralized balancer.

use particle_cluster_anim::prelude::*;
use particle_cluster_anim::runtime::SystemSchedule;
use particle_cluster_anim::workloads::{fountain, fountain_scene};

fn size() -> WorkloadSize {
    WorkloadSize { systems: 8, particles_per_system: 3_000, scale: 130.0 }
}

fn run_with(
    scene: &Scene,
    schedule: SystemSchedule,
    balance: BalanceMode,
    frames: u64,
) -> RunReport {
    let cfg = RunConfig {
        frames,
        dt: fountain::FOUNTAIN_DT,
        warmup: 3,
        schedule,
        balance,
        ..Default::default()
    };
    let mut sim = VirtualSim::new(scene.clone(), cfg, myrinet_gcc(8, 1), size().cost_model());
    sim.run()
}

#[test]
fn batched_schedule_absorbs_per_system_spikes() {
    // The fountain's load is concentrated per system (each nozzle lives in
    // one calculator's slice), so the Figure-2 per-system schedule
    // serializes each system's hot calculator. Batching the phases lets
    // hot spots of different systems overlap — §3.3's "more or less
    // efficient" observation, quantified.
    let scene = fountain_scene(size());
    let per_system = run_with(&scene, SystemSchedule::PerSystem, BalanceMode::Static, 15);
    let batched = run_with(&scene, SystemSchedule::Batched, BalanceMode::Static, 15);
    assert!(
        batched.steady_time() < per_system.steady_time() * 0.7,
        "batched {:.2}s must clearly beat per-system {:.2}s for irregular load",
        batched.steady_time(),
        per_system.steady_time()
    );
}

#[test]
fn batched_schedule_conserves_and_is_deterministic() {
    let scene = fountain_scene(size());
    let a = run_with(&scene, SystemSchedule::Batched, BalanceMode::dynamic(), 8);
    let b = run_with(&scene, SystemSchedule::Batched, BalanceMode::dynamic(), 8);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
    // population matches the per-system schedule frame by frame (the
    // schedule only changes timing, never physics)
    let c = run_with(&scene, SystemSchedule::PerSystem, BalanceMode::dynamic(), 8);
    for (fa, fc) in a.frames.iter().zip(c.frames.iter()) {
        assert_eq!(fa.alive, fc.alive, "frame {}", fa.frame);
    }
}

#[test]
fn decentralized_balancer_flattens_irregular_load() {
    let scene = fountain_scene(size());
    let slb = run_with(&scene, SystemSchedule::PerSystem, BalanceMode::Static, 20);
    let dec = run_with(&scene, SystemSchedule::PerSystem, BalanceMode::decentralized(), 20);
    assert!(
        dec.frames.last().unwrap().imbalance < slb.frames.last().unwrap().imbalance * 0.6,
        "decentralized balancing must flatten load: {} vs {}",
        dec.frames.last().unwrap().imbalance,
        slb.frames.last().unwrap().imbalance
    );
    assert!(
        dec.steady_time() < slb.steady_time(),
        "and that must pay off in time: {:.2} vs {:.2}",
        dec.steady_time(),
        slb.steady_time()
    );
}

#[test]
fn decentralized_conserves_particles() {
    let mut spec = SystemSpec::test_spec(0);
    spec.emit_per_frame = 500;
    spec.max_age = f32::MAX;
    spec.emission = psa_core::system::EmissionShape::Box {
        min: Vec3::new(-9.5, 0.0, -1.0),
        max: Vec3::new(-6.0, 4.0, 1.0),
    };
    spec.velocity = psa_core::system::VelocityModel::Jittered { base: Vec3::ZERO, jitter: 2.0 };
    let mut scene = Scene::new();
    scene.add_system(SystemSetup::new(
        spec,
        ActionList::new().then(RandomAccel::new(2.0)).then(MoveParticles),
    ));
    let cfg = RunConfig {
        frames: 12,
        dt: 0.1,
        balance: BalanceMode::Decentralized(BalancerConfig {
            rel_threshold: 0.05,
            ..BalancerConfig::fixed(4)
        }),
        ..Default::default()
    };
    let mut sim = VirtualSim::new(scene, cfg, myrinet_gcc(6, 1), CostModel::default());
    let rep = sim.run();
    assert!(
        rep.frames.iter().map(|f| f.balanced).sum::<u64>() > 0,
        "decentralized transfers must have happened"
    );
    for f in &rep.frames {
        assert_eq!(f.alive, 500 * (f.frame + 1), "frame {}", f.frame);
    }
}

#[test]
fn decentralized_and_centralized_reach_similar_balance() {
    let scene = fountain_scene(size());
    let dlb = run_with(&scene, SystemSchedule::PerSystem, BalanceMode::dynamic(), 20);
    let dec = run_with(&scene, SystemSchedule::PerSystem, BalanceMode::decentralized(), 20);
    let (a, b) = (dlb.frames.last().unwrap().imbalance, dec.frames.last().unwrap().imbalance);
    assert!((a - b).abs() < 0.35, "both balancers converge to comparable imbalance: {a} vs {b}");
}
