//! Bit-determinism of the virtual executor: the property that makes the
//! reproduced tables regenerate identically from the seed.

use particle_cluster_anim::prelude::*;
use particle_cluster_anim::workloads::{fountain_scene, snow_scene};

fn run_once(seed: u64) -> RunReport {
    let size = WorkloadSize { systems: 3, particles_per_system: 1200, scale: 25.0 };
    let scene = snow_scene(size);
    let cfg = RunConfig { frames: 8, dt: 0.15, seed, ..Default::default() };
    let mut sim = VirtualSim::new(scene, cfg, myrinet_gcc(5, 1), size.cost_model());
    sim.run()
}

#[test]
fn identical_seeds_identical_runs() {
    let a = run_once(11);
    let b = run_once(11);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
    assert_eq!(a.frames.len(), b.frames.len());
    for (fa, fb) in a.frames.iter().zip(b.frames.iter()) {
        assert_eq!(fa.alive, fb.alive);
        assert_eq!(fa.migrated, fb.migrated);
        assert_eq!(fa.balanced, fb.balanced);
        assert_eq!(fa.frame_time.to_bits(), fb.frame_time.to_bits());
    }
    assert_eq!(a.traffic, b.traffic);
}

#[test]
fn different_seeds_differ() {
    let a = run_once(1);
    let b = run_once(2);
    // stochastic emission must actually change the run
    assert_ne!(
        a.frames.iter().map(|f| f.migrated).collect::<Vec<_>>(),
        b.frames.iter().map(|f| f.migrated).collect::<Vec<_>>()
    );
}

#[test]
fn sequential_and_parallel_agree_on_population_without_stochastic_actions() {
    // With no RNG-dependent actions, sequential and any-P parallel runs
    // simulate the exact same particle set, so alive counts must match
    // frame by frame.
    let mut spec = SystemSpec::test_spec(0);
    spec.emit_per_frame = 500;
    spec.max_age = 0.6;
    spec.velocity = psa_core::system::VelocityModel::Constant(Vec3::new(2.0, 3.0, 0.0));
    let mut scene = Scene::new();
    scene.add_system(SystemSetup::new(
        spec,
        ActionList::new()
            .then(Gravity::earth())
            .then(KillOld::new(0.6))
            .then(KillBelow::ground(-50.0))
            .then(MoveParticles),
    ));
    let cfg = RunConfig { frames: 12, dt: 0.1, ..Default::default() };
    let cost = CostModel::default();
    let seq = run_sequential(&scene, &cfg, &cost, 1.0);
    for procs in [2usize, 3, 5] {
        let mut sim =
            VirtualSim::new(scene.clone(), cfg.clone(), myrinet_gcc(procs, 1), cost.clone());
        let par = sim.run();
        for (fs, fp) in seq.frames.iter().zip(par.frames.iter()) {
            assert_eq!(fs.alive, fp.alive, "frame {} alive mismatch at P={procs}", fs.frame);
        }
    }
}

/// Regression: the *threaded* executor (real OS threads, real channels) is
/// bit-deterministic for a fixed seed once balancing uses the deterministic
/// load metric. Runs the snow workload twice and compares the per-frame
/// particle-state checksums — any drift in exchange order, RNG stream use,
/// or balancing decisions changes a hash. Also passes with
/// `--features strict-invariants`, which turns on the conservation /
/// partition / Figure-2-order checks inside the run.
#[test]
fn threaded_snow_runs_are_bit_identical() {
    use particle_cluster_anim::runtime::LoadMetric;
    let size = WorkloadSize { systems: 2, particles_per_system: 700, scale: 25.0 };
    let mk = || {
        let scene = snow_scene(size);
        let cfg = RunConfig {
            frames: 6,
            dt: 0.15,
            seed: 23,
            load_metric: LoadMetric::CountProportional,
            ..Default::default()
        };
        run_threaded(&scene, &cfg, 3, None).expect("threaded run failed")
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.frames.len(), b.frames.len());
    for (fa, fb) in a.frames.iter().zip(b.frames.iter()) {
        assert_eq!(fa.alive, fb.alive, "frame {} population drift", fa.frame);
        assert_eq!(
            fa.checksum, fb.checksum,
            "frame {} checksum drift: particle state is not bit-identical",
            fa.frame
        );
    }
}

#[test]
fn fountain_runs_are_deterministic_too() {
    let size = WorkloadSize { systems: 2, particles_per_system: 900, scale: 10.0 };
    let mk = || {
        let scene = fountain_scene(size);
        let cfg = RunConfig { frames: 6, dt: 0.04, ..Default::default() };
        let mut sim = VirtualSim::new(scene, cfg, myrinet_gcc(4, 1), size.cost_model());
        sim.run()
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

/// Every pluggable balancing strategy must keep the threaded executor
/// bit-deterministic: same seed, same strategy ⇒ identical per-frame
/// particle-state checksums. This is the cross-executor half of the
/// fingerprint gate — the virtual/event-driven side is pinned by
/// `tests/event_parity.rs` over the same mode list.
#[test]
fn threaded_runs_are_bit_identical_for_every_balancer() {
    use particle_cluster_anim::runtime::{BalanceMode, LoadMetric};
    let size = WorkloadSize { systems: 2, particles_per_system: 600, scale: 25.0 };
    for balance in [
        BalanceMode::dynamic(),
        BalanceMode::decentralized(),
        BalanceMode::diffusive(),
        BalanceMode::hierarchical(),
    ] {
        let mk = || {
            let scene = snow_scene(size);
            let cfg = RunConfig {
                frames: 6,
                dt: 0.15,
                seed: 23,
                balance,
                load_metric: LoadMetric::CountProportional,
                ..Default::default()
            };
            run_threaded(&scene, &cfg, 4, None).expect("threaded run failed")
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.frames.len(), b.frames.len(), "{}", balance.label());
        for (fa, fb) in a.frames.iter().zip(b.frames.iter()) {
            assert_eq!(
                fa.checksum,
                fb.checksum,
                "{}: frame {} checksum drift",
                balance.label(),
                fa.frame
            );
        }
    }
}
