//! Particle conservation across the distributed machinery.
//!
//! Exchange, balancing donations, domain reshaping and the render shipping
//! must never lose or duplicate a particle: alive = emitted − killed, on
//! every executor, every frame.

use particle_cluster_anim::prelude::*;

/// Scene with NO killing actions at all: population must equal the exact
/// emission total forever, whatever the balancer does.
fn lossless_scene(systems: u16) -> Scene {
    let mut scene = Scene::new();
    for id in 0..systems {
        let mut spec = SystemSpec::test_spec(id);
        spec.emit_per_frame = 321;
        spec.max_age = f32::MAX;
        // strong sideways motion to force migration + balancing
        spec.velocity = psa_core::system::VelocityModel::Jittered {
            base: Vec3::new(3.0, 0.5, 0.0),
            jitter: 2.0,
        };
        spec.space = Interval::new(-10.0, 10.0);
        scene.add_system(SystemSetup::new(
            spec,
            ActionList::new().then(RandomAccel::new(3.0)).then(MoveParticles),
        ));
    }
    scene
}

#[test]
fn virtual_executor_conserves_particles() {
    let scene = lossless_scene(3);
    let cfg = RunConfig {
        frames: 10,
        dt: 0.1,
        balance: BalanceMode::Dynamic(BalancerConfig {
            rel_threshold: 0.05,
            ..BalancerConfig::fixed(4)
        }),
        ..Default::default()
    };
    let mut sim = VirtualSim::new(scene, cfg, myrinet_gcc(6, 1), CostModel::default());
    let rep = sim.run();
    assert!(
        rep.frames.iter().map(|f| f.balanced).sum::<u64>() > 0,
        "test must exercise balancing transfers"
    );
    for f in &rep.frames {
        let expected = 3 * 321 * (f.frame + 1);
        assert_eq!(f.alive, expected, "frame {}: alive {} != emitted {expected}", f.frame, f.alive);
    }
}

#[test]
fn threaded_executor_conserves_particles() {
    let scene = lossless_scene(2);
    let cfg = RunConfig { frames: 8, dt: 0.1, ..Default::default() };
    let rep = run_threaded(&scene, &cfg, 4, None).expect("threaded run failed");
    for f in &rep.frames {
        let expected = 2 * 321 * (f.frame + 1);
        assert_eq!(f.alive, expected, "frame {} alive", f.frame);
    }
}

#[test]
fn kills_are_the_only_sink() {
    // With kill-old active: alive = emitted − killed exactly. Run the
    // sequential executor as the oracle and the virtual one in parallel
    // with deterministic actions.
    let mut spec = SystemSpec::test_spec(0);
    spec.emit_per_frame = 400;
    spec.max_age = 0.45;
    spec.velocity = psa_core::system::VelocityModel::Constant(Vec3::new(4.0, 1.0, 0.0));
    let mut scene = Scene::new();
    scene.add_system(SystemSetup::new(
        spec,
        ActionList::new().then(KillOld::new(0.45)).then(MoveParticles),
    ));
    let cfg = RunConfig { frames: 15, dt: 0.1, ..Default::default() };
    let seq = run_sequential(&scene, &cfg, &CostModel::default(), 1.0);
    let mut sim = VirtualSim::new(scene, cfg, myrinet_gcc(5, 1), CostModel::default());
    let par = sim.run();
    // steady state: 4 frames of life ⇒ 400×5 = 2000 alive (ages 0..0.45 at
    // dt 0.1 survive 5 moves)
    let last = par.frames.last().unwrap().alive;
    assert_eq!(last, seq.frames.last().unwrap().alive);
    assert_eq!(last, 2000);
}

#[test]
fn balancing_moves_but_never_loses() {
    // Start grossly imbalanced via a corner emitter; compare total alive
    // against the no-balancing run.
    let mut spec = SystemSpec::test_spec(0);
    spec.emission = psa_core::system::EmissionShape::Box {
        min: Vec3::new(-9.9, 0.0, -1.0),
        max: Vec3::new(-8.9, 4.0, 1.0),
    };
    spec.emit_per_frame = 600;
    spec.max_age = f32::MAX;
    spec.velocity = psa_core::system::VelocityModel::Constant(Vec3::ZERO);
    let mut scene = Scene::new();
    scene.add_system(SystemSetup::new(spec, ActionList::new().then(MoveParticles)));
    let mk = |balance| {
        let cfg = RunConfig { frames: 12, dt: 0.1, balance, ..Default::default() };
        let mut sim = VirtualSim::new(scene.clone(), cfg, myrinet_gcc(8, 1), CostModel::default());
        sim.run()
    };
    let slb = mk(BalanceMode::Static);
    let dlb = mk(BalanceMode::Dynamic(BalancerConfig {
        rel_threshold: 0.02,
        ..BalancerConfig::fixed(2)
    }));
    for (a, b) in slb.frames.iter().zip(dlb.frames.iter()) {
        assert_eq!(a.alive, b.alive, "balancing changed the population at frame {}", a.frame);
    }
    // and it genuinely flattened the imbalance
    assert!(dlb.frames.last().unwrap().imbalance < slb.frames.last().unwrap().imbalance * 0.5);
}
