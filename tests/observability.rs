//! Golden determinism tests for the per-phase observability layer: an
//! instrumented run must be byte-identical to a bare run, because the
//! recorder only reads clocks — it never advances them, never draws RNG,
//! never sends a message.

use particle_cluster_anim::prelude::*;
use particle_cluster_anim::runtime::LoadMetric;

fn virtual_run(scene_of: fn(WorkloadSize) -> Scene, dt: f32, traced: bool) -> RunReport {
    let size = WorkloadSize { systems: 3, particles_per_system: 1000, scale: 25.0 };
    let cfg = RunConfig { frames: 8, dt, seed: 7, ..Default::default() };
    let mut sim = VirtualSim::new(scene_of(size), cfg, myrinet_gcc(5, 1), size.cost_model());
    if traced {
        sim = sim.with_phases();
    }
    sim.run()
}

#[test]
fn instrumented_virtual_runs_fingerprint_like_bare_runs() {
    for (scene_of, dt) in
        [(snow_scene as fn(WorkloadSize) -> Scene, 0.15f32), (fountain_scene, 0.04)]
    {
        let bare = virtual_run(scene_of, dt, false);
        let traced = virtual_run(scene_of, dt, true);
        assert_eq!(
            bare.fingerprint(),
            traced.fingerprint(),
            "phase recording must not perturb the run"
        );
        assert!(bare.phases.is_none(), "bare runs carry no trace");
        let phases = traced.phases.as_ref().expect("traced runs carry the trace");
        assert_eq!(phases.frames.len(), 8, "every frame traced, warmup included");
        let totals = phases.phase_totals();
        assert!(totals.iter().all(|t| t.is_finite() && *t >= 0.0));
        assert!(totals.iter().sum::<f64>() > 0.0, "phases must have absorbed time");
        // The trace is derived measurement, not run output: two traced
        // runs of the same seed agree on it bit-for-bit too.
        let again = virtual_run(scene_of, dt, true);
        assert_eq!(again.phases.as_ref().unwrap(), phases);
    }
}

#[test]
fn instrumented_virtual_dlb_runs_stay_quiet_too() {
    // Balancing exercises the Balance phase and the order counters; the
    // fingerprint must still match a bare run exactly.
    let size = WorkloadSize { systems: 2, particles_per_system: 900, scale: 25.0 };
    let mk = |traced: bool| {
        // Infinite space packs everything into one slice at frame 0, so
        // the dynamic balancer is guaranteed to issue transfer orders.
        let cfg = RunConfig {
            frames: 10,
            dt: 0.15,
            seed: 3,
            space: SpaceMode::Infinite,
            balance: BalanceMode::dynamic(),
            ..Default::default()
        };
        let mut sim = VirtualSim::new(snow_scene(size), cfg, myrinet_gcc(4, 1), size.cost_model());
        if traced {
            sim = sim.with_phases();
        }
        sim.run()
    };
    let (bare, traced) = (mk(false), mk(true));
    assert_eq!(bare.fingerprint(), traced.fingerprint());
    let counters = traced.phases.as_ref().unwrap().counter_totals();
    assert!(counters.messages > 0, "a parallel run must have sent messages");
    assert!(counters.balance_orders > 0, "DLB on an emitting workload must issue orders");
}

/// The threaded executor runs on wall clocks, so fingerprints (which cover
/// `total_time`) are not comparable across runs. Per-frame particle-state
/// checksums are bit-exact under the deterministic load metric, and those
/// must not move when instrumentation is on.
#[test]
fn instrumented_threaded_runs_match_bare_checksums() {
    let size = WorkloadSize { systems: 2, particles_per_system: 600, scale: 25.0 };
    let mk = |traced: bool| {
        let scene = snow_scene(size);
        let cfg = RunConfig {
            frames: 6,
            dt: 0.15,
            seed: 23,
            load_metric: LoadMetric::CountProportional,
            ..Default::default()
        };
        run_threaded_traced(&scene, &cfg, 3, None, traced).expect("threaded run failed")
    };
    let (bare, traced) = (mk(false), mk(true));
    assert!(bare.phases.is_none());
    let phases = traced.phases.as_ref().expect("traced threaded run carries the trace");
    assert_eq!(phases.frames.len(), 6);
    assert!(phases.phase_totals().iter().sum::<f64>() > 0.0);
    for (fa, fb) in bare.frames.iter().zip(traced.frames.iter()) {
        assert_eq!(fa.alive, fb.alive, "frame {} population drift", fa.frame);
        assert_eq!(fa.checksum, fb.checksum, "frame {} checksum drift", fa.frame);
    }
}

#[test]
fn phase_table_renders_from_a_traced_run() {
    let traced = virtual_run(snow_scene, 0.15, true);
    let table = traced.phase_table().expect("traced run renders a phase table");
    for phase in particle_cluster_anim::trace::PHASES {
        assert!(table.contains(phase.name()), "table missing phase {}", phase.name());
    }
    assert!(virtual_run(snow_scene, 0.15, false).phase_table().is_none());
}
