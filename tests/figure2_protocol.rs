//! Reproduces Figure 2: the per-frame protocol event order.
//!
//! The paper's Figure 2 is a sequence diagram of one frame under dynamic
//! load balancing. We run the virtual executor with tracing on a scene
//! engineered to trigger a balancing transfer and assert that the recorded
//! protocol events appear in exactly the diagram's order.

use particle_cluster_anim::prelude::*;
use particle_cluster_anim::runtime::trace::{matches_figure2, ProtocolEvent, FIGURE2_ORDER};

/// A deliberately imbalanced scene: the emitter sits in one corner so the
/// balancer must act every frame early on.
fn imbalanced_scene() -> Scene {
    let mut spec = SystemSpec::test_spec(0);
    spec.space = Interval::new(-10.0, 10.0);
    spec.emission = psa_core::system::EmissionShape::Box {
        min: Vec3::new(-9.5, 0.0, -1.0),
        max: Vec3::new(-7.5, 5.0, 1.0),
    };
    spec.emit_per_frame = 800;
    spec.max_age = 100.0; // no deaths; population concentrates
    let mut s = Scene::new();
    s.add_system(SystemSetup::new(
        spec,
        ActionList::new().then(Gravity::new(Vec3::ZERO)).then(MoveParticles),
    ));
    s
}

#[test]
fn frame_events_match_figure2_order() {
    let cfg = RunConfig {
        frames: 4,
        dt: 0.05,
        balance: BalanceMode::Dynamic(BalancerConfig {
            rel_threshold: 0.05,
            ..BalancerConfig::fixed(8)
        }),
        ..Default::default()
    };
    let cluster = myrinet_gcc(4, 1);
    let mut sim =
        VirtualSim::new(imbalanced_scene(), cfg, cluster, CostModel::default()).with_trace();
    let report = sim.run();
    assert!(report.frames.iter().any(|f| f.balanced > 0), "balancer must have acted");

    // Find a frame where a transfer happened; its trace must be the full
    // Figure-2 sequence.
    let trace = sim.trace();
    let full_frame = (0..4)
        .map(|f| trace.frame(f))
        .find(|ev| ev.len() == FIGURE2_ORDER.len())
        .expect("some frame exercised the full protocol");
    assert!(matches_figure2(&full_frame), "events out of order: {full_frame:?}");
}

#[test]
fn static_balancing_skips_balance_events() {
    let cfg = RunConfig { frames: 2, dt: 0.05, balance: BalanceMode::Static, ..Default::default() };
    let cluster = myrinet_gcc(4, 1);
    let mut sim =
        VirtualSim::new(imbalanced_scene(), cfg, cluster, CostModel::default()).with_trace();
    sim.run();
    let events = sim.trace().frame(1);
    assert!(!events.contains(&ProtocolEvent::LoadBalancingEvaluation));
    assert!(!events.contains(&ProtocolEvent::LoadBalanceBetweenCalculators));
    // but the compute pipeline still happened, in order
    let idx = |e: ProtocolEvent| events.iter().position(|&x| x == e).unwrap();
    assert!(idx(ProtocolEvent::ParticleCreation) < idx(ProtocolEvent::Calculus));
    assert!(idx(ProtocolEvent::Calculus) < idx(ProtocolEvent::ParticleExchange));
    assert!(idx(ProtocolEvent::ParticleExchange) < idx(ProtocolEvent::ImageGeneration));
}
