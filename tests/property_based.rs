//! Property-based tests over the core invariants.

use particle_cluster_anim::prelude::*;
use particle_cluster_anim::runtime::balance::{
    evaluate, validate_transfers, LoadInfo,
};
use proptest::prelude::*;

proptest! {
    /// Every coordinate in the covered space has exactly one owner, and the
    /// owner's slice contains it.
    #[test]
    fn domain_owner_is_consistent(
        lo in -100.0f32..0.0,
        width in 1.0f32..200.0,
        n in 1usize..24,
        points in prop::collection::vec(0.0f32..1.0, 1..64),
    ) {
        let space = Interval::new(lo, lo + width);
        let map = DomainMap::split_even(space, Axis::X, n);
        for t in points {
            let v = lo + width * t * 0.999; // strictly inside
            let owner = map.owner_of(v);
            prop_assert!(owner < n);
            prop_assert!(map.slice(owner).contains(v), "slice {owner} must contain {v}");
            // uniqueness: no other slice contains it
            for i in 0..n {
                if i != owner {
                    prop_assert!(!map.slice(i).contains(v));
                }
            }
        }
    }

    /// Moving interior cuts arbitrarily (within bounds) keeps the map valid
    /// and keeps the union of slices equal to the space.
    #[test]
    fn domain_cut_moves_preserve_cover(
        n in 2usize..12,
        moves in prop::collection::vec((0usize..12, 0.0f32..1.0), 0..24),
    ) {
        let space = Interval::new(-5.0, 5.0);
        let mut map = DomainMap::split_even(space, Axis::X, n);
        for (idx, t) in moves {
            let i = idx % (n - 1);
            // legal range for boundary i is [cuts[i], cuts[i+2]]
            let lo = map.cuts()[i];
            let hi = map.cuts()[i + 2];
            let cut = lo + (hi - lo) * t;
            map.move_cut(i, cut).unwrap();
            prop_assert!(map.validate().is_ok());
            prop_assert_eq!(map.space(), space);
        }
    }

    /// The balancer's structural rules hold for arbitrary load reports:
    /// neighbor-only, nobody in two pairs, donors have the excess.
    #[test]
    fn balancer_rules_hold(
        counts in prop::collection::vec(0usize..10_000, 2..20),
        start in 0usize..2,
        threshold in 0.01f64..0.5,
    ) {
        let loads: Vec<LoadInfo> = counts
            .iter()
            .map(|&c| LoadInfo { count: c, time: c as f64 * 1e-4 })
            .collect();
        let powers = vec![1.0; loads.len()];
        let cfg = BalancerConfig { rel_threshold: threshold, min_transfer: 8 };
        let transfers = evaluate(&loads, &powers, start, &cfg);
        prop_assert!(validate_transfers(&transfers, loads.len()).is_ok());
        for t in &transfers {
            prop_assert!(t.amount >= cfg.min_transfer);
            prop_assert!(loads[t.donor].count >= t.amount, "donor cannot give what it lacks");
            // donor must actually be the slower/larger side
            prop_assert!(loads[t.donor].time >= loads[t.receiver].time);
        }
    }

    /// SubDomainStore: insert + collect_leavers is a partition — nothing
    /// lost, nothing duplicated, and what remains is inside the slice.
    #[test]
    fn subdomain_leaver_partition(
        xs in prop::collection::vec(-20.0f32..20.0, 0..256),
        buckets in 1usize..12,
    ) {
        let slice = Interval::new(-5.0, 5.0);
        let mut store = SubDomainStore::new(slice, Axis::X, buckets);
        for &x in &xs {
            store.insert(Particle::at(Vec3::new(x, 0.0, 0.0)));
        }
        let before = store.len();
        prop_assert_eq!(before, xs.len());
        let leavers = store.collect_leavers();
        prop_assert_eq!(store.len() + leavers.len(), before);
        for p in store.iter() {
            prop_assert!(slice.contains(p.position.x));
        }
        for p in &leavers {
            prop_assert!(!slice.contains(p.position.x));
        }
    }

    /// Donation extremity: donate_low returns exactly the k smallest
    /// coordinates (as a multiset), for any bucket count.
    #[test]
    fn donation_takes_extremes(
        xs in prop::collection::vec(0.0f32..10.0, 1..128),
        k in 1usize..64,
        buckets in 1usize..8,
    ) {
        let slice = Interval::new(0.0, 10.0);
        let mut store = SubDomainStore::new(slice, Axis::X, buckets);
        for &x in &xs {
            store.insert(Particle::at(Vec3::new(x, 0.0, 0.0)));
        }
        let k = k.min(xs.len());
        let (donated, _) = store.donate_low(k);
        prop_assert_eq!(donated.len(), k);
        let mut got: Vec<f32> = donated.iter().map(|p| p.position.x).collect();
        got.sort_by(f32::total_cmp);
        let mut want = xs.clone();
        want.sort_by(f32::total_cmp);
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    /// Grid collision equals brute force for random clouds.
    #[test]
    fn grid_matches_bruteforce(
        seed in 0u64..1_000,
        n in 2usize..120,
        r in 0.05f32..0.5,
    ) {
        use particle_cluster_anim::core::collide::colliding_pairs;
        let mut rng = Rng64::new(seed);
        let ps: Vec<Particle> = (0..n)
            .map(|_| Particle::at(rng.in_box(Vec3::splat(-3.0), Vec3::splat(3.0))).with_size(r))
            .collect();
        let mut grid = colliding_pairs(&ps, &[], 2.0 * r);
        grid.sort_unstable();
        let mut brute = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let rr = ps[i].size + ps[j].size;
                if ps[i].position.distance_squared(ps[j].position) < rr * rr {
                    brute.push((i as u32, j as u32));
                }
            }
        }
        brute.sort_unstable();
        prop_assert_eq!(grid, brute);
    }

    /// Rng streams: split children never collide with the parent stream on
    /// short prefixes (sanity of the stream-derivation scheme).
    #[test]
    fn rng_split_streams_diverge(seed in 0u64..10_000, salt in 1u64..10_000) {
        let mut parent = Rng64::new(seed);
        let mut child = Rng64::new(seed).split(salt);
        let same = (0..16).filter(|_| parent.next_u64() == child.next_u64()).count();
        prop_assert!(same <= 1, "streams nearly identical");
    }
}
