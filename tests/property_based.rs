//! Property-based tests over the core invariants.
//!
//! The workspace builds fully offline, so instead of `proptest` these
//! properties are driven by the repo's own deterministic [`Rng64`] streams:
//! every case set derives from a fixed seed, so a failure reproduces
//! bit-for-bit on every run — which is itself one of the determinism rules
//! psa-verify enforces (no ambient RNG in test generators).

use particle_cluster_anim::prelude::*;
use particle_cluster_anim::runtime::balance::{evaluate, validate_transfers, LoadInfo};

const CASES: usize = 256;

/// Every coordinate in the covered space has exactly one owner, and the
/// owner's slice contains it.
#[test]
fn domain_owner_is_consistent() {
    let mut rng = Rng64::new(0xD0_A11);
    for _ in 0..CASES {
        let lo = rng.range(-100.0, 0.0);
        let width = rng.range(1.0, 200.0);
        let n = 1 + rng.below(23);
        let space = Interval::new(lo, lo + width);
        let map = DomainMap::split_even(space, Axis::X, n);
        for _ in 0..32 {
            let v = lo + width * rng.unit() * 0.999; // strictly inside
            let owner = map.owner_of(v);
            assert!(owner < n);
            assert!(map.slice(owner).contains(v), "slice {owner} must contain {v}");
            // uniqueness: no other slice contains it
            for i in 0..n {
                if i != owner {
                    assert!(!map.slice(i).contains(v));
                }
            }
        }
    }
}

/// Moving interior cuts arbitrarily (within bounds) keeps the map valid and
/// keeps the union of slices equal to the space.
#[test]
fn domain_cut_moves_preserve_cover() {
    let mut rng = Rng64::new(0xC07);
    for _ in 0..CASES {
        let n = 2 + rng.below(10);
        let space = Interval::new(-5.0, 5.0);
        let mut map = DomainMap::split_even(space, Axis::X, n);
        for _ in 0..rng.below(24) {
            let i = rng.below(n - 1);
            // legal range for boundary i is [cuts[i], cuts[i+2]]
            let lo = map.cuts()[i];
            let hi = map.cuts()[i + 2];
            let cut = lo + (hi - lo) * rng.unit();
            map.move_cut(i, cut).expect("cut chosen in legal range");
            assert!(map.validate().is_ok());
            assert_eq!(map.space(), space);
        }
    }
}

/// The balancer's structural rules hold for arbitrary load reports:
/// neighbor-only, nobody in two pairs, donors have the excess.
#[test]
fn balancer_rules_hold() {
    let mut rng = Rng64::new(0xBA1A);
    for _ in 0..CASES {
        let n = 2 + rng.below(18);
        let counts: Vec<usize> = (0..n).map(|_| rng.below(10_000)).collect();
        let start = rng.below(2);
        let threshold = rng.range(0.01, 0.5) as f64;
        let loads: Vec<LoadInfo> =
            counts.iter().map(|&c| LoadInfo { count: c, time: c as f64 * 1e-4 }).collect();
        let powers = vec![1.0; loads.len()];
        let cfg = BalancerConfig { rel_threshold: threshold, ..BalancerConfig::fixed(8) };
        let transfers = evaluate(&loads, &powers, start, &cfg);
        assert!(validate_transfers(&transfers, loads.len()).is_ok());
        for t in &transfers {
            assert!(t.amount >= 8);
            assert!(loads[t.donor].count >= t.amount, "donor cannot give what it lacks");
            // donor must actually be the slower/larger side
            assert!(loads[t.donor].time >= loads[t.receiver].time);
        }
    }
}

/// SubDomainStore: insert + collect_leavers is a partition — nothing lost,
/// nothing duplicated, and what remains is inside the slice.
#[test]
fn subdomain_leaver_partition() {
    let mut rng = Rng64::new(0x5AB);
    for _ in 0..CASES {
        let count = rng.below(256);
        let buckets = 1 + rng.below(11);
        let slice = Interval::new(-5.0, 5.0);
        let mut store = SubDomainStore::new(slice, Axis::X, buckets);
        for _ in 0..count {
            let x = rng.range(-20.0, 20.0);
            store.insert(Particle::at(Vec3::new(x, 0.0, 0.0)));
        }
        let before = store.len();
        assert_eq!(before, count);
        let leavers = store.collect_leavers();
        assert_eq!(store.len() + leavers.len(), before);
        for p in store.iter() {
            assert!(slice.contains(p.position.x));
        }
        for p in &leavers {
            assert!(!slice.contains(p.position.x));
        }
    }
}

/// Donation extremity: donate_low returns exactly the k smallest
/// coordinates (as a multiset), for any bucket count.
#[test]
fn donation_takes_extremes() {
    let mut rng = Rng64::new(0xD0_4A7E);
    for _ in 0..CASES {
        let count = 1 + rng.below(127);
        let buckets = 1 + rng.below(7);
        let xs: Vec<f32> = (0..count).map(|_| rng.range(0.0, 10.0)).collect();
        let slice = Interval::new(0.0, 10.0);
        let mut store = SubDomainStore::new(slice, Axis::X, buckets);
        for &x in &xs {
            store.insert(Particle::at(Vec3::new(x, 0.0, 0.0)));
        }
        let k = (1 + rng.below(63)).min(xs.len());
        let (donated, _) = store.donate_low(k);
        assert_eq!(donated.len(), k);
        let mut got: Vec<f32> = donated.iter().map(|p| p.position.x).collect();
        got.sort_by(f32::total_cmp);
        let mut want = xs.clone();
        want.sort_by(f32::total_cmp);
        want.truncate(k);
        assert_eq!(got, want);
    }
}

/// Grid collision equals brute force for random clouds.
#[test]
fn grid_matches_bruteforce() {
    use particle_cluster_anim::core::collide::colliding_pairs;
    let mut seeds = Rng64::new(0x9B1D);
    for _ in 0..64 {
        let mut rng = Rng64::new(seeds.next_u64());
        let n = 2 + rng.below(118);
        let r = rng.range(0.05, 0.5);
        let ps: Vec<Particle> = (0..n)
            .map(|_| Particle::at(rng.in_box(Vec3::splat(-3.0), Vec3::splat(3.0))).with_size(r))
            .collect();
        let mut grid = colliding_pairs(&ps, &[], 2.0 * r);
        grid.sort_unstable();
        let mut brute = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let rr = ps[i].size + ps[j].size;
                if ps[i].position.distance_squared(ps[j].position) < rr * rr {
                    brute.push((i as u32, j as u32));
                }
            }
        }
        brute.sort_unstable();
        assert_eq!(grid, brute);
    }
}

/// Rng streams: split children never collide with the parent stream on
/// short prefixes (sanity of the stream-derivation scheme).
#[test]
fn rng_split_streams_diverge() {
    let mut meta = Rng64::new(0xD1F5);
    for _ in 0..CASES {
        let seed = meta.next_u64() % 10_000;
        let salt = 1 + meta.next_u64() % 9_999;
        let mut parent = Rng64::new(seed);
        let mut child = Rng64::new(seed).split(salt);
        let same = (0..16).filter(|_| parent.next_u64() == child.next_u64()).count();
        assert!(same <= 1, "streams nearly identical (seed {seed}, salt {salt})");
    }
}

/// Trait-generic suite: the [`Balancer`] round contract holds for *every*
/// shipped strategy over arbitrary loads and degraded present-subsets —
/// donors never overdraw (even summed across a multi-pair round), a round
/// conserves particles, decisions are pure functions of their inputs, and
/// transfers decided in present-index space come back naming real ranks.
#[test]
fn every_strategy_satisfies_the_round_contract() {
    use particle_cluster_anim::runtime::balance::validate_round;
    use particle_cluster_anim::runtime::balancers::all_strategies;
    let mut rng = Rng64::new(0xB_A1A2);
    for case in 0..CASES {
        let world = 2 + rng.below(40);
        // A degraded round: each real rank is present with p ≈ 0.8, with
        // at least two survivors so pairs exist.
        let mut present: Vec<usize> = (0..world).filter(|_| rng.unit() < 0.8).collect();
        while present.len() < 2 {
            present = (0..world).collect();
        }
        let n = present.len();
        let loads: Vec<LoadInfo> = (0..n)
            .map(|_| {
                let c = rng.below(5_000);
                LoadInfo { count: c, time: c as f64 * rng.range(0.5e-6, 2.0e-6) as f64 }
            })
            .collect();
        let powers: Vec<f64> = (0..n).map(|_| rng.range(0.5, 2.0) as f64).collect();
        let round = case as u64;
        let cfg = BalancerConfig::default();
        for s in all_strategies() {
            let ts = s.decide(&loads, &powers, &present, round, &cfg);
            validate_round(&ts, &loads, &present, s.multi_pair())
                .unwrap_or_else(|e| panic!("{} case {case}: {e}", s.name()));
            // Determinism: identical inputs decide identical transfers.
            assert_eq!(
                ts,
                s.decide(&loads, &powers, &present, round, &cfg),
                "{} case {case}: decision not deterministic",
                s.name()
            );
            // Conservation: applying the round moves particles, never
            // creates or destroys them.
            let before: usize = loads.iter().map(|l| l.count).sum();
            let mut counts: Vec<usize> = loads.iter().map(|l| l.count).collect();
            for t in &ts {
                let d = present.binary_search(&t.donor).expect("donor is present");
                let r = present.binary_search(&t.receiver).expect("receiver is present");
                counts[d] = counts[d].checked_sub(t.amount).expect("donor overdrawn");
                counts[r] += t.amount;
            }
            assert_eq!(
                counts.iter().sum::<usize>(),
                before,
                "{} case {case}: round does not conserve particles",
                s.name()
            );
        }
    }
}

/// Every strategy drains the point-spike harness at a post-dead-zone rank
/// count: one rank holding everything, 64 thin peers. Convergence means a
/// full cycle of empty rounds (strategies alternate round types), bounded
/// imbalance at the end, and a valid round every step of the way.
#[test]
fn every_strategy_drains_a_spike_at_scale() {
    use particle_cluster_anim::runtime::balance::validate_round;
    use particle_cluster_anim::runtime::balancers::all_strategies;
    let n = 64usize;
    let present: Vec<usize> = (0..n).collect();
    let powers = vec![1.0; n];
    let cfg = BalancerConfig::default();
    for s in all_strategies() {
        let mut counts = vec![5usize; n];
        counts[n / 2] = 50_000;
        let mut converged = false;
        let mut empty_streak = 0;
        for round in 0..6_000u64 {
            let loads: Vec<LoadInfo> =
                counts.iter().map(|&c| LoadInfo { count: c, time: c as f64 * 1e-6 }).collect();
            let ts = s.decide(&loads, &powers, &present, round, &cfg);
            validate_round(&ts, &loads, &present, s.multi_pair())
                .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            if ts.is_empty() {
                empty_streak += 1;
                if empty_streak >= 4 {
                    converged = true;
                    break;
                }
            } else {
                empty_streak = 0;
            }
            for t in ts {
                counts[t.donor] -= t.amount;
                counts[t.receiver] += t.amount;
            }
        }
        assert!(converged, "{} did not converge on the spike harness", s.name());
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / n as f64;
        // Pair-local thresholds leave a residual hill (each neighbor pair
        // within 15% still compounds over 64 ranks), so "drained" means
        // bounded by a small multiple of the mean, not flat — the paper
        // walks settle at ~3.2×/~4.6×, diffusive and hierarchical under 2×.
        // A stuck spike would sit at ~64×.
        assert!(
            max / mean < 5.0,
            "{} left the spike standing: max/mean = {}",
            s.name(),
            max / mean
        );
    }
}

/// The rank→position fast path in `validate_transfers_mapped` must accept
/// a full 1,024-rank round and reject every malformed shape, at a cost
/// that stays O(t log n) — the O(t·n) scan it replaced was a real
/// per-round tax at BENCH_5 scale.
#[test]
fn mapped_validation_handles_1024_rank_rounds() {
    use particle_cluster_anim::runtime::balance::{validate_transfers_mapped, Transfer};
    let mut rng = Rng64::new(0x10_24);
    for _ in 0..64 {
        // A degraded 1,024-rank present set (~1% dead), and one transfer
        // across every surviving present-list pair — far denser than any
        // strategy emits, so acceptance here covers every real round.
        let present: Vec<usize> = (0..1024).filter(|_| rng.unit() < 0.99).collect();
        let transfers: Vec<Transfer> = present
            .windows(2)
            .map(|w| Transfer { donor: w[0], receiver: w[1], amount: 1 + rng.below(100) })
            .collect();
        // One rank per pair violates one-pair-per-process; check only the
        // shape rules here by splitting into odd/even pair sets.
        let evens: Vec<Transfer> = transfers.iter().step_by(2).copied().collect();
        let odds: Vec<Transfer> = transfers.iter().skip(1).step_by(2).copied().collect();
        validate_transfers_mapped(&evens, &present).expect("even pairs are a legal round");
        validate_transfers_mapped(&odds, &present).expect("odd pairs are a legal round");
        // Absent endpoint: a dead rank in a transfer must be rejected.
        if let Some(dead) = (0..1024).find(|r| present.binary_search(r).is_err()) {
            let bad = vec![Transfer { donor: dead, receiver: present[0], amount: 1 }];
            assert!(validate_transfers_mapped(&bad, &present).is_err());
        }
        // Non-neighbor endpoints must be rejected.
        let far = vec![Transfer { donor: present[0], receiver: present[5], amount: 1 }];
        assert!(validate_transfers_mapped(&far, &present).is_err());
    }
}
