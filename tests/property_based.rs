//! Property-based tests over the core invariants.
//!
//! The workspace builds fully offline, so instead of `proptest` these
//! properties are driven by the repo's own deterministic [`Rng64`] streams:
//! every case set derives from a fixed seed, so a failure reproduces
//! bit-for-bit on every run — which is itself one of the determinism rules
//! psa-verify enforces (no ambient RNG in test generators).

use particle_cluster_anim::prelude::*;
use particle_cluster_anim::runtime::balance::{evaluate, validate_transfers, LoadInfo};

const CASES: usize = 256;

/// Every coordinate in the covered space has exactly one owner, and the
/// owner's slice contains it.
#[test]
fn domain_owner_is_consistent() {
    let mut rng = Rng64::new(0xD0_A11);
    for _ in 0..CASES {
        let lo = rng.range(-100.0, 0.0);
        let width = rng.range(1.0, 200.0);
        let n = 1 + rng.below(23);
        let space = Interval::new(lo, lo + width);
        let map = DomainMap::split_even(space, Axis::X, n);
        for _ in 0..32 {
            let v = lo + width * rng.unit() * 0.999; // strictly inside
            let owner = map.owner_of(v);
            assert!(owner < n);
            assert!(map.slice(owner).contains(v), "slice {owner} must contain {v}");
            // uniqueness: no other slice contains it
            for i in 0..n {
                if i != owner {
                    assert!(!map.slice(i).contains(v));
                }
            }
        }
    }
}

/// Moving interior cuts arbitrarily (within bounds) keeps the map valid and
/// keeps the union of slices equal to the space.
#[test]
fn domain_cut_moves_preserve_cover() {
    let mut rng = Rng64::new(0xC07);
    for _ in 0..CASES {
        let n = 2 + rng.below(10);
        let space = Interval::new(-5.0, 5.0);
        let mut map = DomainMap::split_even(space, Axis::X, n);
        for _ in 0..rng.below(24) {
            let i = rng.below(n - 1);
            // legal range for boundary i is [cuts[i], cuts[i+2]]
            let lo = map.cuts()[i];
            let hi = map.cuts()[i + 2];
            let cut = lo + (hi - lo) * rng.unit();
            map.move_cut(i, cut).expect("cut chosen in legal range");
            assert!(map.validate().is_ok());
            assert_eq!(map.space(), space);
        }
    }
}

/// The balancer's structural rules hold for arbitrary load reports:
/// neighbor-only, nobody in two pairs, donors have the excess.
#[test]
fn balancer_rules_hold() {
    let mut rng = Rng64::new(0xBA1A);
    for _ in 0..CASES {
        let n = 2 + rng.below(18);
        let counts: Vec<usize> = (0..n).map(|_| rng.below(10_000)).collect();
        let start = rng.below(2);
        let threshold = rng.range(0.01, 0.5) as f64;
        let loads: Vec<LoadInfo> =
            counts.iter().map(|&c| LoadInfo { count: c, time: c as f64 * 1e-4 }).collect();
        let powers = vec![1.0; loads.len()];
        let cfg = BalancerConfig { rel_threshold: threshold, min_transfer: 8 };
        let transfers = evaluate(&loads, &powers, start, &cfg);
        assert!(validate_transfers(&transfers, loads.len()).is_ok());
        for t in &transfers {
            assert!(t.amount >= cfg.min_transfer);
            assert!(loads[t.donor].count >= t.amount, "donor cannot give what it lacks");
            // donor must actually be the slower/larger side
            assert!(loads[t.donor].time >= loads[t.receiver].time);
        }
    }
}

/// SubDomainStore: insert + collect_leavers is a partition — nothing lost,
/// nothing duplicated, and what remains is inside the slice.
#[test]
fn subdomain_leaver_partition() {
    let mut rng = Rng64::new(0x5AB);
    for _ in 0..CASES {
        let count = rng.below(256);
        let buckets = 1 + rng.below(11);
        let slice = Interval::new(-5.0, 5.0);
        let mut store = SubDomainStore::new(slice, Axis::X, buckets);
        for _ in 0..count {
            let x = rng.range(-20.0, 20.0);
            store.insert(Particle::at(Vec3::new(x, 0.0, 0.0)));
        }
        let before = store.len();
        assert_eq!(before, count);
        let leavers = store.collect_leavers();
        assert_eq!(store.len() + leavers.len(), before);
        for p in store.iter() {
            assert!(slice.contains(p.position.x));
        }
        for p in &leavers {
            assert!(!slice.contains(p.position.x));
        }
    }
}

/// Donation extremity: donate_low returns exactly the k smallest
/// coordinates (as a multiset), for any bucket count.
#[test]
fn donation_takes_extremes() {
    let mut rng = Rng64::new(0xD0_4A7E);
    for _ in 0..CASES {
        let count = 1 + rng.below(127);
        let buckets = 1 + rng.below(7);
        let xs: Vec<f32> = (0..count).map(|_| rng.range(0.0, 10.0)).collect();
        let slice = Interval::new(0.0, 10.0);
        let mut store = SubDomainStore::new(slice, Axis::X, buckets);
        for &x in &xs {
            store.insert(Particle::at(Vec3::new(x, 0.0, 0.0)));
        }
        let k = (1 + rng.below(63)).min(xs.len());
        let (donated, _) = store.donate_low(k);
        assert_eq!(donated.len(), k);
        let mut got: Vec<f32> = donated.iter().map(|p| p.position.x).collect();
        got.sort_by(f32::total_cmp);
        let mut want = xs.clone();
        want.sort_by(f32::total_cmp);
        want.truncate(k);
        assert_eq!(got, want);
    }
}

/// Grid collision equals brute force for random clouds.
#[test]
fn grid_matches_bruteforce() {
    use particle_cluster_anim::core::collide::colliding_pairs;
    let mut seeds = Rng64::new(0x9B1D);
    for _ in 0..64 {
        let mut rng = Rng64::new(seeds.next_u64());
        let n = 2 + rng.below(118);
        let r = rng.range(0.05, 0.5);
        let ps: Vec<Particle> = (0..n)
            .map(|_| Particle::at(rng.in_box(Vec3::splat(-3.0), Vec3::splat(3.0))).with_size(r))
            .collect();
        let mut grid = colliding_pairs(&ps, &[], 2.0 * r);
        grid.sort_unstable();
        let mut brute = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let rr = ps[i].size + ps[j].size;
                if ps[i].position.distance_squared(ps[j].position) < rr * rr {
                    brute.push((i as u32, j as u32));
                }
            }
        }
        brute.sort_unstable();
        assert_eq!(grid, brute);
    }
}

/// Rng streams: split children never collide with the parent stream on
/// short prefixes (sanity of the stream-derivation scheme).
#[test]
fn rng_split_streams_diverge() {
    let mut meta = Rng64::new(0xD1F5);
    for _ in 0..CASES {
        let seed = meta.next_u64() % 10_000;
        let salt = 1 + meta.next_u64() % 9_999;
        let mut parent = Rng64::new(seed);
        let mut child = Rng64::new(seed).split(salt);
        let same = (0..16).filter(|_| parent.next_u64() == child.next_u64()).count();
        assert!(same <= 1, "streams nearly identical (seed {seed}, salt {salt})");
    }
}
