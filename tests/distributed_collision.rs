//! Distributed inter-particle collision: the ghost-slab exchange across
//! domain boundaries (paper §3.1.4/§3.1.5).

use particle_cluster_anim::prelude::*;
use particle_cluster_anim::runtime::CollisionSpec;

/// A head-on pair straddling the boundary between calculators 0 and 1 of a
/// two-way split of [-10, 10): the collision can only be detected if ghost
/// slabs cross the process line.
fn head_on_scene(radius: f32) -> Scene {
    // Exact placement needs Point initial shapes, so each particle gets its
    // own single-particle system.
    let mut scene = Scene::new();
    for (id, x, vx) in [(0u16, -0.25f32, 2.0f32), (1, 0.25, -2.0)] {
        let mut s = SystemSpec::test_spec(id);
        s.space = Interval::new(-10.0, 10.0);
        s.emit_per_frame = 0;
        s.max_age = f32::MAX;
        s.size = radius;
        s.velocity = psa_core::system::VelocityModel::Constant(Vec3::new(vx, 0.0, 0.0));
        s.initial = Some((1, psa_core::system::EmissionShape::Point(Vec3::new(x, 0.0, 0.0))));
        scene.add_system(SystemSetup::new(s, ActionList::new().then(MoveParticles)));
    }
    scene.collision = Some(CollisionSpec { cell: 2.0 * radius, restitution: 1.0 });
    scene
}

#[test]
fn cross_boundary_pair_is_not_detected_without_collision() {
    let mut scene = head_on_scene(0.3);
    scene.collision = None;
    let cfg = RunConfig { frames: 4, dt: 0.05, balance: BalanceMode::Static, ..Default::default() };
    let mut sim = VirtualSim::new(scene, cfg, myrinet_gcc(2, 1), CostModel::default());
    let rep = sim.run();
    // particles pass through each other; both still alive
    assert_eq!(rep.frames.last().unwrap().alive, 2);
}

#[test]
fn cross_boundary_collision_reflects_both_sides() {
    // particles are in DIFFERENT systems here, so within-system collision
    // never sees them... place them in the same system instead: use one
    // system with an initial population of 2 placed by a thin box.
    let radius = 0.3f32;
    let mut s = SystemSpec::test_spec(0);
    s.space = Interval::new(-10.0, 10.0);
    s.emit_per_frame = 0;
    s.max_age = f32::MAX;
    s.size = radius;
    // Start both at x = ±0.25 via a degenerate box and give them inward
    // velocity: a box spanning both positions with a converging velocity
    // field is not expressible, so approximate with a dense cloud at the
    // boundary and assert statistically instead.
    s.initial = Some((
        400,
        psa_core::system::EmissionShape::Box {
            min: Vec3::new(-0.8, -0.8, -0.8),
            max: Vec3::new(0.8, 0.8, 0.8),
        },
    ));
    s.velocity = psa_core::system::VelocityModel::Constant(Vec3::ZERO);
    let mut scene = Scene::new();
    scene.add_system(SystemSetup::new(s, ActionList::new().then(MoveParticles)));
    scene.collision = Some(CollisionSpec { cell: 2.0 * radius, restitution: 0.8 });

    let cfg = RunConfig { frames: 3, dt: 0.05, balance: BalanceMode::Static, ..Default::default() };
    let mut sim =
        VirtualSim::new(scene.clone(), cfg.clone(), myrinet_gcc(2, 1), CostModel::default());
    let rep = sim.run();
    assert_eq!(rep.frames.last().unwrap().alive, 400, "collision must not lose particles");

    // The dense overlapping cloud must have gained kinetic energy from
    // penetration resolution — i.e. collisions actually executed across the
    // two calculators (x=0 is their shared boundary).
    let seq = run_sequential(&scene, &cfg, &CostModel::default(), 1.0);
    assert_eq!(seq.frames.last().unwrap().alive, 400);
}

#[test]
fn distributed_collision_matches_sequential_population_and_time_structure() {
    // With collision enabled, virtual runs stay deterministic and conserve
    // particles across 4 calculators.
    let radius = 0.25f32;
    let mut s = SystemSpec::test_spec(0);
    s.space = Interval::new(-10.0, 10.0);
    s.emit_per_frame = 150;
    s.max_age = f32::MAX;
    s.size = radius;
    s.emission = psa_core::system::EmissionShape::Box {
        min: Vec3::new(-9.0, 0.0, -2.0),
        max: Vec3::new(9.0, 4.0, 2.0),
    };
    s.velocity = psa_core::system::VelocityModel::Jittered { base: Vec3::ZERO, jitter: 3.0 };
    let mut scene = Scene::new();
    scene.add_system(SystemSetup::new(
        s,
        ActionList::new().then(RandomAccel::new(1.0)).then(MoveParticles),
    ));
    scene.collision = Some(CollisionSpec { cell: 2.0 * radius, restitution: 0.5 });

    let cfg = RunConfig { frames: 6, dt: 0.05, ..Default::default() };
    let run = || {
        let mut sim =
            VirtualSim::new(scene.clone(), cfg.clone(), myrinet_gcc(4, 1), CostModel::default());
        sim.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits(), "still deterministic");
    for f in &a.frames {
        assert_eq!(f.alive, 150 * (f.frame + 1), "conserved under ghost exchange");
    }
    // collision work must show up in the virtual time: disabling it makes
    // the run cheaper
    let mut free_scene = scene.clone();
    free_scene.collision = None;
    let mut sim = VirtualSim::new(free_scene, cfg.clone(), myrinet_gcc(4, 1), CostModel::default());
    let free = sim.run();
    assert!(
        a.total_time > free.total_time,
        "collision must cost virtual time: {} vs {}",
        a.total_time,
        free.total_time
    );
}
