//! Determinism under multiplexing — the `psa-sessions` contract (ISSUE 9).
//!
//! The session pool's whole promise is that multiplexing is *invisible* to
//! any single session: session `k` of a pool with base seed `B` produces
//! the byte-identical `RunReport` (same FNV fingerprint) as a solo
//! `EventSim` run configured with the derived seed
//! `Rng64::new(B).split(k)`. These tests pin that promise across worker
//! counts, slice lengths, mixed workloads, admission backpressure, and a
//! mid-run worker loss with session re-queue.

use std::collections::BTreeMap;

use psa_desim::EventSim;
use psa_sessions::{
    derive_session_seed, AdmissionConfig, PoolConfig, PoolFault, PoolReport, SessionId,
    SessionManager, SessionSpec, TenantId,
};
use psa_workloads::{fountain_scene, myrinet_gcc, paper_run_config, snow_scene, WorkloadSize};

const BASE_SEED: u64 = 0x5E55_1005;

fn size() -> WorkloadSize {
    WorkloadSize { systems: 2, particles_per_system: 250, scale: 1.0 }
}

fn spec_for(i: usize) -> SessionSpec {
    let sz = size();
    // Mixed workloads and frame counts: parity must hold per session even
    // when neighbours run different scenes for different lengths.
    let (scene, frames) =
        if i.is_multiple_of(3) { (fountain_scene(sz), 6) } else { (snow_scene(sz), 9) };
    SessionSpec {
        tenant: TenantId(i as u32 % 5),
        scene,
        cfg: paper_run_config(frames, 0.04),
        cluster: myrinet_gcc(2, 1),
        cost: sz.cost_model(),
        arrival: 0.0,
    }
}

/// Fingerprint of a solo run of session `id` (same spec recipe).
fn solo_fingerprint(i: usize) -> u64 {
    let spec = spec_for(i);
    let mut cfg = spec.cfg.clone();
    cfg.seed = derive_session_seed(BASE_SEED, SessionId(i as u64));
    EventSim::new(spec.scene, cfg, spec.cluster, spec.cost).run().fingerprint()
}

fn run_pool(sessions: usize, workers: usize, slice_frames: u64, slots: usize) -> PoolReport {
    let mut pool = SessionManager::new(PoolConfig {
        workers,
        slice_frames,
        admission: AdmissionConfig::unbounded(slots),
        base_seed: BASE_SEED,
        checkpoint_interval: 0,
        instrument: false,
    });
    for i in 0..sessions {
        pool.admit(spec_for(i)).map_err(|e| e.to_string()).map(|_| ()).unwrap_or(());
    }
    pool.run_to_completion()
}

fn fingerprints(report: &PoolReport) -> BTreeMap<u64, u64> {
    report.outcomes.iter().map(|o| (o.id.0, o.fingerprint)).collect()
}

/// The headline pin: a 100-session multiplexed pool reproduces every solo
/// fingerprint exactly.
#[test]
fn hundred_session_pool_matches_solo_fingerprints() {
    let report = run_pool(100, 4, 2, 16);
    assert_eq!(report.completed(), 100);
    let fps = fingerprints(&report);
    for i in 0..100 {
        assert_eq!(
            fps.get(&(i as u64)).copied(),
            Some(solo_fingerprint(i)),
            "session {i} diverged from its solo run"
        );
    }
}

/// Worker count is a scheduling detail: 1, 2, and 4 lanes produce the
/// same per-session fingerprints (only pool latency may differ).
#[test]
fn fingerprints_invariant_across_worker_counts() {
    let sessions = 24;
    let one = fingerprints(&run_pool(sessions, 1, 2, 8));
    let two = fingerprints(&run_pool(sessions, 2, 2, 8));
    let four = fingerprints(&run_pool(sessions, 4, 2, 8));
    assert_eq!(one.len(), sessions);
    assert_eq!(one, two, "1 vs 2 workers changed a session's bytes");
    assert_eq!(one, four, "1 vs 4 workers changed a session's bytes");
}

/// Slice length is a scheduling detail too: yielding every frame versus
/// running runs to completion per dispatch changes nothing per session.
#[test]
fn fingerprints_invariant_across_slice_lengths() {
    let sessions = 18;
    let fine = fingerprints(&run_pool(sessions, 3, 1, 6));
    let coarse = fingerprints(&run_pool(sessions, 3, 64, 6));
    assert_eq!(fine, coarse, "slice length changed a session's bytes");
}

/// Admission backpressure (tiny slot arena, deep queue) delays sessions
/// but never alters them.
#[test]
fn fingerprints_survive_admission_backpressure() {
    let squeezed = run_pool(30, 4, 2, 2); // 2 slots for 30 sessions
    let roomy = run_pool(30, 4, 2, 30);
    assert_eq!(squeezed.completed(), 30);
    assert_eq!(fingerprints(&squeezed), fingerprints(&roomy));
    // The squeeze is real: queue waits must appear under contention.
    assert!(squeezed.mean_queue_wait() > roomy.mean_queue_wait());
}

/// A worker lane dying mid-run re-queues its session from frame 0 on the
/// survivors — and even the restarted session reproduces its solo bytes.
/// The restart's cost is no longer silent: the victim's counters carry the
/// discarded frames and the virtual seconds it pays again on replay.
#[test]
fn worker_loss_requeue_preserves_parity() {
    let sessions = 16;
    let mut pool = SessionManager::new(PoolConfig {
        workers: 4,
        slice_frames: 2,
        admission: AdmissionConfig::unbounded(8),
        base_seed: BASE_SEED,
        checkpoint_interval: 0,
        instrument: false,
    });
    for i in 0..sessions {
        // Sessions beyond the 8 slots queue — that's Err(Queued), not a drop.
        if let Err(e) = pool.admit(spec_for(i)) {
            assert!(
                matches!(e, psa_sessions::AdmissionError::Queued { .. }),
                "unbounded admission must never reject: {e}"
            );
        }
    }
    // Dispatches 1..=8 are the eight slot-holders' first slices; striking
    // at 13 hits a session mid-run, with completed frames to lose.
    let report = pool.with_fault(PoolFault::WorkerLoss { at_dispatch: 13 }).run_to_completion();
    assert_eq!(report.completed(), sessions);
    assert_eq!(report.lanes_lost, 1);
    let restarts: u64 = report.outcomes.iter().map(|o| o.counters.requeues).sum();
    assert_eq!(restarts, 1, "the lost slice must have re-queued one session");
    let victim = report
        .outcomes
        .iter()
        .find(|o| o.counters.requeues == 1)
        .expect("exactly one session restarted");
    assert!(
        victim.counters.lost_frames > 0,
        "restart-from-0 discards every completed frame — lost_frames must say so"
    );
    assert!(victim.counters.restart_lost_secs > 0.0, "the discarded frames cost real virtual time");
    let fps = fingerprints(&report);
    for i in 0..sessions {
        assert_eq!(
            fps.get(&(i as u64)).copied(),
            Some(solo_fingerprint(i)),
            "session {i} diverged after the worker loss"
        );
    }
}

/// The recovery tentpole at the pool layer: with `checkpoint_interval` set,
/// a worker loss resumes the victim from its last snapshot instead of
/// frame 0. Against the identical pool + fault with checkpoints off, the
/// victim loses strictly fewer frames and strictly less virtual time — and
/// parity still holds for every session, restored or not.
#[test]
fn worker_loss_resumes_from_last_checkpoint() {
    let sessions = 16;
    let run = |checkpoint_interval: u64| {
        let mut pool = SessionManager::new(PoolConfig {
            workers: 4,
            slice_frames: 3,
            admission: AdmissionConfig::unbounded(8),
            base_seed: BASE_SEED,
            checkpoint_interval,
            instrument: false,
        });
        for i in 0..sessions {
            if let Err(e) = pool.admit(spec_for(i)) {
                assert!(matches!(e, psa_sessions::AdmissionError::Queued { .. }), "{e}");
            }
        }
        pool.with_fault(PoolFault::WorkerLoss { at_dispatch: 11 }).run_to_completion()
    };
    let restart = run(0);
    let resumed = run(2);
    let victim_of = |r: &PoolReport| {
        r.outcomes
            .iter()
            .find(|o| o.counters.requeues == 1)
            .cloned()
            .expect("exactly one session restarted")
    };
    let (rv, cv) = (victim_of(&restart), victim_of(&resumed));
    // Checkpointing never changes scheduling, so the loss strikes the same
    // session in both pools, at the same point in its run.
    assert_eq!(rv.id, cv.id, "checkpointing must not change who the fault hits");
    assert!(rv.counters.lost_frames >= 2, "victim had completed at least one 3-frame slice");
    assert!(
        cv.counters.lost_frames < rv.counters.lost_frames,
        "resume-from-checkpoint ({}) must beat restart-from-0 ({})",
        cv.counters.lost_frames,
        rv.counters.lost_frames
    );
    assert!(
        cv.counters.lost_frames < 2,
        "interval 2 bounds the loss to under one interval, got {}",
        cv.counters.lost_frames
    );
    assert!(cv.counters.restart_lost_secs < rv.counters.restart_lost_secs);
    // Both victims still completed every frame of their spec...
    assert_eq!(rv.counters.frames, cv.counters.frames);
    // ...and every session in both pools reproduces its solo bytes.
    for (label, report) in [("restart", &restart), ("resumed", &resumed)] {
        assert_eq!(report.completed(), sessions, "{label}");
        let fps = fingerprints(report);
        for i in 0..sessions {
            assert_eq!(
                fps.get(&(i as u64)).copied(),
                Some(solo_fingerprint(i)),
                "{label}: session {i} diverged after the worker loss"
            );
        }
    }
}

/// The derived-seed recipe itself is pinned: the pool must run session k
/// under exactly `Rng64::new(base).split(k).next_u64()` — not base+k, not
/// a re-split — or solo reproduction instructions in the outcome would lie.
#[test]
fn outcomes_carry_the_derived_seed() {
    let report = run_pool(10, 2, 2, 4);
    for o in &report.outcomes {
        assert_eq!(o.seed, derive_session_seed(BASE_SEED, o.id));
        assert_eq!(o.fingerprint, o.report.fingerprint());
    }
}
