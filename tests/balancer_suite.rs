//! End-to-end pins for the pluggable balancer suite — the fixes for the
//! BENCH_5 dead zone (ISSUE 8).
//!
//! BENCH_5 measured the defect this suite exists to fix: past ~32 ranks
//! the paper's fixed minimum-transfer rule suppresses every order, yet the
//! balance phase keeps charging its evaluation/order/broadcast round-trip
//! each frame, so "DLB" costs ~2× SLB while doing nothing. These tests pin
//! the two recovery paths (adaptive minimum transfer; balance-phase
//! short-circuit) and the at-scale behavior of the new strategies on the
//! inhomogeneous vortex workload the sweep uses.

use psa_desim::EventSim;
use psa_runtime::{BalanceMode, BalancerConfig, ExchangeMode, RunReport, VirtualSim};
use psa_workloads::{myrinet_gcc, paper_run_config, vortex_scene, WorkloadSize};

fn size() -> WorkloadSize {
    WorkloadSize { systems: 8, particles_per_system: 200, scale: 25.0 }
}

fn run_event(ranks: usize, balance: BalanceMode) -> RunReport {
    let sz = size();
    let mut cfg = paper_run_config(10, psa_workloads::vortex::VORTEX_DT);
    cfg.balance = balance;
    cfg.exchange = ExchangeMode::Sparse;
    EventSim::new(vortex_scene(sz), cfg, myrinet_gcc(ranks, 1), sz.cost_model()).run()
}

fn orders_of(r: &RunReport) -> u64 {
    r.frames.iter().map(|f| f.balanced).sum()
}

/// The BENCH_5 defect, and its first fix: at 128 ranks the paper's fixed
/// `min_transfer = 32` suppresses every order while still paying the
/// balance round-trip (makespan above SLB); the short-circuit hysteresis
/// stops paying for the dead phase and recovers toward the SLB makespan.
#[test]
fn dead_balancer_short_circuit_recovers_toward_slb() {
    let ranks = 128;
    let slb = run_event(ranks, BalanceMode::Static);

    // Paper-faithful: fixed 32, no short-circuit. Dead and expensive.
    let dead = run_event(ranks, BalanceMode::Dynamic(BalancerConfig::paper()));
    assert_eq!(orders_of(&dead), 0, "128r vortex must sit in the paper config's dead zone");
    assert!(
        dead.total_time > slb.total_time,
        "the dead zone must reproduce the BENCH_5 inversion: DLB {} !> SLB {}",
        dead.total_time,
        slb.total_time
    );

    // Same dead strategy, but with the zero-order hysteresis enabled: the
    // phase short-circuits to a barrier and the overhead collapses.
    let short = run_event(
        ranks,
        BalanceMode::Dynamic(BalancerConfig {
            idle_after: 3,
            reprobe_period: 8,
            ..BalancerConfig::paper()
        }),
    );
    assert_eq!(orders_of(&short), 0, "hysteresis must not change what the balancer decides");
    assert!(
        short.total_time < dead.total_time,
        "short-circuit must cost less than the dead balance phase: {} !< {}",
        short.total_time,
        dead.total_time
    );
    let overhead = short.total_time / slb.total_time;
    assert!(
        overhead < 1.30,
        "short-circuited dead DLB must recover toward SLB makespan: {overhead:.3}× SLB"
    );
    // The load-report phase still runs (reports are what the re-probe
    // decides from), so "recovered" means at least half of the dead-phase
    // overhead above SLB is gone, not all of it.
    let dead_overhead = dead.total_time / slb.total_time;
    assert!(
        dead_overhead - overhead > 0.5 * (dead_overhead - 1.0),
        "hysteresis must recover most of the dead-phase cost: {overhead:.3}× vs {dead_overhead:.3}×"
    );
}

/// The root fix and the new strategies: at a dead-zone rank count on the
/// inhomogeneous vortex workload, the adaptive-minimum neighbor-pair walk
/// and both new strategies issue real orders, and at least one of them
/// beats the SLB makespan the paper config inverted against (the
/// acceptance criterion BENCH_6 gates across the full matrix).
///
/// The cell is a single 700-particle vortex at scale 500 over 60 frames:
/// one system means per-system hotspots cannot decorrelate across systems
/// (with many systems the aggregate per-rank compute self-averages and
/// there is nothing left to balance), ~5.5 real particles per rank keeps
/// every neighbor-pair excess below the paper's fixed 32 (dead), and 60
/// frames give the neighbor-only walks time to flatten the orbiting
/// cluster. Past ~512 ranks the serial pipeline stages (creation at the
/// manager, ship/render at the IG, both ∝ total particles) become the
/// critical path and no balancer can beat static — there the short-circuit
/// above is the right recovery, not more balancing.
#[test]
fn new_balancers_stay_live_and_beat_slb_at_128_ranks() {
    let ranks = 128;
    let sz = WorkloadSize { systems: 1, particles_per_system: 700, scale: 500.0 };
    let run = |balance: BalanceMode| {
        let mut cfg = paper_run_config(60, psa_workloads::vortex::VORTEX_DT);
        cfg.balance = balance;
        cfg.exchange = ExchangeMode::Sparse;
        EventSim::new(vortex_scene(sz), cfg, myrinet_gcc(ranks, 1), sz.cost_model()).run()
    };
    let slb = run(BalanceMode::Static);

    // The defect is present in this cell: paper-faithful DLB issues no
    // orders yet still loses to SLB.
    let paper = run(BalanceMode::Dynamic(BalancerConfig::paper()));
    assert_eq!(orders_of(&paper), 0, "the cell must sit in the paper config's dead zone");
    assert!(
        paper.total_time > slb.total_time,
        "paper DLB must invert against SLB here: {} !> {}",
        paper.total_time,
        slb.total_time
    );

    let mut winners = Vec::new();
    for balance in [
        BalanceMode::dynamic(),      // adaptive min_transfer (the default)
        BalanceMode::diffusive(),    // decentralized damped diffusion
        BalanceMode::hierarchical(), // SFC group balancing
    ] {
        let r = run(balance);
        assert!(
            orders_of(&r) > 0,
            "{} must stay live at {ranks} ranks where the paper config died",
            balance.label()
        );
        assert!(
            r.mean_imbalance() < slb.mean_imbalance(),
            "{} must actually flatten the vortex cluster: {} !< {}",
            balance.label(),
            r.mean_imbalance(),
            slb.mean_imbalance()
        );
        if r.total_time < slb.total_time {
            winners.push(balance.label());
        }
    }
    assert!(
        !winners.is_empty(),
        "at {ranks} ranks on vortex at least one live balancer must beat SLB ({})",
        slb.total_time
    );
}

/// Auto-selected sparse exchange is byte-identical to explicitly-configured
/// sparse at scale, and byte-identical to explicit dense at paper scale —
/// `ExchangeMode::Auto` only ever picks a mode, never invents a third
/// behavior.
#[test]
fn auto_exchange_fingerprints_match_explicit_modes() {
    let sz = size();
    let run = |ranks: usize, exchange: ExchangeMode| {
        let mut cfg = paper_run_config(6, psa_workloads::vortex::VORTEX_DT);
        cfg.exchange = exchange;
        EventSim::new(vortex_scene(sz), cfg, myrinet_gcc(ranks, 1), sz.cost_model()).run()
    };
    // At/above the threshold Auto must resolve to sparse.
    let threshold = ExchangeMode::AUTO_SPARSE_THRESHOLD;
    let auto = run(threshold, ExchangeMode::Auto);
    let sparse = run(threshold, ExchangeMode::Sparse);
    assert_eq!(
        auto.fingerprint(),
        sparse.fingerprint(),
        "auto-selected sparse must fingerprint identically to explicit sparse"
    );
    // Below it Auto must resolve to dense — paper-scale runs keep exactly
    // the Figure-2 dense exchange pattern (and its virtual timing).
    let auto_small = run(8, ExchangeMode::Auto);
    let dense_small = run(8, ExchangeMode::Dense);
    assert_eq!(
        auto_small.fingerprint(),
        dense_small.fingerprint(),
        "below the threshold Auto must fingerprint identically to explicit dense"
    );
    // And the queue-stepped executor resolves Auto the same way.
    let mut cfg = paper_run_config(6, psa_workloads::vortex::VORTEX_DT);
    cfg.exchange = ExchangeMode::Auto;
    let v_auto =
        VirtualSim::new(vortex_scene(sz), cfg.clone(), myrinet_gcc(8, 1), sz.cost_model()).run();
    cfg.exchange = ExchangeMode::Dense;
    let v_dense = VirtualSim::new(vortex_scene(sz), cfg, myrinet_gcc(8, 1), sz.cost_model()).run();
    assert_eq!(v_auto.fingerprint(), v_dense.fingerprint());
}
