//! The paper's qualitative results, asserted as tests.
//!
//! These are the "shape" claims of the evaluation section — who wins,
//! where, and why — checked at reduced scale so they run in CI time.
//! EXPERIMENTS.md records the quantitative comparison at full scale.

use particle_cluster_anim::prelude::*;
use particle_cluster_anim::workloads::{fountain, fountain_scene, snow_scene};

const SCALE: f64 = 100.0;

fn size() -> WorkloadSize {
    WorkloadSize { systems: 8, particles_per_system: 4_000, scale: SCALE }
}

fn speedup(scene: &Scene, dt: f32, procs: usize, space: SpaceMode, balance: BalanceMode) -> f64 {
    let cost = size().cost_model();
    let cfg = RunConfig { frames: 18, dt, warmup: 3, space, balance, ..Default::default() };
    let seq = run_sequential(scene, &cfg, &cost, 1.0);
    let mut sim = VirtualSim::new(scene.clone(), cfg, myrinet_gcc(procs, 1), cost);
    let par = sim.run();
    seq.steady_time() / par.steady_time()
}

#[test]
fn snow_is_slb_starves_odd_process_counts() {
    // Table 1, IS-SLB column: odd P < 1.0, even P ≈ 1.5-1.8, flat in P.
    let scene = snow_scene(size());
    let odd = speedup(&scene, 0.15, 5, SpaceMode::Infinite, BalanceMode::Static);
    let even = speedup(&scene, 0.15, 6, SpaceMode::Infinite, BalanceMode::Static);
    let even8 = speedup(&scene, 0.15, 8, SpaceMode::Infinite, BalanceMode::Static);
    assert!(odd < 1.0, "odd IS-SLB must lose to sequential: {odd}");
    assert!(even > 1.2, "even IS-SLB uses two central domains: {even}");
    assert!((even - even8).abs() < 0.3, "IS-SLB is flat in P: {even} vs {even8}");
}

#[test]
fn snow_fs_slb_scales_and_dlb_costs_nothing_extra() {
    // Table 1: FS-SLB grows with P; FS-DLB tracks it closely (uniform
    // load: nothing to balance, only the synchronization differs).
    let scene = snow_scene(size());
    let s4 = speedup(&scene, 0.15, 4, SpaceMode::Finite, BalanceMode::Static);
    let s8 = speedup(&scene, 0.15, 8, SpaceMode::Finite, BalanceMode::Static);
    assert!(s8 > s4 * 1.3, "FS-SLB must scale: {s4} -> {s8}");
    let d8 = speedup(&scene, 0.15, 8, SpaceMode::Finite, BalanceMode::dynamic());
    assert!((s8 - d8).abs() / s8 < 0.1, "snow FS-DLB ≈ FS-SLB: {s8} vs {d8}");
}

#[test]
fn snow_is_dlb_recovers_most_of_the_loss() {
    // Table 1: IS-DLB ≫ IS-SLB (paper: 3.37 vs 1.74 at 8P).
    let scene = snow_scene(size());
    let slb = speedup(&scene, 0.15, 8, SpaceMode::Infinite, BalanceMode::Static);
    let dlb = speedup(&scene, 0.15, 8, SpaceMode::Infinite, BalanceMode::dynamic());
    assert!(dlb > slb * 1.5, "IS-DLB must recover: {slb} -> {dlb}");
}

#[test]
fn fountain_dlb_beats_slb_everywhere() {
    // Table 3's headline: irregular load makes DLB necessary even on a
    // homogeneous cluster.
    let scene = fountain_scene(size());
    for procs in [4usize, 8] {
        let slb =
            speedup(&scene, fountain::FOUNTAIN_DT, procs, SpaceMode::Finite, BalanceMode::Static);
        let dlb = speedup(
            &scene,
            fountain::FOUNTAIN_DT,
            procs,
            SpaceMode::Finite,
            BalanceMode::dynamic(),
        );
        assert!(dlb > slb * 1.4, "fountain DLB must clearly win at {procs}P: {slb} vs {dlb}");
    }
}

#[test]
fn fountain_slb_is_much_worse_than_snow_slb() {
    // §5.3's comparison: uniform snow tolerates static balancing, the
    // fountain does not.
    let snow = snow_scene(size());
    let fountain_sc = fountain_scene(size());
    let s = speedup(&snow, 0.15, 8, SpaceMode::Finite, BalanceMode::Static);
    let f = speedup(&fountain_sc, fountain::FOUNTAIN_DT, 8, SpaceMode::Finite, BalanceMode::Static);
    assert!(s > f * 1.8, "snow {s} must dwarf fountain {f} under SLB");
}

#[test]
fn myrinet_beats_fast_ethernet() {
    // §5.3: gains need high-speed networks; same cluster, two fabrics.
    let scene = snow_scene(size());
    let cost = size().cost_model();
    let cfg = RunConfig { frames: 14, dt: 0.15, warmup: 3, ..Default::default() };
    let seq = run_sequential(&scene, &cfg, &cost, 1.0);
    let myr = {
        let mut sim = VirtualSim::new(scene.clone(), cfg.clone(), myrinet_gcc(8, 2), cost.clone());
        seq.steady_time() / sim.run().steady_time()
    };
    let fe_cluster =
        ClusterSpec::homogeneous(NetworkModel::fast_ethernet(), Compiler::Gcc, e800(), 8, 2);
    let fe = {
        let mut sim = VirtualSim::new(scene.clone(), cfg, fe_cluster, cost);
        seq.steady_time() / sim.run().steady_time()
    };
    assert!(myr > fe * 1.5, "Myrinet {myr} must beat Fast-Ethernet {fe}");
}

#[test]
fn heterogeneous_dlb_beats_heterogeneous_slb() {
    // Table 2's premise: on a heterogeneous cluster even a uniform
    // workload needs DLB, because equal domains mean unequal times.
    let scene = snow_scene(size());
    let cost = size().cost_model();
    let cfg = RunConfig { frames: 20, dt: 0.15, warmup: 4, ..Default::default() };
    let cluster = ClusterSpec::new(NetworkModel::myrinet(), Compiler::Gcc)
        .add_nodes(e800(), 2, 1)
        .add_nodes(e60(), 2, 1);
    let seq = run_sequential(&scene, &cfg, &cost, 1.0);
    let slb = {
        let c = RunConfig { balance: BalanceMode::Static, ..cfg.clone() };
        let mut sim = VirtualSim::new(scene.clone(), c, cluster.clone(), cost.clone());
        seq.steady_time() / sim.run().steady_time()
    };
    let dlb = {
        let c = RunConfig { balance: BalanceMode::dynamic(), ..cfg };
        let mut sim = VirtualSim::new(scene.clone(), c, cluster, cost);
        seq.steady_time() / sim.run().steady_time()
    };
    assert!(dlb > slb * 1.15, "hetero DLB must beat SLB: {slb} vs {dlb}");
}
