//! Checkpoint/restore parity gate.
//!
//! The recovery machinery in `psa_runtime::checkpoint` only earns its keep
//! if a rolled-back-and-replayed run is *indistinguishable* from a run the
//! crash never touched. These tests pin that contract at two layers:
//!
//! * end-to-end — a crashed calculator recovered from the last periodic
//!   snapshot finishes with a fingerprint byte-identical to the same-seed
//!   uninterrupted run (zero lost particles, no dead ranks), across both
//!   paper workloads, several balancing strategies, and crash frames that
//!   land both on and off the snapshot cadence;
//! * engine-level — `snapshot()` at a frame boundary, `restore()` into a
//!   *fresh* engine, and run-to-end reproduces the uninterrupted report
//!   exactly, with the snapshot surviving its byte codec bit-for-bit.

use netsim::{FaultPlan, FaultPolicy, FaultyVirtualNet, PlanInjector, VirtualNet};
use psa_runtime::trace::Trace;
use psa_runtime::{
    node_layout, BalanceMode, CheckpointConfig, Engine, EngineSnapshot, RunConfig, VirtualSim,
};
use psa_workloads::{fountain_scene, myrinet_gcc, snow_scene, WorkloadSize};

fn size() -> WorkloadSize {
    WorkloadSize { systems: 2, particles_per_system: 300, scale: 25.0 }
}

fn config(seed: u64) -> RunConfig {
    RunConfig { frames: 8, dt: 0.1, seed, warmup: 0, ..Default::default() }
}

/// The tentpole's acceptance gate: with `CheckpointConfig::recovering`, a
/// fail-stop crash rolls back to the last snapshot, replays, and finishes
/// with the *uninterrupted* run's fingerprint — `lost_particles == 0`, no
/// dead ranks, and a recovery event describing exactly what was replayed.
#[test]
fn recovered_crash_matches_uninterrupted_run() {
    let sz = size();
    let cluster = myrinet_gcc(4, 1);
    for balance in [BalanceMode::Static, BalanceMode::dynamic(), BalanceMode::decentralized()] {
        for (wl, scene) in [("snow", snow_scene(sz)), ("fountain", fountain_scene(sz))] {
            let cfg = RunConfig { balance, ..config(0xC4A5) };
            let bare =
                VirtualSim::new(scene.clone(), cfg.clone(), cluster.clone(), sz.cost_model()).run();
            // Crash frames straddle the interval-2 cadence: 3 and 7 need a
            // one-frame replay, 4 collides with the boundary snapshot taken
            // the same step (zero frames replayed).
            for crash_frame in [3u64, 4, 7] {
                let mut plan = FaultPlan::none(cfg.seed, 4 + 2);
                plan.rank_mut(1).crash_at = Some(crash_frame);
                let rcfg = RunConfig { checkpoint: CheckpointConfig::recovering(2), ..cfg.clone() };
                let label = format!("{wl}/{}/crash@{crash_frame}", balance.label());
                let rec = VirtualSim::new(scene.clone(), rcfg, cluster.clone(), sz.cost_model())
                    .with_faults(plan)
                    .run();
                assert_eq!(
                    rec.fingerprint(),
                    bare.fingerprint(),
                    "{label}: recovered run diverged from the uninterrupted run"
                );
                assert_eq!(rec.lost_particles, 0, "{label}: recovery lost particles");
                assert!(rec.dead_ranks.is_empty(), "{label}: rank was declared dead anyway");
                assert_eq!(rec.recoveries.len(), 1, "{label}: expected exactly one recovery");
                let ev = rec.recoveries[0];
                assert_eq!(ev.rank, 1, "{label}");
                assert_eq!(ev.frame, crash_frame, "{label}");
                let expected_snapshot = (crash_frame / 2) * 2;
                assert_eq!(ev.snapshot_frame, expected_snapshot, "{label}");
                assert_eq!(ev.frames_replayed, crash_frame - expected_snapshot, "{label}");
                assert!(ev.particles_restored > 0, "{label}: snapshot held no particles");
            }
        }
    }
}

/// Without recovery the same plan degrades: the rank dies and particles are
/// confiscated. This is the "before" picture the tentpole fixes — kept as a
/// contrast pin so the recovered gate above cannot pass vacuously.
#[test]
fn unrecovered_crash_still_degrades() {
    let sz = size();
    let cluster = myrinet_gcc(4, 1);
    let cfg = config(0xC4A5);
    let mut plan = FaultPlan::none(cfg.seed, 4 + 2);
    plan.rank_mut(1).crash_at = Some(3);
    let r =
        VirtualSim::new(fountain_scene(sz), cfg, cluster, sz.cost_model()).with_faults(plan).run();
    assert!(!r.dead_ranks.is_empty(), "crash without recovery must kill the rank");
    assert!(r.lost_particles > 0, "degraded mode confiscates the dead rank's particles");
    assert!(r.recoveries.is_empty());
}

/// Engine-level pin, mirroring `event_parity.rs`'s style: snapshot at a
/// mid-run frame boundary, restore into a fresh engine, and the resumed
/// run's report fingerprints identically to the uninterrupted one. The
/// snapshot also survives encode → decode bit-exactly.
#[test]
fn mid_run_restore_resumes_byte_identically() {
    let sz = size();
    let cluster = myrinet_gcc(4, 1);
    let placement = cluster.placement();
    let n = placement.calculators();
    let cfg = config(0x0C4E);
    let scene = fountain_scene(sz);
    let make_engine = || {
        let (node_of, node_count) = node_layout(&placement);
        let net = FaultyVirtualNet::new(
            VirtualNet::new(cluster.net.clone(), node_of, node_count),
            PlanInjector::new(FaultPlan::none(cfg.seed, n + 2)),
        );
        Engine::new(
            scene.clone(),
            cfg.clone(),
            &placement,
            sz.cost_model(),
            net,
            FaultPolicy::default(),
            Trace::disabled(),
            false,
        )
    };

    // Reference: straight through, capturing the frame-3 boundary.
    let mut a = make_engine();
    let mut frames_a = Vec::new();
    for _ in 0..3 {
        frames_a.push(a.step_frame().expect("healthy run").expect("frames remain"));
    }
    let snap = a.snapshot();
    assert_eq!(snap.next_frame, 3);
    while let Some(fr) = a.step_frame().expect("healthy run") {
        frames_a.push(fr);
    }
    let head: Vec<_> = frames_a[..3].to_vec();
    let ra = a.finish_report("checkpoint-parity".into(), frames_a);

    // Resumed: a fresh engine that never ran frames 0..3, restored from the
    // snapshot. Its first three frame reports are the reference's own (the
    // restored engine starts at frame 3 by construction).
    let mut b = make_engine();
    b.restore(&snap).expect("snapshot fits the engine it came from");
    let mut frames_b = head;
    while let Some(fr) = b.step_frame().expect("healthy run") {
        frames_b.push(fr);
    }
    let rb = b.finish_report("checkpoint-parity".into(), frames_b);
    assert_eq!(
        ra.fingerprint(),
        rb.fingerprint(),
        "restored engine diverged from the uninterrupted run"
    );
    assert_eq!(ra.total_time, rb.total_time, "virtual makespans must match exactly");

    // Codec round-trip of a *live* mid-run snapshot (the unit tests cover
    // synthetic ones): every byte, including float bit patterns, survives.
    let decoded = EngineSnapshot::decode(&snap.encode()).expect("live snapshot decodes");
    assert_eq!(decoded.fingerprint(), snap.fingerprint());
    assert_eq!(decoded.encode(), snap.encode());
}
