//! Per-system spatial domains (paper §3.1.4).
//!
//! Each particle system's space is divided into `n` contiguous slices along
//! one axis, slice `i` owned by calculator `i`. *All* processes know *all*
//! boundaries, so any process can compute the owner of any position — that
//! is what lets a migrating particle be sent directly to its new owner
//! instead of broadcast (paper §3.1.4), and what lets the manager hand out
//! balancing orders that calculators can validate locally.

use psa_math::{Axis, Interval, Scalar};

/// The boundaries of one particle system's decomposition: `n` contiguous
/// half-open slices of the system's space along `axis`.
///
/// Invariants (checked by [`DomainMap::validate`] and maintained by every
/// mutator):
/// * boundaries are non-decreasing;
/// * slice `i` is `[cuts[i], cuts[i+1])`;
/// * the union of slices is exactly the original space interval.
#[derive(Clone, Debug, PartialEq)]
pub struct DomainMap {
    axis: Axis,
    /// `n + 1` boundary positions; slice `i` = `[cuts[i], cuts[i+1])`.
    cuts: Vec<Scalar>,
}

impl DomainMap {
    /// Split `space` into `n` equal slices along `axis` — the initial
    /// decomposition of Figure 1.
    pub fn split_even(space: Interval, axis: Axis, n: usize) -> Self {
        assert!(n > 0, "a domain map needs at least one calculator");
        let slices = space.split_even(n);
        let mut cuts = Vec::with_capacity(n + 1);
        cuts.push(space.lo);
        cuts.extend(slices.iter().map(|s| s.hi));
        let map = DomainMap { axis, cuts };
        map.validate().expect("even split must be valid");
        map
    }

    /// Build from explicit boundaries (used when the manager broadcasts new
    /// dimensions after balancing). `cuts.len()` must be ≥ 2 and sorted.
    pub fn from_cuts(axis: Axis, cuts: Vec<Scalar>) -> Result<Self, DomainError> {
        let map = DomainMap { axis, cuts };
        map.validate()?;
        Ok(map)
    }

    /// The decomposition axis.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// Number of slices (= number of calculators).
    pub fn len(&self) -> usize {
        self.cuts.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        false // a valid map always has ≥ 1 slice
    }

    /// The whole covered space.
    pub fn space(&self) -> Interval {
        Interval::new(self.cuts[0], *self.cuts.last().unwrap())
    }

    /// Slice owned by calculator `i`.
    pub fn slice(&self, i: usize) -> Interval {
        Interval::new(self.cuts[i], self.cuts[i + 1])
    }

    /// All slices in calculator order.
    pub fn slices(&self) -> impl Iterator<Item = Interval> + '_ {
        (0..self.len()).map(|i| self.slice(i))
    }

    /// Raw boundary positions (`n + 1` values).
    pub fn cuts(&self) -> &[Scalar] {
        &self.cuts
    }

    /// Which calculator owns coordinate `v`.
    ///
    /// Positions outside the covered space are clamped to the first/last
    /// slice: the paper's model never loses a particle to "nowhere" — a
    /// particle that out-runs the space still belongs to the edge domain
    /// (and is typically culled by a kill action, not by the domain system).
    pub fn owner_of(&self, v: Scalar) -> usize {
        let n = self.len();
        if v < self.cuts[0] {
            return 0;
        }
        // Binary search over boundaries for the slice whose [lo, hi) holds v.
        let mut i = match self.cuts.binary_search_by(|c| c.total_cmp(&v)) {
            Ok(i) => i,
            Err(ins) => ins - 1,
        };
        if i >= n {
            i = n - 1;
        }
        // Duplicate boundaries (slices squeezed empty by balancing) can make
        // the search land on an empty slice; walk to the slice that actually
        // contains v. Both loops run O(#empty neighbors) which is tiny.
        while i + 1 < n && v >= self.cuts[i + 1] {
            i += 1;
        }
        while i > 0 && v < self.cuts[i] {
            i -= 1;
        }
        i
    }

    /// Move the boundary between slice `i` and slice `i + 1` to `new_cut`.
    ///
    /// This is the "definition of new dimensions" step of the balancing
    /// protocol (paper §3.2.5): after a donor picks its particles, the
    /// shared boundary shifts so each process again only holds particles of
    /// its own domain. The new cut must stay within the two neighbors'
    /// combined extent.
    pub fn move_cut(&mut self, i: usize, new_cut: Scalar) -> Result<(), DomainError> {
        // Boundary `i` sits between slice `i` and slice `i + 1`, i.e. it is
        // `cuts[i + 1]`; the outer boundaries (space edges) are immutable.
        let idx = i + 1;
        if idx == 0 || idx >= self.cuts.len() - 1 {
            return Err(DomainError::NotAnInteriorBoundary { index: i });
        }
        if new_cut < self.cuts[idx - 1] || new_cut > self.cuts[idx + 1] {
            return Err(DomainError::CutOutOfRange {
                index: i,
                cut: new_cut,
                lo: self.cuts[idx - 1],
                hi: self.cuts[idx + 1],
            });
        }
        self.cuts[idx] = new_cut;
        debug_assert!(self.validate().is_ok());
        Ok(())
    }

    /// Check all invariants. Cheap (O(n)), run in debug assertions after
    /// every mutation and by property tests.
    pub fn validate(&self) -> Result<(), DomainError> {
        if self.cuts.len() < 2 {
            return Err(DomainError::TooFewCuts { cuts: self.cuts.len() });
        }
        for (i, w) in self.cuts.windows(2).enumerate() {
            if w[0].is_nan() || w[1].is_nan() {
                return Err(DomainError::NanBoundary { index: i });
            }
            if w[0] > w[1] {
                return Err(DomainError::Unsorted { index: i, a: w[0], b: w[1] });
            }
        }
        Ok(())
    }
}

/// Errors from domain construction and boundary updates.
#[derive(Clone, Debug, PartialEq)]
pub enum DomainError {
    TooFewCuts { cuts: usize },
    Unsorted { index: usize, a: Scalar, b: Scalar },
    NanBoundary { index: usize },
    NotAnInteriorBoundary { index: usize },
    CutOutOfRange { index: usize, cut: Scalar, lo: Scalar, hi: Scalar },
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainError::TooFewCuts { cuts } => {
                write!(f, "domain map needs >= 2 boundaries, got {cuts}")
            }
            DomainError::Unsorted { index, a, b } => {
                write!(f, "boundaries out of order at {index}: {a} > {b}")
            }
            DomainError::NanBoundary { index } => write!(f, "NaN boundary at {index}"),
            DomainError::NotAnInteriorBoundary { index } => {
                write!(f, "boundary {index} is not interior; outer boundaries are fixed")
            }
            DomainError::CutOutOfRange { index, cut, lo, hi } => {
                write!(f, "new cut {cut} for boundary {index} outside neighbor extent [{lo}, {hi}]")
            }
        }
    }
}

impl std::error::Error for DomainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_owner_assignment() {
        // Figure 1: [-10, 10) split four ways; P1..P4 own successive slices.
        let map = DomainMap::split_even(Interval::new(-10.0, 10.0), Axis::X, 4);
        assert_eq!(map.len(), 4);
        assert_eq!(map.owner_of(-10.0), 0);
        assert_eq!(map.owner_of(-5.1), 0);
        assert_eq!(map.owner_of(-5.0), 1);
        assert_eq!(map.owner_of(-0.01), 1);
        assert_eq!(map.owner_of(0.0), 2);
        assert_eq!(map.owner_of(4.99), 2);
        assert_eq!(map.owner_of(5.0), 3);
        assert_eq!(map.owner_of(9.99), 3);
    }

    #[test]
    fn out_of_space_clamps_to_edges() {
        let map = DomainMap::split_even(Interval::new(0.0, 8.0), Axis::Y, 4);
        assert_eq!(map.owner_of(-100.0), 0);
        assert_eq!(map.owner_of(8.0), 3);
        assert_eq!(map.owner_of(1e9), 3);
    }

    #[test]
    fn every_point_has_exactly_one_owner() {
        let map = DomainMap::split_even(Interval::new(-3.0, 5.0), Axis::X, 7);
        for k in 0..800 {
            let v = -3.0 + 8.0 * (k as f32 / 800.0);
            let owner = map.owner_of(v);
            let hits = map
                .slices()
                .enumerate()
                .filter(|(_, s)| s.contains(v))
                .map(|(i, _)| i)
                .collect::<Vec<_>>();
            assert_eq!(hits, vec![owner], "point {v}");
        }
    }

    #[test]
    fn move_cut_shifts_ownership() {
        let mut map = DomainMap::split_even(Interval::new(0.0, 10.0), Axis::X, 2);
        assert_eq!(map.owner_of(4.0), 0);
        map.move_cut(0, 3.0).unwrap();
        assert_eq!(map.owner_of(4.0), 1);
        assert_eq!(map.slice(0), Interval::new(0.0, 3.0));
        assert_eq!(map.slice(1), Interval::new(3.0, 10.0));
    }

    #[test]
    fn move_cut_rejects_out_of_range() {
        let mut map = DomainMap::split_even(Interval::new(0.0, 9.0), Axis::X, 3);
        // boundary 0 sits between slices 0 and 1; it may move within [0, 6].
        assert!(map.move_cut(0, -1.0).is_err());
        assert!(map.move_cut(0, 7.0).is_err());
        assert!(map.move_cut(0, 0.0).is_ok()); // squeeze slice 0 empty: legal
        assert!(map.slice(0).is_empty());
    }

    #[test]
    fn move_cut_rejects_outer_boundaries() {
        let mut map = DomainMap::split_even(Interval::new(0.0, 4.0), Axis::X, 2);
        assert!(matches!(map.move_cut(1, 2.0), Err(DomainError::NotAnInteriorBoundary { .. })));
    }

    #[test]
    fn from_cuts_validation() {
        assert!(DomainMap::from_cuts(Axis::X, vec![0.0, 1.0, 2.0]).is_ok());
        assert!(matches!(
            DomainMap::from_cuts(Axis::X, vec![0.0]),
            Err(DomainError::TooFewCuts { .. })
        ));
        assert!(matches!(
            DomainMap::from_cuts(Axis::X, vec![0.0, 2.0, 1.0]),
            Err(DomainError::Unsorted { .. })
        ));
        assert!(matches!(
            DomainMap::from_cuts(Axis::X, vec![0.0, f32::NAN]),
            Err(DomainError::NanBoundary { .. })
        ));
    }

    #[test]
    fn infinite_space_central_concentration() {
        // The Table 1 IS-SLB effect: an odd split of the "infinite" space
        // puts the entire scene in the middle calculator's slice.
        let map = DomainMap::split_even(Interval::INFINITE, Axis::X, 5);
        for v in [-50.0, -1.0, 0.0, 1.0, 50.0] {
            assert_eq!(map.owner_of(v), 2);
        }
        // An even split shares the scene between the two central slices.
        let map = DomainMap::split_even(Interval::INFINITE, Axis::X, 4);
        assert_eq!(map.owner_of(-1.0), 1);
        assert_eq!(map.owner_of(1.0), 2);
    }

    #[test]
    fn empty_slice_owner_lookup_skips_it() {
        // Squeeze slice 1 to zero width; its old points now belong to 2.
        let mut map = DomainMap::split_even(Interval::new(0.0, 9.0), Axis::X, 3);
        map.move_cut(0, 6.0).unwrap(); // slice 0 = [0,6), slice 1 = [6,6)
        assert!(map.slice(1).is_empty());
        assert_eq!(map.owner_of(5.0), 0);
        // 6.0 falls on the degenerate boundary; owner must be a slice that
        // actually contains it — slice 2 = [6, 9).
        let o = map.owner_of(6.0);
        assert!(map.slice(o).contains(6.0), "owner slice must contain the point");
    }
}
