//! Per-frame statistics collected by every process.
//!
//! Paper §3.2.4: after the exchange, calculators report to the manager their
//! *load* (particle count) and the *time* taken to process all actions —
//! and the time must be re-scaled to the post-exchange particle count
//! because the count just changed. [`FrameStats`] carries exactly that
//! report plus accounting the benches use.

/// A calculator's per-frame report and local accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FrameStats {
    /// Animation frame index.
    pub frame: u64,
    /// Particles held after the exchange (the "load" of §3.2.4).
    pub particles: u64,
    /// Time spent processing actions this frame, in seconds. Virtual time
    /// under the simulated executor, wall time under the threaded one.
    pub compute_time: f64,
    /// Particle-action applications performed (work units).
    pub work_units: u64,
    /// Particles that migrated out of this process this frame.
    pub sent: u64,
    /// Particles that migrated into this process this frame.
    pub received: u64,
    /// Particles killed by lifecycle actions this frame.
    pub killed: u64,
    /// Bytes shipped for migration this frame.
    pub migration_bytes: u64,
}

impl FrameStats {
    pub fn new(frame: u64) -> Self {
        FrameStats { frame, ..Default::default() }
    }

    /// The time re-scaling rule of §3.2.4: the reported time must be
    /// proportional to the *new* particle count after the exchange.
    /// `pre_count` is the population the measured time was observed on.
    pub fn rescale_time_to(&mut self, pre_count: u64) {
        if pre_count > 0 && self.particles != pre_count {
            self.compute_time *= self.particles as f64 / pre_count as f64;
        }
    }

    /// Fold a second report (another system's pass on the same frame).
    pub fn absorb(&mut self, o: &FrameStats) {
        debug_assert_eq!(self.frame, o.frame);
        self.particles += o.particles;
        self.compute_time += o.compute_time;
        self.work_units += o.work_units;
        self.sent += o.sent;
        self.received += o.received;
        self.killed += o.killed;
        self.migration_bytes += o.migration_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescale_is_proportional() {
        let mut s = FrameStats::new(1);
        s.particles = 150;
        s.compute_time = 2.0;
        s.rescale_time_to(100);
        assert!((s.compute_time - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rescale_noop_when_unchanged_or_empty() {
        let mut s = FrameStats::new(1);
        s.particles = 100;
        s.compute_time = 2.0;
        s.rescale_time_to(100);
        assert_eq!(s.compute_time, 2.0);
        s.rescale_time_to(0);
        assert_eq!(s.compute_time, 2.0);
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = FrameStats::new(4);
        a.particles = 10;
        a.sent = 1;
        let mut b = FrameStats::new(4);
        b.particles = 20;
        b.received = 2;
        b.compute_time = 0.5;
        a.absorb(&b);
        assert_eq!(a.particles, 30);
        assert_eq!(a.sent, 1);
        assert_eq!(a.received, 2);
        assert_eq!(a.compute_time, 0.5);
    }
}
