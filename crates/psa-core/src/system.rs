//! Particle systems (paper §3.1.3).
//!
//! A particle system has the same properties as its particles *except age*;
//! those properties seed the initial values of emitted particles. Systems
//! are identified by their position in the creation-order vector, which is
//! identical on every process because creation happens in the same order
//! everywhere (paper §4).

use psa_math::{Interval, Rng64, Scalar, Vec3};

/// Index of a system in the global creation-order vector.
///
/// The paper explicitly uses the vector position as the identifier, relying
/// on deterministic creation order across processes; we keep that design and
/// make it a newtype so it cannot be confused with calculator ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SystemId(pub u16);

impl std::fmt::Display for SystemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sys{}", self.0)
    }
}

/// How initial particle positions are drawn at emission.
#[derive(Clone, Debug, PartialEq)]
pub enum EmissionShape {
    /// A single point (classic fountain nozzle).
    Point(Vec3),
    /// Uniform in an axis-aligned box given by corners (snow cloud layer).
    Box { min: Vec3, max: Vec3 },
    /// Uniform on a disc of radius `r` centered at `center` with normal `n`.
    Disc { center: Vec3, radius: Scalar, normal: Vec3 },
    /// Uniform on a sphere surface (explosion shell).
    Sphere { center: Vec3, radius: Scalar },
}

impl EmissionShape {
    /// Draw one position.
    pub fn sample(&self, rng: &mut Rng64) -> Vec3 {
        match self {
            EmissionShape::Point(p) => *p,
            EmissionShape::Box { min, max } => rng.in_box(*min, *max),
            EmissionShape::Disc { center, radius, normal } => {
                *center + rng.on_disc(*radius, *normal)
            }
            EmissionShape::Sphere { center, radius } => *center + rng.on_unit_sphere() * *radius,
        }
    }
}

/// How initial velocities are drawn at emission.
#[derive(Clone, Debug, PartialEq)]
pub enum VelocityModel {
    /// Constant for every particle.
    Constant(Vec3),
    /// Base velocity plus isotropic jitter of the given magnitude.
    Jittered { base: Vec3, jitter: Scalar },
    /// A cone: unit `axis` direction, speed range, half-angle in radians
    /// (fountains spray in a cone).
    Cone { axis: Vec3, speed_lo: Scalar, speed_hi: Scalar, half_angle: Scalar },
}

impl VelocityModel {
    pub fn sample(&self, rng: &mut Rng64) -> Vec3 {
        match self {
            VelocityModel::Constant(v) => *v,
            VelocityModel::Jittered { base, jitter } => *base + rng.in_unit_sphere() * *jitter,
            VelocityModel::Cone { axis, speed_lo, speed_hi, half_angle } => {
                let a = axis.normalized();
                // sample direction within the cone by perturbing the axis
                let perp = rng.on_disc(half_angle.tan(), a);
                let dir = (a + perp).normalized();
                dir * rng.range(*speed_lo, *speed_hi)
            }
        }
    }
}

/// Static description of one particle system: its identity, its space, and
/// the initial-property generators for emitted particles.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemSpec {
    pub id: SystemId,
    /// Human-readable tag for logs and EXPERIMENTS.md output.
    pub name: String,
    /// The system's own simulated space along the decomposition axis; the
    /// whole space interval its domains slice. `Interval::INFINITE` models
    /// the paper's IS configuration.
    pub space: Interval,
    pub emission: EmissionShape,
    pub velocity: VelocityModel,
    /// Initial orientation assigned to emitted particles.
    pub orientation: Vec3,
    /// Base color assigned to emitted particles.
    pub color: Vec3,
    /// Render size of emitted particles.
    pub size: Scalar,
    /// Particle mass.
    pub mass: Scalar,
    /// Particles emitted per frame by the creation action.
    pub emit_per_frame: usize,
    /// Age (seconds) above which the kill-old action removes particles.
    pub max_age: Scalar,
    /// Optional steady-state pre-population emitted on frame 0: `(count,
    /// shape)` with ages drawn uniformly in `[0, max_age)`, so the paper's
    /// "400,000 particles per system" population exists from the first
    /// measured frame instead of ramping up over a particle lifetime.
    pub initial: Option<(usize, EmissionShape)>,
}

impl SystemSpec {
    /// A reasonable default spec for tests: point emitter at origin emitting
    /// upward with jitter over the Figure-1 space.
    pub fn test_spec(id: u16) -> Self {
        SystemSpec {
            id: SystemId(id),
            name: format!("test-{id}"),
            space: Interval::new(-10.0, 10.0),
            emission: EmissionShape::Point(Vec3::ZERO),
            velocity: VelocityModel::Jittered { base: Vec3::Y * 5.0, jitter: 1.0 },
            orientation: Vec3::Y,
            color: Vec3::ONE,
            size: 1.0,
            mass: 1.0,
            emit_per_frame: 100,
            max_age: 5.0,
            initial: None,
        }
    }

    /// Emit one particle using this spec's generators.
    pub fn emit_one(&self, rng: &mut Rng64) -> crate::Particle {
        crate::Particle {
            position: self.emission.sample(rng),
            velocity: self.velocity.sample(rng),
            orientation: self.orientation,
            color: self.color,
            age: 0.0,
            size: self.size,
            alpha: 1.0,
            mass: self.mass,
        }
    }

    /// Emit the frame-0 pre-population (empty when `initial` is unset):
    /// positions from the initial shape, ages spread uniformly over the
    /// lifetime so the kill/emit cycle is already in steady state.
    pub fn emit_initial(&self, rng: &mut Rng64) -> Vec<crate::Particle> {
        let Some((count, ref shape)) = self.initial else {
            return Vec::new();
        };
        (0..count)
            .map(|_| {
                let mut p = self.emit_one(rng);
                p.position = shape.sample(rng);
                p.age = rng.range(0.0, self.max_age.max(1e-6));
                p
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_id_display_and_ord() {
        assert_eq!(SystemId(3).to_string(), "sys3");
        assert!(SystemId(1) < SystemId(2));
    }

    #[test]
    fn point_emission_is_exact() {
        let mut rng = Rng64::new(1);
        let shape = EmissionShape::Point(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(shape.sample(&mut rng), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn box_emission_in_bounds() {
        let mut rng = Rng64::new(2);
        let shape = EmissionShape::Box { min: Vec3::splat(-2.0), max: Vec3::splat(2.0) };
        for _ in 0..500 {
            let p = shape.sample(&mut rng);
            assert!(p.x >= -2.0 && p.x < 2.0 && p.y >= -2.0 && p.y < 2.0);
        }
    }

    #[test]
    fn sphere_emission_on_shell() {
        let mut rng = Rng64::new(3);
        let c = Vec3::new(1.0, 1.0, 1.0);
        let shape = EmissionShape::Sphere { center: c, radius: 2.0 };
        for _ in 0..200 {
            let p = shape.sample(&mut rng);
            assert!((p.distance(c) - 2.0).abs() < 1e-3);
        }
    }

    #[test]
    fn cone_velocity_respects_speed_and_angle() {
        let mut rng = Rng64::new(4);
        let m =
            VelocityModel::Cone { axis: Vec3::Y, speed_lo: 4.0, speed_hi: 6.0, half_angle: 0.3 };
        for _ in 0..500 {
            let v = m.sample(&mut rng);
            let speed = v.length();
            assert!((3.9..6.1).contains(&speed), "speed {speed}");
            let cos = v.normalized().dot(Vec3::Y);
            assert!(cos >= (0.3f32).cos() - 1e-3, "outside cone: cos={cos}");
        }
    }

    #[test]
    fn emit_one_carries_spec_properties() {
        let spec = SystemSpec::test_spec(7);
        let mut rng = Rng64::new(5);
        let p = spec.emit_one(&mut rng);
        assert_eq!(p.age, 0.0);
        assert_eq!(p.color, spec.color);
        assert_eq!(p.size, spec.size);
        assert_eq!(p.mass, spec.mass);
        assert_eq!(p.orientation, spec.orientation);
    }

    #[test]
    fn deterministic_emission() {
        let spec = SystemSpec::test_spec(1);
        let mut a = Rng64::new(9);
        let mut b = Rng64::new(9);
        for _ in 0..50 {
            assert_eq!(spec.emit_one(&mut a), spec.emit_one(&mut b));
        }
    }
}
