//! Collision with external objects (paper §3.2.2 / Algorithm 1's "simulate
//! collision with object obj").
//!
//! The paper classifies bounce as a property action: the positional
//! correction is local (penetration push-out), so no communication is
//! needed. Domain-crossing caused by a bounce is caught like any other
//! movement at the end-of-frame exchange.

use super::{Action, ActionCtx, ActionKind, ActionOutcome};
use crate::objects::ExternalObject;
use crate::{Particle, SubDomainStore};
use psa_math::Scalar;

/// Bounce particles off an external object.
#[derive(Clone, Debug)]
pub struct BounceOff {
    pub object: ExternalObject,
    /// Normal-velocity retention in `[0, 1]`.
    pub restitution: Scalar,
    /// Tangential damping in `[0, 1]`.
    pub friction: Scalar,
}

impl BounceOff {
    pub fn new(object: ExternalObject, restitution: Scalar, friction: Scalar) -> Self {
        assert!((0.0..=1.0).contains(&restitution));
        assert!((0.0..=1.0).contains(&friction));
        BounceOff { object, restitution, friction }
    }
}

impl Action for BounceOff {
    fn kind(&self) -> ActionKind {
        ActionKind::Property
    }

    fn name(&self) -> &'static str {
        "bounce"
    }

    fn apply(&self, _ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> ActionOutcome {
        let mut n = 0;
        store.for_each_mut(|p| {
            self.object.bounce(&mut p.position, &mut p.velocity, self.restitution, self.friction);
            n += 1;
        });
        ActionOutcome::applied(n)
    }

    fn apply_chunk(
        &self,
        _ctx: &mut ActionCtx<'_>,
        chunk: &mut [Particle],
    ) -> Option<ActionOutcome> {
        for p in chunk.iter_mut() {
            self.object.bounce(&mut p.position, &mut p.velocity, self.restitution, self.friction);
        }
        Some(ActionOutcome::applied(chunk.len()))
    }

    fn cost_weight(&self) -> f64 {
        1.5 // contact test + occasional reflection per particle
    }
}

/// Remove particles that touch an external object (a sink — e.g. water
/// droplets disappearing into the pool of the fountain scene).
#[derive(Clone, Debug)]
pub struct DieOnContact {
    pub object: ExternalObject,
}

impl DieOnContact {
    pub fn new(object: ExternalObject) -> Self {
        DieOnContact { object }
    }
}

impl Action for DieOnContact {
    fn kind(&self) -> ActionKind {
        ActionKind::Property
    }

    fn name(&self) -> &'static str {
        "die-on-contact"
    }

    fn apply(&self, _ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> ActionOutcome {
        let before = store.len();
        let killed = store.retain(|p| self.object.contact(p.position).is_none());
        ActionOutcome { applied: before, killed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::{Axis, Interval, Rng64, Vec3};

    fn run(a: &dyn Action, s: &mut SubDomainStore) -> ActionOutcome {
        let mut rng = Rng64::new(1);
        let mut ctx = ActionCtx { dt: 0.1, frame: 0, rng: &mut rng };
        a.apply(&mut ctx, s)
    }

    #[test]
    fn bounce_fixes_penetrators() {
        let mut s = SubDomainStore::new(Interval::new(-10.0, 10.0), Axis::X, 2);
        let p =
            crate::Particle::at(Vec3::new(0.0, -0.5, 0.0)).with_velocity(Vec3::new(0.0, -2.0, 0.0));
        s.insert(p);
        run(&BounceOff::new(ExternalObject::ground(0.0), 1.0, 0.0), &mut s);
        let q = s.iter().next().unwrap();
        assert_eq!(q.position.y, 0.0);
        assert_eq!(q.velocity.y, 2.0);
    }

    #[test]
    fn die_on_contact_removes_penetrators() {
        let mut s = SubDomainStore::new(Interval::new(-10.0, 10.0), Axis::X, 2);
        s.insert(crate::Particle::at(Vec3::new(0.0, 1.0, 0.0)));
        s.insert(crate::Particle::at(Vec3::new(0.0, -1.0, 0.0)));
        let out = run(&DieOnContact::new(ExternalObject::ground(0.0)), &mut s);
        assert_eq!(out.killed, 1);
        assert_eq!(s.len(), 1);
        assert!(s.iter().next().unwrap().position.y > 0.0);
    }

    #[test]
    #[should_panic]
    fn bounce_rejects_bad_restitution() {
        let _ = BounceOff::new(ExternalObject::ground(0.0), 2.0, 0.0);
    }
}
