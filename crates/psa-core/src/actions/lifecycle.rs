//! Lifecycle actions: kill and fade (property-changing, paper §3.2.2).
//!
//! The paper's Algorithm 1 includes "Remove particles under the position
//! (x, y, z)" and "eliminate old particles"; these are [`KillBelow`] and
//! [`KillOld`].

use super::{Action, ActionCtx, ActionKind, ActionOutcome};
use crate::{Particle, SubDomainStore};
use psa_math::{Aabb, Axis, Scalar};

/// Remove particles older than `max_age` seconds.
#[derive(Clone, Copy, Debug)]
pub struct KillOld {
    pub max_age: Scalar,
}

impl KillOld {
    pub fn new(max_age: Scalar) -> Self {
        assert!(max_age >= 0.0);
        KillOld { max_age }
    }
}

impl Action for KillOld {
    fn kind(&self) -> ActionKind {
        ActionKind::Property
    }

    fn name(&self) -> &'static str {
        "kill-old"
    }

    fn apply(&self, _ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> ActionOutcome {
        let before = store.len();
        let killed = store.retain(|p| p.age <= self.max_age);
        ActionOutcome { applied: before, killed }
    }
}

/// Remove particles whose coordinate along `axis` fell below `threshold` —
/// e.g. snow that reached the ground (Algorithm 1's "remove particles under
/// the position").
#[derive(Clone, Copy, Debug)]
pub struct KillBelow {
    pub axis: Axis,
    pub threshold: Scalar,
}

impl KillBelow {
    pub fn new(axis: Axis, threshold: Scalar) -> Self {
        KillBelow { axis, threshold }
    }

    /// Kill below ground height `h` on the y axis.
    pub fn ground(h: Scalar) -> Self {
        KillBelow { axis: Axis::Y, threshold: h }
    }
}

impl Action for KillBelow {
    fn kind(&self) -> ActionKind {
        ActionKind::Property
    }

    fn name(&self) -> &'static str {
        "kill-below"
    }

    fn apply(&self, _ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> ActionOutcome {
        let before = store.len();
        let killed = store.retain(|p| p.position.along(self.axis) >= self.threshold);
        ActionOutcome { applied: before, killed }
    }
}

/// Remove particles that escaped a bounding box (keeps the working set
/// bounded in open-space simulations).
#[derive(Clone, Copy, Debug)]
pub struct KillOutside {
    pub bounds: Aabb,
}

impl KillOutside {
    pub fn new(bounds: Aabb) -> Self {
        KillOutside { bounds }
    }
}

impl Action for KillOutside {
    fn kind(&self) -> ActionKind {
        ActionKind::Property
    }

    fn name(&self) -> &'static str {
        "kill-outside"
    }

    fn apply(&self, _ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> ActionOutcome {
        let before = store.len();
        let killed = store.retain(|p| self.bounds.contains(p.position));
        ActionOutcome { applied: before, killed }
    }
}

/// Linearly fade particle alpha with age; optionally kill at zero alpha.
#[derive(Clone, Copy, Debug)]
pub struct Fade {
    /// Alpha lost per second.
    pub rate: Scalar,
    /// Remove fully transparent particles.
    pub kill_at_zero: bool,
}

impl Fade {
    pub fn new(rate: Scalar, kill_at_zero: bool) -> Self {
        assert!(rate >= 0.0);
        Fade { rate, kill_at_zero }
    }
}

impl Action for Fade {
    fn kind(&self) -> ActionKind {
        ActionKind::Property
    }

    fn name(&self) -> &'static str {
        "fade"
    }

    fn apply(&self, ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> ActionOutcome {
        let da = self.rate * ctx.dt;
        let mut n = 0;
        store.for_each_mut(|p| {
            p.alpha = (p.alpha - da).max(0.0);
            n += 1;
        });
        let killed = if self.kill_at_zero { store.retain(|p| p.alpha > 0.0) } else { 0 };
        ActionOutcome { applied: n, killed }
    }

    fn apply_chunk(
        &self,
        ctx: &mut ActionCtx<'_>,
        chunk: &mut [Particle],
    ) -> Option<ActionOutcome> {
        if self.kill_at_zero {
            // Killing needs the whole-store retain pass; stay serial.
            return None;
        }
        let da = self.rate * ctx.dt;
        for p in chunk.iter_mut() {
            p.alpha = (p.alpha - da).max(0.0);
        }
        Some(ActionOutcome::applied(chunk.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::{Interval, Rng64, Vec3};

    fn run(a: &dyn Action, s: &mut SubDomainStore) -> ActionOutcome {
        let mut rng = Rng64::new(1);
        let mut ctx = ActionCtx { dt: 1.0, frame: 0, rng: &mut rng };
        a.apply(&mut ctx, s)
    }

    fn store() -> SubDomainStore {
        SubDomainStore::new(Interval::new(-10.0, 10.0), Axis::X, 2)
    }

    #[test]
    fn kill_old_removes_only_old() {
        let mut s = store();
        for age in [0.5, 1.5, 2.5, 3.5] {
            let mut p = crate::Particle::at(Vec3::ZERO);
            p.age = age;
            s.insert(p);
        }
        let out = run(&KillOld::new(2.0), &mut s);
        assert_eq!(out.killed, 2);
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|p| p.age <= 2.0));
    }

    #[test]
    fn kill_below_ground() {
        let mut s = store();
        for y in [-1.0, 0.5, 2.0] {
            s.insert(crate::Particle::at(Vec3::new(0.0, y, 0.0)));
        }
        let out = run(&KillBelow::ground(0.0), &mut s);
        assert_eq!(out.killed, 1);
        assert!(s.iter().all(|p| p.position.y >= 0.0));
    }

    #[test]
    fn kill_outside_box() {
        let mut s = store();
        s.insert(crate::Particle::at(Vec3::ZERO));
        s.insert(crate::Particle::at(Vec3::new(0.0, 50.0, 0.0)));
        let out = run(&KillOutside::new(Aabb::centered_cube(5.0)), &mut s);
        assert_eq!(out.killed, 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fade_clamps_and_kills() {
        let mut s = store();
        let mut p = crate::Particle::at(Vec3::ZERO);
        p.alpha = 0.3;
        s.insert(p);
        s.insert(crate::Particle::at(Vec3::ZERO)); // alpha 1.0
        let out = run(&Fade::new(0.5, true), &mut s);
        assert_eq!(out.killed, 1);
        let survivor = s.iter().next().unwrap();
        assert!((survivor.alpha - 0.5).abs() < 1e-6);
    }

    #[test]
    fn fade_without_kill_keeps_transparent() {
        let mut s = store();
        let mut p = crate::Particle::at(Vec3::ZERO);
        p.alpha = 0.1;
        s.insert(p);
        let out = run(&Fade::new(1.0, false), &mut s);
        assert_eq!(out.killed, 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next().unwrap().alpha, 0.0);
    }
}
