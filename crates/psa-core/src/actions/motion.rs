//! The move step (paper §3.2.3) — the single position-changing action.
//!
//! "During the actions that alter the positioning of the particles, there is
//! no need of communication between the processes. However, when moving a
//! particle, the process must verify whether the particle left its domain."
//! The verification/staging half lives in `SubDomainStore::collect_leavers`;
//! this action is the integration half.

use super::{Action, ActionCtx, ActionKind, ActionOutcome};
use crate::{Particle, SubDomainStore};

/// Semi-implicit Euler integration: `x += v·dt`, then `age += dt`.
///
/// (Force actions already updated `v` this frame, so using the *new*
/// velocity here is the symplectic-Euler scheme that keeps fountains from
/// gaining energy.)
#[derive(Clone, Copy, Debug, Default)]
pub struct MoveParticles;

impl Action for MoveParticles {
    fn kind(&self) -> ActionKind {
        ActionKind::Position
    }

    fn name(&self) -> &'static str {
        "move"
    }

    fn apply(&self, ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> ActionOutcome {
        let dt = ctx.dt;
        let mut n = 0;
        store.for_each_mut(|p| {
            p.position += p.velocity * dt;
            p.age += dt;
            n += 1;
        });
        ActionOutcome::applied(n)
    }

    fn apply_chunk(
        &self,
        ctx: &mut ActionCtx<'_>,
        chunk: &mut [Particle],
    ) -> Option<ActionOutcome> {
        let dt = ctx.dt;
        for p in chunk.iter_mut() {
            p.position += p.velocity * dt;
            p.age += dt;
        }
        Some(ActionOutcome::applied(chunk.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::{Axis, Interval, Rng64, Vec3};

    #[test]
    fn move_integrates_position_and_age() {
        let mut s = SubDomainStore::new(Interval::new(-10.0, 10.0), Axis::X, 2);
        s.insert(crate::Particle::at(Vec3::ZERO).with_velocity(Vec3::new(2.0, 1.0, 0.0)));
        let mut rng = Rng64::new(1);
        let mut ctx = ActionCtx { dt: 0.5, frame: 3, rng: &mut rng };
        let out = MoveParticles.apply(&mut ctx, &mut s);
        assert_eq!(out.applied, 1);
        let p = s.iter().next().unwrap();
        assert_eq!(p.position, Vec3::new(1.0, 0.5, 0.0));
        assert_eq!(p.age, 0.5);
    }

    #[test]
    fn move_then_collect_leavers_routes_migration() {
        let mut s = SubDomainStore::new(Interval::new(0.0, 4.0), Axis::X, 4);
        s.insert(crate::Particle::at(Vec3::new(3.5, 0.0, 0.0)).with_velocity(Vec3::X * 2.0));
        let mut rng = Rng64::new(1);
        let mut ctx = ActionCtx { dt: 1.0, frame: 0, rng: &mut rng };
        MoveParticles.apply(&mut ctx, &mut s);
        let leavers = s.collect_leavers();
        assert_eq!(leavers.len(), 1);
        assert_eq!(leavers[0].position.x, 5.5);
        assert!(s.is_empty());
    }
}
