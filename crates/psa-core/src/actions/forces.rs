//! Property-changing force actions (paper §3.2.2): they alter velocities
//! but never positions, so they need no inter-process communication.

use super::{Action, ActionCtx, ActionKind, ActionOutcome};
use crate::{Particle, SubDomainStore};
use psa_math::{Scalar, Vec3};

/// Constant acceleration — gravity in the fountain experiment.
#[derive(Clone, Copy, Debug)]
pub struct Gravity {
    pub g: Vec3,
}

impl Gravity {
    pub fn new(g: Vec3) -> Self {
        Gravity { g }
    }

    /// Standard Earth gravity pointing down the y axis.
    pub fn earth() -> Self {
        Gravity { g: Vec3::new(0.0, -9.81, 0.0) }
    }
}

impl Action for Gravity {
    fn kind(&self) -> ActionKind {
        ActionKind::Property
    }

    fn name(&self) -> &'static str {
        "gravity"
    }

    fn apply(&self, ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> ActionOutcome {
        let dv = self.g * ctx.dt;
        let mut n = 0;
        store.for_each_mut(|p| {
            p.velocity += dv;
            n += 1;
        });
        ActionOutcome::applied(n)
    }

    fn apply_chunk(
        &self,
        ctx: &mut ActionCtx<'_>,
        chunk: &mut [Particle],
    ) -> Option<ActionOutcome> {
        let dv = self.g * ctx.dt;
        for p in chunk.iter_mut() {
            p.velocity += dv;
        }
        Some(ActionOutcome::applied(chunk.len()))
    }
}

/// Random per-particle acceleration — the snow experiment applies "a random
/// acceleration on the particles" each frame to get flutter.
#[derive(Clone, Copy, Debug)]
pub struct RandomAccel {
    /// Maximum magnitude of the random acceleration.
    pub magnitude: Scalar,
}

impl RandomAccel {
    pub fn new(magnitude: Scalar) -> Self {
        RandomAccel { magnitude }
    }
}

impl Action for RandomAccel {
    fn kind(&self) -> ActionKind {
        ActionKind::Property
    }

    fn name(&self) -> &'static str {
        "random-accel"
    }

    fn apply(&self, ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> ActionOutcome {
        let mag = self.magnitude * ctx.dt;
        let rng = &mut *ctx.rng;
        let mut n = 0;
        store.for_each_mut(|p| {
            p.velocity += rng.in_unit_sphere() * mag;
            n += 1;
        });
        ActionOutcome::applied(n)
    }

    fn apply_chunk(
        &self,
        ctx: &mut ActionCtx<'_>,
        chunk: &mut [Particle],
    ) -> Option<ActionOutcome> {
        let mag = self.magnitude * ctx.dt;
        for p in chunk.iter_mut() {
            p.velocity += ctx.rng.in_unit_sphere() * mag;
        }
        Some(ActionOutcome::applied(chunk.len()))
    }

    fn cost_weight(&self) -> f64 {
        // Rejection sampling for the sphere draw is ~2× the arithmetic of a
        // plain force pass.
        2.0
    }
}

/// Exponential velocity damping (air drag).
#[derive(Clone, Copy, Debug)]
pub struct Damping {
    /// Fraction of velocity lost per second, in `[0, 1]`.
    pub rate: Scalar,
}

impl Damping {
    pub fn new(rate: Scalar) -> Self {
        assert!((0.0..=1.0).contains(&rate), "damping rate must be in [0,1]");
        Damping { rate }
    }
}

impl Action for Damping {
    fn kind(&self) -> ActionKind {
        ActionKind::Property
    }

    fn name(&self) -> &'static str {
        "damping"
    }

    fn apply(&self, ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> ActionOutcome {
        let keep = (1.0 - self.rate).powf(ctx.dt);
        let mut n = 0;
        store.for_each_mut(|p| {
            p.velocity *= keep;
            n += 1;
        });
        ActionOutcome::applied(n)
    }

    fn apply_chunk(
        &self,
        ctx: &mut ActionCtx<'_>,
        chunk: &mut [Particle],
    ) -> Option<ActionOutcome> {
        let keep = (1.0 - self.rate).powf(ctx.dt);
        for p in chunk.iter_mut() {
            p.velocity *= keep;
        }
        Some(ActionOutcome::applied(chunk.len()))
    }
}

/// Relax particle velocity toward a wind field velocity.
#[derive(Clone, Copy, Debug)]
pub struct Wind {
    pub wind: Vec3,
    /// Coupling strength per second.
    pub drag: Scalar,
}

impl Wind {
    pub fn new(wind: Vec3, drag: Scalar) -> Self {
        Wind { wind, drag }
    }
}

impl Action for Wind {
    fn kind(&self) -> ActionKind {
        ActionKind::Property
    }

    fn name(&self) -> &'static str {
        "wind"
    }

    fn apply(&self, ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> ActionOutcome {
        let k = (self.drag * ctx.dt).min(1.0);
        let wind = self.wind;
        let mut n = 0;
        store.for_each_mut(|p| {
            p.velocity = p.velocity.lerp(wind, k);
            n += 1;
        });
        ActionOutcome::applied(n)
    }

    fn apply_chunk(
        &self,
        ctx: &mut ActionCtx<'_>,
        chunk: &mut [Particle],
    ) -> Option<ActionOutcome> {
        let k = (self.drag * ctx.dt).min(1.0);
        let wind = self.wind;
        for p in chunk.iter_mut() {
            p.velocity = p.velocity.lerp(wind, k);
        }
        Some(ActionOutcome::applied(chunk.len()))
    }
}

/// Attract particles toward a point with inverse-square falloff — the
/// classic McAllister `pOrbitPoint` effect, used by the fireworks example.
#[derive(Clone, Copy, Debug)]
pub struct OrbitPoint {
    pub center: Vec3,
    pub strength: Scalar,
    /// Softening epsilon so close particles do not explode numerically.
    pub epsilon: Scalar,
}

impl OrbitPoint {
    pub fn new(center: Vec3, strength: Scalar) -> Self {
        OrbitPoint { center, strength, epsilon: 0.25 }
    }
}

impl Action for OrbitPoint {
    fn kind(&self) -> ActionKind {
        ActionKind::Property
    }

    fn name(&self) -> &'static str {
        "orbit-point"
    }

    fn apply(&self, ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> ActionOutcome {
        let c = self.center;
        let s = self.strength * ctx.dt;
        let eps2 = self.epsilon * self.epsilon;
        let mut n = 0;
        store.for_each_mut(|p| {
            let rel = c - p.position;
            let d2 = rel.length_squared() + eps2;
            p.velocity += rel * (s / (d2 * d2.sqrt()));
            n += 1;
        });
        ActionOutcome::applied(n)
    }

    fn apply_chunk(
        &self,
        ctx: &mut ActionCtx<'_>,
        chunk: &mut [Particle],
    ) -> Option<ActionOutcome> {
        let c = self.center;
        let s = self.strength * ctx.dt;
        let eps2 = self.epsilon * self.epsilon;
        for p in chunk.iter_mut() {
            let rel = c - p.position;
            let d2 = rel.length_squared() + eps2;
            p.velocity += rel * (s / (d2 * d2.sqrt()));
        }
        Some(ActionOutcome::applied(chunk.len()))
    }

    fn cost_weight(&self) -> f64 {
        1.5 // sqrt + division per particle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::{Axis, Interval, Rng64};

    fn store_with(ps: &[Vec3]) -> SubDomainStore {
        let mut s = SubDomainStore::new(Interval::new(-100.0, 100.0), Axis::X, 2);
        for &p in ps {
            s.insert(crate::Particle::at(p));
        }
        s
    }

    fn run(a: &dyn Action, s: &mut SubDomainStore, dt: f32) -> ActionOutcome {
        let mut rng = Rng64::new(7);
        let mut ctx = ActionCtx { dt, frame: 1, rng: &mut rng };
        a.apply(&mut ctx, s)
    }

    #[test]
    fn gravity_accumulates_velocity_only() {
        let mut s = store_with(&[Vec3::ZERO]);
        let out = run(&Gravity::earth(), &mut s, 0.5);
        assert_eq!(out.applied, 1);
        let p = s.iter().next().unwrap();
        assert!((p.velocity.y + 4.905).abs() < 1e-4);
        assert_eq!(p.position, Vec3::ZERO); // property action: no movement
    }

    #[test]
    fn random_accel_is_bounded_and_deterministic() {
        let mut s1 = store_with(&[Vec3::ZERO; 32]);
        let mut s2 = store_with(&[Vec3::ZERO; 32]);
        run(&RandomAccel::new(2.0), &mut s1, 1.0);
        run(&RandomAccel::new(2.0), &mut s2, 1.0);
        for (a, b) in s1.iter().zip(s2.iter()) {
            assert_eq!(a.velocity, b.velocity, "same seed, same kicks");
            assert!(a.velocity.length() <= 2.0 + 1e-4);
        }
        // at least some particles actually got kicked
        assert!(s1.iter().any(|p| p.velocity.length() > 0.0));
    }

    #[test]
    fn damping_shrinks_speed() {
        let mut s = store_with(&[Vec3::ZERO]);
        s.for_each_mut(|p| p.velocity = Vec3::new(10.0, 0.0, 0.0));
        run(&Damping::new(0.5), &mut s, 1.0);
        let v = s.iter().next().unwrap().velocity.x;
        assert!((v - 5.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic]
    fn damping_rejects_bad_rate() {
        let _ = Damping::new(1.5);
    }

    #[test]
    fn wind_converges_to_field() {
        let mut s = store_with(&[Vec3::ZERO]);
        let w = Wind::new(Vec3::new(3.0, 0.0, 0.0), 1.0);
        for _ in 0..64 {
            run(&w, &mut s, 0.25);
        }
        let v = s.iter().next().unwrap().velocity;
        assert!((v.x - 3.0).abs() < 0.01, "velocity {v:?} should approach wind");
    }

    #[test]
    fn orbit_point_pulls_inward() {
        let mut s = store_with(&[Vec3::new(5.0, 0.0, 0.0)]);
        run(&OrbitPoint::new(Vec3::ZERO, 50.0), &mut s, 1.0);
        let v = s.iter().next().unwrap().velocity;
        assert!(v.x < 0.0, "should accelerate toward center, got {v:?}");
        assert_eq!(v.y, 0.0);
    }
}
