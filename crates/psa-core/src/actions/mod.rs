//! Actions over particles (paper §3.1.5).
//!
//! The model stipulates rules of behaviour only for actions that *create*
//! and *move* particles, because those change the spatial distribution.
//! Actions that only change properties may run at any time without
//! inter-process communication. We encode the taxonomy as [`ActionKind`]
//! so the runtime can verify that a user's action list is legal (exactly
//! one Move per frame loop, creation handled by the manager, etc.).

mod collide_action;
mod forces;
mod lifecycle;
mod motion;

pub use collide_action::{BounceOff, DieOnContact};
pub use forces::{Damping, Gravity, OrbitPoint, RandomAccel, Wind};
pub use lifecycle::{Fade, KillBelow, KillOld, KillOutside};
pub use motion::MoveParticles;

use crate::{Particle, SubDomainStore};
use psa_math::{Rng64, Scalar};

/// The paper's action taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// Creates particles. Executed by the manager, which distributes the
    /// new particles to calculators by domain (paper §3.2.1). Calculators
    /// never run these directly.
    Create,
    /// Changes properties without changing positions — gravity, aging
    /// colors, kill, bounce against external objects (paper §3.2.2). Local,
    /// no communication.
    Property,
    /// Changes positions — the move/integration step (paper §3.2.3).
    /// Leavers must afterwards be staged for exchange.
    Position,
    /// Generates the animation frame — exchange, balance, render
    /// (paper §3.2.4). Implemented by the runtime, not by user actions.
    Frame,
}

/// Per-frame context handed to actions.
pub struct ActionCtx<'a> {
    /// Frame time step in seconds.
    pub dt: Scalar,
    /// Animation frame counter.
    pub frame: u64,
    /// Deterministic stream for stochastic actions, pre-split per
    /// (system, frame) by the caller so calculator count does not affect
    /// the drawn values.
    pub rng: &'a mut Rng64,
}

/// What an action did, for statistics and the work-accounting the virtual
/// time executor uses (`applied` ≈ particle touches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActionOutcome {
    /// Number of particle applications performed.
    pub applied: usize,
    /// Number of particles removed.
    pub killed: usize,
}

impl ActionOutcome {
    pub fn applied(n: usize) -> Self {
        ActionOutcome { applied: n, killed: 0 }
    }

    pub fn merge(self, o: ActionOutcome) -> ActionOutcome {
        ActionOutcome { applied: self.applied + o.applied, killed: self.killed + o.killed }
    }
}

/// A simulation action applied by calculators to their local particles.
///
/// Implementations must be deterministic given the context RNG and must not
/// move particles unless their [`ActionKind`] is `Position` — the runtime's
/// debug assertions check this contract on every frame.
pub trait Action: Send + Sync {
    /// Which taxonomy class the action belongs to.
    fn kind(&self) -> ActionKind;

    /// Stable name for traces and benches.
    fn name(&self) -> &'static str;

    /// Apply to all local particles of one system.
    fn apply(&self, ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> ActionOutcome;

    /// Apply to one contiguous chunk of a system's particles.
    ///
    /// Returning `Some` opts the action into the chunked parallel kernel
    /// ([`crate::kernel`]): the kernel covers every particle with exactly one
    /// chunk and keys each chunk's RNG stream by the chunk's position in the
    /// store's deterministic order, so results are byte-identical for any
    /// worker count. The answer must not depend on the slice contents —
    /// the kernel probes capability with an empty slice. Actions that must
    /// see the whole store at once (the `retain`-based killers) keep the
    /// default `None` and run serially through [`Action::apply`].
    fn apply_chunk(
        &self,
        _ctx: &mut ActionCtx<'_>,
        _chunk: &mut [Particle],
    ) -> Option<ActionOutcome> {
        None
    }

    /// Relative per-particle cost weight used by the virtual-time cost
    /// model (1.0 = one arithmetic-light pass over the particle).
    fn cost_weight(&self) -> f64 {
        1.0
    }
}

/// An ordered list of actions executed every frame for one system —
/// the body of the paper's Algorithm 1 loop.
pub struct ActionList {
    actions: Vec<Box<dyn Action>>,
}

impl ActionList {
    pub fn new() -> Self {
        ActionList { actions: Vec::new() }
    }

    /// Append an action; returns `self` for builder-style chaining.
    pub fn then(mut self, a: impl Action + 'static) -> Self {
        self.actions.push(Box::new(a));
        self
    }

    pub fn push(&mut self, a: impl Action + 'static) {
        self.actions.push(Box::new(a));
    }

    pub fn len(&self) -> usize {
        self.actions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &dyn Action> {
        self.actions.iter().map(|b| b.as_ref())
    }

    /// Run every action in order; returns the merged outcome and the
    /// cost-weighted work (`Σ applied_i × weight_i`), which the virtual
    /// executors convert to seconds.
    pub fn run(&self, ctx: &mut ActionCtx<'_>, store: &mut SubDomainStore) -> (ActionOutcome, f64) {
        let mut out = ActionOutcome::default();
        let mut weighted = 0.0;
        for a in &self.actions {
            let o = a.apply(ctx, store);
            weighted += o.applied as f64 * a.cost_weight();
            out = out.merge(o);
        }
        (out, weighted)
    }

    /// Total cost weight of one pass (used by the cost model).
    pub fn total_cost_weight(&self) -> f64 {
        self.actions.iter().map(|a| a.cost_weight()).sum()
    }

    /// Validate the paper's structural rules: at most one `Position` action
    /// (the move step) and no `Create`/`Frame` actions (those belong to the
    /// manager and the runtime respectively).
    pub fn validate(&self) -> Result<(), String> {
        let moves = self.actions.iter().filter(|a| a.kind() == ActionKind::Position).count();
        if moves > 1 {
            return Err(format!("action list has {moves} Position actions; the model allows one move step per frame"));
        }
        if let Some(bad) =
            self.actions.iter().find(|a| matches!(a.kind(), ActionKind::Create | ActionKind::Frame))
        {
            return Err(format!(
                "action '{}' of kind {:?} cannot appear in a calculator action list",
                bad.name(),
                bad.kind()
            ));
        }
        Ok(())
    }
}

impl Default for ActionList {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::{Axis, Interval, Vec3};

    fn ctx_rng() -> Rng64 {
        Rng64::new(42)
    }

    fn small_store() -> SubDomainStore {
        let mut s = SubDomainStore::new(Interval::new(-10.0, 10.0), Axis::X, 4);
        for i in 0..10 {
            s.insert(crate::Particle::at(Vec3::new(i as f32 - 5.0, 5.0, 0.0)));
        }
        s
    }

    #[test]
    fn action_list_runs_in_order() {
        let list = ActionList::new().then(Gravity::earth()).then(MoveParticles);
        let mut rng = ctx_rng();
        let mut ctx = ActionCtx { dt: 1.0, frame: 0, rng: &mut rng };
        let mut store = small_store();
        let (out, weighted) = list.run(&mut ctx, &mut store);
        assert_eq!(out.applied, 20); // 10 particles × 2 actions
        assert_eq!(weighted, 20.0); // both actions have weight 1.0
                                    // gravity then move: y decreased
        for p in store.iter() {
            assert!(p.position.y < 5.0);
            assert!(p.velocity.y < 0.0);
        }
    }

    #[test]
    fn validate_rejects_two_moves() {
        let list = ActionList::new().then(MoveParticles).then(MoveParticles);
        assert!(list.validate().is_err());
        let ok = ActionList::new().then(Gravity::earth()).then(MoveParticles);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn outcome_merge() {
        let a = ActionOutcome { applied: 3, killed: 1 };
        let b = ActionOutcome { applied: 4, killed: 0 };
        assert_eq!(a.merge(b), ActionOutcome { applied: 7, killed: 1 });
    }

    #[test]
    fn cost_weight_sums() {
        let list = ActionList::new()
            .then(Gravity::earth())
            .then(RandomAccel::new(1.0))
            .then(MoveParticles);
        assert!(list.total_cost_weight() >= 3.0);
        assert_eq!(list.len(), 3);
    }
}
