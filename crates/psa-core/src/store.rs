//! Flat particle storage with O(1) unordered removal.

use crate::Particle;
use psa_math::{Axis, Scalar};

/// A growable set of particles.
///
/// The store is ordering-agnostic: the model never relies on particle order
/// except transiently during load-balance donation, where particles are
/// sorted along the decomposition axis (paper §3.2.5). Removal therefore
/// uses `swap_remove`.
#[derive(Clone, Debug, Default)]
pub struct ParticleStore {
    items: Vec<Particle>,
}

impl ParticleStore {
    pub fn new() -> Self {
        ParticleStore { items: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        ParticleStore { items: Vec::with_capacity(cap) }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    #[inline]
    pub fn push(&mut self, p: Particle) {
        self.items.push(p);
    }

    pub fn extend_from_slice(&mut self, ps: &[Particle]) {
        self.items.extend_from_slice(ps);
    }

    /// O(1) unordered removal.
    #[inline]
    pub fn swap_remove(&mut self, i: usize) -> Particle {
        self.items.swap_remove(i)
    }

    pub fn clear(&mut self) {
        self.items.clear();
    }

    #[inline]
    pub fn as_slice(&self) -> &[Particle] {
        &self.items
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Particle] {
        &mut self.items
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Particle> {
        self.items.iter()
    }

    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Particle> {
        self.items.iter_mut()
    }

    /// Keep only particles satisfying `f` (order not preserved); returns the
    /// number removed. Implemented as a backwards swap_remove sweep so it is
    /// O(n) regardless of how many die — the kill actions run every frame on
    /// 400k-particle systems.
    pub fn retain_unordered<F: FnMut(&Particle) -> bool>(&mut self, mut f: F) -> usize {
        let before = self.items.len();
        let mut i = 0;
        while i < self.items.len() {
            if f(&self.items[i]) {
                i += 1;
            } else {
                self.items.swap_remove(i);
            }
        }
        before - self.items.len()
    }

    /// Remove and return all particles for which `f` is true (the staging
    /// step for end-of-frame domain exchange, paper §3.2.3).
    pub fn drain_where<F: FnMut(&Particle) -> bool>(&mut self, f: F) -> Vec<Particle> {
        let mut out = Vec::new();
        self.drain_where_into(f, &mut out);
        out
    }

    /// [`ParticleStore::drain_where`] into a caller-owned buffer — the
    /// allocation-free variant the frame hot path uses (the buffer keeps its
    /// capacity across frames). Drained particles are appended.
    pub fn drain_where_into<F: FnMut(&Particle) -> bool>(
        &mut self,
        mut f: F,
        out: &mut Vec<Particle>,
    ) {
        let mut i = 0;
        while i < self.items.len() {
            if f(&self.items[i]) {
                out.push(self.items.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }

    /// Take everything, leaving the store empty but with capacity retained.
    pub fn take_all(&mut self) -> Vec<Particle> {
        std::mem::take(&mut self.items)
    }

    /// Sort particles by their coordinate along `axis` (ascending).
    ///
    /// Donation during load balancing requires the donor to pick particles
    /// from the boundary end of its slice (paper §3.2.5), which this enables.
    pub fn sort_along(&mut self, axis: Axis) {
        self.items
            .sort_unstable_by(|a, b| a.position.along(axis).total_cmp(&b.position.along(axis)));
    }

    /// Split off the `count` particles with the **lowest** coordinates along
    /// `axis` (donation to the left neighbor). Returns the donated particles.
    ///
    /// The §3.2.5 boundary contract — only the particles nearest the domain
    /// boundary may be shipped — is enforced here, not merely documented: an
    /// unsorted store is sorted before splitting. Callers that already
    /// sorted (the sub-domain donation path) pay one O(n) monotonicity scan.
    pub fn donate_low(&mut self, count: usize, axis: Axis) -> Vec<Particle> {
        self.ensure_sorted(axis);
        let count = count.min(self.items.len());
        let tail = self.items.split_off(count);
        std::mem::replace(&mut self.items, tail)
    }

    /// Split off the `count` particles with the **highest** coordinates
    /// along `axis` (donation to the right neighbor). Mirror of
    /// [`ParticleStore::donate_low`], including the sortedness enforcement.
    pub fn donate_high(&mut self, count: usize, axis: Axis) -> Vec<Particle> {
        self.ensure_sorted(axis);
        let count = count.min(self.items.len());
        self.items.split_off(self.items.len() - count)
    }

    /// Sort along `axis` unless already sorted. The repair (rather than a
    /// silent wrong donation) is what makes `donate_low`/`donate_high` safe
    /// to call on any store state.
    fn ensure_sorted(&mut self, axis: Axis) {
        let sorted = self
            .items
            .windows(2)
            .all(|w| w[0].position.along(axis).total_cmp(&w[1].position.along(axis)).is_le());
        if !sorted {
            self.sort_along(axis);
        }
    }

    /// Min/max coordinate along `axis`, or `None` when empty.
    ///
    /// Contract: the result is consistent with [`ParticleStore::sort_along`]
    /// — `(lo, hi)` are exactly the first and last coordinates a sorted
    /// store would expose. Both use `total_cmp` order, so a NaN coordinate
    /// *surfaces* in the extent (NaN sorts above `+inf` / below `-inf` in
    /// the IEEE total order) instead of being silently dropped the way
    /// `f32::min`/`f32::max` folding would drop it. Silently dropping NaN
    /// here let a corrupted particle evade every domain slice while the
    /// extent still looked finite; callers that must reject non-finite
    /// positions outright should run `invariants::check_finite_positions`.
    pub fn extent_along(&self, axis: Axis) -> Option<(Scalar, Scalar)> {
        let mut coords = self.items.iter().map(|p| p.position.along(axis));
        let first = coords.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in coords {
            if v.total_cmp(&lo).is_lt() {
                lo = v;
            }
            if v.total_cmp(&hi).is_gt() {
                hi = v;
            }
        }
        Some((lo, hi))
    }

    /// Total kinetic energy — the "global quantity reduced in parallel"
    /// example from the related-work discussion, used by tests and examples.
    pub fn total_kinetic_energy(&self) -> f64 {
        self.items.iter().map(|p| p.kinetic_energy() as f64).sum()
    }
}

impl FromIterator<Particle> for ParticleStore {
    fn from_iter<T: IntoIterator<Item = Particle>>(iter: T) -> Self {
        ParticleStore { items: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a ParticleStore {
    type Item = &'a Particle;
    type IntoIter = std::slice::Iter<'a, Particle>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl Extend<Particle> for ParticleStore {
    fn extend<T: IntoIterator<Item = Particle>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::Vec3;

    fn p(x: f32) -> Particle {
        Particle::at(Vec3::new(x, 0.0, 0.0))
    }

    #[test]
    fn push_len_iter() {
        let mut s = ParticleStore::new();
        assert!(s.is_empty());
        s.push(p(1.0));
        s.push(p(2.0));
        assert_eq!(s.len(), 2);
        let xs: Vec<f32> = s.iter().map(|q| q.position.x).collect();
        assert_eq!(xs, vec![1.0, 2.0]);
    }

    #[test]
    fn retain_unordered_counts() {
        let mut s: ParticleStore = (0..10).map(|i| p(i as f32)).collect();
        let removed = s.retain_unordered(|q| q.position.x < 5.0);
        assert_eq!(removed, 5);
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|q| q.position.x < 5.0));
    }

    #[test]
    fn drain_where_partitions() {
        let mut s: ParticleStore = (0..10).map(|i| p(i as f32)).collect();
        let out = s.drain_where(|q| q.position.x >= 7.0);
        assert_eq!(out.len(), 3);
        assert_eq!(s.len(), 7);
        assert!(out.iter().all(|q| q.position.x >= 7.0));
        assert!(s.iter().all(|q| q.position.x < 7.0));
    }

    #[test]
    fn sort_and_donate_low_high() {
        let mut s: ParticleStore = [5.0, 1.0, 3.0, 2.0, 4.0].iter().map(|&x| p(x)).collect();
        s.sort_along(Axis::X);
        let low = s.donate_low(2, Axis::X);
        assert_eq!(low.iter().map(|q| q.position.x).collect::<Vec<_>>(), vec![1.0, 2.0]);
        let high = s.donate_high(2, Axis::X);
        assert_eq!(high.iter().map(|q| q.position.x).collect::<Vec<_>>(), vec![4.0, 5.0]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.as_slice()[0].position.x, 3.0);
    }

    #[test]
    fn donate_more_than_available_is_clamped() {
        let mut s: ParticleStore = [1.0, 2.0].iter().map(|&x| p(x)).collect();
        s.sort_along(Axis::X);
        let got = s.donate_high(10, Axis::X);
        assert_eq!(got.len(), 2);
        assert!(s.is_empty());
        assert!(s.donate_low(3, Axis::X).is_empty());
    }

    #[test]
    fn donate_on_unsorted_store_still_ships_the_extremes() {
        // Regression: before the sortedness enforcement, donating from an
        // unsorted store silently shipped whatever happened to sit at the
        // vector ends — interior particles crossed the domain boundary.
        let mut s: ParticleStore = [5.0, 1.0, 9.0, 3.0, 7.0].iter().map(|&x| p(x)).collect();
        let low = s.donate_low(2, Axis::X); // no sort_along first
        let mut xs: Vec<f32> = low.iter().map(|q| q.position.x).collect();
        xs.sort_by(f32::total_cmp);
        assert_eq!(xs, vec![1.0, 3.0], "must ship the true low extremes");
        // The store was left sorted by the repair; scramble it again.
        let mut s2: ParticleStore = [2.0, 8.0, 0.5, 6.0].iter().map(|&x| p(x)).collect();
        let high = s2.donate_high(2, Axis::X);
        let mut hs: Vec<f32> = high.iter().map(|q| q.position.x).collect();
        hs.sort_by(f32::total_cmp);
        assert_eq!(hs, vec![6.0, 8.0], "must ship the true high extremes");
        assert!(s2.iter().all(|q| q.position.x < 6.0));
    }

    #[test]
    fn extent_along_axis() {
        let s: ParticleStore = [3.0, -1.0, 7.0].iter().map(|&x| p(x)).collect();
        assert_eq!(s.extent_along(Axis::X), Some((-1.0, 7.0)));
        assert_eq!(ParticleStore::new().extent_along(Axis::X), None);
    }

    #[test]
    fn extent_surfaces_nan_instead_of_dropping_it() {
        // f32::min/max folding silently skips NaN; the total_cmp contract
        // must surface it as the hi bound (positive NaN sorts above +inf).
        let s: ParticleStore = [1.0, f32::NAN, 3.0].iter().map(|&x| p(x)).collect();
        let (lo, hi) = s.extent_along(Axis::X).unwrap();
        assert_eq!(lo, 1.0);
        assert!(hi.is_nan(), "NaN coordinate must surface in the extent, got {hi}");
        // Negative NaN sorts below -inf and must surface as the lo bound.
        let s2: ParticleStore =
            [1.0, f32::from_bits(0xFFC0_0000), 3.0].iter().map(|&x| p(x)).collect();
        let (lo2, hi2) = s2.extent_along(Axis::X).unwrap();
        assert!(lo2.is_nan());
        assert_eq!(hi2, 3.0);
    }

    #[test]
    fn extent_matches_sorted_endpoints() {
        let mut s: ParticleStore =
            [5.0, -2.5, 0.0, 9.75, -2.5, 3.0].iter().map(|&x| p(x)).collect();
        let (lo, hi) = s.extent_along(Axis::X).unwrap();
        s.sort_along(Axis::X);
        assert_eq!(lo, s.as_slice().first().unwrap().position.x);
        assert_eq!(hi, s.as_slice().last().unwrap().position.x);
    }

    #[test]
    fn kinetic_energy_sums() {
        let mut s = ParticleStore::new();
        s.push(Particle::at(Vec3::ZERO).with_velocity(Vec3::new(2.0, 0.0, 0.0)));
        s.push(Particle::at(Vec3::ZERO).with_velocity(Vec3::new(0.0, 2.0, 0.0)));
        assert_eq!(s.total_kinetic_energy(), 4.0);
    }

    #[test]
    fn take_all_empties() {
        let mut s: ParticleStore = (0..4).map(|i| p(i as f32)).collect();
        let all = s.take_all();
        assert_eq!(all.len(), 4);
        assert!(s.is_empty());
    }
}
