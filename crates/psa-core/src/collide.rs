//! Inter-particle collision detection (the hook the model preserves).
//!
//! Paper §3.1.4: the space is divided into domains precisely so that a user
//! can introduce "efficient particle collision detection procedures" — a
//! particle only needs testing against particles of nearby domains, and data
//! locality keeps neighbors on the same (or an adjacent) process.
//!
//! Within one calculator's domain we provide the standard uniform-grid
//! broadphase: hash particles into cells of edge `2·r_max`, then test the 27
//! neighboring cells. Cross-boundary pairs are handled by the runtime via a
//! ghost-slab exchange: each calculator ships the particles within `2·r_max`
//! of its boundary to the neighbor as read-only ghosts, exactly the
//! "particles exchanged during the computation" mode of §3.1.5.

use crate::Particle;
use psa_math::{Scalar, Vec3};

/// A uniform grid over particle positions for neighborhood queries.
///
/// Rebuilt each frame (construction is O(n)); query of all colliding pairs
/// is O(n · k) with k the mean cell occupancy.
pub struct UniformGrid {
    cell: Scalar,
    origin: Vec3,
    dims: [usize; 3],
    /// CSR layout: `starts[c]..starts[c+1]` indexes into `entries`.
    starts: Vec<u32>,
    entries: Vec<u32>,
}

impl UniformGrid {
    /// Build over `particles` with the given cell edge (use `2 × max radius`).
    pub fn build(particles: &[Particle], cell: Scalar) -> Self {
        assert!(cell > 0.0, "cell edge must be positive");
        if particles.is_empty() {
            return UniformGrid {
                cell,
                origin: Vec3::ZERO,
                dims: [1, 1, 1],
                starts: vec![0, 0],
                entries: Vec::new(),
            };
        }
        let mut min = particles[0].position;
        let mut max = min;
        for p in particles {
            min = min.min(p.position);
            max = max.max(p.position);
        }
        let size = max - min;
        let dims = [
            (size.x / cell).floor() as usize + 1,
            (size.y / cell).floor() as usize + 1,
            (size.z / cell).floor() as usize + 1,
        ];
        let ncells = dims[0] * dims[1] * dims[2];
        // Counting sort into CSR: one pass to count, one to place.
        let mut starts = vec![0u32; ncells + 1];
        let cell_of = |p: Vec3| -> usize {
            let ix = (((p.x - min.x) / cell) as usize).min(dims[0] - 1);
            let iy = (((p.y - min.y) / cell) as usize).min(dims[1] - 1);
            let iz = (((p.z - min.z) / cell) as usize).min(dims[2] - 1);
            (iz * dims[1] + iy) * dims[0] + ix
        };
        for p in particles {
            starts[cell_of(p.position) + 1] += 1;
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        let mut cursor = starts.clone();
        let mut entries = vec![0u32; particles.len()];
        for (i, p) in particles.iter().enumerate() {
            let c = cell_of(p.position);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        UniformGrid { cell, origin: min, dims, starts, entries }
    }

    #[inline]
    fn cell_coords(&self, p: Vec3) -> [isize; 3] {
        [
            ((p.x - self.origin.x) / self.cell) as isize,
            ((p.y - self.origin.y) / self.cell) as isize,
            ((p.z - self.origin.z) / self.cell) as isize,
        ]
    }

    /// Visit the indices of all particles in the 27-cell neighborhood of `p`.
    pub fn for_neighbors<F: FnMut(u32)>(&self, p: Vec3, mut f: F) {
        let c = self.cell_coords(p);
        for dz in -1..=1isize {
            for dy in -1..=1isize {
                for dx in -1..=1isize {
                    let (x, y, z) = (c[0] + dx, c[1] + dy, c[2] + dz);
                    if x < 0
                        || y < 0
                        || z < 0
                        || x >= self.dims[0] as isize
                        || y >= self.dims[1] as isize
                        || z >= self.dims[2] as isize
                    {
                        continue;
                    }
                    let cell = (z as usize * self.dims[1] + y as usize) * self.dims[0] + x as usize;
                    let (a, b) = (self.starts[cell] as usize, self.starts[cell + 1] as usize);
                    for &e in &self.entries[a..b] {
                        f(e);
                    }
                }
            }
        }
    }

    /// Number of stored particles.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Find all pairs `(i, j)` with `i < j` whose centers are closer than
/// `radius_i + radius_j` (using `p.size` as radius).
///
/// `ghosts` are read-only boundary particles from neighbor domains; pairs
/// between a local particle and a ghost are reported with the ghost index
/// offset by `particles.len()`.
pub fn colliding_pairs(
    particles: &[Particle],
    ghosts: &[Particle],
    cell: Scalar,
) -> Vec<(u32, u32)> {
    let n = particles.len();
    let mut all: Vec<Particle> = Vec::with_capacity(n + ghosts.len());
    all.extend_from_slice(particles);
    all.extend_from_slice(ghosts);
    let grid = UniformGrid::build(&all, cell);
    let mut pairs = Vec::new();
    for (i, p) in particles.iter().enumerate() {
        grid.for_neighbors(p.position, |j| {
            let j = j as usize;
            if j <= i {
                return; // count each pair once; ghost-ghost pairs skipped via i < n
            }
            let q = &all[j];
            let rsum = p.size + q.size;
            if p.position.distance_squared(q.position) < rsum * rsum {
                pairs.push((i as u32, j as u32));
            }
        });
    }
    pairs
}

/// Resolve local–ghost pairs symmetrically: the impulse is computed from
/// both particles but applied only to the local one; the ghost's owning
/// calculator computes the identical impulse for its side (it sees the
/// mirrored pair through its own ghost slab), so momentum is conserved
/// globally without any write-back traffic.
pub fn resolve_elastic_with_ghosts(
    locals: &mut [Particle],
    ghosts: &[Particle],
    pairs: &[(u32, u32)],
    restitution: Scalar,
) {
    let n = locals.len();
    for &(i, j) in pairs {
        let (i, j) = (i as usize, j as usize);
        if j < n {
            // both local: standard two-sided resolution
            resolve_pair(locals, i, j, restitution);
            continue;
        }
        let ghost = ghosts[j - n];
        let p = locals[i];
        let normal = (ghost.position - p.position).normalized();
        if normal == Vec3::ZERO {
            continue;
        }
        let rel = ghost.velocity - p.velocity;
        let vn = rel.dot(normal);
        if vn >= 0.0 {
            continue;
        }
        let m1 = p.mass.max(1e-6);
        let m2 = ghost.mass.max(1e-6);
        let imp = -(1.0 + restitution) * vn / (1.0 / m1 + 1.0 / m2);
        locals[i].velocity -= normal * (imp / m1);
    }
}

#[inline]
fn resolve_pair(particles: &mut [Particle], i: usize, j: usize, restitution: Scalar) {
    let (pi, pj) = (particles[i], particles[j]);
    let normal = (pj.position - pi.position).normalized();
    if normal == Vec3::ZERO {
        return;
    }
    let rel = pj.velocity - pi.velocity;
    let vn = rel.dot(normal);
    if vn >= 0.0 {
        return;
    }
    let m1 = pi.mass.max(1e-6);
    let m2 = pj.mass.max(1e-6);
    let imp = -(1.0 + restitution) * vn / (1.0 / m1 + 1.0 / m2);
    particles[i].velocity -= normal * (imp / m1);
    particles[j].velocity += normal * (imp / m2);
}

/// Resolve particle–particle collisions as equal-mass-weighted elastic
/// impulses (the "efficient collision procedure" slot the model leaves to
/// users; this is a reasonable default).
pub fn resolve_elastic(particles: &mut [Particle], pairs: &[(u32, u32)], restitution: Scalar) {
    for &(i, j) in pairs {
        let (i, j) = (i as usize, j as usize);
        if j >= particles.len() {
            continue; // ghost pair: the ghost's owner resolves its side
        }
        let (pi, pj) = (particles[i], particles[j]);
        let normal = (pj.position - pi.position).normalized();
        if normal == Vec3::ZERO {
            continue;
        }
        let rel = pj.velocity - pi.velocity;
        let vn = rel.dot(normal);
        if vn >= 0.0 {
            continue; // separating
        }
        let m1 = pi.mass.max(1e-6);
        let m2 = pj.mass.max(1e-6);
        let imp = -(1.0 + restitution) * vn / (1.0 / m1 + 1.0 / m2);
        particles[i].velocity -= normal * (imp / m1);
        particles[j].velocity += normal * (imp / m2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::Rng64;

    fn p(x: f32, y: f32, z: f32, size: f32) -> Particle {
        Particle::at(Vec3::new(x, y, z)).with_size(size)
    }

    /// O(n²) reference used to verify the grid broadphase.
    fn brute_pairs(ps: &[Particle]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                let r = ps[i].size + ps[j].size;
                if ps[i].position.distance_squared(ps[j].position) < r * r {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn empty_grid_is_fine() {
        let g = UniformGrid::build(&[], 1.0);
        assert!(g.is_empty());
        let mut count = 0;
        g.for_neighbors(Vec3::ZERO, |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn grid_matches_brute_force() {
        let mut rng = Rng64::new(123);
        let ps: Vec<Particle> = (0..300)
            .map(|_| p(rng.range(-5.0, 5.0), rng.range(-5.0, 5.0), rng.range(-5.0, 5.0), 0.2))
            .collect();
        let mut grid = colliding_pairs(&ps, &[], 0.4);
        let mut brute = brute_pairs(&ps);
        grid.sort_unstable();
        brute.sort_unstable();
        assert_eq!(grid, brute);
        assert!(!brute.is_empty(), "test should actually exercise collisions");
    }

    #[test]
    fn ghost_pairs_are_reported_with_offset() {
        let local = vec![p(0.0, 0.0, 0.0, 0.3)];
        let ghosts = vec![p(0.4, 0.0, 0.0, 0.3)];
        let pairs = colliding_pairs(&local, &ghosts, 0.6);
        assert_eq!(pairs, vec![(0, 1)]); // ghost index = local len + 0
    }

    #[test]
    fn no_ghost_ghost_pairs() {
        let ghosts = vec![p(0.0, 0.0, 0.0, 0.5), p(0.1, 0.0, 0.0, 0.5)];
        let pairs = colliding_pairs(&[], &ghosts, 1.0);
        assert!(pairs.is_empty());
    }

    #[test]
    fn elastic_resolution_conserves_momentum() {
        let mut ps = vec![
            p(0.0, 0.0, 0.0, 0.3).with_velocity(Vec3::X),
            p(0.5, 0.0, 0.0, 0.3).with_velocity(-Vec3::X),
        ];
        let before: Vec3 = ps.iter().fold(Vec3::ZERO, |a, q| a + q.velocity * q.mass);
        let pairs = colliding_pairs(&ps, &[], 0.6);
        assert_eq!(pairs.len(), 1);
        resolve_elastic(&mut ps, &pairs, 1.0);
        let after: Vec3 = ps.iter().fold(Vec3::ZERO, |a, q| a + q.velocity * q.mass);
        assert!((before - after).length() < 1e-5);
        // velocities swapped for equal masses under e = 1
        assert!((ps[0].velocity.x + 1.0).abs() < 1e-5);
        assert!((ps[1].velocity.x - 1.0).abs() < 1e-5);
    }

    #[test]
    fn separating_pairs_untouched() {
        let mut ps = vec![
            p(0.0, 0.0, 0.0, 0.3).with_velocity(-Vec3::X),
            p(0.5, 0.0, 0.0, 0.3).with_velocity(Vec3::X),
        ];
        let pairs = colliding_pairs(&ps, &[], 0.6);
        resolve_elastic(&mut ps, &pairs, 1.0);
        assert_eq!(ps[0].velocity, -Vec3::X);
        assert_eq!(ps[1].velocity, Vec3::X);
    }

    #[test]
    fn ghost_resolution_is_symmetric_and_conserves_momentum() {
        // Two calculators each hold one particle of an approaching pair;
        // each resolves its own side against the other's ghost. The summed
        // impulses must equal the two-sided resolution exactly.
        let a = p(0.0, 0.0, 0.0, 0.3).with_velocity(Vec3::X);
        let b = p(0.5, 0.0, 0.0, 0.3).with_velocity(-Vec3::X);

        // reference: both local
        let mut reference = vec![a, b];
        let pairs = colliding_pairs(&reference, &[], 0.6);
        resolve_elastic(&mut reference, &pairs, 1.0);

        // distributed: calc L owns a (ghost b), calc R owns b (ghost a)
        let mut left = vec![a];
        let lp = colliding_pairs(&left, &[b], 0.6);
        resolve_elastic_with_ghosts(&mut left, &[b], &lp, 1.0);
        let mut right = vec![b];
        let rp = colliding_pairs(&right, &[a], 0.6);
        resolve_elastic_with_ghosts(&mut right, &[a], &rp, 1.0);

        assert_eq!(left[0].velocity, reference[0].velocity);
        assert_eq!(right[0].velocity, reference[1].velocity);
        let total = left[0].velocity * left[0].mass + right[0].velocity * right[0].mass;
        assert!((total - Vec3::ZERO).length() < 1e-5, "momentum conserved: {total:?}");
    }

    #[test]
    fn ghost_resolution_handles_local_pairs_too() {
        let mut locals = vec![
            p(0.0, 0.0, 0.0, 0.3).with_velocity(Vec3::X),
            p(0.5, 0.0, 0.0, 0.3).with_velocity(-Vec3::X),
        ];
        let pairs = colliding_pairs(&locals, &[], 0.6);
        resolve_elastic_with_ghosts(&mut locals, &[], &pairs, 1.0);
        assert!((locals[0].velocity.x + 1.0).abs() < 1e-5);
        assert!((locals[1].velocity.x - 1.0).abs() < 1e-5);
    }

    #[test]
    fn coincident_particles_do_not_nan() {
        let mut ps = vec![
            p(1.0, 1.0, 1.0, 0.5).with_velocity(Vec3::X),
            p(1.0, 1.0, 1.0, 0.5).with_velocity(-Vec3::X),
        ];
        let pairs = colliding_pairs(&ps, &[], 1.0);
        resolve_elastic(&mut ps, &pairs, 1.0);
        assert!(ps[0].velocity.is_finite());
        assert!(ps[1].velocity.is_finite());
    }
}
