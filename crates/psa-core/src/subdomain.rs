//! Sub-domain bucket storage (paper §4).
//!
//! Instead of keeping all particles of a calculator's domain slice in one
//! vector, the validation library breaks the slice into `k` sub-slices and
//! stores each in a separate vector. Two operations become cheap:
//!
//! * **leaver detection** at the end of a frame only needs position checks,
//!   but re-bucketing localizes the work and keeps the donation path fast;
//! * **donation** during load balancing takes whole buckets from the
//!   boundary end and only sorts the one straddling bucket, instead of
//!   sorting the entire domain population.

use crate::{Particle, ParticleStore};
use psa_math::{Axis, Interval, Scalar};

/// A calculator's local particle storage for one system: its domain slice
/// split into `k` equal-width buckets, each an independent [`ParticleStore`].
#[derive(Clone, Debug)]
pub struct SubDomainStore {
    axis: Axis,
    slice: Interval,
    buckets: Vec<ParticleStore>,
    /// Reused by `collect_leavers_into` for in-slice bucket movers, so the
    /// every-frame leaver scan allocates nothing after warm-up.
    mover_scratch: Vec<Particle>,
}

impl SubDomainStore {
    /// Create an empty store over `slice` with `k >= 1` buckets.
    pub fn new(slice: Interval, axis: Axis, k: usize) -> Self {
        assert!(k >= 1, "need at least one sub-domain bucket");
        SubDomainStore {
            axis,
            slice,
            buckets: (0..k).map(|_| ParticleStore::new()).collect(),
            mover_scratch: Vec::new(),
        }
    }

    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// The domain slice this store covers.
    pub fn slice(&self) -> Interval {
        self.slice
    }

    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total particles across all buckets.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(ParticleStore::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(ParticleStore::is_empty)
    }

    /// Index of the bucket that holds coordinate `v` (clamped to the edge
    /// buckets; callers must have already routed out-of-slice particles to
    /// the exchange path).
    #[inline]
    fn bucket_index(&self, v: Scalar) -> usize {
        let k = self.buckets.len();
        if self.slice.is_empty() {
            return 0;
        }
        let t = (v - self.slice.lo) / self.slice.width();
        let i = (t * k as Scalar).floor() as isize;
        i.clamp(0, k as isize - 1) as usize
    }

    /// Insert a particle that belongs to this slice.
    ///
    /// Out-of-slice positions are accepted (they land in an edge bucket) so
    /// that a caller may insert first and let the next `collect_leavers`
    /// route them — matching the paper's "store in a different structure for
    /// future exchange" being an end-of-frame step, not an insert-time one.
    pub fn insert(&mut self, p: Particle) {
        let b = self.bucket_index(p.position.along(self.axis));
        self.buckets[b].push(p);
    }

    pub fn extend<I: IntoIterator<Item = Particle>>(&mut self, it: I) {
        for p in it {
            self.insert(p);
        }
    }

    /// Apply `f` to every particle (compute-phase actions run through this).
    pub fn for_each_mut<F: FnMut(&mut Particle)>(&mut self, mut f: F) {
        for b in &mut self.buckets {
            for p in b.iter_mut() {
                f(p);
            }
        }
    }

    /// Mutable slice views of the buckets in order — the store's canonical
    /// particle order, which the chunked compute kernel
    /// ([`crate::kernel`]) decomposes into fixed-size chunks. The slices are
    /// disjoint, so they may be mutated from different worker threads.
    pub fn bucket_slices_mut(&mut self) -> impl Iterator<Item = &mut [Particle]> {
        self.buckets.iter_mut().map(ParticleStore::as_mut_slice)
    }

    /// Iterate all particles immutably.
    pub fn iter(&self) -> impl Iterator<Item = &Particle> {
        self.buckets.iter().flat_map(|b| b.iter())
    }

    /// Remove particles failing `keep`; returns how many were removed.
    pub fn retain<F: FnMut(&Particle) -> bool>(&mut self, mut keep: F) -> usize {
        self.buckets.iter_mut().map(|b| b.retain_unordered(&mut keep)).sum()
    }

    /// Remove and return every particle whose coordinate left this slice
    /// (the end-of-frame exchange staging, paper §3.2.3/§3.2.4), then
    /// re-bucket any particle that moved across bucket boundaries but stayed
    /// in the slice.
    pub fn collect_leavers(&mut self) -> Vec<Particle> {
        let mut leavers = Vec::new();
        self.collect_leavers_into(&mut leavers);
        leavers
    }

    /// [`SubDomainStore::collect_leavers`] into a caller-owned buffer — the
    /// allocation-free variant the frame hot path uses. Leavers are
    /// appended; the in-slice mover staging reuses an internal scratch
    /// buffer, so a warmed-up store allocates nothing here.
    pub fn collect_leavers_into(&mut self, leavers: &mut Vec<Particle>) {
        let axis = self.axis;
        let slice = self.slice;
        let k = self.buckets.len();
        debug_assert!(self.mover_scratch.is_empty());
        for (bi, b) in self.buckets.iter_mut().enumerate() {
            let mut i = 0;
            while i < b.len() {
                let v = b.as_slice()[i].position.along(axis);
                if !slice.contains(v) {
                    leavers.push(b.swap_remove(i));
                } else {
                    // still ours; re-bucket if it crossed a bucket boundary
                    let target = if slice.is_empty() {
                        0
                    } else {
                        let t = (v - slice.lo) / slice.width();
                        ((t * k as Scalar).floor() as isize).clamp(0, k as isize - 1) as usize
                    };
                    if target != bi {
                        self.mover_scratch.push(b.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
        }
        // Re-insert in staging order (matches the historical behavior, which
        // the bit-reproducibility of seeded runs depends on).
        for i in 0..self.mover_scratch.len() {
            let p = self.mover_scratch[i];
            self.insert(p);
        }
        self.mover_scratch.clear();
    }

    /// Donate the `count` particles nearest the **low** boundary (for a left
    /// neighbor). Whole low buckets are taken unsorted; only the straddling
    /// bucket is sorted — the §4 optimization the bucket storage exists for.
    /// Returns the donated particles and how many particles had to be
    /// sorted (the cost the executors charge).
    pub fn donate_low(&mut self, count: usize) -> (Vec<Particle>, usize) {
        let mut out = Vec::with_capacity(count.min(self.len()));
        let mut sorted = 0;
        for b in &mut self.buckets {
            if out.len() >= count {
                break;
            }
            let need = count - out.len();
            if b.len() <= need {
                out.append(&mut b.take_all());
            } else {
                sorted += b.len();
                b.sort_along(self.axis);
                out.extend(b.donate_low(need, self.axis));
            }
        }
        (out, sorted)
    }

    /// Donate the `count` particles nearest the **high** boundary (for a
    /// right neighbor). Mirror image of [`Self::donate_low`].
    pub fn donate_high(&mut self, count: usize) -> (Vec<Particle>, usize) {
        let mut out = Vec::with_capacity(count.min(self.len()));
        let mut sorted = 0;
        for b in self.buckets.iter_mut().rev() {
            if out.len() >= count {
                break;
            }
            let need = count - out.len();
            if b.len() <= need {
                out.append(&mut b.take_all());
            } else {
                sorted += b.len();
                b.sort_along(self.axis);
                out.extend(b.donate_high(need, self.axis));
            }
        }
        (out, sorted)
    }

    /// Replace the slice (after the manager broadcast new dimensions) and
    /// re-bucket everything into the new geometry. Particles now outside the
    /// new slice are returned for exchange.
    pub fn reshape(&mut self, new_slice: Interval) -> Vec<Particle> {
        let all: Vec<Particle> = self.buckets.iter_mut().flat_map(|b| b.take_all()).collect();
        self.slice = new_slice;
        let axis = self.axis;
        let mut leavers = Vec::new();
        for p in all {
            if new_slice.contains(p.position.along(axis)) {
                self.insert(p);
            } else {
                leavers.push(p);
            }
        }
        leavers
    }

    /// Drain every particle (used when shipping the frame to the image
    /// generator in copy mode, and by tests).
    pub fn take_all(&mut self) -> Vec<Particle> {
        self.buckets.iter_mut().flat_map(|b| b.take_all()).collect()
    }

    /// Copy the particles within `width` of each slice edge — the ghost
    /// slabs shipped to the left and right neighbor for inter-particle
    /// collision detection (paper §3.1.4's locality argument: only these
    /// boundary particles ever need to cross process lines mid-frame).
    /// Returns `(low-edge slab, high-edge slab)`.
    pub fn boundary_slabs(&self, width: Scalar) -> (Vec<Particle>, Vec<Particle>) {
        let axis = self.axis;
        let slice = self.slice;
        let mut low = Vec::new();
        let mut high = Vec::new();
        for p in self.iter() {
            let v = p.position.along(axis);
            if v < slice.lo + width {
                low.push(*p);
            }
            if v >= slice.hi - width {
                high.push(*p);
            }
        }
        (low, high)
    }

    /// Extreme coordinate along the axis among held particles.
    pub fn extent(&self) -> Option<(Scalar, Scalar)> {
        let mut lo = Scalar::INFINITY;
        let mut hi = Scalar::NEG_INFINITY;
        let mut any = false;
        for b in &self.buckets {
            if let Some((l, h)) = b.extent_along(self.axis) {
                lo = lo.min(l);
                hi = hi.max(h);
                any = true;
            }
        }
        any.then_some((lo, hi))
    }

    /// Per-bucket populations (exposed for the sub-domain ablation bench).
    pub fn bucket_sizes(&self) -> Vec<usize> {
        self.buckets.iter().map(ParticleStore::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::Vec3;

    fn p(x: f32) -> Particle {
        Particle::at(Vec3::new(x, 0.0, 0.0))
    }

    fn store(k: usize) -> SubDomainStore {
        SubDomainStore::new(Interval::new(0.0, 10.0), Axis::X, k)
    }

    #[test]
    fn insert_routes_to_buckets() {
        let mut s = store(5);
        for x in [0.5, 2.5, 4.5, 6.5, 8.5] {
            s.insert(p(x));
        }
        assert_eq!(s.bucket_sizes(), vec![1, 1, 1, 1, 1]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn collect_leavers_takes_out_of_slice() {
        let mut s = store(4);
        s.insert(p(1.0));
        s.insert(p(9.0));
        // Move them via for_each_mut: one leaves left, one stays.
        s.for_each_mut(|q| q.position.x -= 2.0);
        let leavers = s.collect_leavers();
        assert_eq!(leavers.len(), 1);
        assert_eq!(leavers[0].position.x, -1.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn collect_leavers_rebuckets_movers() {
        let mut s = store(10);
        s.insert(p(0.5)); // bucket 0
        s.for_each_mut(|q| q.position.x = 9.5); // should end in bucket 9
        let leavers = s.collect_leavers();
        assert!(leavers.is_empty());
        let sizes = s.bucket_sizes();
        assert_eq!(sizes[9], 1);
        assert_eq!(sizes[0], 0);
    }

    #[test]
    fn donate_low_takes_lowest() {
        let mut s = store(5);
        for x in [9.0, 1.0, 3.0, 7.0, 5.0, 0.5] {
            s.insert(p(x));
        }
        let (donated, _) = s.donate_low(3);
        let mut xs: Vec<f32> = donated.iter().map(|q| q.position.x).collect();
        xs.sort_by(f32::total_cmp);
        assert_eq!(xs, vec![0.5, 1.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|q| q.position.x >= 5.0));
    }

    #[test]
    fn donate_high_takes_highest() {
        let mut s = store(5);
        for x in [9.0, 1.0, 3.0, 7.0, 5.0, 0.5] {
            s.insert(p(x));
        }
        let (donated, _) = s.donate_high(2);
        let mut xs: Vec<f32> = donated.iter().map(|q| q.position.x).collect();
        xs.sort_by(f32::total_cmp);
        assert_eq!(xs, vec![7.0, 9.0]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn donate_straddling_bucket_is_exact() {
        // All particles in one bucket: donation must still pick the correct
        // extremes by sorting that bucket.
        let mut s = store(1);
        for x in [4.0, 2.0, 8.0, 6.0] {
            s.insert(p(x));
        }
        let (d, sorted) = s.donate_low(2);
        assert_eq!(sorted, 4, "the single straddling bucket must be sorted");
        let mut xs: Vec<f32> = d.iter().map(|q| q.position.x).collect();
        xs.sort_by(f32::total_cmp);
        assert_eq!(xs, vec![2.0, 4.0]);
    }

    #[test]
    fn donate_more_than_population() {
        let mut s = store(3);
        s.insert(p(1.0));
        let (d, sorted) = s.donate_high(10);
        assert_eq!(sorted, 0, "whole-bucket takes need no sort");
        assert_eq!(d.len(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn reshape_returns_new_leavers() {
        let mut s = store(4);
        for x in [1.0, 4.0, 6.0, 9.0] {
            s.insert(p(x));
        }
        let leavers = s.reshape(Interval::new(3.0, 7.0));
        assert_eq!(s.slice(), Interval::new(3.0, 7.0));
        assert_eq!(leavers.len(), 2);
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|q| (3.0..7.0).contains(&q.position.x)));
    }

    #[test]
    fn reshape_to_empty_slice_evicts_all() {
        let mut s = store(4);
        for x in [1.0, 2.0] {
            s.insert(p(x));
        }
        let leavers = s.reshape(Interval::new(5.0, 5.0));
        assert_eq!(leavers.len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn retain_counts_removed() {
        let mut s = store(4);
        for x in [1.0, 2.0, 8.0, 9.0] {
            s.insert(p(x));
        }
        let removed = s.retain(|q| q.position.x < 5.0);
        assert_eq!(removed, 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn boundary_slabs_pick_edges() {
        let mut s = store(4); // slice [0, 10)
        for x in [0.2, 0.8, 5.0, 9.3, 9.9] {
            s.insert(p(x));
        }
        let (low, high) = s.boundary_slabs(1.0);
        let mut lows: Vec<f32> = low.iter().map(|q| q.position.x).collect();
        lows.sort_by(f32::total_cmp);
        assert_eq!(lows, vec![0.2, 0.8]);
        let mut highs: Vec<f32> = high.iter().map(|q| q.position.x).collect();
        highs.sort_by(f32::total_cmp);
        assert_eq!(highs, vec![9.3, 9.9]);
        // slabs are copies: nothing removed
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn extent_across_buckets() {
        let mut s = store(8);
        for x in [2.0, 5.0, 7.5] {
            s.insert(p(x));
        }
        assert_eq!(s.extent(), Some((2.0, 7.5)));
        assert_eq!(store(3).extent(), None);
    }
}
