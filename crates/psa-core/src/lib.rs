//! Particle data model for the IPDPS'05 cluster animation reproduction.
//!
//! This crate implements the *sequential* building blocks of the paper's
//! model (§3.1): particles with the four mandatory properties (position,
//! orientation, age, velocity), particle systems, per-system spatial
//! domains sliced along one axis, the sub-domain bucket storage the authors
//! introduced in their validation library (§4), the action taxonomy
//! (§3.1.5), external collision objects, and an optional uniform-grid
//! inter-particle collision broadphase (the hook the model preserves by
//! keeping data locality).
//!
//! Everything here is single-process; the distribution logic (roles, frame
//! protocol, load balancing) lives in `psa-runtime`.

pub mod actions;
pub mod collide;
pub mod domain;
pub mod frame;
pub mod invariants;
pub mod kernel;
pub mod objects;
pub mod particle;
pub mod store;
pub mod subdomain;
pub mod system;

pub use actions::{Action, ActionCtx, ActionKind};
pub use domain::DomainMap;
pub use frame::FrameStats;
pub use invariants::InvariantViolation;
pub use particle::{Particle, WIRE_BYTES};
pub use store::ParticleStore;
pub use subdomain::SubDomainStore;
pub use system::{SystemId, SystemSpec};
