//! The particle record.
//!
//! Paper §3.1.2 mandates four basic properties for every particle
//! independent of the animation kind: position, orientation, age, velocity.
//! The validation library (a rewrite of McAllister's Particle System API)
//! also carries the rendering attributes every effect needs — color, size,
//! alpha and mass — so we include them here.
//!
//! Particles deliberately have **no identifier** (paper §3.1.2): identity is
//! (system, storage slot), and migration between processes only needs the
//! payload plus the system index.

use psa_math::{Scalar, Vec3};

/// One particle. `repr(C)`, 64 bytes, `Copy` — sized so a cache line holds
/// one particle and a migration message is a flat memcpy.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Particle {
    /// Position in space (paper-mandated).
    pub position: Vec3,
    /// Velocity (paper-mandated).
    pub velocity: Vec3,
    /// Orientation (paper-mandated) — a direction vector, e.g. the axis a
    /// snowflake sprite is drawn along.
    pub orientation: Vec3,
    /// RGB color in `[0,1]`.
    pub color: Vec3,
    /// Age in seconds since emission (paper-mandated).
    pub age: Scalar,
    /// Render size (world units).
    pub size: Scalar,
    /// Opacity in `[0,1]`.
    pub alpha: Scalar,
    /// Mass (used by gravity-as-force variants and bounce restitution).
    pub mass: Scalar,
}

/// Bytes a particle occupies on the wire when migrating between processes:
/// the 64-byte payload plus a 6-byte (system id, flags) header, matching the
/// ~70 B/particle implied by the paper's reported exchange volumes
/// (§5.1: 16 procs × ~560 particles ≈ 613 KB; §5.2: 16 × ~4000 ≈ 4375 KB).
pub const WIRE_BYTES: usize = std::mem::size_of::<Particle>() + 6;

impl Particle {
    /// A unit-mass, white, size-1 particle at the origin.
    pub fn at(position: Vec3) -> Self {
        Particle {
            position,
            velocity: Vec3::ZERO,
            orientation: Vec3::Y,
            color: Vec3::ONE,
            age: 0.0,
            size: 1.0,
            alpha: 1.0,
            mass: 1.0,
        }
    }

    /// Builder-style velocity.
    pub fn with_velocity(mut self, v: Vec3) -> Self {
        self.velocity = v;
        self
    }

    /// Builder-style color.
    pub fn with_color(mut self, c: Vec3) -> Self {
        self.color = c;
        self
    }

    /// Builder-style size.
    pub fn with_size(mut self, s: Scalar) -> Self {
        self.size = s;
        self
    }

    /// Kinetic energy `½ m v²` — used by tests as a conserved-ish quantity
    /// and by the statistics reduction example.
    pub fn kinetic_energy(&self) -> Scalar {
        0.5 * self.mass * self.velocity.length_squared()
    }

    /// Sanity predicate used by debug assertions across the workspace.
    pub fn is_sane(&self) -> bool {
        self.position.is_finite()
            && self.velocity.is_finite()
            && self.age >= 0.0
            && self.age.is_finite()
            && self.size >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn particle_is_64_bytes() {
        // The wire-size accounting in netsim and the paper-matching exchange
        // volumes both assume this; fail loudly if the layout drifts.
        assert_eq!(std::mem::size_of::<Particle>(), 64);
        assert_eq!(WIRE_BYTES, 70);
    }

    #[test]
    fn builder_chain() {
        let p = Particle::at(Vec3::new(1.0, 2.0, 3.0))
            .with_velocity(Vec3::X)
            .with_color(Vec3::new(0.5, 0.5, 1.0))
            .with_size(2.5);
        assert_eq!(p.position, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(p.velocity, Vec3::X);
        assert_eq!(p.size, 2.5);
        assert_eq!(p.age, 0.0);
    }

    #[test]
    fn kinetic_energy() {
        let p = Particle::at(Vec3::ZERO).with_velocity(Vec3::new(3.0, 4.0, 0.0));
        assert_eq!(p.kinetic_energy(), 12.5); // ½·1·25
    }

    #[test]
    fn sanity() {
        assert!(Particle::at(Vec3::ZERO).is_sane());
        let mut p = Particle::at(Vec3::ZERO);
        p.age = -1.0;
        assert!(!p.is_sane());
        p.age = 0.0;
        p.position.x = f32::NAN;
        assert!(!p.is_sane());
    }
}
