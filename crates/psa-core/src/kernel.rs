//! Deterministic intra-rank parallel compute kernels.
//!
//! The paper's compute phase is embarrassingly parallel *within* a
//! calculator (§3.2.2: property and position actions touch only local
//! particles), so this module runs an [`ActionList`] over fixed-size chunks
//! of the store's deterministic particle order, on `std::thread::scope`
//! workers. Determinism for any worker count — including 1 — comes from
//! three rules:
//!
//! 1. **chunk layout is worker-independent**: chunks are consecutive
//!    `chunk`-sized windows of each bucket slice, in bucket order, so the
//!    decomposition is a pure function of store contents and chunk size;
//! 2. **RNG streams are chunk-keyed**: chunk `c` of action `a` draws from
//!    `base.split(a).split(c)`, where `base` is the caller's
//!    `(seed, system, rank, frame)` stream — which worker runs the chunk
//!    never matters;
//! 3. **results merge in chunk order**: particle state is mutated in place
//!    (each chunk is a disjoint `&mut` slice), and per-chunk
//!    [`ActionOutcome`]s are folded in ascending chunk index.
//!
//! Actions that must see the whole store at once (the `retain`-based
//! killers) opt out via `Action::apply_chunk` returning `None`; the
//! kernel runs them serially on the per-action stream, which is equally
//! worker-independent.
//!
//! `chunk == 0` selects the **legacy serial path**: the whole action list
//! runs on the single caller stream exactly as the executors did before
//! this module existed, keeping every seed-calibrated table bit-identical.
//! This file is the one module where `thread::scope`/`thread::spawn` are
//! allowed in simulation crates (the `thread-confinement` psa-verify lint
//! enforces the confinement).

use crate::actions::{ActionCtx, ActionList, ActionOutcome};
use crate::{Particle, SubDomainStore};
use psa_math::{Rng64, Scalar};

/// Chunk size used when a caller asks for workers but leaves `chunk` at 0.
pub const DEFAULT_CHUNK: usize = 1024;

/// What one kernel invocation did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelRun {
    /// Merged outcome over every action.
    pub outcome: ActionOutcome,
    /// Cost-weighted work (`Σ applied_i × weight_i`), same accounting as
    /// [`ActionList::run`].
    pub weighted: f64,
    /// Chunks executed across all chunkable actions (0 on the legacy path).
    pub chunks: u64,
}

/// Modeled intra-rank compute scaling: the elapsed fraction of serial time
/// when `chunks` equal-cost chunks are scheduled round-robin on `workers`
/// workers — the busiest worker (`ceil(chunks / workers)` chunks) bounds the
/// phase. 1.0 on the serial path (no chunks or one worker).
pub fn parallel_scale(chunks: u64, workers: usize) -> f64 {
    if workers <= 1 || chunks == 0 {
        return 1.0;
    }
    let w = workers as u64;
    (chunks.div_ceil(w) as f64) / (chunks as f64)
}

/// Run `actions` over `store` with chunk-keyed RNG streams.
///
/// `base` is the per-(seed, system, rank, frame) stream the executors
/// already derive; `chunk == 0` is the legacy serial path (see module
/// docs); `workers` is the `thread::scope` worker count (clamped to at
/// least 1, and to the chunk count — spare workers are never spawned).
pub fn run_actions(
    actions: &ActionList,
    dt: Scalar,
    frame: u64,
    base: Rng64,
    store: &mut SubDomainStore,
    chunk: usize,
    workers: usize,
) -> KernelRun {
    let chunk = if workers > 1 && chunk == 0 { DEFAULT_CHUNK } else { chunk };
    if chunk == 0 {
        let mut rng = base;
        let mut ctx = ActionCtx { dt, frame, rng: &mut rng };
        let (outcome, weighted) = actions.run(&mut ctx, store);
        return KernelRun { outcome, weighted, chunks: 0 };
    }

    let mut out = KernelRun::default();
    for (ai, a) in actions.iter().enumerate() {
        let act_rng = base.split(ai as u64);
        // Capability probe: chunkable actions answer `Some` for any slice,
        // including the empty one (no RNG is drawn over zero particles).
        let chunkable = {
            let mut probe = act_rng.clone();
            let mut ctx = ActionCtx { dt, frame, rng: &mut probe };
            a.apply_chunk(&mut ctx, &mut []).is_some()
        };
        let o = if !chunkable {
            // Whole-store actions (retain-based killers) run serially on the
            // per-action stream — still independent of the worker count.
            let mut rng = act_rng;
            let mut ctx = ActionCtx { dt, frame, rng: &mut rng };
            a.apply(&mut ctx, store)
        } else if workers <= 1 {
            // In-place single-worker path: no staging, no spawning.
            let mut acc = ActionOutcome::default();
            let mut ci: u64 = 0;
            for bucket in store.bucket_slices_mut() {
                for piece in bucket.chunks_mut(chunk) {
                    let mut rng = act_rng.split(ci);
                    let mut ctx = ActionCtx { dt, frame, rng: &mut rng };
                    acc = acc.merge(apply_chunk_checked(a, &mut ctx, piece));
                    ci += 1;
                }
            }
            out.chunks += ci;
            acc
        } else {
            let mut pieces: Vec<(u64, &mut [Particle])> = Vec::new();
            for bucket in store.bucket_slices_mut() {
                for piece in bucket.chunks_mut(chunk) {
                    let ci = pieces.len() as u64;
                    pieces.push((ci, piece));
                }
            }
            out.chunks += pieces.len() as u64;
            let w = workers.min(pieces.len()).max(1);
            // Round-robin assignment; any assignment yields the same state
            // because streams are chunk-keyed, but this one also balances.
            let mut parts: Vec<Vec<(u64, &mut [Particle])>> = (0..w).map(|_| Vec::new()).collect();
            for (i, piece) in pieces.into_iter().enumerate() {
                parts[i % w].push(piece);
            }
            let mut tagged: Vec<(u64, ActionOutcome)> = Vec::new();
            std::thread::scope(|s| {
                let handles: Vec<_> = parts
                    .into_iter()
                    .map(|part| {
                        let act_rng = act_rng.clone();
                        s.spawn(move || {
                            let mut local = Vec::with_capacity(part.len());
                            for (ci, piece) in part {
                                let mut rng = act_rng.split(ci);
                                let mut ctx = ActionCtx { dt, frame, rng: &mut rng };
                                local.push((ci, apply_chunk_checked(a, &mut ctx, piece)));
                            }
                            local
                        })
                    })
                    .collect();
                for h in handles {
                    tagged.extend(h.join().expect("kernel worker panicked"));
                }
            });
            // Merge in chunk order (outcome counts are sums, but the fixed
            // fold order keeps the contract literal and future-proof).
            tagged.sort_unstable_by_key(|(ci, _)| *ci);
            tagged.into_iter().fold(ActionOutcome::default(), |acc, (_, o)| acc.merge(o))
        };
        out.weighted += o.applied as f64 * a.cost_weight();
        out.outcome = out.outcome.merge(o);
    }
    out
}

/// A chunkable action must stay chunkable for every slice — a `None` here
/// after a `Some` probe would silently skip particles.
fn apply_chunk_checked(
    a: &dyn crate::Action,
    ctx: &mut ActionCtx<'_>,
    piece: &mut [Particle],
) -> ActionOutcome {
    a.apply_chunk(ctx, piece)
        .unwrap_or_else(|| panic!("action '{}' revoked apply_chunk mid-run", a.name()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::{ActionList, Damping, Fade, Gravity, KillOld, MoveParticles, RandomAccel};
    use psa_math::{Axis, Interval, Vec3};

    fn seeded_store(n: usize, buckets: usize) -> SubDomainStore {
        let mut rng = Rng64::new(0x57A7E);
        let mut s = SubDomainStore::new(Interval::new(-50.0, 50.0), Axis::X, buckets);
        for _ in 0..n {
            let mut p = Particle::at(Vec3::new(rng.range(-49.0, 49.0), rng.range(0.0, 20.0), 0.0));
            p.age = rng.range(0.0, 2.0);
            s.insert(p);
        }
        s
    }

    fn state_sig(s: &SubDomainStore) -> Vec<(u32, u32, u32)> {
        s.iter()
            .map(|p| (p.position.x.to_bits(), p.velocity.x.to_bits(), p.velocity.y.to_bits()))
            .collect()
    }

    fn stochastic_list() -> ActionList {
        ActionList::new()
            .then(Gravity::earth())
            .then(RandomAccel::new(2.0))
            .then(Damping::new(0.1))
            .then(KillOld::new(5.0))
            .then(Fade::new(0.01, false))
            .then(MoveParticles)
    }

    #[test]
    fn worker_count_never_changes_state() {
        for &chunk in &[7usize, 64, 1024] {
            let mut base_run = seeded_store(700, 5);
            let r1 =
                run_actions(&stochastic_list(), 0.05, 3, Rng64::new(99), &mut base_run, chunk, 1);
            let want = state_sig(&base_run);
            for &w in &[2usize, 4, 8] {
                let mut s = seeded_store(700, 5);
                let r = run_actions(&stochastic_list(), 0.05, 3, Rng64::new(99), &mut s, chunk, w);
                assert_eq!(state_sig(&s), want, "chunk {chunk} workers {w}");
                assert_eq!(r.outcome, r1.outcome);
                assert_eq!(r.weighted, r1.weighted);
                assert_eq!(r.chunks, r1.chunks);
            }
        }
    }

    #[test]
    fn legacy_path_matches_action_list_run() {
        let mut a = seeded_store(300, 4);
        let mut b = seeded_store(300, 4);
        let kr = run_actions(&stochastic_list(), 0.05, 7, Rng64::new(5), &mut a, 0, 1);
        let mut rng = Rng64::new(5);
        let mut ctx = ActionCtx { dt: 0.05, frame: 7, rng: &mut rng };
        let (out, weighted) = stochastic_list().run(&mut ctx, &mut b);
        assert_eq!(state_sig(&a), state_sig(&b));
        assert_eq!(kr.outcome, out);
        assert_eq!(kr.weighted, weighted);
        assert_eq!(kr.chunks, 0);
    }

    #[test]
    fn chunk_count_is_reported_per_chunkable_action() {
        let mut s = seeded_store(100, 1);
        // 5 chunkable actions (KillOld opts out) × ceil(100/32) = 4 chunks.
        let kr = run_actions(&stochastic_list(), 0.05, 0, Rng64::new(1), &mut s, 32, 1);
        assert_eq!(kr.chunks, 5 * 4);
    }

    #[test]
    fn workers_requested_without_chunk_size_get_the_default() {
        let mut a = seeded_store(2000, 3);
        let mut b = seeded_store(2000, 3);
        let ra = run_actions(&stochastic_list(), 0.05, 1, Rng64::new(2), &mut a, 0, 4);
        let rb = run_actions(&stochastic_list(), 0.05, 1, Rng64::new(2), &mut b, DEFAULT_CHUNK, 1);
        assert_eq!(state_sig(&a), state_sig(&b));
        assert_eq!(ra.chunks, rb.chunks);
    }

    #[test]
    fn parallel_scale_is_the_busiest_worker_bound() {
        assert_eq!(parallel_scale(0, 8), 1.0);
        assert_eq!(parallel_scale(200, 1), 1.0);
        assert_eq!(parallel_scale(200, 4), 0.25);
        assert_eq!(parallel_scale(5, 4), 2.0 / 5.0);
        assert!(parallel_scale(7, 16) > 0.0);
    }
}
