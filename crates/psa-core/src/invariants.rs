//! Runtime invariant checks for the frame protocol.
//!
//! The paper's model only reproduces its tables if every executor preserves
//! three structural properties on every frame:
//!
//! 1. **Conservation** — the particle exchange moves particles between
//!    calculators, it never creates or destroys them. After an exchange,
//!    `after == before - outgoing + incoming` on every rank, and the
//!    rank-summed population is unchanged.
//! 2. **Partition** — the per-system domain slices exactly partition the
//!    system's space: contiguous, non-overlapping, first edge at the space
//!    minimum, last edge at the space maximum.
//! 3. **Protocol order** — the recorded trace of one frame is exactly the
//!    Figure-2 sequence (checked in `psa-runtime`, which owns the trace
//!    vocabulary).
//!
//! The checks are always compiled (so they cannot bit-rot) but executors
//! only *call* them when the `strict-invariants` feature is on, keeping the
//! hot path clean in normal builds. Violations are values, not panics: the
//! executor converts them into its own typed error so a broken invariant
//! surfaces as a failed run report instead of a poisoned thread.

use psa_math::{Interval, Scalar, Vec3};

use crate::domain::DomainMap;
use crate::particle::Particle;

/// True when the `strict-invariants` feature is enabled; executors guard
/// their invariant calls with this so release builds pay nothing.
pub const ENABLED: bool = cfg!(feature = "strict-invariants");

/// Slack for partition edge comparisons. Cuts are `f32` screen/world units;
/// exact equality is required for interior cuts (they are copied, not
/// recomputed), while the outer edges compare against the space the map was
/// built from.
const EDGE_EPS: Scalar = 1e-4;

/// A broken structural invariant, with enough context to debug the frame.
#[derive(Clone, Debug, PartialEq)]
pub enum InvariantViolation {
    /// The exchange created or destroyed particles on one rank.
    ConservationBroken {
        frame: u64,
        system: usize,
        rank: usize,
        before: usize,
        outgoing: usize,
        incoming: usize,
        after: usize,
    },
    /// The rank-summed population changed across an exchange.
    GlobalConservationBroken { frame: u64, system: usize, before: usize, after: usize },
    /// A degraded run (some ranks declared dead) lost or invented particles
    /// beyond the losses attributed to the dead ranks.
    DegradedConservationBroken {
        frame: u64,
        system: usize,
        before: usize,
        after: usize,
        /// Particles the run has accounted as lost to dead ranks so far.
        lost: usize,
    },
    /// The domain slices do not partition the system space.
    PartitionBroken { frame: u64, system: usize, detail: String },
    /// A particle carries a non-finite (NaN or infinite) position component.
    /// No domain slice can own such a particle, so it would silently evade
    /// both the exchange and the load balancer.
    NonFinitePosition { frame: u64, system: usize, rank: usize, position: [Scalar; 3] },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::ConservationBroken {
                frame,
                system,
                rank,
                before,
                outgoing,
                incoming,
                after,
            } => write!(
                f,
                "frame {frame} sys {system} rank {rank}: exchange broke conservation \
                 ({before} - {outgoing} + {incoming} != {after})"
            ),
            InvariantViolation::GlobalConservationBroken { frame, system, before, after } => {
                write!(
                    f,
                    "frame {frame} sys {system}: global population changed across \
                     exchange ({before} -> {after})"
                )
            }
            InvariantViolation::DegradedConservationBroken {
                frame,
                system,
                before,
                after,
                lost,
            } => write!(
                f,
                "frame {frame} sys {system}: degraded-mode conservation broken \
                 ({before} != {after} alive + {lost} lost to dead ranks)"
            ),
            InvariantViolation::PartitionBroken { frame, system, detail } => {
                write!(f, "frame {frame} sys {system}: domain partition broken: {detail}")
            }
            InvariantViolation::NonFinitePosition { frame, system, rank, position } => write!(
                f,
                "frame {frame} sys {system} rank {rank}: non-finite particle position \
                 [{}, {}, {}]",
                position[0], position[1], position[2]
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Per-rank conservation: `after == before - outgoing + incoming`.
pub fn check_exchange_conservation(
    frame: u64,
    system: usize,
    rank: usize,
    before: usize,
    outgoing: usize,
    incoming: usize,
    after: usize,
) -> Result<(), InvariantViolation> {
    if before + incoming == after + outgoing {
        Ok(())
    } else {
        Err(InvariantViolation::ConservationBroken {
            frame,
            system,
            rank,
            before,
            outgoing,
            incoming,
            after,
        })
    }
}

/// Global conservation: the total population is unchanged by an exchange or
/// a balancing transfer round (creations/kills happen outside it).
pub fn check_global_conservation(
    frame: u64,
    system: usize,
    before: usize,
    after: usize,
) -> Result<(), InvariantViolation> {
    if before == after {
        Ok(())
    } else {
        Err(InvariantViolation::GlobalConservationBroken { frame, system, before, after })
    }
}

/// Degraded-mode conservation: in a run where calculators have been
/// declared dead, the population held by *running* ranks may only shrink by
/// exactly the particles accounted as lost (confiscated with a dead rank or
/// sent towards one). `before` is the pre-fault population baseline for the
/// comparison window, `after` the running-rank population now, `lost` the
/// losses attributed in between.
pub fn check_global_conservation_with_losses(
    frame: u64,
    system: usize,
    before: usize,
    after: usize,
    lost: usize,
) -> Result<(), InvariantViolation> {
    if before == after + lost {
        Ok(())
    } else {
        Err(InvariantViolation::DegradedConservationBroken { frame, system, before, after, lost })
    }
}

/// The domain slices exactly partition `space`: first edge on the space
/// minimum, last edge on the space maximum, interior edges shared exactly
/// (slice `i`'s high edge is slice `i+1`'s low edge), every slice
/// non-inverted.
pub fn check_partition(
    frame: u64,
    system: usize,
    space: Interval,
    domains: &DomainMap,
) -> Result<(), InvariantViolation> {
    let broken = |detail: String| InvariantViolation::PartitionBroken { frame, system, detail };
    let n = domains.len();
    if n == 0 {
        return Err(broken("domain map has zero slices".into()));
    }
    let first = domains.slice(0);
    let last = domains.slice(n - 1);
    // Infinite-space mode uses the ±1e9 sentinel interval (and the slices
    // only cover where particles are), so outer edges are compared only
    // against genuinely bounded spaces.
    let bounded = |edge: Scalar| edge.is_finite() && edge.abs() < Interval::INFINITE.hi;
    if bounded(space.lo) && (first.lo - space.lo).abs() > EDGE_EPS {
        return Err(broken(format!("first edge {} != space lo {}", first.lo, space.lo)));
    }
    if bounded(space.hi) && (last.hi - space.hi).abs() > EDGE_EPS {
        return Err(broken(format!("last edge {} != space hi {}", last.hi, space.hi)));
    }
    for i in 0..n {
        let s = domains.slice(i);
        if s.lo > s.hi {
            return Err(broken(format!("slice {i} inverted: [{}, {}]", s.lo, s.hi)));
        }
        if i + 1 < n {
            let next = domains.slice(i + 1);
            // Interior cuts are shared values, so exact equality is the
            // invariant — a gap or overlap of any width loses particles.
            if s.hi != next.lo {
                return Err(broken(format!(
                    "slice {i} ends at {} but slice {} starts at {}",
                    s.hi,
                    i + 1,
                    next.lo
                )));
            }
        }
    }
    Ok(())
}

/// Every particle's position is finite on all three axes. A NaN or infinite
/// coordinate falls outside every domain slice, so the exchange never picks
/// the particle up and the partition check still passes — the corruption is
/// invisible to the other invariants. Returns the first offender.
pub fn check_finite_positions<'a, I>(
    frame: u64,
    system: usize,
    rank: usize,
    particles: I,
) -> Result<(), InvariantViolation>
where
    I: IntoIterator<Item = &'a Particle>,
{
    for p in particles {
        let v = p.position;
        if !(v.x.is_finite() && v.y.is_finite() && v.z.is_finite()) {
            return Err(InvariantViolation::NonFinitePosition {
                frame,
                system,
                rank,
                position: [v.x, v.y, v.z],
            });
        }
    }
    Ok(())
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Order-sensitive FNV-1a over the exact bit patterns of a particle stream.
///
/// This is the frame checksum the determinism regression tests compare: two
/// runs with the same seed must produce bit-identical particle states in
/// the same order, so any drift — a reordered exchange, an extra RNG draw,
/// a float contraction difference — changes the hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StateHash(u64);

impl StateHash {
    pub fn new() -> Self {
        StateHash(FNV_OFFSET)
    }

    #[inline]
    fn mix(&mut self, word: u32) {
        for b in word.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    fn mix_vec(&mut self, v: Vec3) {
        self.mix(v.x.to_bits());
        self.mix(v.y.to_bits());
        self.mix(v.z.to_bits());
    }

    /// Fold one particle's full state into the hash.
    #[inline]
    pub fn push(&mut self, p: &Particle) {
        self.mix_vec(p.position);
        self.mix_vec(p.velocity);
        self.mix_vec(p.orientation);
        self.mix_vec(p.color);
        self.mix(p.age.to_bits());
        self.mix(p.size.to_bits());
        self.mix(p.alpha.to_bits());
        self.mix(p.mass.to_bits());
    }

    pub fn extend<'a, I: IntoIterator<Item = &'a Particle>>(&mut self, it: I) {
        for p in it {
            self.push(p);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for StateHash {
    fn default() -> Self {
        StateHash::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::Axis;

    #[test]
    fn conservation_accepts_balanced_exchange() {
        assert!(check_exchange_conservation(3, 0, 1, 100, 10, 7, 97).is_ok());
        assert!(check_exchange_conservation(3, 0, 1, 0, 0, 0, 0).is_ok());
    }

    #[test]
    fn conservation_rejects_lost_particles() {
        let err = check_exchange_conservation(3, 0, 1, 100, 10, 7, 96).unwrap_err();
        assert!(matches!(err, InvariantViolation::ConservationBroken { after: 96, .. }));
        assert!(err.to_string().contains("conservation"));
    }

    #[test]
    fn global_conservation() {
        assert!(check_global_conservation(0, 0, 500, 500).is_ok());
        assert!(check_global_conservation(0, 0, 500, 499).is_err());
    }

    #[test]
    fn degraded_conservation_accounts_for_losses() {
        // 500 particles, 20 lost with a dead rank: 480 alive is conserved.
        assert!(check_global_conservation_with_losses(5, 0, 500, 480, 20).is_ok());
        // Zero losses reduces to the strict check.
        assert!(check_global_conservation_with_losses(5, 0, 500, 500, 0).is_ok());
        // Losing more than attributed — or less — is a violation either way.
        let err = check_global_conservation_with_losses(5, 0, 500, 470, 20).unwrap_err();
        assert!(matches!(
            err,
            InvariantViolation::DegradedConservationBroken { after: 470, lost: 20, .. }
        ));
        assert!(err.to_string().contains("degraded"));
        assert!(check_global_conservation_with_losses(5, 0, 500, 490, 20).is_err());
    }

    #[test]
    fn even_split_partitions_its_space() {
        let space = Interval::new(-10.0, 10.0);
        let dm = DomainMap::split_even(space, Axis::X, 7);
        assert!(check_partition(0, 0, space, &dm).is_ok());
    }

    #[test]
    fn partition_detects_wrong_space() {
        let dm = DomainMap::split_even(Interval::new(-10.0, 10.0), Axis::X, 4);
        let err = check_partition(0, 0, Interval::new(-20.0, 10.0), &dm).unwrap_err();
        assert!(matches!(err, InvariantViolation::PartitionBroken { .. }));
    }

    #[test]
    fn partition_detects_interior_gap() {
        // A hand-built map with a gap between slices 0 and 1.
        let dm = DomainMap::from_cuts(Axis::X, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        // from_cuts produces a valid contiguous map; partition check passes.
        assert!(check_partition(0, 0, Interval::new(0.0, 3.0), &dm).is_ok());
        // A shifted space exposes the edge mismatch.
        assert!(check_partition(0, 0, Interval::new(0.5, 3.0), &dm).is_err());
    }

    #[test]
    fn infinite_space_skips_outer_edges() {
        let dm = DomainMap::split_even(Interval::new(-5.0, 5.0), Axis::X, 3);
        assert!(check_partition(0, 0, Interval::INFINITE, &dm).is_ok());
    }

    #[test]
    fn finite_positions_accepts_normal_particles() {
        let ps = [Particle::at(Vec3::new(1.0, 2.0, 3.0)), Particle::at(Vec3::ZERO)];
        assert!(check_finite_positions(0, 0, 1, ps.iter()).is_ok());
        assert!(check_finite_positions(0, 0, 1, std::iter::empty()).is_ok());
    }

    #[test]
    fn finite_positions_rejects_nan_and_inf() {
        let bad_nan = Particle::at(Vec3::new(1.0, f32::NAN, 0.0));
        let err = check_finite_positions(7, 2, 3, [&bad_nan]).unwrap_err();
        match err {
            InvariantViolation::NonFinitePosition { frame: 7, system: 2, rank: 3, position } => {
                assert!(position[1].is_nan());
            }
            other => panic!("wrong violation: {other:?}"),
        }
        assert!(err.to_string().contains("non-finite"));
        let bad_inf = Particle::at(Vec3::new(f32::INFINITY, 0.0, 0.0));
        assert!(check_finite_positions(0, 0, 0, [&bad_inf]).is_err());
    }

    #[test]
    fn enabled_reflects_feature() {
        assert_eq!(ENABLED, cfg!(feature = "strict-invariants"));
    }

    #[test]
    fn state_hash_is_order_and_bit_sensitive() {
        let a = Particle::at(Vec3::new(1.0, 2.0, 3.0));
        let b = Particle::at(Vec3::new(4.0, 5.0, 6.0));
        let hash = |ps: &[Particle]| {
            let mut h = StateHash::new();
            h.extend(ps.iter());
            h.finish()
        };
        assert_eq!(hash(&[a, b]), hash(&[a, b]));
        assert_ne!(hash(&[a, b]), hash(&[b, a]), "order must matter");
        let mut a2 = a;
        a2.age = f32::from_bits(a.age.to_bits() ^ 1);
        assert_ne!(hash(&[a, b]), hash(&[a2, b]), "single-bit drift must show");
        assert_ne!(hash(&[a]), hash(&[a, b]), "length must matter");
    }
}
