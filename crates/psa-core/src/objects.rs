//! External objects particles can collide with (paper §3.2.2).
//!
//! "Actions that simulate gravity, eliminate or bounce particles that
//! collided with external objects do not change the positioning of the
//! particles" — external-object collision is resolved locally, per particle,
//! with no inter-process communication. Objects are replicated on every
//! calculator as part of the global simulation information.

use psa_math::{Aabb, Scalar, Vec3};

/// A collidable external object.
#[derive(Clone, Debug, PartialEq)]
pub enum ExternalObject {
    /// An infinite plane `n·x = d` with unit normal `n`; particles collide
    /// when they cross to the negative side.
    Plane { normal: Vec3, d: Scalar },
    /// A solid sphere.
    Sphere { center: Vec3, radius: Scalar },
    /// A solid axis-aligned box.
    Box(Aabb),
}

/// Result of testing a particle position against an object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Contact {
    /// Outward surface normal at the contact.
    pub normal: Vec3,
    /// Penetration depth (>= 0 when inside/behind the surface).
    pub depth: Scalar,
}

impl ExternalObject {
    /// Ground plane `y = h` facing up.
    pub fn ground(h: Scalar) -> Self {
        ExternalObject::Plane { normal: Vec3::Y, d: h }
    }

    /// Test `p`; `Some(contact)` when penetrating.
    pub fn contact(&self, p: Vec3) -> Option<Contact> {
        match self {
            ExternalObject::Plane { normal, d } => {
                let dist = p.dot(*normal) - d;
                (dist < 0.0).then(|| Contact { normal: *normal, depth: -dist })
            }
            ExternalObject::Sphere { center, radius } => {
                let rel = p - *center;
                let dist = rel.length();
                (dist < *radius).then(|| Contact {
                    normal: if dist > Scalar::EPSILON { rel / dist } else { Vec3::Y },
                    depth: radius - dist,
                })
            }
            ExternalObject::Box(b) => {
                if !b.contains(p) {
                    return None;
                }
                // Push out along the axis of least penetration.
                let dists = [
                    (p.x - b.min.x, -Vec3::X),
                    (b.max.x - p.x, Vec3::X),
                    (p.y - b.min.y, -Vec3::Y),
                    (b.max.y - p.y, Vec3::Y),
                    (p.z - b.min.z, -Vec3::Z),
                    (b.max.z - p.z, Vec3::Z),
                ];
                let (depth, normal) =
                    dists.iter().copied().min_by(|a, b| a.0.total_cmp(&b.0)).unwrap();
                Some(Contact { normal, depth })
            }
        }
    }

    /// Resolve a bounce: reflect the velocity about the contact normal with
    /// `restitution` ∈ \[0,1\] scaling the normal component and `friction`
    /// ∈ \[0,1\] damping the tangential component, and push the position out
    /// of penetration.
    pub fn bounce(
        &self,
        position: &mut Vec3,
        velocity: &mut Vec3,
        restitution: Scalar,
        friction: Scalar,
    ) -> bool {
        let Some(c) = self.contact(*position) else {
            return false;
        };
        let vn = velocity.dot(c.normal);
        if vn < 0.0 {
            let normal_part = c.normal * vn;
            let tangent_part = *velocity - normal_part;
            *velocity = tangent_part * (1.0 - friction) - normal_part * restitution;
        }
        *position += c.normal * c.depth;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_contact_sign() {
        let ground = ExternalObject::ground(0.0);
        assert!(ground.contact(Vec3::new(0.0, 1.0, 0.0)).is_none());
        let c = ground.contact(Vec3::new(0.0, -0.5, 0.0)).unwrap();
        assert_eq!(c.normal, Vec3::Y);
        assert_eq!(c.depth, 0.5);
    }

    #[test]
    fn sphere_contact() {
        let s = ExternalObject::Sphere { center: Vec3::ZERO, radius: 2.0 };
        assert!(s.contact(Vec3::new(3.0, 0.0, 0.0)).is_none());
        let c = s.contact(Vec3::new(1.0, 0.0, 0.0)).unwrap();
        assert_eq!(c.normal, Vec3::X);
        assert_eq!(c.depth, 1.0);
    }

    #[test]
    fn sphere_center_degenerate_normal() {
        let s = ExternalObject::Sphere { center: Vec3::ZERO, radius: 1.0 };
        let c = s.contact(Vec3::ZERO).unwrap();
        assert_eq!(c.normal, Vec3::Y); // arbitrary but defined
        assert_eq!(c.depth, 1.0);
    }

    #[test]
    fn box_contact_least_penetration() {
        let b = ExternalObject::Box(Aabb::centered_cube(1.0));
        assert!(b.contact(Vec3::new(2.0, 0.0, 0.0)).is_none());
        // Near the +x face: should push out along +x.
        let c = b.contact(Vec3::new(0.9, 0.0, 0.0)).unwrap();
        assert_eq!(c.normal, Vec3::X);
        assert!((c.depth - 0.1).abs() < 1e-6);
    }

    #[test]
    fn bounce_reflects_and_unpenetrates() {
        let ground = ExternalObject::ground(0.0);
        let mut pos = Vec3::new(0.0, -0.2, 0.0);
        let mut vel = Vec3::new(1.0, -3.0, 0.0);
        assert!(ground.bounce(&mut pos, &mut vel, 0.5, 0.0));
        assert_eq!(pos, Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(vel, Vec3::new(1.0, 1.5, 0.0));
    }

    #[test]
    fn bounce_with_friction_damps_tangent() {
        let ground = ExternalObject::ground(0.0);
        let mut pos = Vec3::new(0.0, -0.1, 0.0);
        let mut vel = Vec3::new(2.0, -1.0, 0.0);
        ground.bounce(&mut pos, &mut vel, 1.0, 0.5);
        assert_eq!(vel, Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn bounce_misses_cleanly() {
        let ground = ExternalObject::ground(0.0);
        let mut pos = Vec3::new(0.0, 5.0, 0.0);
        let mut vel = Vec3::new(0.0, -1.0, 0.0);
        assert!(!ground.bounce(&mut pos, &mut vel, 0.5, 0.0));
        assert_eq!(pos, Vec3::new(0.0, 5.0, 0.0));
        assert_eq!(vel, Vec3::new(0.0, -1.0, 0.0));
    }

    #[test]
    fn receding_velocity_not_reflected() {
        // Particle inside the surface but already moving out: position is
        // corrected, velocity untouched.
        let ground = ExternalObject::ground(0.0);
        let mut pos = Vec3::new(0.0, -0.1, 0.0);
        let mut vel = Vec3::new(0.0, 4.0, 0.0);
        assert!(ground.bounce(&mut pos, &mut vel, 0.5, 0.0));
        assert_eq!(vel, Vec3::new(0.0, 4.0, 0.0));
        assert_eq!(pos.y, 0.0);
    }
}
