//! Crate-level property tests for psa-core's storage invariants.
//!
//! Driven by deterministic [`Rng64`] case generators instead of `proptest`
//! (the workspace builds offline); a failing case reproduces identically on
//! every run.

use psa_core::{Particle, ParticleStore, SubDomainStore};
use psa_math::{Axis, Interval, Rng64, Vec3};

const CASES: usize = 256;

fn p(x: f32) -> Particle {
    Particle::at(Vec3::new(x, 0.0, 0.0))
}

fn coords(rng: &mut Rng64, max_len: usize, lo: f32, hi: f32) -> Vec<f32> {
    let n = rng.below(max_len + 1);
    (0..n).map(|_| rng.range(lo, hi)).collect()
}

/// retain_unordered removes exactly the failing particles, no matter the
/// order of the sweep.
#[test]
fn retain_is_a_filter() {
    let mut rng = Rng64::new(0x7E7A);
    for _ in 0..CASES {
        let xs = coords(&mut rng, 199, -50.0, 50.0);
        let cut = rng.range(-50.0, 50.0);
        let mut s: ParticleStore = xs.iter().map(|&x| p(x)).collect();
        let removed = s.retain_unordered(|q| q.position.x < cut);
        let expected_kept = xs.iter().filter(|&&x| x < cut).count();
        assert_eq!(s.len(), expected_kept);
        assert_eq!(removed, xs.len() - expected_kept);
        assert!(s.iter().all(|q| q.position.x < cut));
    }
}

/// drain_where partitions the store: drained ∪ remaining == original (as
/// multisets of coordinates).
#[test]
fn drain_partitions() {
    let mut rng = Rng64::new(0xD4A1);
    for _ in 0..CASES {
        let xs = coords(&mut rng, 199, -50.0, 50.0);
        let cut = rng.range(-50.0, 50.0);
        let mut s: ParticleStore = xs.iter().map(|&x| p(x)).collect();
        let drained = s.drain_where(|q| q.position.x >= cut);
        let mut all: Vec<f32> =
            s.iter().map(|q| q.position.x).chain(drained.iter().map(|q| q.position.x)).collect();
        all.sort_by(f32::total_cmp);
        let mut orig = xs.clone();
        orig.sort_by(f32::total_cmp);
        assert_eq!(all, orig);
    }
}

/// sort_along + donate_low/high from a flat store return the exact
/// extremes.
#[test]
fn flat_donation_is_extreme() {
    let mut rng = Rng64::new(0xF1A7);
    for _ in 0..CASES {
        let mut xs = coords(&mut rng, 98, -50.0, 50.0);
        xs.push(rng.range(-50.0, 50.0)); // never empty
        let mut s: ParticleStore = xs.iter().map(|&x| p(x)).collect();
        s.sort_along(Axis::X);
        let k = (1 + rng.below(49)).min(xs.len());
        let low = s.donate_low(k, Axis::X);
        let mut got: Vec<f32> = low.iter().map(|q| q.position.x).collect();
        got.sort_by(f32::total_cmp);
        let mut want = xs.clone();
        want.sort_by(f32::total_cmp);
        want.truncate(k);
        assert_eq!(got, want);
    }
}

/// Re-bucketing in collect_leavers never changes the population of in-slice
/// particles, whatever motion was applied.
#[test]
fn rebucketing_preserves_population() {
    let mut rng = Rng64::new(0x2EB0);
    for _ in 0..CASES {
        let xs = coords(&mut rng, 149, 0.0, 10.0);
        let dx = rng.range(-8.0, 8.0);
        let buckets = 1 + rng.below(9);
        let slice = Interval::new(0.0, 10.0);
        let mut s = SubDomainStore::new(slice, Axis::X, buckets);
        for &x in &xs {
            s.insert(p(x));
        }
        s.for_each_mut(|q| q.position.x += dx);
        let leavers = s.collect_leavers();
        let expected_in = xs.iter().filter(|&&x| slice.contains(x + dx)).count();
        assert_eq!(s.len(), expected_in);
        assert_eq!(leavers.len(), xs.len() - expected_in);
    }
}

/// Boundary slabs are a superset-free copy: slab members are exactly the
/// particles within `w` of an edge.
#[test]
fn slabs_are_exact() {
    let mut rng = Rng64::new(0x51AB);
    for _ in 0..CASES {
        let xs = coords(&mut rng, 149, 0.0, 10.0);
        let w = rng.range(0.1, 5.0);
        let buckets = 1 + rng.below(7);
        let slice = Interval::new(0.0, 10.0);
        let mut s = SubDomainStore::new(slice, Axis::X, buckets);
        for &x in &xs {
            s.insert(p(x));
        }
        let (low, high) = s.boundary_slabs(w);
        let want_low = xs.iter().filter(|&&x| x < w).count();
        let want_high = xs.iter().filter(|&&x| x >= 10.0 - w).count();
        assert_eq!(low.len(), want_low);
        assert_eq!(high.len(), want_high);
        assert_eq!(s.len(), xs.len(), "slabs are copies");
    }
}

/// reshape is population-preserving: kept + leavers == before.
#[test]
fn reshape_preserves_population() {
    let mut rng = Rng64::new(0x2E5A);
    for _ in 0..CASES {
        let xs = coords(&mut rng, 149, 0.0, 10.0);
        let lo = rng.range(0.0, 5.0);
        let width = rng.range(0.0, 5.0);
        let mut s = SubDomainStore::new(Interval::new(0.0, 10.0), Axis::X, 4);
        for &x in &xs {
            s.insert(p(x));
        }
        let new_slice = Interval::new(lo, lo + width);
        let leavers = s.reshape(new_slice);
        assert_eq!(s.len() + leavers.len(), xs.len());
        for q in s.iter() {
            assert!(new_slice.contains(q.position.x));
        }
    }
}
