//! Crate-level property tests for psa-core's storage invariants.

use proptest::prelude::*;
use psa_core::{Particle, ParticleStore, SubDomainStore};
use psa_math::{Axis, Interval, Vec3};

fn p(x: f32) -> Particle {
    Particle::at(Vec3::new(x, 0.0, 0.0))
}

proptest! {
    /// retain_unordered removes exactly the failing particles, no matter
    /// the order of the sweep.
    #[test]
    fn retain_is_a_filter(xs in prop::collection::vec(-50.0f32..50.0, 0..200), cut in -50.0f32..50.0) {
        let mut s: ParticleStore = xs.iter().map(|&x| p(x)).collect();
        let removed = s.retain_unordered(|q| q.position.x < cut);
        let expected_kept = xs.iter().filter(|&&x| x < cut).count();
        prop_assert_eq!(s.len(), expected_kept);
        prop_assert_eq!(removed, xs.len() - expected_kept);
        prop_assert!(s.iter().all(|q| q.position.x < cut));
    }

    /// drain_where partitions the store: drained ∪ remaining == original
    /// (as multisets of coordinates).
    #[test]
    fn drain_partitions(xs in prop::collection::vec(-50.0f32..50.0, 0..200), cut in -50.0f32..50.0) {
        let mut s: ParticleStore = xs.iter().map(|&x| p(x)).collect();
        let drained = s.drain_where(|q| q.position.x >= cut);
        let mut all: Vec<f32> = s.iter().map(|q| q.position.x)
            .chain(drained.iter().map(|q| q.position.x)).collect();
        all.sort_by(f32::total_cmp);
        let mut orig = xs.clone();
        orig.sort_by(f32::total_cmp);
        prop_assert_eq!(all, orig);
    }

    /// sort_along + donate_low/high from a flat store return the exact
    /// extremes.
    #[test]
    fn flat_donation_is_extreme(xs in prop::collection::vec(-50.0f32..50.0, 1..100), k in 1usize..50) {
        let mut s: ParticleStore = xs.iter().map(|&x| p(x)).collect();
        s.sort_along(Axis::X);
        let k = k.min(xs.len());
        let low = s.donate_low(k);
        let mut got: Vec<f32> = low.iter().map(|q| q.position.x).collect();
        got.sort_by(f32::total_cmp);
        let mut want = xs.clone();
        want.sort_by(f32::total_cmp);
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    /// Re-bucketing in collect_leavers never changes the population of
    /// in-slice particles, whatever motion was applied.
    #[test]
    fn rebucketing_preserves_population(
        xs in prop::collection::vec(0.0f32..10.0, 0..150),
        dx in -8.0f32..8.0,
        buckets in 1usize..10,
    ) {
        let slice = Interval::new(0.0, 10.0);
        let mut s = SubDomainStore::new(slice, Axis::X, buckets);
        for &x in &xs {
            s.insert(p(x));
        }
        s.for_each_mut(|q| q.position.x += dx);
        let leavers = s.collect_leavers();
        let expected_in = xs.iter().filter(|&&x| slice.contains(x + dx)).count();
        prop_assert_eq!(s.len(), expected_in);
        prop_assert_eq!(leavers.len(), xs.len() - expected_in);
    }

    /// Boundary slabs are a superset-free copy: slab members are exactly
    /// the particles within `w` of an edge.
    #[test]
    fn slabs_are_exact(
        xs in prop::collection::vec(0.0f32..10.0, 0..150),
        w in 0.1f32..5.0,
        buckets in 1usize..8,
    ) {
        let slice = Interval::new(0.0, 10.0);
        let mut s = SubDomainStore::new(slice, Axis::X, buckets);
        for &x in &xs {
            s.insert(p(x));
        }
        let (low, high) = s.boundary_slabs(w);
        let want_low = xs.iter().filter(|&&x| x < w).count();
        let want_high = xs.iter().filter(|&&x| x >= 10.0 - w).count();
        prop_assert_eq!(low.len(), want_low);
        prop_assert_eq!(high.len(), want_high);
        prop_assert_eq!(s.len(), xs.len(), "slabs are copies");
    }

    /// reshape is population-preserving: kept + leavers == before.
    #[test]
    fn reshape_preserves_population(
        xs in prop::collection::vec(0.0f32..10.0, 0..150),
        lo in 0.0f32..5.0,
        width in 0.0f32..5.0,
    ) {
        let mut s = SubDomainStore::new(Interval::new(0.0, 10.0), Axis::X, 4);
        for &x in &xs {
            s.insert(p(x));
        }
        let new_slice = Interval::new(lo, lo + width);
        let leavers = s.reshape(new_slice);
        prop_assert_eq!(s.len() + leavers.len(), xs.len());
        for q in s.iter() {
            prop_assert!(new_slice.contains(q.position.x));
        }
    }
}
