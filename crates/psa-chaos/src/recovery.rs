//! The recovered-cell gate: crash cells with checkpointing turned on.
//!
//! The [`crate::matrix`] cells run crashes in *degraded* mode — the rank
//! dies, the manager confiscates its particles, and the gate accepts the
//! loss as long as the show goes on. This module runs the same kill
//! scenarios with [`CheckpointConfig::recovering`] and holds them to the
//! far stricter recovered-mode contract:
//!
//! 1. **nobody dies** — the crashed calculator is rolled back to the last
//!    engine snapshot and replayed, so `dead_ranks` stays empty and
//!    `lost_particles == 0`;
//! 2. **the crash is invisible** — the recovered run's fingerprint is
//!    byte-identical to the same plan with the crash *stripped* (for
//!    crash-only scenarios that is the bare uninterrupted run);
//! 3. **recovery is accounted** — at least one
//!    [`RecoveryEvent`](psa_runtime::RecoveryEvent) with a
//!    consistent rollback window (`snapshot_frame + frames_replayed ==
//!    frame`) and a non-empty restored population;
//! 4. **replay** — the recovered run itself replays byte-identically, like
//!    every other chaos cell.

use netsim::FaultPlan;
use psa_runtime::{CheckpointConfig, RunConfig, VirtualSim};
use psa_workloads::myrinet_gcc;

use crate::matrix::{MatrixConfig, Workload};
use crate::scenario::Scenario;

/// Knobs for the recovery gate.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// The shared matrix knobs (seed, frames, calculators, particles).
    pub mc: MatrixConfig,
    /// Snapshot cadence in frames (must be ≥ 1; the gate checkpoints).
    pub interval: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { mc: MatrixConfig::default(), interval: 3 }
    }
}

/// What one recovered (workload, scenario) cell observed.
#[derive(Clone, Debug)]
pub struct RecoveryOutcome {
    pub workload: &'static str,
    pub scenario: String,
    /// Fingerprint of the recovered run (== the crash-free reference's
    /// when the cell passed).
    pub fingerprint: u64,
    /// Recovery events the engine performed.
    pub recoveries: usize,
    /// Frames replayed across all recoveries.
    pub frames_replayed: u64,
    /// Particles restored from snapshots across all recoveries.
    pub particles_restored: u64,
    /// Gate violations (empty = pass).
    pub failures: Vec<String>,
}

impl RecoveryOutcome {
    /// Did every gate hold?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The same plan with every `crash_at` removed: what the run would have
/// been had the crash never been injected. For crash-only scenarios this
/// is the quiet plan; for mixes it keeps the slowdowns and link faults so
/// the comparison isolates exactly the crash.
fn strip_crashes(plan: &FaultPlan) -> FaultPlan {
    let mut stripped = plan.clone();
    for r in 0..stripped.ranks() {
        stripped.rank_mut(r).crash_at = None;
    }
    stripped
}

/// Run one recovered cell: crash plan + checkpointing versus the
/// crash-stripped reference, plus the replay gate.
pub fn run_recovery_case(
    workload: Workload,
    scenario: Scenario,
    rc: &RecoveryConfig,
) -> RecoveryOutcome {
    assert!(rc.interval >= 1, "the recovery gate checkpoints by definition");
    let mc = &rc.mc;
    let sz = mc.workload_size();
    let cluster = myrinet_gcc(mc.calculators, 1);
    let plan = scenario.plan(mc.seed, mc.calculators, &cluster.net);
    let mut failures = Vec::new();

    let cfg =
        RunConfig { checkpoint: CheckpointConfig::recovering(rc.interval), ..mc.run_config() };
    let run = |cfg: RunConfig, plan: FaultPlan| {
        VirtualSim::new(workload.scene(sz), cfg, cluster.clone(), sz.cost_model())
            .with_faults(plan)
            .try_run()
    };

    let report = match run(cfg.clone(), plan.clone()) {
        Ok(r) => r,
        Err(e) => {
            return RecoveryOutcome {
                workload: workload.label(),
                scenario: scenario.label(),
                fingerprint: 0,
                recoveries: 0,
                frames_replayed: 0,
                particles_restored: 0,
                failures: vec![format!("recovered run failed: {e}")],
            }
        }
    };

    if report.frames.len() != mc.frames as usize {
        failures.push(format!("only {}/{} frames rendered", report.frames.len(), mc.frames));
    }
    if !report.dead_ranks.is_empty() {
        failures.push(format!(
            "recovered mode must keep everyone alive, but saw deaths: {:?}",
            report.dead_ranks
        ));
    }
    if report.lost_particles != 0 {
        failures.push(format!("recovery lost {} particles (want 0)", report.lost_particles));
    }
    if scenario.kills() && report.recoveries.is_empty() {
        failures.push("kill scenario recorded no recovery events".into());
    }
    for ev in &report.recoveries {
        if ev.snapshot_frame + ev.frames_replayed != ev.frame {
            failures.push(format!(
                "recovery at frame {} has inconsistent window: snapshot {} + replayed {}",
                ev.frame, ev.snapshot_frame, ev.frames_replayed
            ));
        }
        if ev.particles_restored == 0 {
            failures.push(format!("recovery at frame {} restored an empty store", ev.frame));
        }
    }

    // The crash must be invisible: same plan minus the crash, no
    // checkpointing, must produce the identical report.
    match run(mc.run_config(), strip_crashes(&plan)) {
        Ok(reference) if reference.fingerprint() != report.fingerprint() => {
            failures.push("recovered run diverged from the crash-free reference".into());
        }
        Ok(_) => {}
        Err(e) => failures.push(format!("crash-free reference failed: {e}")),
    }

    // And the recovered run is as replayable as any chaos cell.
    match run(cfg, plan) {
        Ok(replay) if replay.fingerprint() != report.fingerprint() => {
            failures.push("recovered replay fingerprint diverged".into());
        }
        Ok(_) => {}
        Err(e) => failures.push(format!("recovered replay failed: {e}")),
    }

    RecoveryOutcome {
        workload: workload.label(),
        scenario: scenario.label(),
        fingerprint: report.fingerprint(),
        recoveries: report.recoveries.len(),
        frames_replayed: report.recoveries.iter().map(|e| e.frames_replayed).sum(),
        particles_restored: report.recoveries.iter().map(|e| e.particles_restored).sum(),
        failures,
    }
}

/// Run the recovery gate over every kill scenario in `scenarios` × both
/// workloads (non-kill scenarios are skipped — they have nothing to
/// recover from).
pub fn run_recovery_matrix(scenarios: &[Scenario], rc: &RecoveryConfig) -> Vec<RecoveryOutcome> {
    let mut out = Vec::new();
    for &w in &[Workload::Snow, Workload::Fountain] {
        for s in scenarios.iter().filter(|s| s.kills()) {
            out.push(run_recovery_case(w, *s, rc));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovered_crash_cell_passes_all_gates() {
        let rc = RecoveryConfig {
            mc: MatrixConfig { frames: 10, particles: 400, ..Default::default() },
            interval: 3,
        };
        let c =
            run_recovery_case(Workload::Snow, Scenario::CrashCalculator { rank: 1, frame: 5 }, &rc);
        assert!(c.passed(), "{:?}", c.failures);
        assert_eq!(c.recoveries, 1);
        // Crash at 5, snapshots at 3 (and 6, 9): replay window is 5 - 3.
        assert_eq!(c.frames_replayed, 2);
        assert!(c.particles_restored > 0);
    }

    #[test]
    fn recovery_matrix_covers_every_kill_scenario() {
        let rc = RecoveryConfig {
            mc: MatrixConfig { frames: 10, particles: 400, ..Default::default() },
            interval: 3,
        };
        let outcomes = run_recovery_matrix(&crate::full_set(), &rc);
        let kills = crate::full_set().iter().filter(|s| s.kills()).count();
        assert_eq!(outcomes.len(), 2 * kills, "both workloads × every kill scenario");
        for c in &outcomes {
            assert!(c.passed(), "{}/{}: {:?}", c.workload, c.scenario, c.failures);
            assert!(c.recoveries >= 1, "{}/{} recovered nobody", c.workload, c.scenario);
        }
    }

    #[test]
    fn crash_stripping_leaves_other_faults_alone() {
        let net = cluster_sim::NetworkModel::myrinet();
        let plan = Scenario::RandomMix { with_crash: true }.plan(0xBEEF, 4, &net);
        let stripped = strip_crashes(&plan);
        for r in 0..stripped.ranks() {
            assert_eq!(stripped.rank(r).crash_at, None);
        }
        assert!(!stripped.is_quiet(), "the mix's slowdown/jitter must survive stripping");
    }
}
