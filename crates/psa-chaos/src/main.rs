//! `chaos` — run the fault-injection scenario matrix from the command line.
//!
//! ```text
//! cargo run --release -p psa-chaos --features strict-invariants --bin chaos
//! cargo run -p psa-chaos --bin chaos -- --matrix full --seed 42 --frames 20
//! ```
//!
//! Exit code 0 when every cell passes (all frames rendered, protocol order
//! held, crashes declared and absorbed, replay byte-identical), 1 when any
//! cell fails, 2 on usage errors.

use std::process::ExitCode;

use psa_chaos::{
    full_set, run_matrix, run_recovery_matrix, run_session_chaos, smoke_set, MatrixConfig,
    RecoveryConfig, SessionChaosConfig,
};

fn main() -> ExitCode {
    let mut mc = MatrixConfig::default();
    let mut set = "smoke".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("chaos: {name} needs a value");
            }
            v
        };
        match a.as_str() {
            "--matrix" => match take("--matrix") {
                Some(v) if v == "smoke" || v == "full" => set = v,
                Some(v) => {
                    eprintln!("chaos: unknown matrix `{v}` (want smoke|full)");
                    return ExitCode::from(2);
                }
                None => return ExitCode::from(2),
            },
            "--seed" => match take("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => mc.seed = v,
                None => return ExitCode::from(2),
            },
            "--frames" => match take("--frames").and_then(|v| v.parse().ok()) {
                Some(v) => mc.frames = v,
                None => return ExitCode::from(2),
            },
            "--calculators" => match take("--calculators").and_then(|v| v.parse().ok()) {
                Some(v) if v >= 2 => mc.calculators = v,
                _ => return ExitCode::from(2),
            },
            other => {
                eprintln!("chaos: unknown argument `{other}`");
                eprintln!(
                    "usage: chaos [--matrix smoke|full] [--seed N] [--frames N] [--calculators N]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let scenarios = if set == "full" { full_set() } else { smoke_set() };
    println!(
        "chaos matrix `{set}`: {} scenario(s) × 2 workloads, seed {:#x}, {} frames, {} calculators",
        scenarios.len(),
        mc.seed,
        mc.frames,
        mc.calculators
    );
    let outcomes = run_matrix(&scenarios, &mc);

    println!(
        "{:<10} {:<18} {:>6} {:>8} {:>6} {:>9} {:>18}  result",
        "workload", "scenario", "frames", "timeouts", "dead", "lost", "fingerprint"
    );
    let mut failed = 0usize;
    for c in &outcomes {
        println!(
            "{:<10} {:<18} {:>6} {:>8} {:>6} {:>9} {:>18x}  {}",
            c.workload,
            c.scenario,
            c.frames_rendered,
            c.timeouts,
            c.dead.len(),
            c.lost_particles,
            c.fingerprint,
            if c.passed() { "ok" } else { "FAIL" }
        );
        for f in &c.failures {
            failed += 1;
            println!("    !! {f}");
        }
    }
    // Recovered-mode gate: the kill cells again, this time with engine
    // checkpointing on — nobody may die, nothing may be lost, and the
    // recovered run must fingerprint identically to the crash-free
    // reference.
    let rc = RecoveryConfig { mc, ..RecoveryConfig::default() };
    let recovered = run_recovery_matrix(&scenarios, &rc);
    for c in &recovered {
        println!(
            "{:<10} {:<18} {:>6} {:>8} {:>6} {:>9} {:>18x}  {}",
            c.workload,
            format!("{}+ckpt", c.scenario),
            c.recoveries,
            c.frames_replayed,
            0,
            c.particles_restored,
            c.fingerprint,
            if c.passed() { "ok" } else { "FAIL" }
        );
        for f in &c.failures {
            failed += 1;
            println!("    !! {f}");
        }
    }
    // Pool-level gate: a session-pool worker dies mid-run; every session
    // must still complete with solo-parity fingerprints and replay exactly.
    let sc = SessionChaosConfig { seed: mc.seed ^ 0x5E55, ..SessionChaosConfig::default() };
    let session_outcome = run_session_chaos(&sc);
    println!(
        "sessions   worker-loss        {:>6} {:>8} {:>6} {:>9} {:>18x}  {}",
        session_outcome.completed,
        "-",
        session_outcome.lanes_lost,
        session_outcome.requeues,
        session_outcome.fingerprints.first().copied().unwrap_or(0),
        if session_outcome.passed() { "ok" } else { "FAIL" }
    );
    for f in &session_outcome.failures {
        failed += 1;
        println!("    !! {f}");
    }

    if failed == 0 {
        println!(
            "chaos: all {} cells passed (replay byte-identical, recovery and session pool included)",
            outcomes.len() + recovered.len() + 1
        );
        ExitCode::SUCCESS
    } else {
        println!("chaos: {failed} failure(s)");
        ExitCode::from(1)
    }
}
