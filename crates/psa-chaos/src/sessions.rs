//! Session-level chaos: losing a pool worker mid-run.
//!
//! The scenario matrix ([`crate::matrix`]) attacks the protocol *inside*
//! one run; this module attacks the layer above it — the multi-tenant
//! session pool (`psa-sessions`). The fault shape is a worker lane dying
//! mid-dispatch: the slice in flight is lost and the victim session is
//! re-queued on the surviving lanes, resuming from its last pool
//! checkpoint (from frame 0 when `checkpoint_interval` is 0).
//!
//! Gates, in order of importance:
//!
//! 1. **completion** — every admitted session still completes on the
//!    survivors (exactly one records a restart);
//! 2. **parity under fault** — every session's fingerprint, including the
//!    restarted one's, is byte-identical to a solo `EventSim` run of its
//!    derived seed (checkpoint/restore keeps the determinism contract);
//! 3. **bounded loss** — with checkpointing on, the victim discards fewer
//!    than `checkpoint_interval` completed frames;
//! 4. **replay** — the whole chaotic pool run replays byte-identically.

use psa_sessions::{
    derive_session_seed, AdmissionConfig, PoolConfig, PoolFault, PoolReport, SessionId,
    SessionManager, SessionSpec, TenantId,
};
use psa_workloads::{myrinet_gcc, paper_run_config, snow_scene, WorkloadSize};

/// Configuration for the session-chaos gate.
#[derive(Clone, Copy, Debug)]
pub struct SessionChaosConfig {
    /// Sessions to admit.
    pub sessions: usize,
    /// Worker lanes (one dies; at least 2).
    pub workers: usize,
    /// Frames per session.
    pub frames: u64,
    /// Pool base seed.
    pub seed: u64,
    /// 1-based dispatch count the worker loss strikes at.
    pub lose_at_dispatch: u64,
    /// Pool checkpoint cadence in completed frames (0 = restart from 0).
    pub checkpoint_interval: u64,
}

impl Default for SessionChaosConfig {
    fn default() -> Self {
        SessionChaosConfig {
            sessions: 12,
            workers: 3,
            frames: 8,
            seed: 0xC4A0_5E55,
            lose_at_dispatch: 5,
            checkpoint_interval: 2,
        }
    }
}

/// What the session-chaos gate observed.
#[derive(Clone, Debug)]
pub struct SessionChaosOutcome {
    /// Sessions that completed despite the lane loss.
    pub completed: usize,
    /// Lanes the fault actually killed.
    pub lanes_lost: usize,
    /// Total restarts recorded across sessions.
    pub requeues: u64,
    /// Pool fingerprints, session-id order.
    pub fingerprints: Vec<u64>,
    /// Gate violations (empty = pass).
    pub failures: Vec<String>,
}

impl SessionChaosOutcome {
    /// Did every gate hold?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn pool_run(cfg: &SessionChaosConfig) -> PoolReport {
    let size = WorkloadSize { systems: 2, particles_per_system: 300, scale: 1.0 };
    let mut pool = SessionManager::new(PoolConfig {
        workers: cfg.workers,
        slice_frames: 2,
        admission: AdmissionConfig::unbounded(cfg.sessions.max(1)),
        base_seed: cfg.seed,
        checkpoint_interval: cfg.checkpoint_interval,
        instrument: false,
    })
    .with_fault(PoolFault::WorkerLoss { at_dispatch: cfg.lose_at_dispatch });
    for i in 0..cfg.sessions {
        let spec = SessionSpec {
            tenant: TenantId(i as u32 % 3),
            scene: snow_scene(size),
            cfg: paper_run_config(cfg.frames, 0.04),
            cluster: myrinet_gcc(2, 1),
            cost: size.cost_model(),
            arrival: 0.0,
        };
        if let Err(e) = pool.admit(spec) {
            panic!("unbounded admission cannot refuse: {e}");
        }
    }
    pool.run_to_completion()
}

/// Fingerprint of a solo run of session `id`'s derived seed.
fn solo_fingerprint(cfg: &SessionChaosConfig, id: SessionId) -> u64 {
    let size = WorkloadSize { systems: 2, particles_per_system: 300, scale: 1.0 };
    let mut run_cfg = paper_run_config(cfg.frames, 0.04);
    run_cfg.seed = derive_session_seed(cfg.seed, id);
    let mut sim =
        psa_desim::EventSim::new(snow_scene(size), run_cfg, myrinet_gcc(2, 1), size.cost_model());
    sim.run().fingerprint()
}

/// Run the session-chaos gate: one worker loss mid-run, then check
/// completion, per-session solo parity, and whole-pool replay.
pub fn run_session_chaos(cfg: &SessionChaosConfig) -> SessionChaosOutcome {
    let report = pool_run(cfg);
    let replay = pool_run(cfg);
    let mut failures = Vec::new();

    if report.completed() != cfg.sessions {
        failures.push(format!(
            "only {}/{} sessions completed after the worker loss",
            report.completed(),
            cfg.sessions
        ));
    }
    if report.lanes_lost != 1 {
        failures.push(format!("expected exactly 1 lane lost, saw {}", report.lanes_lost));
    }
    let requeues: u64 = report.outcomes.iter().map(|o| o.counters.requeues).sum();
    if requeues != 1 {
        failures.push(format!("expected exactly 1 session restart, saw {requeues}"));
    }
    if cfg.checkpoint_interval > 0 {
        for o in report.outcomes.iter().filter(|o| o.counters.requeues > 0) {
            if o.counters.lost_frames >= cfg.checkpoint_interval {
                failures.push(format!(
                    "session {} lost {} frames; checkpoints every {} bound the loss below that",
                    o.id.0, o.counters.lost_frames, cfg.checkpoint_interval
                ));
            }
        }
    }

    for outcome in &report.outcomes {
        let solo = solo_fingerprint(cfg, outcome.id);
        if outcome.fingerprint != solo {
            failures.push(format!(
                "session {} fingerprint {:x} != solo {:x} (seed {:#x})",
                outcome.id.0, outcome.fingerprint, solo, outcome.seed
            ));
        }
    }

    let mut fingerprints: Vec<(u64, u64)> =
        report.outcomes.iter().map(|o| (o.id.0, o.fingerprint)).collect();
    fingerprints.sort_by_key(|(id, _)| *id);
    let mut replay_fps: Vec<(u64, u64)> =
        replay.outcomes.iter().map(|o| (o.id.0, o.fingerprint)).collect();
    replay_fps.sort_by_key(|(id, _)| *id);
    if fingerprints != replay_fps {
        failures.push("chaotic pool run did not replay byte-identically".to_string());
    }
    if (report.makespan - replay.makespan).abs() > 0.0 {
        failures
            .push(format!("replay makespan drifted: {} vs {}", report.makespan, replay.makespan));
    }

    SessionChaosOutcome {
        completed: report.completed(),
        lanes_lost: report.lanes_lost,
        requeues,
        fingerprints: fingerprints.into_iter().map(|(_, fp)| fp).collect(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_chaos_gate_passes() {
        let outcome = run_session_chaos(&SessionChaosConfig::default());
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert_eq!(outcome.completed, 12);
        assert_eq!(outcome.lanes_lost, 1);
        assert_eq!(outcome.requeues, 1);
    }

    #[test]
    fn session_chaos_detects_nothing_on_single_lane_pools() {
        // With one lane the loss is dropped (the pool never kills its last
        // lane) — the gate must then fail on the lanes_lost expectation,
        // proving it actually checks something.
        let cfg = SessionChaosConfig { workers: 1, sessions: 4, ..SessionChaosConfig::default() };
        let outcome = run_session_chaos(&cfg);
        assert!(!outcome.passed());
        assert_eq!(outcome.lanes_lost, 0);
        assert_eq!(outcome.completed, 4, "sessions still complete");
    }
}
