//! `psa-chaos` — deterministic fault injection for the animation model.
//!
//! The paper's protocol (Figure 2) assumes every process answers; a real
//! heterogeneous cluster does not. This crate stress-tests the hardened
//! executors against that gap:
//!
//! * [`scenario`] — named fault shapes (crash, stall, slow node, lossy or
//!   degraded links) compiled into seeded `netsim::FaultPlan`s;
//! * [`matrix`] — the scenario-matrix runner: each (workload, scenario)
//!   cell simulates twice, checks every frame rendered, the Figure-2 order
//!   held, crashes were declared and absorbed, and gates on the replay
//!   fingerprints being byte-identical;
//! * [`recovery`] — the recovered-cell gate: the same kill scenarios with
//!   engine checkpointing on, gating on zero deaths, zero lost particles,
//!   and the recovered run fingerprinting byte-identical to the
//!   crash-free reference;
//! * [`sessions`] — pool-level chaos against `psa-sessions`: a worker
//!   lane dies mid-dispatch, the victim session is re-queued (resuming
//!   from its last pool checkpoint), and the gate checks completion,
//!   solo-fingerprint parity under the fault, bounded frame loss, and
//!   byte-identical replay of the whole pool run.
//!
//! Determinism discipline is identical to the rest of the workspace: plans
//! derive from `psa_math::Rng64` streams, delivery draws inside a run come
//! from per-link streams, and fault delays are charged as virtual ticks —
//! so a chaotic run replays exactly, which is what makes its failures
//! debuggable.

pub mod matrix;
pub mod recovery;
pub mod scenario;
pub mod sessions;

pub use matrix::{run_case, run_matrix, CaseOutcome, MatrixConfig, Workload};
pub use recovery::{run_recovery_case, run_recovery_matrix, RecoveryConfig, RecoveryOutcome};
pub use scenario::{full_set, smoke_set, Scenario};
pub use sessions::{run_session_chaos, SessionChaosConfig, SessionChaosOutcome};
