//! Named fault scenarios and their seeded [`FaultPlan`]s.
//!
//! A scenario is a *shape* of trouble — crash one calculator, slow a node,
//! make a link lossy. [`Scenario::plan`] turns that shape into a concrete
//! [`FaultPlan`] for a given seed and rank count. Everything random (which
//! rank, which link) is drawn from a `psa_math::Rng64` stream derived from
//! the seed, never from ambient entropy, so the same `(seed, scenario)`
//! pair always produces byte-identical plans — the property the replay
//! gate in [`crate::matrix`] is built on.

use cluster_sim::NetworkModel;
use netsim::{FaultPlan, LinkFault};
use psa_math::Rng64;

/// Stream tag for scenario randomization (which rank / link to hit).
/// Distinct from `netsim::fault`'s `TAG_FAULT` (0xFA17), which seeds the
/// per-link delivery draws *inside* a run.
const TAG_SCENARIO: u64 = 0x5C_E4;

/// A named fault shape. `rank` fields are taken modulo the calculator
/// count, so a scenario written for a 4-calculator matrix still targets a
/// valid rank on an 8-calculator cluster.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scenario {
    /// No faults at all: the control row. Its plan is quiet, so the run
    /// must be byte-identical to an un-instrumented one.
    Baseline,
    /// Calculator `rank` dies at the start of frame `frame` and never
    /// speaks again; the manager must declare it dead and reassign its
    /// domain so every later frame still renders.
    CrashCalculator { rank: usize, frame: u64 },
    /// Calculator `rank` freezes for `secs` virtual seconds at the start
    /// of frame `frame` (GC pause / page-fault storm), then resumes.
    StallCalculator { rank: usize, frame: u64, secs: f64 },
    /// Calculator `rank` computes `factor`× slower for the whole run —
    /// the dynamic balancer should shift load off it.
    SlowNode { rank: usize, factor: f64 },
    /// Every link drops each message with probability `prob`; senders
    /// retry with backoff, charging virtual time.
    LossyLinks { prob: f64 },
    /// Every link delays each message with probability `prob` by up to
    /// `max_jitter` extra virtual seconds.
    JitteryLinks { prob: f64, max_jitter: f64 },
    /// Both directions of calculator `rank`'s links run at `bw_scale`× the
    /// bandwidth cost and `lat_scale`× the latency.
    DegradedLink { rank: usize, bw_scale: f64, lat_scale: f64 },
    /// Every link touching the *manager* runs at `bw_scale`× the bandwidth
    /// cost and `lat_scale`× the latency. The manager node itself stays
    /// healthy — this is the fabric around it failing, and it is the cell
    /// where decentralized balance strategies (no per-frame manager
    /// round-trip in the balance phase) should hold up better than the
    /// centralized ones that serialize every order through the manager.
    DegradedManager { bw_scale: f64, lat_scale: f64 },
    /// Seed-chosen combination: one slow calculator, one jittery-linked
    /// calculator, and (if `with_crash`) one mid-run crash, all distinct
    /// ranks when the cluster is big enough.
    RandomMix { with_crash: bool },
}

impl Scenario {
    /// Short stable label for reports and CI logs.
    pub fn label(&self) -> String {
        match *self {
            Scenario::Baseline => "baseline".into(),
            Scenario::CrashCalculator { rank, frame } => format!("crash-c{rank}@f{frame}"),
            Scenario::StallCalculator { rank, frame, secs } => {
                format!("stall-c{rank}@f{frame}-{}ms", (secs * 1e3).round() as u64)
            }
            Scenario::SlowNode { rank, factor } => format!("slow-c{rank}-x{factor}"),
            Scenario::LossyLinks { prob } => format!("lossy-p{prob}"),
            Scenario::JitteryLinks { prob, .. } => format!("jitter-p{prob}"),
            Scenario::DegradedLink { rank, .. } => format!("degraded-c{rank}"),
            Scenario::DegradedManager { .. } => "degraded-mgr".into(),
            Scenario::RandomMix { with_crash: true } => "mix+crash".into(),
            Scenario::RandomMix { with_crash: false } => "mix".into(),
        }
    }

    /// Does this scenario kill a calculator outright?
    pub fn kills(&self) -> bool {
        matches!(self, Scenario::CrashCalculator { .. } | Scenario::RandomMix { with_crash: true })
    }

    /// Build the concrete plan for `calculators` calculator ranks (the
    /// plan itself covers `calculators + 2` ranks: + manager + image
    /// generator, which are never faulted — the paper's model has no
    /// recovery story for either).
    pub fn plan(&self, seed: u64, calculators: usize, model: &NetworkModel) -> FaultPlan {
        assert!(calculators >= 2, "chaos scenarios need at least two calculators");
        let mut plan = FaultPlan::none(seed, calculators + 2);
        let mut rng = Rng64::new(seed).split(TAG_SCENARIO);
        match *self {
            Scenario::Baseline => {}
            Scenario::CrashCalculator { rank, frame } => {
                plan.rank_mut(rank % calculators).crash_at = Some(frame);
            }
            Scenario::StallCalculator { rank, frame, secs } => {
                plan.rank_mut(rank % calculators).stall = Some((frame, secs));
            }
            Scenario::SlowNode { rank, factor } => {
                assert!(factor >= 1.0);
                plan.rank_mut(rank % calculators).slowdown = factor;
            }
            Scenario::LossyLinks { prob } => {
                assert!((0.0..=0.1).contains(&prob), "drop rates above 10% starve retries");
                plan.set_all_links(LinkFault::lossy(prob));
            }
            Scenario::JitteryLinks { prob, max_jitter } => {
                plan.set_all_links(LinkFault::jittery(prob, max_jitter));
            }
            Scenario::DegradedLink { rank, bw_scale, lat_scale } => {
                plan.set_links_of(
                    rank % calculators,
                    LinkFault::degraded(model, bw_scale, lat_scale),
                );
            }
            Scenario::DegradedManager { bw_scale, lat_scale } => {
                // The manager sits at plan index `calculators` (the plan
                // covers calculators + manager + image generator).
                plan.set_links_of(calculators, LinkFault::degraded(model, bw_scale, lat_scale));
            }
            Scenario::RandomMix { with_crash } => {
                let slow = rng.below(calculators);
                plan.rank_mut(slow).slowdown = 1.0 + f64::from(rng.unit()) * 2.0;
                let jitter = rng.below(calculators);
                plan.set_links_of(jitter, LinkFault::jittery(0.05, 4.0 * model.latency));
                if with_crash {
                    // Pick a victim distinct from the slow rank when the
                    // cluster allows it, so both faults stay observable.
                    let mut victim = rng.below(calculators);
                    if victim == slow && calculators > 1 {
                        victim = (victim + 1) % calculators;
                    }
                    plan.rank_mut(victim).crash_at = Some(3 + rng.below(5) as u64);
                }
            }
        }
        plan
    }
}

/// The CI smoke matrix: one scenario per hardening mechanism, small enough
/// to run in seconds.
pub fn smoke_set() -> Vec<Scenario> {
    vec![
        Scenario::Baseline,
        Scenario::CrashCalculator { rank: 1, frame: 6 },
        Scenario::SlowNode { rank: 0, factor: 3.0 },
        Scenario::LossyLinks { prob: 0.05 },
    ]
}

/// The full matrix: every scenario shape, including the stall, degraded
/// link, and seed-chosen mixes.
pub fn full_set() -> Vec<Scenario> {
    let mut v = smoke_set();
    v.extend([
        Scenario::StallCalculator { rank: 2, frame: 4, secs: 0.25 },
        Scenario::JitteryLinks { prob: 0.08, max_jitter: 2.0e-3 },
        Scenario::DegradedLink { rank: 1, bw_scale: 4.0, lat_scale: 8.0 },
        Scenario::DegradedManager { bw_scale: 4.0, lat_scale: 8.0 },
        Scenario::RandomMix { with_crash: false },
        Scenario::RandomMix { with_crash: true },
    ]);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel::myrinet()
    }

    #[test]
    fn baseline_plan_is_quiet() {
        let p = Scenario::Baseline.plan(7, 4, &net());
        assert!(p.is_quiet());
        assert_eq!(p.ranks(), 6);
    }

    #[test]
    fn crash_targets_wrap_to_valid_ranks() {
        let p = Scenario::CrashCalculator { rank: 9, frame: 5 }.plan(7, 4, &net());
        assert_eq!(p.rank(1).crash_at, Some(5)); // 9 % 4
        assert!(p.rank(4).is_healthy(), "manager must never be faulted");
        assert!(p.rank(5).is_healthy(), "image generator must never be faulted");
    }

    #[test]
    fn degraded_manager_hits_only_manager_links() {
        let p = Scenario::DegradedManager { bw_scale: 4.0, lat_scale: 8.0 }.plan(7, 4, &net());
        assert!(p.rank(4).is_healthy(), "the manager node itself must stay healthy");
        for c in 0..4 {
            assert!(!p.link(c, 4).is_healthy(), "calc {c} → manager must be degraded");
            assert!(!p.link(4, c).is_healthy(), "manager → calc {c} must be degraded");
            assert!(p.link(c, (c + 1) % 4).is_healthy(), "calc-to-calc links stay clean");
        }
        assert!(!p.link(4, 5).is_healthy(), "the manager↔IG link degrades too");
        assert!(!p.is_quiet());
    }

    #[test]
    fn same_seed_same_plan_across_all_scenarios() {
        for s in full_set() {
            let a = s.plan(0xDEAD_BEEF, 5, &net());
            let b = s.plan(0xDEAD_BEEF, 5, &net());
            assert_eq!(a, b, "{} not reproducible", s.label());
        }
    }

    #[test]
    fn different_seeds_change_the_random_mix() {
        let s = Scenario::RandomMix { with_crash: true };
        let plans: Vec<FaultPlan> = (0..32).map(|seed| s.plan(seed, 8, &net())).collect();
        let first = &plans[0];
        assert!(plans.iter().any(|p| p != first), "32 seeds produced one mix");
    }

    #[test]
    fn labels_are_unique_within_the_full_set() {
        let labels: Vec<String> = full_set().iter().map(Scenario::label).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len(), "{labels:?}");
    }
}
