//! The chaos scenario matrix: run workloads under fault plans, check the
//! hardening held, and gate on replay determinism.
//!
//! Every case runs the virtual executor **twice** with the same seed and
//! plan; the run is only accepted if both [`RunReport`]s fingerprint
//! byte-identical. Faulty runs must stay as replayable as healthy ones —
//! that is the whole point of drawing fault randomness from seeded streams
//! (the FoundationDB lesson: a failure you cannot replay is a failure you
//! cannot debug).

use psa_runtime::trace::figure2_passes;
use psa_runtime::{RunConfig, RunReport, Scene, VirtualSim};
use psa_workloads::{fountain_scene, myrinet_gcc, snow_scene, WorkloadSize};

use crate::scenario::Scenario;

/// Which paper workload a case animates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// §5.1 — mostly vertical motion, little migration.
    Snow,
    /// §5.2 — constant domain crossings, heavy migration.
    Fountain,
}

impl Workload {
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Snow => "snow",
            Workload::Fountain => "fountain",
        }
    }

    /// Build the workload's scene at the given size.
    pub fn scene(&self, size: WorkloadSize) -> Scene {
        match self {
            Workload::Snow => snow_scene(size),
            Workload::Fountain => fountain_scene(size),
        }
    }
}

/// Matrix-wide knobs.
#[derive(Clone, Copy, Debug)]
pub struct MatrixConfig {
    /// Seed for both the workload RNG streams and the fault plans.
    pub seed: u64,
    /// Frames per case (warm-up is zero: every frame is checked).
    pub frames: u64,
    /// Calculator count (cluster is `calculators` Myrinet nodes, 1 proc each).
    pub calculators: usize,
    /// Particles per system (scaled ×25 in the cost model, paper-style).
    pub particles: usize,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        MatrixConfig { seed: 0x1905_2005, frames: 12, calculators: 4, particles: 900 }
    }
}

/// What happened in one (workload, scenario) cell.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    pub workload: &'static str,
    pub scenario: String,
    /// Fingerprint of the first run (== the replay's when `passed`).
    pub fingerprint: u64,
    pub frames_rendered: usize,
    /// `(rank, frame)` death declarations, in order.
    pub dead: Vec<(usize, u64)>,
    pub lost_particles: u64,
    /// Deadline-expired receives summed over the run.
    pub timeouts: u64,
    pub total_time: f64,
    /// Check failures; empty means the cell passed.
    pub failures: Vec<String>,
}

impl CaseOutcome {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl MatrixConfig {
    /// The `RunConfig` every cell runs under (shared with the recovery
    /// gate, which layers a checkpoint policy on top).
    pub fn run_config(&self) -> RunConfig {
        RunConfig { frames: self.frames, dt: 0.1, seed: self.seed, warmup: 0, ..Default::default() }
    }

    /// The workload size every cell animates (×25 cost scale, paper-style).
    pub fn workload_size(&self) -> WorkloadSize {
        WorkloadSize { systems: 2, particles_per_system: self.particles, scale: 25.0 }
    }
}

fn run_config(mc: &MatrixConfig) -> RunConfig {
    mc.run_config()
}

fn size(mc: &MatrixConfig) -> WorkloadSize {
    mc.workload_size()
}

/// Run one cell: simulate, check the hardening invariants, replay, compare.
pub fn run_case(workload: Workload, scenario: Scenario, mc: &MatrixConfig) -> CaseOutcome {
    let sz = size(mc);
    let cluster = myrinet_gcc(mc.calculators, 1);
    let plan = scenario.plan(mc.seed, mc.calculators, &cluster.net);
    let mut failures = Vec::new();

    let run = |trace: bool| {
        let mut sim =
            VirtualSim::new(workload.scene(sz), run_config(mc), cluster.clone(), sz.cost_model())
                .with_faults(plan.clone());
        if trace {
            // The first run carries both the protocol trace and the
            // per-phase recorder; the replay runs bare. The fingerprint
            // comparison below therefore also proves instrumentation is
            // quiet under every fault plan in the matrix.
            sim = sim.with_trace().with_phases();
        }
        let r = sim.try_run();
        (r, sim)
    };

    let (first, sim) = run(true);
    let report = match first {
        Ok(r) => r,
        Err(e) => {
            return CaseOutcome {
                workload: workload.label(),
                scenario: scenario.label(),
                fingerprint: 0,
                frames_rendered: 0,
                dead: Vec::new(),
                lost_particles: 0,
                timeouts: 0,
                total_time: 0.0,
                failures: vec![format!("run failed: {e}")],
            }
        }
    };

    // Every frame must have rendered, crash or no crash: degraded mode
    // means the show goes on with the survivors.
    if report.frames.len() != mc.frames as usize {
        failures.push(format!("only {}/{} frames rendered", report.frames.len(), mc.frames));
    }
    // Each frame's trace must be one clean Figure-2 pass — faults may slow
    // phases down but never reorder them.
    for f in 0..mc.frames {
        let events = sim.trace().frame(f);
        let passes = figure2_passes(&events);
        if passes != 1 {
            failures.push(format!("frame {f}: {passes} protocol passes (want 1)"));
        }
    }
    // Kill scenarios must actually have killed someone and the manager
    // must have noticed (declaration precedes the last frame).
    if scenario.kills() {
        if report.dead_ranks.is_empty() {
            failures.push("crash scenario ended with no dead ranks".into());
        }
        for &(rank, frame) in &report.dead_ranks {
            if frame >= mc.frames {
                failures.push(format!("rank {rank} declared dead after the run ({frame})"));
            }
        }
    } else if !report.dead_ranks.is_empty() {
        failures.push(format!("unexpected deaths: {:?}", report.dead_ranks));
    }

    // Quiet plans must be byte-identical to an entirely uninstrumented
    // run: the fault layer may not perturb healthy executions.
    if plan.is_quiet() {
        let mut bare =
            VirtualSim::new(workload.scene(sz), run_config(mc), cluster.clone(), sz.cost_model());
        match bare.try_run() {
            Ok(b) if b.fingerprint() != report.fingerprint() => {
                failures.push("quiet plan perturbed the run".into());
            }
            Ok(_) => {}
            Err(e) => failures.push(format!("bare replay failed: {e}")),
        }
    }

    // The replay gate: same seed + same plan ⇒ byte-identical report.
    match run(false).0 {
        Ok(replay) if replay.fingerprint() != report.fingerprint() => {
            failures.push("replay fingerprint diverged".into());
        }
        Ok(_) => {}
        Err(e) => failures.push(format!("replay failed: {e}")),
    }

    CaseOutcome {
        workload: workload.label(),
        scenario: scenario.label(),
        fingerprint: report.fingerprint(),
        frames_rendered: report.frames.len(),
        dead: report.dead_ranks.clone(),
        lost_particles: report.lost_particles,
        timeouts: report.frames.iter().map(|f| f.timeouts).sum(),
        total_time: report.total_time,
        failures,
    }
}

/// Run the whole matrix: every scenario × both workloads.
pub fn run_matrix(scenarios: &[Scenario], mc: &MatrixConfig) -> Vec<CaseOutcome> {
    let mut out = Vec::new();
    for &w in &[Workload::Snow, Workload::Fountain] {
        for s in scenarios {
            out.push(run_case(w, *s, mc));
        }
    }
    out
}

/// Convenience used by [`RunReport`]-level assertions in tests.
pub fn replay_fingerprints_match(a: &RunReport, b: &RunReport) -> bool {
    a.fingerprint() == b.fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_cell_passes() {
        let mc = MatrixConfig { frames: 6, particles: 400, ..Default::default() };
        let c = run_case(Workload::Snow, Scenario::Baseline, &mc);
        assert!(c.passed(), "{:?}", c.failures);
        assert_eq!(c.frames_rendered, 6);
        assert!(c.dead.is_empty());
        assert_eq!(c.lost_particles, 0);
    }

    #[test]
    fn crash_cell_degrades_and_passes() {
        let mc = MatrixConfig { frames: 10, particles: 400, ..Default::default() };
        let c = run_case(Workload::Snow, Scenario::CrashCalculator { rank: 1, frame: 3 }, &mc);
        assert!(c.passed(), "{:?}", c.failures);
        assert_eq!(c.frames_rendered, 10, "post-crash frames must still render");
        assert_eq!(c.dead.len(), 1);
        assert_eq!(c.dead[0].0, 1);
        assert!(c.timeouts > 0, "silent peer should have cost bounded waits");
    }

    /// The replay gate compares a phase-instrumented first run against a
    /// bare replay, so passing cells prove the recorder stays quiet even
    /// while faults are firing (retries, stalls, dead-rank bookkeeping).
    #[test]
    fn traced_faulty_cells_replay_byte_identical() {
        let mc = MatrixConfig { frames: 8, particles: 400, ..Default::default() };
        for scenario in [
            Scenario::StallCalculator { rank: 0, frame: 2, secs: 0.5 },
            Scenario::LossyLinks { prob: 0.05 },
        ] {
            let c = run_case(Workload::Fountain, scenario, &mc);
            assert!(c.passed(), "{}: {:?}", c.scenario, c.failures);
        }
    }
}
