//! Properties of the fault-injection subsystem.
//!
//! Two property-style sweeps (seed-reproducible plans; the balancer never
//! overdrawing a donor under crash-induced reassignment) plus end-to-end
//! replay gates for the crash and lossy scenarios.

use cluster_sim::NetworkModel;
use psa_chaos::{full_set, run_case, MatrixConfig, Scenario, Workload};
use psa_math::Rng64;
use psa_runtime::balance::{
    evaluate, evaluate_decentralized, evaluate_present, BalancerConfig, LoadInfo,
};

/// Property: for any seed, building a scenario's plan twice yields the
/// same plan, byte for byte — fault randomness is a pure function of the
/// seed, never of ambient entropy.
#[test]
fn fault_plans_are_seed_reproducible() {
    let net = NetworkModel::myrinet();
    for seed in 0..256u64 {
        for s in full_set() {
            for calcs in [2usize, 4, 7] {
                let a = s.plan(seed, calcs, &net);
                let b = s.plan(seed, calcs, &net);
                assert_eq!(a, b, "{} seed {seed} calcs {calcs}", s.label());
                assert_eq!(a.ranks(), calcs + 2);
            }
        }
    }
}

/// Property: under crash-induced domain reassignment the balancer operates
/// on the *present* (alive) calculators only, and no order it emits ever
/// moves more particles than the donor owns. Sweeps random load vectors
/// and random dead-sets.
#[test]
fn present_orders_never_overdraw_a_donor() {
    let mut rng = Rng64::new(0xBA1A_0CE5);
    let cfg = BalancerConfig::default();
    for case in 0..500 {
        let n = 3 + rng.below(8); // 3..=10 calculators
                                  // Kill up to n-2 of them, leaving at least two present.
        let mut present: Vec<usize> = (0..n).collect();
        let deaths = rng.below(n - 1);
        for _ in 0..deaths {
            if present.len() <= 2 {
                break;
            }
            let victim = rng.below(present.len());
            present.remove(victim);
        }
        let loads: Vec<LoadInfo> = present
            .iter()
            .map(|_| {
                let count = rng.below(5_000);
                LoadInfo { count, time: count as f64 * (0.5 + f64::from(rng.unit())) * 1e-6 }
            })
            .collect();
        let powers: Vec<f64> = present.iter().map(|_| 0.5 + f64::from(rng.unit())).collect();
        let start = rng.below(2);
        let transfers = evaluate_present(&loads, &powers, &present, start, &cfg);
        for t in &transfers {
            let donor_pos = present
                .iter()
                .position(|&c| c == t.donor)
                .unwrap_or_else(|| panic!("case {case}: donor {} not present", t.donor));
            assert!(
                t.amount <= loads[donor_pos].count,
                "case {case}: donor {} ordered to move {} of {} particles",
                t.donor,
                t.amount,
                loads[donor_pos].count
            );
            assert!(present.contains(&t.receiver), "case {case}: receiver {} is dead", t.receiver);
        }
    }
}

/// Property: malformed balance reports — length-mismatched load/power/
/// present vectors, as a faulty or half-crashed manager would assemble
/// them — yield an empty round from every balancer entry point instead of
/// a panic. A wedged balancer must degrade to "no orders this frame", not
/// take the manager down with it.
#[test]
fn malformed_report_lengths_yield_empty_rounds() {
    let mut rng = Rng64::new(0x0BAD_512E);
    let cfg = BalancerConfig::default();
    for case in 0..500 {
        let n = 2 + rng.below(7); // 2..=8 calculators
        let loads: Vec<LoadInfo> = (0..n)
            .map(|_| {
                let count = rng.below(2_000);
                LoadInfo { count, time: count as f64 * f64::from(rng.unit()) * 1e-6 }
            })
            .collect();
        // A power vector that is too short, too long, or empty — never n.
        let mut m = rng.below(n + 3);
        if m == n {
            m += 1;
        }
        let powers: Vec<f64> = (0..m).map(|_| 0.5 + f64::from(rng.unit())).collect();
        let start = rng.below(2);
        assert!(
            evaluate(&loads, &powers, start, &cfg).is_empty(),
            "case {case}: centralized round must be empty for {n} loads / {m} powers"
        );
        assert!(
            evaluate_decentralized(&loads, &powers, &cfg).is_empty(),
            "case {case}: decentralized round must be empty for {n} loads / {m} powers"
        );
        // present.len() matches neither loads nor powers.
        let present: Vec<usize> = (0..n + 1).collect();
        assert!(
            evaluate_present(&loads, &powers, &present, start, &cfg).is_empty(),
            "case {case}: present round must be empty for mismatched membership"
        );
    }
}

/// A crash run completes degraded (all frames rendered, dead rank
/// declared) and replays byte-identically — the matrix cell asserts both.
#[test]
fn crash_scenario_completes_and_replays() {
    let mc = MatrixConfig { frames: 10, particles: 500, ..Default::default() };
    let c = run_case(Workload::Fountain, Scenario::CrashCalculator { rank: 2, frame: 4 }, &mc);
    assert!(c.passed(), "{:?}", c.failures);
    assert_eq!(c.frames_rendered, 10);
    assert_eq!(c.dead, vec![(2, c.dead[0].1)]);
    assert!(c.dead[0].1 >= 4, "death cannot be declared before the crash");
}

/// Lossy links exercise the retry path on every frame yet stay perfectly
/// replayable, because drop decisions come from per-link seeded streams.
#[test]
fn lossy_scenario_is_deterministic() {
    let mc = MatrixConfig { frames: 8, particles: 400, ..Default::default() };
    let c = run_case(Workload::Snow, Scenario::LossyLinks { prob: 0.08 }, &mc);
    assert!(c.passed(), "{:?}", c.failures);
    assert!(c.dead.is_empty(), "loss alone must never kill a rank");
}

/// The stall scenario pauses a calculator mid-run without killing it: the
/// frame time absorbs the stall, nobody is declared dead.
#[test]
fn stall_slows_but_does_not_kill() {
    let mc = MatrixConfig { frames: 8, particles: 400, ..Default::default() };
    let healthy = run_case(Workload::Snow, Scenario::Baseline, &mc);
    let stalled =
        run_case(Workload::Snow, Scenario::StallCalculator { rank: 1, frame: 3, secs: 0.5 }, &mc);
    assert!(stalled.passed(), "{:?}", stalled.failures);
    assert!(stalled.dead.is_empty());
    assert!(
        stalled.total_time > healthy.total_time + 0.4,
        "stall of 0.5s must show up in the makespan ({} vs {})",
        stalled.total_time,
        healthy.total_time
    );
}
