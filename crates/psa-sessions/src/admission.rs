//! Admission control: the bounded queue and the per-tenant caps.
//!
//! Admission is where the pool says *no*. Everything downstream of it —
//! slots, lanes, the dispatch rotation — is sized at construction and
//! never grows, so the only way the pool can melt under load is if
//! admission lets it. Two limits apply, checked in order:
//!
//! 1. **per-tenant in-flight cap** — a tenant may hold at most
//!    `per_tenant_in_flight` slots; excess sessions queue even when slots
//!    are free, so one tenant cannot drain the pool;
//! 2. **bounded queue** — the admission queue holds at most
//!    `queue_capacity` sessions overall and `per_tenant_backlog` per
//!    tenant; beyond that a session is [`AdmissionError::Rejected`],
//!    never silently buffered.
//!
//! Both outcomes are typed: [`AdmissionError::Queued`] is backpressure
//! made visible (the session *will* run — callers that care about
//! latency can shed load themselves), [`AdmissionError::Rejected`] is a
//! drop the caller must handle.

use crate::session::{SessionId, TenantId};

/// Why admission refused a session outright.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The global admission queue is at `queue_capacity`.
    QueueFull {
        /// The configured global queue bound.
        capacity: usize,
    },
    /// The tenant already has `per_tenant_backlog` sessions queued.
    TenantBacklog {
        /// The configured per-tenant backlog bound.
        capacity: usize,
    },
}

/// The typed admission outcome for a session that did not start running
/// immediately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// Dropped: no queue capacity left for this session. The id was
    /// consumed (ids are admission-ordered) but will never be dispatched.
    Rejected {
        /// The session id the drop consumed.
        id: SessionId,
        /// The tenant whose session was dropped.
        tenant: TenantId,
        /// Which bound refused it.
        reason: RejectReason,
    },
    /// Accepted under backpressure: the session is in the bounded queue
    /// and will run when a slot and tenant headroom free up.
    Queued {
        /// The queued session's id (valid — the session will run).
        id: SessionId,
        /// Position in the admission queue at admission time (0 = next).
        position: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Rejected { id, tenant, reason } => match reason {
                RejectReason::QueueFull { capacity } => write!(
                    f,
                    "session {} (tenant {}) rejected: admission queue full ({capacity})",
                    id.0, tenant.0
                ),
                RejectReason::TenantBacklog { capacity } => write!(
                    f,
                    "session {} (tenant {}) rejected: tenant backlog full ({capacity})",
                    id.0, tenant.0
                ),
            },
            AdmissionError::Queued { id, position } => {
                write!(f, "session {} queued at position {position}", id.0)
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Admission-control bounds. Defaults suit the bench pools; production
/// callers size them from their latency budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Sessions the pool services concurrently — the slot-arena size.
    pub max_in_flight: usize,
    /// Slots one tenant may hold at once.
    pub per_tenant_in_flight: usize,
    /// Global bound on the admission queue.
    pub queue_capacity: usize,
    /// Per-tenant bound on queued sessions.
    pub per_tenant_backlog: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_in_flight: 32,
            per_tenant_in_flight: 8,
            queue_capacity: 1024,
            per_tenant_backlog: 256,
        }
    }
}

impl AdmissionConfig {
    /// An effectively unbounded configuration for parity tests and
    /// saturation benches: every admitted session queues or runs, nothing
    /// is rejected.
    pub fn unbounded(max_in_flight: usize) -> Self {
        AdmissionConfig {
            max_in_flight,
            per_tenant_in_flight: usize::MAX,
            queue_capacity: usize::MAX,
            per_tenant_backlog: usize::MAX,
        }
    }

    /// The admission decision for a session of a tenant currently holding
    /// `running` slots with `queued` sessions waiting, given `queue_len`
    /// sessions in the global queue and `slot_free` free slots.
    ///
    /// `Ok(true)` = start immediately, `Ok(false)` = enqueue, `Err` = the
    /// [`RejectReason`] that bound the drop.
    pub fn decide(
        &self,
        running: usize,
        queued: usize,
        queue_len: usize,
        slot_free: bool,
    ) -> Result<bool, RejectReason> {
        if slot_free && queue_len == 0 && running < self.per_tenant_in_flight {
            return Ok(true);
        }
        if queue_len >= self.queue_capacity {
            return Err(RejectReason::QueueFull { capacity: self.queue_capacity });
        }
        if queued >= self.per_tenant_backlog {
            return Err(RejectReason::TenantBacklog { capacity: self.per_tenant_backlog });
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_start_needs_slot_and_tenant_headroom() {
        let c = AdmissionConfig { per_tenant_in_flight: 2, ..AdmissionConfig::default() };
        assert_eq!(c.decide(0, 0, 0, true), Ok(true));
        assert_eq!(c.decide(2, 0, 0, true), Ok(false), "tenant at cap queues");
        assert_eq!(c.decide(0, 0, 0, false), Ok(false), "no slot queues");
        assert_eq!(c.decide(0, 0, 3, true), Ok(false), "FIFO: a backlog means no overtaking");
    }

    #[test]
    fn bounds_reject_in_order() {
        let c = AdmissionConfig {
            queue_capacity: 2,
            per_tenant_backlog: 1,
            ..AdmissionConfig::default()
        };
        assert_eq!(c.decide(9, 0, 2, false), Err(RejectReason::QueueFull { capacity: 2 }));
        assert_eq!(c.decide(9, 1, 1, false), Err(RejectReason::TenantBacklog { capacity: 1 }));
    }

    #[test]
    fn unbounded_never_rejects() {
        let c = AdmissionConfig::unbounded(4);
        assert_eq!(c.decide(usize::MAX - 1, usize::MAX - 1, usize::MAX - 1, false), Ok(false));
    }

    #[test]
    fn errors_format_with_ids() {
        let e = AdmissionError::Rejected {
            id: SessionId(3),
            tenant: TenantId(1),
            reason: RejectReason::QueueFull { capacity: 8 },
        };
        assert!(e.to_string().contains("session 3"));
        let q = AdmissionError::Queued { id: SessionId(4), position: 2 };
        assert!(q.to_string().contains("position 2"));
    }
}
