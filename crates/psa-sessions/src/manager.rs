//! The session manager: admission, the cooperative dispatch rotation, and
//! the worker-lane clock arithmetic.
//!
//! The pool multiplexes *sessions* (whole seeded animation runs) over a
//! fixed set of worker lanes. Scheduling is cooperative frame-slicing: a
//! dispatch gives one session at most [`PoolConfig::slice_frames`] frames
//! on the earliest-free lane, then the session goes to the back of the
//! rotation — so a 1,000-frame epic never starves a 30-frame clip, and
//! every session's frame-completion times are a pure function of the
//! admission sequence. Each session drives its own [`Engine`] over its
//! own [`EventFabric`] (the engine state never leaks
//! between sessions), which is why a session's report is byte-identical
//! to a solo run of its derived seed no matter what ran next to it.

use std::collections::{BTreeMap, VecDeque};

use netsim::{FaultPlan, FaultPolicy};
use psa_desim::EventFabric;
use psa_runtime::msg::ProtocolError;
use psa_runtime::protocol::{node_layout, Engine};
use psa_runtime::report::FrameReport;
use psa_runtime::trace::Trace;
use psa_trace::SessionCounters;

use crate::admission::{AdmissionConfig, AdmissionError};
use crate::session::{derive_session_seed, SessionId, SessionOutcome, SessionSpec, SessionState};
use crate::slot::{SlotPool, SlotStats, SlotTicket};

/// Pool-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Worker lanes. A lane runs one session's frames at a time; the
    /// session's own cluster spec models the parallelism *inside* a run.
    pub workers: usize,
    /// Frames a session may run per dispatch before yielding the lane.
    pub slice_frames: u64,
    /// Admission bounds (queue, slots, per-tenant caps).
    pub admission: AdmissionConfig,
    /// Pool base seed; session `k` runs under
    /// [`derive_session_seed`]`(base_seed, k)`.
    pub base_seed: u64,
    /// Checkpoint a running session's engine every this many completed
    /// frames; a worker-loss restart then resumes from the last snapshot
    /// instead of frame 0. `0` disables checkpointing (the pre-recovery
    /// restart-from-scratch behavior).
    pub checkpoint_interval: u64,
    /// Record per-session phase timings (quiet: fingerprints unchanged).
    pub instrument: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 4,
            slice_frames: 2,
            admission: AdmissionConfig::default(),
            base_seed: 0x5E55_0000,
            checkpoint_interval: 0,
            instrument: false,
        }
    }
}

/// A deterministic pool-level fault, injected by the chaos layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolFault {
    /// The lane chosen for dispatch number `at_dispatch` (1-based) dies at
    /// that moment. The in-flight slice is lost with it: the session's
    /// engine is discarded and the session re-queued — resuming from its
    /// last pool checkpoint when [`PoolConfig::checkpoint_interval`] is
    /// set, from frame 0 otherwise. Work completed since the checkpoint
    /// is counted in [`SessionCounters::lost_frames`] /
    /// [`SessionCounters::restart_lost_secs`]. The pool never kills its
    /// last lane; a loss that would is ignored.
    WorkerLoss {
        /// 1-based dispatch count the loss strikes at.
        at_dispatch: u64,
    },
}

/// One worker lane: a virtual clock plus liveness.
#[derive(Clone, Copy, Debug)]
struct Lane {
    busy_until: f64,
    alive: bool,
}

/// Book-keeping for one admitted session.
struct SessionEntry {
    spec: SessionSpec,
    seed: u64,
    state: SessionState,
    ticket: Option<SlotTicket>,
    first_dispatch: Option<f64>,
    /// Pool time the session's latest frame completed at.
    last_done: f64,
    counters: SessionCounters,
}

/// Everything a finished pool run reports.
#[derive(Clone, Debug, Default)]
pub struct PoolReport {
    /// Completed sessions, in completion order.
    pub outcomes: Vec<SessionOutcome>,
    /// Sessions ended by a protocol error (healthy specs never do).
    pub failed: Vec<(SessionId, ProtocolError)>,
    /// Sessions the admission controller dropped.
    pub rejected: Vec<SessionId>,
    /// Pool-virtual time the last session completed at.
    pub makespan: f64,
    /// Total frame-slice dispatches.
    pub dispatches: u64,
    /// Lanes lost to [`PoolFault::WorkerLoss`].
    pub lanes_lost: usize,
    /// Slot-arena statistics (recycle count, high water).
    pub slot_stats: SlotStats,
}

impl PoolReport {
    /// Completed sessions.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Completed sessions per pool-virtual second; `0.0` on a degenerate
    /// pool run (nothing completed or zero makespan).
    pub fn sessions_per_sec(&self) -> f64 {
        if self.outcomes.is_empty() || self.makespan.is_nan() || self.makespan <= 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / self.makespan
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of frame latency across every
    /// completed session's frames; `0.0` when no frames were recorded.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        let mut all: Vec<f64> =
            self.outcomes.iter().flat_map(|o| o.frame_latencies.iter().copied()).collect();
        if all.is_empty() {
            return 0.0;
        }
        all.sort_by(f64::total_cmp);
        let last = all.len() - 1;
        let pos = (q.clamp(0.0, 1.0) * last as f64).round() as usize;
        all.get(pos.min(last)).copied().unwrap_or(0.0)
    }

    /// Mean admission-queue wait over completed sessions; `0.0` when none
    /// completed.
    pub fn mean_queue_wait(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.counters.queue_wait).sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// The outcome of one session, if it completed.
    pub fn outcome_for(&self, id: SessionId) -> Option<&SessionOutcome> {
        self.outcomes.iter().find(|o| o.id == id)
    }
}

/// The multi-tenant session scheduler.
pub struct SessionManager {
    cfg: PoolConfig,
    lanes: Vec<Lane>,
    entries: Vec<SessionEntry>,
    /// Dispatch rotation: sessions holding a slot, in yield order.
    ready: VecDeque<usize>,
    /// The bounded admission queue: sessions waiting for a slot.
    pending: VecDeque<usize>,
    slots: SlotPool,
    tenant_running: BTreeMap<u32, usize>,
    tenant_queued: BTreeMap<u32, usize>,
    faults: VecDeque<PoolFault>,
    dispatches: u64,
    lanes_lost: usize,
    report: PoolReport,
}

impl SessionManager {
    /// A pool with `cfg.workers` idle lanes and an empty slot arena of
    /// `cfg.admission.max_in_flight` slots.
    pub fn new(cfg: PoolConfig) -> Self {
        assert!(cfg.workers >= 1, "a pool needs at least one worker lane");
        assert!(cfg.slice_frames >= 1, "a dispatch must run at least one frame");
        assert!(
            cfg.admission.per_tenant_in_flight >= 1,
            "a zero in-flight cap would deadlock every tenant"
        );
        SessionManager {
            lanes: vec![Lane { busy_until: 0.0, alive: true }; cfg.workers],
            entries: Vec::new(),
            ready: VecDeque::new(),
            pending: VecDeque::new(),
            slots: SlotPool::new(cfg.admission.max_in_flight),
            tenant_running: BTreeMap::new(),
            tenant_queued: BTreeMap::new(),
            faults: VecDeque::new(),
            dispatches: 0,
            lanes_lost: 0,
            report: PoolReport::default(),
            cfg,
        }
    }

    /// Inject a deterministic pool fault (chaos scenarios).
    pub fn with_fault(mut self, fault: PoolFault) -> Self {
        self.faults.push_back(fault);
        self
    }

    /// Admit a session.
    ///
    /// Returns `Ok(id)` when the session starts immediately. Both
    /// backpressure outcomes are typed errors: [`AdmissionError::Queued`]
    /// means the session is waiting in the bounded queue (it *will* run —
    /// the error carries its id), [`AdmissionError::Rejected`] means it
    /// was dropped at an admission bound.
    ///
    /// ```
    /// use psa_sessions::{AdmissionConfig, AdmissionError, PoolConfig, SessionManager, SessionSpec, TenantId};
    /// use psa_workloads::{paper_run_config, snow_scene, myrinet_gcc, WorkloadSize};
    ///
    /// let size = WorkloadSize::test();
    /// let spec = SessionSpec {
    ///     tenant: TenantId(0),
    ///     scene: snow_scene(size),
    ///     cfg: paper_run_config(4, 0.04),
    ///     cluster: myrinet_gcc(2, 1),
    ///     cost: size.cost_model(),
    ///     arrival: 0.0,
    /// };
    /// // One slot: the first session runs, the second queues behind it.
    /// let admission = AdmissionConfig { max_in_flight: 1, ..AdmissionConfig::unbounded(1) };
    /// let mut pool = SessionManager::new(PoolConfig { admission, ..PoolConfig::default() });
    /// let first = pool.admit(spec.clone()).expect("slot is free");
    /// match pool.admit(spec) {
    ///     Err(AdmissionError::Queued { id, position: 0 }) => assert_ne!(id, first),
    ///     other => panic!("expected backpressure, got {other:?}"),
    /// }
    /// let report = pool.run_to_completion();
    /// assert_eq!(report.completed(), 2);
    /// ```
    pub fn admit(&mut self, spec: SessionSpec) -> Result<SessionId, AdmissionError> {
        let id = SessionId(self.entries.len() as u64);
        let seed = derive_session_seed(self.cfg.base_seed, id);
        let tenant = spec.tenant;
        let running = self.tenant_running.get(&tenant.0).copied().unwrap_or(0);
        let queued = self.tenant_queued.get(&tenant.0).copied().unwrap_or(0);
        let decision =
            self.cfg.admission.decide(running, queued, self.pending.len(), self.slots.has_free());
        let arrival = spec.arrival;
        let mut entry = SessionEntry {
            spec,
            seed,
            state: SessionState::Admitted,
            ticket: None,
            first_dispatch: None,
            last_done: arrival,
            counters: SessionCounters::default(),
        };
        let index = self.entries.len();
        match decision {
            Ok(true) => {
                entry.ticket = self.slots.acquire();
                debug_assert!(entry.ticket.is_some(), "decide() saw a free slot");
                entry.state = SessionState::Running;
                self.entries.push(entry);
                self.ready.push_back(index);
                *self.tenant_running.entry(tenant.0).or_insert(0) += 1;
                Ok(id)
            }
            Ok(false) => {
                entry.state = SessionState::Queued;
                self.entries.push(entry);
                self.pending.push_back(index);
                *self.tenant_queued.entry(tenant.0).or_insert(0) += 1;
                Err(AdmissionError::Queued { id, position: self.pending.len() - 1 })
            }
            Err(reason) => {
                entry.state = SessionState::Rejected;
                self.entries.push(entry);
                self.report.rejected.push(id);
                Err(AdmissionError::Rejected { id, tenant, reason })
            }
        }
    }

    /// The lifecycle state of a session (admitted or rejected ids only).
    pub fn state_of(&self, id: SessionId) -> Option<SessionState> {
        self.entries.get(id.0 as usize).map(|e| e.state)
    }

    /// Drive the pool until every admitted session has completed (or
    /// failed), then hand back the report. Deterministic: the outcome is a
    /// pure function of the admission sequence, the pool config, and the
    /// injected faults.
    pub fn run_to_completion(mut self) -> PoolReport {
        loop {
            if self.ready.is_empty() {
                if self.pending.is_empty() || !self.promote_queued() {
                    break;
                }
                continue;
            }
            let lane = self.earliest_lane();
            self.dispatches += 1;
            if self.worker_loss_strikes() {
                self.kill_lane(lane);
                continue;
            }
            self.dispatch(lane);
            self.promote_queued();
        }
        self.report.dispatches = self.dispatches;
        self.report.lanes_lost = self.lanes_lost;
        self.report.slot_stats = self.slots.stats();
        self.report
    }

    /// The alive lane that frees up first (ties break to the lowest
    /// index, so the loop is deterministic).
    fn earliest_lane(&self) -> usize {
        let mut best = usize::MAX;
        let mut best_t = f64::INFINITY;
        for (i, lane) in self.lanes.iter().enumerate() {
            if lane.alive && lane.busy_until.total_cmp(&best_t).is_lt() {
                best = i;
                best_t = lane.busy_until;
            }
        }
        debug_assert!(best != usize::MAX, "the pool never loses its last lane");
        best
    }

    /// Does a `WorkerLoss` fault strike the current dispatch? (Consumes
    /// the fault; losses that would kill the last lane are dropped.)
    fn worker_loss_strikes(&mut self) -> bool {
        let strikes = matches!(
            self.faults.front(),
            Some(PoolFault::WorkerLoss { at_dispatch }) if *at_dispatch == self.dispatches
        );
        if !strikes {
            return false;
        }
        self.faults.pop_front();
        self.lanes.iter().filter(|l| l.alive).count() > 1
    }

    /// Lane death: the dispatched slice is lost and its session goes to
    /// the back of the rotation. With a checkpoint the session rewinds
    /// only to the last snapshot — frames completed since are discarded
    /// and accounted as lost; without one it restarts from frame 0.
    fn kill_lane(&mut self, lane: usize) {
        if let Some(l) = self.lanes.get_mut(lane) {
            l.alive = false;
        }
        self.lanes_lost += 1;
        let Some(index) = self.ready.pop_front() else {
            return;
        };
        if let Some(entry) = self.entries.get_mut(index) {
            entry.counters.requeues += 1;
            if let Some(slot) = entry.ticket.and_then(|t| self.slots.get_mut(t)) {
                slot.engine = None;
                // Rewind the completed-frame spines to the checkpoint (to
                // nothing when checkpoints are off). The dropped latency
                // gaps sum to the virtual time the session pays again on
                // replay, and walking `last_done` back by that sum leaves
                // it at the last *kept* frame's completion time.
                let keep = slot.snapshot.as_ref().map_or(0, |s| s.next_frame as usize);
                let keep = keep.min(slot.frames.len());
                let dropped_secs: f64 =
                    slot.latencies.get(keep..).map_or(0.0, |tail| tail.iter().sum());
                let dropped = (slot.frames.len() - keep) as u64;
                slot.frames.truncate(keep);
                slot.latencies.truncate(keep);
                entry.counters.lost_frames += dropped;
                entry.counters.restart_lost_secs += dropped_secs;
                entry.counters.frames = keep as u64;
                if keep > 0 {
                    entry.last_done -= dropped_secs;
                }
            } else {
                entry.counters.frames = 0;
            }
        }
        self.ready.push_back(index);
    }

    /// Run one frame slice of the rotation head on `lane`.
    fn dispatch(&mut self, lane: usize) {
        let Some(index) = self.ready.pop_front() else {
            return;
        };
        let Some(entry) = self.entries.get_mut(index) else {
            return;
        };
        let Some(ticket) = entry.ticket else {
            return;
        };
        let t0 = self.lanes.get(lane).map(|l| l.busy_until).unwrap_or(0.0);
        if entry.first_dispatch.is_none() {
            entry.first_dispatch = Some(t0);
            entry.counters.queue_wait = t0 - entry.spec.arrival;
        }
        entry.counters.slices += 1;
        let instrument = self.cfg.instrument;
        let interval = self.cfg.checkpoint_interval;
        let Some(slot) = self.slots.get_mut(ticket) else {
            return;
        };
        if slot.engine.is_none() {
            let mut engine = build_engine(&entry.spec, entry.seed, instrument);
            // After a worker loss the rebuilt engine resumes from the last
            // pool checkpoint. A snapshot taken from this very spec always
            // fits; a mismatch is surfaced as a typed session failure, not
            // a panic.
            if let Some(snap) = slot.snapshot.as_ref() {
                if let Err(e) = engine.restore(snap) {
                    self.report.failed.push((SessionId(index as u64), e));
                    self.release(index, SessionState::Recycled);
                    return;
                }
            }
            slot.engine = Some(engine);
        }
        let Some(engine) = slot.engine.as_mut() else {
            return;
        };
        let mut t = t0;
        let mut outcome = SliceOutcome::Yielded;
        for _ in 0..self.cfg.slice_frames {
            match engine.step_frame() {
                Ok(Some(fr)) => {
                    t += fr.frame_time;
                    let latency = if slot.latencies.is_empty() {
                        t - entry.spec.arrival
                    } else {
                        t - entry.last_done
                    };
                    slot.latencies.push(latency);
                    slot.frames.push(fr);
                    entry.last_done = t;
                    entry.counters.frames += 1;
                    if interval > 0 && entry.counters.frames % interval == 0 {
                        slot.snapshot = Some(engine.snapshot());
                    }
                }
                Ok(None) => {
                    outcome = SliceOutcome::Finished;
                    break;
                }
                Err(e) => {
                    outcome = SliceOutcome::Failed(e);
                    break;
                }
            }
        }
        if matches!(outcome, SliceOutcome::Yielded) && engine.frames_remaining() == 0 {
            outcome = SliceOutcome::Finished;
        }
        if let Some(l) = self.lanes.get_mut(lane) {
            l.busy_until = t;
        }
        self.report.makespan = self.report.makespan.max(t);
        match outcome {
            SliceOutcome::Yielded => self.ready.push_back(index),
            SliceOutcome::Finished => self.finish_session(index, t),
            SliceOutcome::Failed(e) => {
                let id = SessionId(index as u64);
                self.report.failed.push((id, e));
                self.release(index, SessionState::Recycled);
            }
        }
    }

    /// Drain a completed session into its outcome and recycle its slot.
    fn finish_session(&mut self, index: usize, finished_at: f64) {
        let Some(entry) = self.entries.get_mut(index) else {
            return;
        };
        entry.state = SessionState::Draining;
        let Some(ticket) = entry.ticket else {
            return;
        };
        let label = entry.spec.cluster.describe();
        let Some(slot) = self.slots.get_mut(ticket) else {
            return;
        };
        // Copy the staging spines out (drain keeps the slot's capacity for
        // the next occupant — the arena's whole point).
        let frames: Vec<FrameReport> = slot.frames.drain(..).collect();
        let frame_latencies: Vec<f64> = slot.latencies.drain(..).collect();
        let report = match slot.engine.as_mut() {
            Some(engine) => engine.finish_report(label, frames),
            None => return,
        };
        if let Some(phases) = &report.phases {
            entry.counters.add_phase_totals(&phases.phase_totals());
        }
        let outcome = SessionOutcome {
            id: SessionId(index as u64),
            tenant: entry.spec.tenant,
            seed: entry.seed,
            fingerprint: report.fingerprint(),
            report,
            finished_at,
            frame_latencies,
            counters: entry.counters.clone(),
        };
        self.report.outcomes.push(outcome);
        self.release(index, SessionState::Recycled);
    }

    /// Return a session's slot and tenant token.
    fn release(&mut self, index: usize, state: SessionState) {
        let Some(entry) = self.entries.get_mut(index) else {
            return;
        };
        entry.state = state;
        if let Some(ticket) = entry.ticket.take() {
            self.slots.recycle(ticket);
        }
        if let Some(n) = self.tenant_running.get_mut(&entry.spec.tenant.0) {
            *n = n.saturating_sub(1);
        }
    }

    /// Move queued sessions into the rotation while slots and tenant
    /// headroom allow — FIFO among tenants with headroom (a capped
    /// tenant's backlog never blocks the others). Returns whether any
    /// session was promoted.
    fn promote_queued(&mut self) -> bool {
        let mut promoted = false;
        let mut i = 0;
        while i < self.pending.len() {
            if !self.slots.has_free() {
                break;
            }
            let Some(&index) = self.pending.get(i) else {
                break;
            };
            let tenant = match self.entries.get(index) {
                Some(e) => e.spec.tenant,
                None => break,
            };
            let running = self.tenant_running.get(&tenant.0).copied().unwrap_or(0);
            if running >= self.cfg.admission.per_tenant_in_flight {
                i += 1;
                continue;
            }
            self.pending.remove(i);
            if let Some(n) = self.tenant_queued.get_mut(&tenant.0) {
                *n = n.saturating_sub(1);
            }
            if let Some(entry) = self.entries.get_mut(index) {
                entry.ticket = self.slots.acquire();
                entry.state = SessionState::Running;
            }
            *self.tenant_running.entry(tenant.0).or_insert(0) += 1;
            self.ready.push_back(index);
            promoted = true;
        }
        promoted
    }
}

/// What one dispatched slice ended as.
enum SliceOutcome {
    Yielded,
    Finished,
    Failed(ProtocolError),
}

/// Build a session's engine exactly the way a solo `EventSim` run would,
/// with the derived seed substituted in — byte-identical state evolution
/// is what the parity suite pins.
fn build_engine(spec: &SessionSpec, seed: u64, instrument: bool) -> Engine<EventFabric> {
    let placement = spec.cluster.placement();
    let n = placement.calculators();
    let mut cfg = spec.cfg.clone();
    cfg.seed = seed;
    let plan = FaultPlan::none(seed, n + 2);
    let (node_of, node_count) = node_layout(&placement);
    let fabric = EventFabric::new(spec.cluster.net.clone(), node_of, node_count, plan);
    Engine::new(
        spec.scene.clone(),
        cfg,
        &placement,
        spec.cost.clone(),
        fabric,
        FaultPolicy::default(),
        Trace::disabled(),
        instrument,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::RejectReason;
    use psa_workloads::{myrinet_gcc, paper_run_config, snow_scene, WorkloadSize};

    fn spec(tenant: u32) -> SessionSpec {
        let size = WorkloadSize { systems: 1, particles_per_system: 120, scale: 1.0 };
        SessionSpec {
            tenant: TenantId(tenant),
            scene: snow_scene(size),
            cfg: paper_run_config(4, 0.04),
            cluster: myrinet_gcc(2, 1),
            cost: size.cost_model(),
            arrival: 0.0,
        }
    }

    use crate::session::TenantId;

    fn pool(workers: usize, admission: AdmissionConfig) -> SessionManager {
        SessionManager::new(PoolConfig {
            workers,
            slice_frames: 2,
            admission,
            base_seed: 0xABCD,
            checkpoint_interval: 0,
            instrument: false,
        })
    }

    #[test]
    fn all_sessions_complete_and_recycle_slots() {
        let mut p = pool(2, AdmissionConfig::unbounded(3));
        for i in 0..6 {
            let _ = p.admit(spec(i % 2));
        }
        let r = p.run_to_completion();
        assert_eq!(r.completed(), 6);
        assert!(r.failed.is_empty() && r.rejected.is_empty());
        assert_eq!(r.slot_stats.recycled, 6, "every session recycled its slot");
        assert!(r.slot_stats.high_water <= 3);
        assert!(r.makespan > 0.0);
        assert!(r.sessions_per_sec() > 0.0);
        // Frame latencies: every session reported one per frame.
        for o in &r.outcomes {
            assert_eq!(o.frame_latencies.len() as u64, 4);
            assert!(o.frame_latencies.iter().all(|l| *l > 0.0));
        }
    }

    #[test]
    fn admission_queues_then_rejects_at_bounds() {
        let admission = AdmissionConfig {
            max_in_flight: 1,
            per_tenant_in_flight: 1,
            queue_capacity: 1,
            per_tenant_backlog: 1,
        };
        let mut p = pool(1, admission);
        assert!(p.admit(spec(0)).is_ok());
        match p.admit(spec(0)) {
            Err(AdmissionError::Queued { id, position }) => {
                assert_eq!(id, SessionId(1));
                assert_eq!(position, 0);
                assert_eq!(p.state_of(id), Some(SessionState::Queued));
            }
            other => panic!("expected Queued, got {other:?}"),
        }
        match p.admit(spec(0)) {
            Err(AdmissionError::Rejected { reason, .. }) => {
                assert_eq!(reason, RejectReason::QueueFull { capacity: 1 });
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        let r = p.run_to_completion();
        assert_eq!(r.completed(), 2, "queued session ran after the first recycled");
        assert_eq!(r.rejected.len(), 1);
        // The queued session's queue_wait covers the head session's run.
        let queued = r.outcome_for(SessionId(1)).unwrap();
        assert!(queued.counters.queue_wait > 0.0);
    }

    #[test]
    fn tenant_cap_holds_even_with_free_slots() {
        let admission = AdmissionConfig {
            max_in_flight: 4,
            per_tenant_in_flight: 1,
            queue_capacity: 16,
            per_tenant_backlog: 16,
        };
        let mut p = pool(2, admission);
        assert!(p.admit(spec(7)).is_ok());
        // Same tenant: must queue despite three free slots.
        assert!(matches!(p.admit(spec(7)), Err(AdmissionError::Queued { .. })));
        let r = p.run_to_completion();
        assert_eq!(r.completed(), 2);
        assert!(r.slot_stats.high_water <= 2, "tenant cap kept the arena half-empty");
    }

    #[test]
    fn cooperative_slicing_interleaves_sessions() {
        // One lane, two sessions: with cooperative slicing the second
        // session's first frame completes before the first session's last.
        let mut p = pool(1, AdmissionConfig::unbounded(2));
        let a = p.admit(spec(0)).unwrap();
        let b = p.admit(spec(1)).unwrap();
        let r = p.run_to_completion();
        let a = r.outcome_for(a).unwrap();
        let b = r.outcome_for(b).unwrap();
        let a_last = a.finished_at;
        let b_first = b.finished_at - b.frame_latencies.iter().skip(1).sum::<f64>();
        assert!(
            b_first < a_last,
            "session b's first frame ({b_first}) must land before a's last ({a_last})"
        );
    }

    #[test]
    fn worker_loss_requeues_and_still_completes() {
        let mut p = pool(2, AdmissionConfig::unbounded(4));
        let mut ids = Vec::new();
        for i in 0..4 {
            ids.push(p.admit(spec(i)).unwrap());
        }
        let p = p.with_fault(PoolFault::WorkerLoss { at_dispatch: 3 });
        let r = p.run_to_completion();
        assert_eq!(r.completed(), 4, "the re-queued session must still finish");
        assert_eq!(r.lanes_lost, 1);
        let requeued: u64 = r.outcomes.iter().map(|o| o.counters.requeues).sum();
        assert_eq!(requeued, 1, "exactly one session restarted");
    }

    #[test]
    fn last_lane_never_dies() {
        let mut p = pool(1, AdmissionConfig::unbounded(2));
        let _ = p.admit(spec(0));
        let p = p.with_fault(PoolFault::WorkerLoss { at_dispatch: 1 });
        let r = p.run_to_completion();
        assert_eq!(r.completed(), 1);
        assert_eq!(r.lanes_lost, 0, "a loss that would kill the last lane is dropped");
    }

    #[test]
    fn percentiles_are_ordered_and_finite() {
        let mut p = pool(2, AdmissionConfig::unbounded(4));
        for i in 0..8 {
            let _ = p.admit(spec(i));
        }
        let r = p.run_to_completion();
        let p50 = r.latency_percentile(0.50);
        let p99 = r.latency_percentile(0.99);
        assert!(p50 > 0.0 && p50.is_finite());
        assert!(p99 >= p50);
    }
}
