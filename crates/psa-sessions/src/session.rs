//! Session identity, specification, lifecycle, and per-session seeds.

use cluster_sim::{ClusterSpec, CostModel};
use psa_math::Rng64;
use psa_runtime::{RunConfig, RunReport, Scene};
use psa_trace::SessionCounters;

/// Identifies one session for the lifetime of a [`SessionManager`]
/// (admission order, starting at 0).
///
/// [`SessionManager`]: crate::SessionManager
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// Identifies the tenant (user/account) a session bills to. Backpressure
/// is enforced per tenant so one heavy tenant cannot starve the others.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TenantId(pub u32);

/// Everything one session needs to run: whose it is, what it animates, and
/// the resources its run is entitled to.
///
/// The spec's `cfg.seed` is ignored — the pool overwrites it with the seed
/// derived from the pool's base seed and the session's id (see
/// [`derive_session_seed`]), which is what makes multiplexed runs
/// reproducible against solo runs.
#[derive(Clone)]
pub struct SessionSpec {
    /// The tenant the session bills to.
    pub tenant: TenantId,
    /// The scene the session animates.
    pub scene: Scene,
    /// Run configuration (frames, balance mode, …); `seed` is overwritten.
    pub cfg: RunConfig,
    /// The simulated cluster the session's protocol engine runs on.
    pub cluster: ClusterSpec,
    /// The cost model matching the scene's workload size.
    pub cost: CostModel,
    /// Pool-virtual arrival time (0.0 = present at pool start). Queue
    /// waits and first-frame latencies are measured from this.
    pub arrival: f64,
}

/// Where a session is in its lifecycle.
///
/// The successful path is `Admitted → Queued → Running → Draining →
/// Recycled`; `Admitted` sessions with a free slot and tenant headroom
/// skip `Queued`. `Rejected` is the terminal state of a session the
/// admission controller refused (its id is never dispatched).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Accepted by admission control; not yet queued or scheduled.
    Admitted,
    /// Waiting in the bounded admission queue for a slot.
    Queued,
    /// Holding a slot; in the cooperative dispatch rotation.
    Running,
    /// All frames done; report being assembled, slot still held.
    Draining,
    /// Finished; the slot has been returned to the pool.
    Recycled,
    /// Refused by admission control (queue full or tenant over its
    /// backlog cap).
    Rejected,
}

/// Derive the seed session `id` runs under from the pool's base seed.
///
/// The recipe is the kernel's chunk-keyed RNG split (`base.split(key)`,
/// see `psa_core::kernel`) applied at session granularity: every session
/// gets a statistically independent stream that is a pure function of
/// `(base_seed, session id)` — independent of admission order, worker
/// count, slice length, and whatever else the pool multiplexes around it.
/// A solo run configured with this seed is byte-identical to the session's
/// multiplexed run; `tests/session_parity.rs` pins that.
pub fn derive_session_seed(base_seed: u64, id: SessionId) -> u64 {
    let mut stream = Rng64::new(base_seed).split(id.0);
    stream.next_u64()
}

/// The result of one completed session.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// The session this outcome belongs to.
    pub id: SessionId,
    /// The tenant it billed to.
    pub tenant: TenantId,
    /// The seed the run actually used (derived, not the spec's).
    pub seed: u64,
    /// The run report, exactly as a solo run of `seed` would produce it.
    pub report: RunReport,
    /// [`RunReport::fingerprint`] of `report`, precomputed for gates.
    pub fingerprint: u64,
    /// Pool-virtual time the session's final frame completed at.
    pub finished_at: f64,
    /// Pool-virtual gap between consecutive frame completions as the
    /// viewer sees them; the first entry is measured from `arrival`, so it
    /// includes the admission-queue wait. On a worker-loss restart the
    /// entries past the last pool checkpoint are dropped (all of them when
    /// checkpointing is off) — the latencies describe the playback that
    /// succeeded, with the replay's cost folded into the first
    /// post-restart gap.
    pub frame_latencies: Vec<f64>,
    /// Scheduler and per-phase counters (phase times are all zero unless
    /// the pool ran instrumented).
    pub counters: SessionCounters,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a = derive_session_seed(0x5EED, SessionId(0));
        let b = derive_session_seed(0x5EED, SessionId(1));
        assert_eq!(a, derive_session_seed(0x5EED, SessionId(0)));
        assert_ne!(a, b);
        assert_ne!(a, derive_session_seed(0x5EEE, SessionId(0)));
    }

    #[test]
    fn derived_seed_matches_the_split_recipe() {
        let mut by_hand = Rng64::new(42).split(7);
        assert_eq!(derive_session_seed(42, SessionId(7)), by_hand.next_u64());
    }
}
