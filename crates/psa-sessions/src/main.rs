//! `sessions` — drive a multi-tenant session pool from the command line.
//!
//! ```text
//! sessions [--sessions N] [--workers W] [--tenants T] [--scene NAME]
//!          [--frames F] [--slice K] [--seed S] [--max-in-flight M]
//!          [--per-tenant C] [--particles P] [--checkpoint I] [--instrument]
//! ```
//!
//! Admits `N` seeded animation sessions (tenants assigned round-robin),
//! multiplexes them over `W` worker lanes with cooperative frame-slicing,
//! and prints a throughput/latency table plus per-tenant rows. All time is
//! pool-virtual — the run is deterministic and byte-reproducible; there is
//! no wall clock anywhere in this crate.

use psa_sessions::{
    AdmissionConfig, AdmissionError, PoolConfig, SessionManager, SessionSpec, TenantId,
};
use psa_workloads::{
    fountain_scene, myrinet_gcc, paper_run_config, snow_scene, vortex_scene, WorkloadSize,
};

struct Args {
    sessions: usize,
    workers: usize,
    tenants: u32,
    scene: String,
    frames: u64,
    slice: u64,
    seed: u64,
    max_in_flight: usize,
    per_tenant: usize,
    particles: usize,
    checkpoint: u64,
    instrument: bool,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut parsed = Args {
        sessions: 100,
        workers: 8,
        tenants: 4,
        scene: "snow".to_string(),
        frames: 12,
        slice: 2,
        seed: 0x5E55_0000,
        max_in_flight: 32,
        per_tenant: 8,
        particles: 400,
        checkpoint: 0,
        instrument: false,
    };
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number"))
        };
        match a.as_str() {
            "--sessions" => parsed.sessions = num("--sessions") as usize,
            "--workers" => parsed.workers = num("--workers") as usize,
            "--tenants" => parsed.tenants = num("--tenants") as u32,
            "--frames" => parsed.frames = num("--frames"),
            "--slice" => parsed.slice = num("--slice"),
            "--seed" => parsed.seed = num("--seed"),
            "--max-in-flight" => parsed.max_in_flight = num("--max-in-flight") as usize,
            "--per-tenant" => parsed.per_tenant = num("--per-tenant") as usize,
            "--particles" => parsed.particles = num("--particles") as usize,
            "--checkpoint" => parsed.checkpoint = num("--checkpoint"),
            "--scene" => parsed.scene = args.next().expect("--scene needs a name"),
            "--instrument" => parsed.instrument = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if parsed.tenants == 0 {
        eprintln!("--tenants must be at least 1");
        std::process::exit(2);
    }
    parsed
}

fn main() {
    let args = parse_args();
    let size = WorkloadSize { systems: 2, particles_per_system: args.particles, scale: 1.0 };
    let scene = match args.scene.as_str() {
        "snow" => snow_scene(size),
        "fountain" => fountain_scene(size),
        "vortex" => vortex_scene(size),
        other => {
            eprintln!("unknown scene {other} (expected snow|fountain|vortex)");
            std::process::exit(2);
        }
    };
    let admission = AdmissionConfig {
        max_in_flight: args.max_in_flight,
        per_tenant_in_flight: args.per_tenant,
        ..AdmissionConfig::default()
    };
    let mut pool = SessionManager::new(PoolConfig {
        workers: args.workers,
        slice_frames: args.slice,
        admission,
        base_seed: args.seed,
        checkpoint_interval: args.checkpoint,
        instrument: args.instrument,
    });
    let mut queued = 0usize;
    let mut rejected = 0usize;
    for i in 0..args.sessions {
        let spec = SessionSpec {
            tenant: TenantId(i as u32 % args.tenants),
            scene: scene.clone(),
            cfg: paper_run_config(args.frames, 0.04),
            cluster: myrinet_gcc(2, 1),
            cost: size.cost_model(),
            arrival: 0.0,
        };
        match pool.admit(spec) {
            Ok(_) => {}
            Err(AdmissionError::Queued { .. }) => queued += 1,
            Err(AdmissionError::Rejected { .. }) => rejected += 1,
        }
    }
    let report = pool.run_to_completion();
    println!(
        "pool: {} workers, {} slots, slice {} frames, seed {:#x}",
        args.workers, args.max_in_flight, args.slice, args.seed
    );
    println!(
        "admitted {} sessions ({} queued at admission, {} rejected)",
        args.sessions, queued, rejected
    );
    println!(
        "completed {:4}  makespan {:>10.3}s  throughput {:>8.3} sessions/s",
        report.completed(),
        report.makespan,
        report.sessions_per_sec()
    );
    println!(
        "frame latency  p50 {:>8.4}s  p99 {:>8.4}s   mean queue wait {:>8.4}s",
        report.latency_percentile(0.50),
        report.latency_percentile(0.99),
        report.mean_queue_wait()
    );
    let stats = report.slot_stats;
    println!(
        "slots: {} recycles, high water {}/{} ({} dispatches, {} lanes lost)",
        stats.recycled, stats.high_water, stats.capacity, report.dispatches, report.lanes_lost
    );
    println!("{}", "-".repeat(66));
    for tenant in 0..args.tenants {
        let done: Vec<_> =
            report.outcomes.iter().filter(|o| o.tenant == TenantId(tenant)).collect();
        if done.is_empty() {
            continue;
        }
        let frames: u64 = done.iter().map(|o| o.counters.frames).sum();
        let wait: f64 = done.iter().map(|o| o.counters.queue_wait).sum::<f64>() / done.len() as f64;
        println!(
            "tenant {tenant:>3}: {:>4} sessions  {frames:>6} frames  mean wait {wait:>8.4}s",
            done.len()
        );
    }
    if args.instrument {
        println!("{}", "-".repeat(66));
        for o in report.outcomes.iter().take(5) {
            println!("{}", o.counters.format_row(&format!("session {}", o.id.0)));
        }
    }
}
