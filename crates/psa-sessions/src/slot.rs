//! The pooled per-session state arena.
//!
//! Running a session needs scratch that is expensive to reacquire per
//! session at hundreds of sessions per pool: the per-frame report spine,
//! the latency log, and the slot bookkeeping itself. [`SlotPool`] is a
//! fixed arena of [`SessionSlot`]s with a free-list — a session acquires a
//! slot at dispatch eligibility, parks its protocol engine in it, and on
//! completion the slot is *recycled*, not dropped: buffers keep their
//! capacity for the next session (the executor/packet/objects-pool shape
//! of `parallel-processor-rs`). Generations catch stale handles: a
//! [`SlotTicket`] from a previous occupancy can never touch the next
//! session's state.

use psa_desim::EventFabric;
use psa_runtime::checkpoint::EngineSnapshot;
use psa_runtime::protocol::Engine;
use psa_runtime::report::FrameReport;

/// A handle to an acquired slot: index plus the generation it was acquired
/// at. Tickets are invalidated by recycling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotTicket {
    index: usize,
    generation: u64,
}

/// Reusable per-session state: the engine driving the session's run plus
/// the buffers the scheduler fills as frames complete.
#[derive(Default)]
pub struct SessionSlot {
    /// Times this slot has been recycled (stale-ticket detection).
    generation: u64,
    /// The session's protocol engine over the event fabric; `None` until
    /// first dispatch and after a worker-loss restart dropped it.
    pub engine: Option<Engine<EventFabric>>,
    /// Last pool-level checkpoint of the session's engine, taken every
    /// [`PoolConfig::checkpoint_interval`](crate::PoolConfig) completed
    /// frames. A worker-loss restart rebuilds the engine and restores this
    /// instead of replaying from frame 0. Cleared on recycle — a snapshot
    /// never outlives its session.
    pub snapshot: Option<EngineSnapshot>,
    /// Per-frame reports in frame order (capacity survives recycling).
    pub frames: Vec<FrameReport>,
    /// Pool-virtual frame-completion gaps (capacity survives recycling).
    pub latencies: Vec<f64>,
}

/// Cumulative pool statistics, for capacity tuning and bench output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Arena size (== admission's `max_in_flight`).
    pub capacity: usize,
    /// Slots currently held by sessions.
    pub in_use: usize,
    /// Completed acquire→recycle cycles.
    pub recycled: u64,
    /// Most slots ever held at once.
    pub high_water: usize,
}

/// The fixed arena of session slots.
pub struct SlotPool {
    slots: Vec<SessionSlot>,
    free: Vec<usize>,
    stats: SlotStats,
}

impl SlotPool {
    /// An arena of `capacity` recycled-empty slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a slot pool needs at least one slot");
        SlotPool {
            slots: (0..capacity).map(|_| SessionSlot::default()).collect(),
            // Reverse so acquisition hands out low indices first.
            free: (0..capacity).rev().collect(),
            stats: SlotStats { capacity, ..SlotStats::default() },
        }
    }

    /// Is at least one slot free?
    pub fn has_free(&self) -> bool {
        !self.free.is_empty()
    }

    /// Acquire a slot, or `None` when the arena is saturated (admission
    /// then queues the session instead).
    pub fn acquire(&mut self) -> Option<SlotTicket> {
        let index = self.free.pop()?;
        self.stats.in_use += 1;
        self.stats.high_water = self.stats.high_water.max(self.stats.in_use);
        let generation = self.slots.get(index).map(|s| s.generation)?;
        Some(SlotTicket { index, generation })
    }

    /// The slot behind a ticket; `None` if the ticket is stale (the slot
    /// was recycled since).
    pub fn get_mut(&mut self, ticket: SlotTicket) -> Option<&mut SessionSlot> {
        self.slots.get_mut(ticket.index).filter(|s| s.generation == ticket.generation)
    }

    /// Return a slot to the free list: the engine is dropped, buffers are
    /// cleared *keeping their capacity*, and the generation is bumped so
    /// outstanding tickets go stale. Stale tickets are ignored.
    pub fn recycle(&mut self, ticket: SlotTicket) {
        let Some(slot) = self.slots.get_mut(ticket.index) else {
            return;
        };
        if slot.generation != ticket.generation {
            return;
        }
        slot.generation += 1;
        slot.engine = None;
        slot.snapshot = None;
        slot.frames.clear();
        slot.latencies.clear();
        self.stats.in_use -= 1;
        self.stats.recycled += 1;
        self.free.push(ticket.index);
    }

    /// Current pool statistics.
    pub fn stats(&self) -> SlotStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_recycle_cycles_and_counts() {
        let mut p = SlotPool::new(2);
        let a = p.acquire().unwrap();
        let b = p.acquire().unwrap();
        assert!(p.acquire().is_none(), "arena of 2 is saturated");
        assert_eq!(p.stats().in_use, 2);
        assert_eq!(p.stats().high_water, 2);
        p.recycle(a);
        assert!(p.has_free());
        let c = p.acquire().unwrap();
        p.recycle(b);
        p.recycle(c);
        assert_eq!(p.stats().recycled, 3);
        assert_eq!(p.stats().in_use, 0);
    }

    #[test]
    fn recycling_keeps_buffer_capacity() {
        let mut p = SlotPool::new(1);
        let t = p.acquire().unwrap();
        let slot = p.get_mut(t).unwrap();
        slot.latencies.reserve(100);
        let cap = slot.latencies.capacity();
        p.recycle(t);
        let t2 = p.acquire().unwrap();
        let slot = p.get_mut(t2).unwrap();
        assert!(slot.latencies.is_empty());
        assert!(slot.latencies.capacity() >= cap, "recycling must not shrink buffers");
    }

    #[test]
    fn stale_tickets_are_inert() {
        let mut p = SlotPool::new(1);
        let old = p.acquire().unwrap();
        p.recycle(old);
        let fresh = p.acquire().unwrap();
        assert!(p.get_mut(old).is_none(), "stale ticket must not resolve");
        p.recycle(old); // ignored
        assert_eq!(p.stats().in_use, 1);
        assert!(p.get_mut(fresh).is_some());
    }
}
