//! `psa-sessions` — the multi-tenant session scheduler.
//!
//! Everything below this crate simulates *one* animation run. A render
//! service does not get that luxury: hundreds of tenants submit seeded
//! runs concurrently, and the farm is a fixed pool of workers. This crate
//! is the layer in between — a deterministic scheduler that multiplexes
//! whole sessions over worker lanes without surrendering a single
//! guarantee the stack is built on:
//!
//! * **Admission is bounded** ([`admission`]): a session either starts,
//!   queues in a bounded queue, or is rejected with a typed
//!   [`AdmissionError`] — the pool's memory never grows with offered load.
//! * **Backpressure is per-tenant**: in-flight and backlog caps keep one
//!   tenant from draining the pool, enforced at admission and again at
//!   queue promotion.
//! * **Scheduling is cooperative** ([`manager`]): dispatches hand a
//!   session at most a few frames before it yields the lane, so long
//!   sessions never starve short ones.
//! * **State is pooled** ([`slot`]): per-session engines and report
//!   buffers live in a recycled slot arena, not in per-session heap
//!   churn.
//! * **Determinism survives multiplexing** ([`session`]): session `k`
//!   runs under `Rng64::new(base).split(k)`, and its report is
//!   byte-identical to a solo run of that seed regardless of worker
//!   count, slice length, or what else the pool ran. The root
//!   `tests/session_parity.rs` suite pins this.
//!
//! Time here is *pool-virtual*: lanes advance by the virtual frame times
//! the sessions' own event-driven fabrics report, so throughput and
//! latency numbers (BENCH_7) are as reproducible as everything else.

#![deny(missing_docs)]

pub mod admission;
pub mod manager;
pub mod session;
pub mod slot;

pub use admission::{AdmissionConfig, AdmissionError, RejectReason};
pub use manager::{PoolConfig, PoolFault, PoolReport, SessionManager};
pub use session::{
    derive_session_seed, SessionId, SessionOutcome, SessionSpec, SessionState, TenantId,
};
pub use slot::{SessionSlot, SlotPool, SlotStats, SlotTicket};
