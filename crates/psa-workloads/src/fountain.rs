//! The fountain experiment (paper §5.2).
//!
//! "For each frame of this simulation, we create new particles, apply
//! gravity and acceleration on the particles, simulate collision, eliminate
//! old particles and finally move the particles through the space.
//! Differently to the previous experiment, the particles tend to change
//! domains during the simulation since their movement is both horizontal
//! and vertical. The particle systems were distributed through the
//! simulated space, so it becomes harder to restrict the space."
//!
//! Eight nozzles spread along the x axis spray cones of droplets; every
//! system's space spans the whole row of fountains, so a static even split
//! leaves most calculators idle while the slices containing a nozzle are
//! overloaded — the irregular-load case where DLB must win (Table 3).

use psa_core::actions::{ActionList, DieOnContact, Gravity, KillOld, MoveParticles, RandomAccel};
use psa_core::objects::ExternalObject;
use psa_core::system::{EmissionShape, VelocityModel};
use psa_core::{SystemId, SystemSpec};
use psa_math::{Interval, Vec3};
use psa_runtime::{Scene, SystemSetup};

use crate::WorkloadSize;

/// Horizontal extent of the fountain row (the decomposition axis).
pub const FOUNTAIN_SPACE: Interval = Interval { lo: -40.0, hi: 40.0 };
/// Frame time step.
pub const FOUNTAIN_DT: f32 = 0.04;
/// Frames a droplet lives (up and back down at the spray speed).
pub const FOUNTAIN_LIFETIME_FRAMES: u64 = 60;
/// Spray speed range, units/second.
pub const SPRAY_SPEED: (f32, f32) = (10.0, 14.0);
/// Spray cone half-angle, radians.
pub const SPRAY_HALF_ANGLE: f32 = 0.5;

/// Nozzle x position of fountain `i`: a golden-ratio low-discrepancy spread
/// over the space. The irregular placement matters: perfectly even nozzles
/// would align with an even domain split and static balancing would look
/// spuriously good, hiding the §5.2 effect.
pub fn nozzle_x(i: usize, _n: usize) -> f32 {
    const PHI: f32 = 0.618_034;
    let t = ((i as f32 + 1.0) * PHI).fract();
    let w = FOUNTAIN_SPACE.width();
    // keep nozzles off the extreme edges
    FOUNTAIN_SPACE.lo + w * (0.06 + 0.88 * t)
}

/// Build the fountain scene.
pub fn fountain_scene(size: WorkloadSize) -> Scene {
    let mut scene = Scene::new();
    let lifetime = FOUNTAIN_LIFETIME_FRAMES as f32 * FOUNTAIN_DT;
    for i in 0..size.systems {
        let x = nozzle_x(i, size.systems);
        let nozzle = Vec3::new(x, 0.2, 0.0);
        let spec = SystemSpec {
            id: SystemId(i as u16),
            name: format!("fountain-{i}"),
            space: FOUNTAIN_SPACE,
            emission: EmissionShape::Disc { center: nozzle, radius: 0.3, normal: Vec3::Y },
            velocity: VelocityModel::Cone {
                axis: Vec3::Y,
                speed_lo: SPRAY_SPEED.0,
                speed_hi: SPRAY_SPEED.1,
                half_angle: SPRAY_HALF_ANGLE,
            },
            orientation: Vec3::Y,
            color: Vec3::new(0.4, 0.65, 0.95),
            size: 0.05,
            mass: 1.0,
            emit_per_frame: size.particles_per_system / FOUNTAIN_LIFETIME_FRAMES as usize,
            max_age: lifetime,
            initial: Some((
                size.particles_per_system,
                // Steady state: droplets throughout the spray arc.
                EmissionShape::Box {
                    min: Vec3::new(x - 10.0, 0.0, -4.0),
                    max: Vec3::new(x + 10.0, 9.5, 4.0),
                },
            )),
        };
        let actions = ActionList::new()
            .then(Gravity::earth())
            .then(RandomAccel::new(0.6))
            .then(DieOnContact::new(ExternalObject::ground(-0.2)))
            .then(KillOld::new(lifetime))
            .then(MoveParticles);
        scene.add_system(SystemSetup::new(spec, actions));
    }
    scene.add_object(ExternalObject::ground(0.0), Vec3::new(0.15, 0.25, 0.3));
    scene
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::CostModel;
    use psa_runtime::{run_sequential, RunConfig};

    #[test]
    fn nozzles_are_spread_interior_and_unaligned() {
        let n = 8;
        let mut xs: Vec<f32> = (0..n).map(|i| nozzle_x(i, n)).collect();
        for &x in &xs {
            assert!(FOUNTAIN_SPACE.contains(x));
        }
        xs.sort_by(f32::total_cmp);
        // spread: no two nozzles coincide
        for w in xs.windows(2) {
            assert!(w[1] - w[0] > 1.0, "nozzles too close: {xs:?}");
        }
        // unaligned: an even 8-way split must NOT get one nozzle per slice —
        // that alignment would hide the paper's irregular-load effect.
        let slice_w = FOUNTAIN_SPACE.width() / 8.0;
        let mut per_slice = [0usize; 8];
        for &x in &xs {
            let s = (((x - FOUNTAIN_SPACE.lo) / slice_w) as usize).min(7);
            per_slice[s] += 1;
        }
        assert!(
            per_slice.contains(&0) && per_slice.iter().any(|&c| c >= 2),
            "nozzle placement must be irregular: {per_slice:?}"
        );
    }

    #[test]
    fn fountain_population_is_steady() {
        let size = WorkloadSize { systems: 1, particles_per_system: 2400, scale: 1.0 };
        let scene = fountain_scene(size);
        let cfg = RunConfig { frames: 30, dt: FOUNTAIN_DT, ..Default::default() };
        let r = run_sequential(&scene, &cfg, &CostModel::default(), 1.0);
        let last = r.frames.last().unwrap().alive as f64;
        assert!((0.6..1.3).contains(&(last / 2400.0)), "alive {last}");
    }

    #[test]
    fn fountain_motion_is_horizontal_too() {
        // The premise of §5.2: horizontal and vertical motion.
        let size = WorkloadSize { systems: 1, particles_per_system: 100, scale: 1.0 };
        let scene = fountain_scene(size);
        let spec = &scene.systems[0].spec;
        let mut rng = psa_math::Rng64::new(3);
        let mut vx = 0.0f64;
        for _ in 0..200 {
            vx += spec.velocity.sample(&mut rng).x.abs() as f64;
        }
        // mean |vx| should be a meaningful fraction of the spray speed
        assert!(vx / 200.0 > 1.0, "mean |vx| = {}", vx / 200.0);
    }
}
