//! The snow experiment (paper §5.1).
//!
//! "For each frame of this simulation, we create new particles, apply a
//! random acceleration on the particles, simulate collision, eliminate old
//! particles and finally move the particles through the space. The
//! particles tend to remain in their original domain since their movement
//! is mainly vertical."
//!
//! Geometry: snow falls inside a column `x ∈ [-40, 40]` (the decomposition
//! axis), emitted in a thin cloud layer near the top and killed at the
//! ground. A sphere obstacle provides the "collision with object obj" step
//! of Algorithm 1. The flutter acceleration is calibrated so that roughly
//! 0.2–0.4 % of particles cross a 16-way domain boundary per frame —
//! reproducing the paper's ~560 particles/process/frame exchange volume.

use psa_core::actions::{ActionList, BounceOff, KillBelow, KillOld, MoveParticles, RandomAccel};
use psa_core::objects::ExternalObject;
use psa_core::system::{EmissionShape, VelocityModel};
use psa_core::{SystemId, SystemSpec};
use psa_math::{Interval, Vec3};
use psa_runtime::{Scene, SystemSetup};

use crate::WorkloadSize;

/// Horizontal extent of the snow column (the decomposition axis).
pub const SNOW_SPACE: Interval = Interval { lo: -40.0, hi: 40.0 };
/// Cloud layer height range.
pub const CLOUD_Y: (f32, f32) = (28.0, 34.0);
/// Terminal fall speed, units/second.
pub const FALL_SPEED: f32 = 5.0;
/// Frame time step.
pub const SNOW_DT: f32 = 0.15;
/// Frames a flake lives (cloud to ground at the fall speed).
pub const SNOW_LIFETIME_FRAMES: u64 = 40;
/// Random flutter acceleration magnitude.
pub const FLUTTER: f32 = 0.28;

/// Build the snow scene.
pub fn snow_scene(size: WorkloadSize) -> Scene {
    let mut scene = Scene::new();
    let lifetime = SNOW_LIFETIME_FRAMES as f32 * SNOW_DT;
    for i in 0..size.systems {
        let spec = SystemSpec {
            id: SystemId(i as u16),
            name: format!("snow-{i}"),
            space: SNOW_SPACE,
            emission: EmissionShape::Box {
                min: Vec3::new(SNOW_SPACE.lo, CLOUD_Y.0, -4.0),
                max: Vec3::new(SNOW_SPACE.hi, CLOUD_Y.1, 4.0),
            },
            velocity: VelocityModel::Jittered {
                base: Vec3::new(0.0, -FALL_SPEED, 0.0),
                jitter: 0.25,
            },
            orientation: Vec3::Y,
            color: Vec3::new(0.95, 0.96, 1.0),
            size: 0.06,
            mass: 0.1,
            emit_per_frame: size.particles_per_system / SNOW_LIFETIME_FRAMES as usize,
            max_age: lifetime,
            initial: Some((
                size.particles_per_system,
                // Steady state: flakes everywhere in the fall column.
                EmissionShape::Box {
                    min: Vec3::new(SNOW_SPACE.lo, 0.5, -4.0),
                    max: Vec3::new(SNOW_SPACE.hi, CLOUD_Y.1, 4.0),
                },
            )),
        };
        let actions = ActionList::new()
            .then(RandomAccel::new(FLUTTER))
            .then(BounceOff::new(
                ExternalObject::Sphere { center: Vec3::new(6.0, 8.0, 0.0), radius: 3.0 },
                0.15,
                0.6,
            ))
            .then(KillOld::new(lifetime))
            .then(KillBelow::ground(0.0))
            .then(MoveParticles);
        scene.add_system(SystemSetup::new(spec, actions));
    }
    scene.add_object(ExternalObject::ground(0.0), Vec3::new(0.75, 0.78, 0.85));
    scene.add_object(
        ExternalObject::Sphere { center: Vec3::new(6.0, 8.0, 0.0), radius: 3.0 },
        Vec3::new(0.35, 0.3, 0.3),
    );
    scene
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::CostModel;
    use psa_runtime::{run_sequential, RunConfig};

    #[test]
    fn snow_scene_shape() {
        let s = snow_scene(WorkloadSize::test());
        assert_eq!(s.system_count(), 2);
        assert_eq!(s.objects.len(), 2);
        let spec = &s.systems[0].spec;
        assert_eq!(spec.space, SNOW_SPACE);
        assert!(spec.initial.is_some());
        // emission × lifetime ≈ steady population
        assert_eq!(
            spec.emit_per_frame * SNOW_LIFETIME_FRAMES as usize,
            (WorkloadSize::test().particles_per_system / SNOW_LIFETIME_FRAMES as usize)
                * SNOW_LIFETIME_FRAMES as usize
        );
    }

    #[test]
    fn snow_population_is_steady() {
        let size = WorkloadSize { systems: 1, particles_per_system: 2000, scale: 1.0 };
        let scene = snow_scene(size);
        let cfg = RunConfig { frames: 20, dt: SNOW_DT, ..Default::default() };
        let r = run_sequential(&scene, &cfg, &CostModel::default(), 1.0);
        let first = r.frames.first().unwrap().alive as f64;
        let last = r.frames.last().unwrap().alive as f64;
        // within ±25% of target and not collapsing/exploding
        assert!((0.7..1.3).contains(&(first / 2000.0)), "first {first}");
        assert!((0.7..1.3).contains(&(last / 2000.0)), "last {last}");
    }

    #[test]
    fn snow_motion_is_mostly_vertical() {
        // The paper's premise: snow stays in its domain. Check that per-
        // frame horizontal displacement is far smaller than vertical.
        let size = WorkloadSize { systems: 1, particles_per_system: 1000, scale: 1.0 };
        let scene = snow_scene(size);
        let mut rng = psa_math::Rng64::new(7);
        let spec = &scene.systems[0].spec;
        let mut dx = 0.0f64;
        let mut dy = 0.0f64;
        for _ in 0..200 {
            let v = spec.velocity.sample(&mut rng);
            dx += (v.x.abs() * SNOW_DT) as f64;
            dy += (v.y.abs() * SNOW_DT) as f64;
        }
        assert!(dy > 5.0 * dx, "vertical {dy} vs horizontal {dx}");
    }
}
