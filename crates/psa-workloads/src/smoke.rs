//! Smoke — a rising, wind-blown plume (the intro's motivating phenomena:
//! "smoke, steam, fog, dust and wind").

use psa_core::actions::{ActionList, Fade, KillOld, MoveParticles, RandomAccel, Wind};
use psa_core::system::{EmissionShape, VelocityModel};
use psa_core::{SystemId, SystemSpec};
use psa_math::{Interval, Vec3};
use psa_runtime::{Scene, SystemSetup};

/// Build a smoke scene: `stacks` chimneys emitting buoyant puffs into a
/// cross-wind along +x (which steadily pushes the plume across domain
/// boundaries — a gentle irregular-load case between snow and fountain).
pub fn smoke_scene(stacks: usize, particles_per_stack: usize) -> Scene {
    let mut scene = Scene::new();
    for i in 0..stacks {
        let x = -20.0 + 40.0 * (i as f32 + 0.5) / stacks as f32;
        let spec = SystemSpec {
            id: SystemId(i as u16),
            name: format!("smoke-{i}"),
            space: Interval::new(-30.0, 50.0),
            emission: EmissionShape::Disc {
                center: Vec3::new(x, 1.0, 0.0),
                radius: 0.6,
                normal: Vec3::Y,
            },
            velocity: VelocityModel::Jittered { base: Vec3::new(0.0, 3.0, 0.0), jitter: 0.8 },
            orientation: Vec3::Y,
            color: Vec3::new(0.55, 0.55, 0.6),
            size: 0.4,
            mass: 0.05,
            emit_per_frame: particles_per_stack / 50,
            max_age: 6.0,
            initial: Some((
                particles_per_stack,
                EmissionShape::Box {
                    min: Vec3::new(x - 2.0, 1.0, -2.0),
                    max: Vec3::new(x + 10.0, 16.0, 2.0),
                },
            )),
        };
        let actions = ActionList::new()
            .then(Wind::new(Vec3::new(2.5, 0.5, 0.0), 0.8))
            .then(RandomAccel::new(0.9))
            .then(Fade::new(0.12, true))
            .then(KillOld::new(6.0))
            .then(MoveParticles);
        scene.add_system(SystemSetup::new(spec, actions));
    }
    scene
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::CostModel;
    use psa_runtime::{run_sequential, RunConfig};

    #[test]
    fn smoke_scene_builds() {
        let s = smoke_scene(2, 1000);
        assert_eq!(s.system_count(), 2);
        assert_eq!(s.systems[0].spec.emit_per_frame, 20);
    }

    #[test]
    fn plume_survives_and_drifts() {
        let s = smoke_scene(1, 2000);
        let cfg = RunConfig { frames: 20, dt: 0.12, ..Default::default() };
        let r = run_sequential(&s, &cfg, &CostModel::default(), 1.0);
        let last = r.frames.last().unwrap().alive;
        assert!(last > 500, "plume alive: {last}");
    }
}
