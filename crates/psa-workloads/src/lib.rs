//! Workload generators.
//!
//! The paper validates its model with two experiments (§5), both with
//! eight particle systems of 400,000 particles each:
//!
//! * **snow** — new particles each frame, random acceleration, collision,
//!   elimination of old particles, movement; mostly vertical motion, so
//!   particles tend to stay in their domain (§5.1);
//! * **fountain** — gravity + acceleration, collision, elimination,
//!   movement; both horizontal and vertical motion, so particles change
//!   domains constantly (§5.2).
//!
//! This crate builds those scenes (full-size or scaled for benches) plus
//! two extra effects (fireworks, smoke) used by the examples, and exposes
//! the paper's cluster configurations.

pub mod clusters;
pub mod fireworks;
pub mod fountain;
pub mod smoke;
pub mod snow;
pub mod vortex;

pub use clusters::{fe_icc, myrinet_gcc, table1_rows, table2_rows};
pub use fireworks::fireworks_scene;
pub use fountain::fountain_scene;
pub use smoke::smoke_scene;
pub use snow::snow_scene;
pub use vortex::vortex_scene;

use cluster_sim::CostModel;
use psa_runtime::RunConfig;

/// Parameters shared by the paper workload builders.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadSize {
    /// Number of particle systems (paper: 8).
    pub systems: usize,
    /// Steady-state particles per system actually simulated.
    pub particles_per_system: usize,
    /// Virtual-to-real multiplier: cost/bytes are charged as if
    /// `particles_per_system × scale` particles existed.
    pub scale: f64,
}

impl WorkloadSize {
    /// The paper's full size: 8 × 400,000, simulated one-to-one.
    pub fn paper_full() -> Self {
        WorkloadSize { systems: 8, particles_per_system: 400_000, scale: 1.0 }
    }

    /// Paper-equivalent virtual size with `scale`× fewer real particles —
    /// the default for the reproduction harness (scale 10 ⇒ 40k real
    /// particles stand in for 400k; virtual times and bytes are identical).
    pub fn paper_scaled(scale: f64) -> Self {
        assert!(scale >= 1.0);
        WorkloadSize {
            systems: 8,
            particles_per_system: (400_000.0 / scale).round() as usize,
            scale,
        }
    }

    /// A tiny size for unit tests.
    pub fn test() -> Self {
        WorkloadSize { systems: 2, particles_per_system: 600, scale: 1.0 }
    }

    /// The matching cost model.
    pub fn cost_model(&self) -> CostModel {
        CostModel::scaled(self.scale)
    }

    /// Virtual particles per system this size stands for.
    pub fn virtual_per_system(&self) -> f64 {
        self.particles_per_system as f64 * self.scale
    }
}

/// Run configuration shared by the paper experiments: enough frames to see
/// balancing converge, with a few warm-up frames excluded from statistics.
pub fn paper_run_config(frames: u64, dt: f32) -> RunConfig {
    RunConfig {
        frames,
        dt,
        seed: 0x1905_2005, // IPDPS 2005
        warmup: (frames / 5).min(5),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        let full = WorkloadSize::paper_full();
        assert_eq!(full.systems, 8);
        assert_eq!(full.particles_per_system, 400_000);
        let scaled = WorkloadSize::paper_scaled(10.0);
        assert_eq!(scaled.particles_per_system, 40_000);
        assert_eq!(scaled.virtual_per_system(), 400_000.0);
        assert_eq!(scaled.cost_model().scale, 10.0);
    }

    #[test]
    fn run_config_has_warmup() {
        let c = paper_run_config(30, 0.1);
        assert_eq!(c.frames, 30);
        assert!(c.warmup > 0 && c.warmup <= 5);
    }
}
