//! The vortex experiment — an *inhomogeneous* workload built to stress
//! dynamic load balancing.
//!
//! Snow (§5.1) is nearly uniform and fountain (§5.2) spreads its nozzles
//! across the whole space; both leave an even domain split within a small
//! factor of balanced. The vortex workload does the opposite on purpose:
//! every particle system is a swirling cell whose center is drawn from a
//! *quadratically compressed* spread, so the cells pile up toward one end
//! of the space and the bulk of the particles orbit inside a narrow band of
//! x. A static even split strands most calculators with near-empty slices
//! while one or two carry almost everything — the strongest SLB-vs-DLB
//! contrast in the BENCH_5 sweep, and the workload where balancer round
//! counts actually move.
//!
//! Orbital motion (the McAllister `pOrbitPoint` effect) keeps particles
//! *circulating through* the crowded band rather than settling, so the
//! imbalance persists frame after frame instead of diffusing away — the
//! balancer must keep working, not win once.

use psa_core::actions::{ActionList, KillOld, MoveParticles, OrbitPoint, RandomAccel};
use psa_core::system::{EmissionShape, VelocityModel};
use psa_core::{SystemId, SystemSpec};
use psa_math::{Interval, Vec3};
use psa_runtime::{Scene, SystemSetup};

use crate::WorkloadSize;

/// Horizontal extent of the vortex field (the decomposition axis).
pub const VORTEX_SPACE: Interval = Interval { lo: -40.0, hi: 40.0 };
/// Frame time step.
pub const VORTEX_DT: f32 = 0.04;
/// Frames a particle lives before being recycled.
pub const VORTEX_LIFETIME_FRAMES: u64 = 75;
/// Pull strength of each vortex cell (orbit tightness).
pub const VORTEX_STRENGTH: f32 = 60.0;
/// Radius of one swirling cell.
pub const CELL_RADIUS: f32 = 4.0;

/// Center x of vortex cell `i`: a golden-ratio spread cubed toward the
/// low end of the space. Cubing `t` is the clustering knob — cells land
/// with density ∝ x^(-2/3) from the left edge, so most systems sit in the
/// left quarter of the space and an even split is maximally wrong.
pub fn cell_x(i: usize) -> f32 {
    const PHI: f32 = 0.618_034;
    let t = ((i as f32 + 1.0) * PHI).fract();
    let w = VORTEX_SPACE.width();
    VORTEX_SPACE.lo + w * (0.04 + 0.90 * t * t * t)
}

/// Build the vortex scene: `size.systems` clustered swirling cells.
pub fn vortex_scene(size: WorkloadSize) -> Scene {
    let mut scene = Scene::new();
    let lifetime = VORTEX_LIFETIME_FRAMES as f32 * VORTEX_DT;
    for i in 0..size.systems {
        let center = Vec3::new(cell_x(i), 6.0 + 0.5 * (i % 5) as f32, 0.0);
        // Tangential launch: position on the cell's rim, velocity mostly
        // perpendicular to the radius so particles enter orbit immediately.
        let spec = SystemSpec {
            id: SystemId(i as u16),
            name: format!("vortex-{i}"),
            space: VORTEX_SPACE,
            emission: EmissionShape::Sphere { center, radius: CELL_RADIUS },
            velocity: VelocityModel::Jittered { base: Vec3::new(0.0, 0.0, 3.0), jitter: 2.5 },
            orientation: Vec3::Z,
            color: Vec3::new(0.85, 0.55, 0.25),
            size: 0.05,
            mass: 1.0,
            emit_per_frame: size.particles_per_system / VORTEX_LIFETIME_FRAMES as usize,
            max_age: lifetime,
            initial: Some((
                size.particles_per_system,
                EmissionShape::Sphere { center, radius: CELL_RADIUS },
            )),
        };
        let actions = ActionList::new()
            .then(OrbitPoint::new(center, VORTEX_STRENGTH))
            .then(RandomAccel::new(0.8))
            .then(KillOld::new(lifetime))
            .then(MoveParticles);
        scene.add_system(SystemSetup::new(spec, actions));
    }
    scene
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::CostModel;
    use psa_runtime::{run_sequential, RunConfig};

    #[test]
    fn cells_cluster_toward_the_low_end() {
        let n = 16;
        let xs: Vec<f32> = (0..n).map(cell_x).collect();
        for &x in &xs {
            assert!(VORTEX_SPACE.contains(x), "cell off-space: {x}");
        }
        let mid = VORTEX_SPACE.lo + VORTEX_SPACE.width() * 0.5;
        let low = xs.iter().filter(|&&x| x < mid).count();
        assert!(low * 3 >= n * 2, "only {low}/{n} cells in the low half: {xs:?}");
    }

    #[test]
    fn even_split_is_badly_imbalanced() {
        // The workload's defining property: count initial particles per
        // slice of an 8-way even split — the heaviest slice must carry
        // several times the lightest-nonempty's share, and some slice must
        // be (near-)empty.
        let size = WorkloadSize { systems: 12, particles_per_system: 500, scale: 1.0 };
        let scene = vortex_scene(size);
        let mut rng = psa_math::Rng64::new(42);
        let slice_w = VORTEX_SPACE.width() / 8.0;
        let mut per_slice = [0usize; 8];
        for setup in &scene.systems {
            for p in setup.spec.emit_initial(&mut rng) {
                let s = (((p.position.x - VORTEX_SPACE.lo) / slice_w) as usize).min(7);
                per_slice[s] += 1;
            }
        }
        let max = per_slice.iter().copied().max().unwrap_or(0);
        let min = per_slice.iter().copied().min().unwrap_or(0);
        let total: usize = per_slice.iter().sum();
        assert!(total > 0);
        assert!(max * 3 >= total, "heaviest slice should hold ≥ 1/3 of everything: {per_slice:?}");
        assert!(min * 16 <= max, "lightest slice should be ≲ max/16: {per_slice:?}");
    }

    #[test]
    fn vortex_population_is_steady() {
        let size = WorkloadSize { systems: 2, particles_per_system: 1500, scale: 1.0 };
        let scene = vortex_scene(size);
        let cfg = RunConfig { frames: 40, dt: VORTEX_DT, ..Default::default() };
        let r = run_sequential(&scene, &cfg, &CostModel::default(), 1.0);
        let last = r.frames.last().unwrap().alive as f64;
        let target = (2 * 1500) as f64;
        assert!((0.5..1.3).contains(&(last / target)), "alive {last} vs target {target}");
    }

    #[test]
    fn orbiting_particles_keep_crossing_domains() {
        // Particles must circulate (migration pressure every frame), not
        // sit still: across a short run, per-frame exchange on a parallel
        // split should be nonzero — proxied here by positions actually
        // moving in x over time.
        let size = WorkloadSize { systems: 1, particles_per_system: 200, scale: 1.0 };
        let scene = vortex_scene(size);
        let spec = &scene.systems[0].spec;
        let mut rng = psa_math::Rng64::new(7);
        let initial = spec.emit_initial(&mut rng);
        let spread = initial
            .iter()
            .map(|p| p.position.x)
            .fold((f32::MAX, f32::MIN), |(lo, hi), x| (lo.min(x), hi.max(x)));
        assert!(spread.1 - spread.0 >= CELL_RADIUS, "cell collapsed: {spread:?}");
    }
}
