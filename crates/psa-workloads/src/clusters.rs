//! The paper's cluster configurations (§5, Tables 1–3).

use cluster_sim::{e60, e800, zx2000, ClusterSpec, Compiler, NetworkModel};

/// A homogeneous Myrinet+GCC E800 cluster — the environment of Tables 1
/// and 3. `nodes` type-B nodes running `procs_per_node` calculators each.
pub fn myrinet_gcc(nodes: usize, procs_per_node: usize) -> ClusterSpec {
    ClusterSpec::homogeneous(NetworkModel::myrinet(), Compiler::Gcc, e800(), nodes, procs_per_node)
}

/// A Fast-Ethernet + ICC cluster builder (Table 2's environment).
pub fn fe_icc() -> ClusterSpec {
    ClusterSpec::new(NetworkModel::fast_ethernet(), Compiler::Icc)
}

/// The node/process rows of Tables 1 and 3:
/// `(label, nodes, procs_per_node)` so that `4*B / 4 P.` … `8*B / 16 P.`
/// regenerate in order.
pub fn table1_rows() -> Vec<(&'static str, usize, usize)> {
    vec![
        ("4*B / 4 P.", 4, 1),
        ("5*B / 5 P.", 5, 1),
        ("6*B / 6 P.", 6, 1),
        ("7*B / 7 P.", 7, 1),
        ("8*B / 8 P.", 8, 1),
        ("8*B / 16 P.", 8, 2),
    ]
}

/// The heterogeneous rows of Table 2, in paper order.
pub fn table2_rows() -> Vec<(&'static str, ClusterSpec)> {
    vec![
        ("4*B (4 P.) + 4*A (4 P.) = 8 P.", fe_icc().add_nodes(e800(), 4, 1).add_nodes(e60(), 4, 1)),
        (
            "4*B (8 P.) + 4*A (8 P.) = 16 P.",
            fe_icc().add_nodes(e800(), 4, 2).add_nodes(e60(), 4, 2),
        ),
        (
            "8*B (8 P.) + 8*A (8 P.) = 16 P.",
            fe_icc().add_nodes(e800(), 8, 1).add_nodes(e60(), 8, 1),
        ),
        (
            "8*B (16 P.) + 8*A (16 P.) = 32 P.",
            fe_icc().add_nodes(e800(), 8, 2).add_nodes(e60(), 8, 2),
        ),
        (
            "2*B (2 P.) + 2*C (2 P.) = 4 P.",
            fe_icc().add_nodes(e800(), 2, 1).add_nodes(zx2000(), 2, 1),
        ),
        (
            "2*B (4 P.) + 2*C (2 P.) = 6 P.",
            fe_icc().add_nodes(e800(), 2, 2).add_nodes(zx2000(), 2, 1),
        ),
        (
            "4*B (4 P.) + 2*C (2 P.) = 6 P.",
            fe_icc().add_nodes(e800(), 4, 1).add_nodes(zx2000(), 2, 1),
        ),
        (
            "4*B (8 P.) + 2*C (2 P.) = 10 P.",
            fe_icc().add_nodes(e800(), 4, 2).add_nodes(zx2000(), 2, 1),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_match_paper_process_counts() {
        let rows = table1_rows();
        let procs: Vec<usize> = rows.iter().map(|(_, n, p)| n * p).collect();
        assert_eq!(procs, vec![4, 5, 6, 7, 8, 16]);
        for (_, nodes, ppn) in rows {
            let c = myrinet_gcc(nodes, ppn);
            assert_eq!(c.total_procs(), nodes * ppn);
            assert_eq!(c.compiler, Compiler::Gcc);
            assert!(!c.net.shared_medium);
        }
    }

    #[test]
    fn table2_rows_match_paper_process_counts() {
        let rows = table2_rows();
        let procs: Vec<usize> = rows.iter().map(|(_, c)| c.total_procs()).collect();
        assert_eq!(procs, vec![8, 16, 16, 32, 4, 6, 6, 10]);
        for (_, c) in rows {
            assert_eq!(c.compiler, Compiler::Icc);
            assert_eq!(c.net.name, "Fast-Ethernet", "Table 2 runs on Fast-Ethernet");
        }
    }

    #[test]
    fn table2_baseline_is_itanium_when_present() {
        for (label, c) in table2_rows() {
            if label.contains("C (") {
                assert_eq!(c.best_sequential_speed(), zx2000().speed(Compiler::Icc));
            }
        }
    }
}
