//! Fireworks — an extra workload used by the examples (the kind of "wide
//! variety of effects" the McAllister API is known for).

use psa_core::actions::{ActionList, Fade, Gravity, KillOld, MoveParticles};
use psa_core::system::{EmissionShape, VelocityModel};
use psa_core::{SystemId, SystemSpec};
use psa_math::{Interval, Vec3};
use psa_runtime::{Scene, SystemSetup};

/// Build a fireworks scene: `bursts` shells at different positions/colors.
/// Each burst emits an expanding sphere shell that fades and falls.
pub fn fireworks_scene(bursts: usize, particles_per_burst: usize) -> Scene {
    let mut scene = Scene::new();
    let palette = [
        Vec3::new(1.0, 0.35, 0.2),
        Vec3::new(0.3, 0.7, 1.0),
        Vec3::new(1.0, 0.85, 0.3),
        Vec3::new(0.5, 1.0, 0.5),
        Vec3::new(1.0, 0.4, 0.9),
    ];
    for i in 0..bursts {
        let cx = -24.0 + 48.0 * (i as f32 + 0.5) / bursts as f32;
        let cy = 18.0 + 6.0 * ((i * 7919) % 5) as f32 / 5.0;
        let center = Vec3::new(cx, cy, 0.0);
        let spec = SystemSpec {
            id: SystemId(i as u16),
            name: format!("burst-{i}"),
            space: Interval::new(-30.0, 30.0),
            emission: EmissionShape::Sphere { center, radius: 0.3 },
            velocity: VelocityModel::Jittered { base: Vec3::ZERO, jitter: 9.0 },
            orientation: Vec3::Y,
            color: palette[i % palette.len()],
            size: 0.12,
            mass: 0.3,
            emit_per_frame: particles_per_burst / 20,
            max_age: 2.0,
            initial: Some((particles_per_burst, EmissionShape::Sphere { center, radius: 2.0 })),
        };
        let actions = ActionList::new()
            .then(Gravity::new(Vec3::new(0.0, -4.0, 0.0)))
            .then(Fade::new(0.55, true))
            .then(KillOld::new(2.0))
            .then(MoveParticles);
        scene.add_system(SystemSetup::new(spec, actions));
    }
    scene
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::CostModel;
    use psa_runtime::{run_sequential, RunConfig};

    #[test]
    fn bursts_are_separate_systems() {
        let s = fireworks_scene(3, 500);
        assert_eq!(s.system_count(), 3);
        assert_ne!(s.systems[0].spec.color, s.systems[1].spec.color);
    }

    #[test]
    fn population_decays_by_fade_and_age() {
        let s = fireworks_scene(1, 1000);
        let cfg = RunConfig { frames: 25, dt: 0.12, ..Default::default() };
        let r = run_sequential(&s, &cfg, &CostModel::default(), 1.0);
        let first = r.frames.first().unwrap().alive;
        let last = r.frames.last().unwrap().alive;
        assert!(first > 800, "initial burst present: {first}");
        assert!(last < first, "sparks fade/age out: {last} < {first}");
    }
}
