//! Per-phase observability for the frame protocol.
//!
//! The paper's whole argument rests on per-frame measurements: the §3.2.5
//! balancer consumes `(particle count, processing time)` pairs and every §5
//! table is a frame-time breakdown. This crate is the instrument: it
//! decomposes a run into the protocol phases of Figure 2 and records
//! per-rank, per-frame timings plus traffic/fault counters, without ever
//! feeding back into the simulation.
//!
//! Two clocks, one discipline:
//!
//! * [`clock::VirtualClock`] — manually advanced virtual ticks, used by the
//!   deterministic executor. Bit-exact and fingerprint-safe.
//! * [`clock::WallClock`] — real elapsed time for the threaded executor,
//!   carrying the same audited wall-clock allow annotation as the
//!   executor it instruments.
//!
//! The quietness guarantee mirrors the fault layer's quiet-plan rule: a
//! disabled [`Recorder`] is a true no-op, and an *enabled* recorder only
//! reads clocks — it never advances one, never draws RNG, never sends a
//! message. An instrumented run must therefore produce a byte-identical
//! `RunReport` fingerprint to a bare run; `tests/observability.rs` in the
//! workspace root holds that gate for both executors.

pub mod clock;
pub mod phase;
pub mod recorder;
pub mod report;
pub mod session;

pub use clock::{ClockKind, VirtualClock, WallClock};
pub use phase::{Phase, PHASES, PHASE_COUNT};
pub use recorder::{Counter, FaultEvent, FaultKind, Recorder, TraceError};
pub use report::{FrameCounters, FrameTrace, TraceReport};
pub use session::SessionCounters;
