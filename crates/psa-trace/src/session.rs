//! Per-session counters for the multi-tenant scheduler.
//!
//! A session (one seeded animation run multiplexed over the shared worker
//! pool — see `psa-sessions`) is observed on two layers: the engine's
//! per-phase virtual timings, aggregated here from the run's
//! [`TraceReport`](crate::TraceReport), and scheduler-level counters the
//! pool itself maintains — how long the session waited in the admission
//! queue, how many frame slices it was dispatched in, and how often a lost
//! worker forced it to restart. Like every trace type, the counters are
//! derived measurement: they never feed back into scheduling decisions, so
//! instrumented pools stay fingerprint-identical to bare ones.

use crate::phase::{PHASES, PHASE_COUNT};

/// Scheduler- and phase-level counters of one session.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionCounters {
    /// Pool-virtual seconds between arrival and the first dispatch.
    pub queue_wait: f64,
    /// Frame slices the scheduler dispatched for this session.
    pub slices: u64,
    /// Times the session was re-queued from scratch after a worker loss.
    pub requeues: u64,
    /// Frames the session completed (restarted frames count once).
    pub frames: u64,
    /// Frames of finished work discarded by worker losses: the distance
    /// from the last checkpoint (or frame 0 when the pool checkpoints are
    /// off) back to where the session had actually progressed.
    pub lost_frames: u64,
    /// Pool-virtual seconds of finished work discarded by worker losses —
    /// the latency of every frame in `lost_frames`, i.e. the time the
    /// session pays again on replay.
    pub restart_lost_secs: f64,
    /// Virtual seconds per protocol phase, summed over the session's run
    /// (all zero when the pool ran uninstrumented).
    pub phase_time: [f64; PHASE_COUNT],
}

impl SessionCounters {
    /// Fold a run's per-phase totals into the session's accumulators.
    pub fn add_phase_totals(&mut self, totals: &[f64; PHASE_COUNT]) {
        for (acc, v) in self.phase_time.iter_mut().zip(totals.iter()) {
            *acc += v;
        }
    }

    /// Virtual seconds the session spent across all phases.
    pub fn busy_time(&self) -> f64 {
        self.phase_time.iter().sum()
    }

    /// One fixed-width table row: scheduler counters, then each phase's
    /// share of the session's busy time (blank when uninstrumented).
    pub fn format_row(&self, label: &str) -> String {
        let mut row = format!(
            "{label:<12} wait {:>9.4}s  slices {:>5}  requeues {:>2}  frames {:>5}",
            self.queue_wait, self.slices, self.requeues, self.frames
        );
        // Loss accounting only appears when a worker loss actually cost the
        // session work, keeping healthy rows (and the tests that pin their
        // exact shape) unchanged.
        if self.lost_frames > 0 || self.restart_lost_secs > 0.0 {
            row.push_str(&format!(
                "  lost {:>3} frames ({:.4}s)",
                self.lost_frames, self.restart_lost_secs
            ));
        }
        let busy = self.busy_time();
        if busy > 0.0 {
            for (phase, t) in PHASES.iter().zip(self.phase_time.iter()) {
                row.push_str(&format!("  {} {:>5.1}%", phase.name(), 100.0 * t / busy));
            }
        }
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    #[test]
    fn phase_totals_accumulate() {
        let mut c = SessionCounters::default();
        let mut totals = [0.0; PHASE_COUNT];
        totals[Phase::Compute.index()] = 2.0;
        totals[Phase::Render.index()] = 1.0;
        c.add_phase_totals(&totals);
        c.add_phase_totals(&totals);
        assert_eq!(c.busy_time(), 6.0);
        assert_eq!(c.phase_time[Phase::Compute.index()], 4.0);
    }

    #[test]
    fn row_formats_scheduler_counters_without_phases() {
        let c = SessionCounters {
            queue_wait: 0.25,
            slices: 3,
            requeues: 1,
            frames: 12,
            ..Default::default()
        };
        let row = c.format_row("s-7");
        assert!(row.contains("s-7"));
        assert!(row.contains("slices     3"));
        assert!(!row.contains('%'), "uninstrumented sessions print no phase shares");
        assert!(!row.contains("lost"), "no worker loss, no loss column");
    }

    #[test]
    fn row_shows_loss_accounting_only_after_a_worker_loss() {
        let c = SessionCounters {
            queue_wait: 0.25,
            slices: 4,
            requeues: 1,
            frames: 9,
            lost_frames: 2,
            restart_lost_secs: 0.125,
            ..Default::default()
        };
        let row = c.format_row("s-2");
        assert!(row.contains("lost   2 frames (0.1250s)"), "{row}");
    }

    #[test]
    fn row_includes_phase_shares_when_instrumented() {
        let mut c = SessionCounters::default();
        let mut totals = [0.0; PHASE_COUNT];
        totals[Phase::Compute.index()] = 3.0;
        totals[Phase::Exchange.index()] = 1.0;
        c.add_phase_totals(&totals);
        let row = c.format_row("s-0");
        assert!(row.contains("compute  75.0%"), "{row}");
        assert!(row.contains("exchange  25.0%"), "{row}");
    }
}
