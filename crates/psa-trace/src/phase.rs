//! The phase taxonomy.
//!
//! One frame of the Figure-2 protocol decomposes into six wall-to-wall
//! phases. The mapping from the thirteen diagram steps to six measurable
//! phases follows the cost accounting of the diffusive load-balancing
//! literature (arXiv:2208.07553, arXiv:1808.00829): lump what a profiler
//! could not separate on a real cluster, keep what the balancer and the
//! tables need apart.

/// One measurable phase of a protocol frame.
///
/// Diagram steps → phase:
///
/// | Figure-2 steps                                             | phase        |
/// |------------------------------------------------------------|--------------|
/// | ParticleCreation, AdditionToLocalSet, Calculus (+collision)| `Compute`    |
/// | ParticleExchange                                           | `Exchange`   |
/// | LoadInformation                                            | `LoadReport` |
/// | LoadBalancingEvaluation … LoadBalanceBetweenCalculators    | `Balance`    |
/// | ParticlesToImageGenerator                                  | `Ship`       |
/// | ImageGeneration (+frame barrier)                           | `Render`     |
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Creation, addition to the local set, the action list, collision.
    Compute,
    /// End-of-frame domain-crossing particle exchange.
    Exchange,
    /// Load reports from calculators to the manager (§3.2.4).
    LoadReport,
    /// Balancer evaluation, orders, domain updates, donations (§3.2.5).
    Balance,
    /// Shipping render payloads to the image generator.
    Ship,
    /// Image generation plus the end-of-frame synchronization.
    Render,
}

/// Number of phases (array dimension for per-phase accumulators).
pub const PHASE_COUNT: usize = 6;

/// Every phase, in frame order.
pub const PHASES: [Phase; PHASE_COUNT] = [
    Phase::Compute,
    Phase::Exchange,
    Phase::LoadReport,
    Phase::Balance,
    Phase::Ship,
    Phase::Render,
];

impl Phase {
    /// Dense index into `[f64; PHASE_COUNT]` accumulators.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Phase::Compute => 0,
            Phase::Exchange => 1,
            Phase::LoadReport => 2,
            Phase::Balance => 3,
            Phase::Ship => 4,
            Phase::Render => 5,
        }
    }

    /// Stable snake-case name used in tables and JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::Exchange => "exchange",
            Phase::LoadReport => "load_report",
            Phase::Balance => "balance",
            Phase::Ship => "ship",
            Phase::Render => "render",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, p) in PHASES.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = PHASES.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PHASE_COUNT);
    }
}
