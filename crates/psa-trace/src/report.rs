//! The finished trace: per-frame, per-rank, per-phase timings plus
//! counters, with table formatting and a hand-rolled JSON export (the
//! workspace is offline; external serializers are intentionally absent).

use crate::clock::ClockKind;
use crate::phase::{PHASES, PHASE_COUNT};
use crate::recorder::FaultEvent;

/// Event counters for one frame, summed over all ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameCounters {
    /// Messages delivered by the transport.
    pub messages: u64,
    /// Payload bytes carried by those messages.
    pub payload_bytes: u64,
    /// Particles that crossed a domain boundary.
    pub migrated: u64,
    /// Bytes of migrated particle payload.
    pub migration_bytes: u64,
    /// Transient send failures retried with backoff.
    pub send_retries: u64,
    /// Bounded receives that expired.
    pub timeouts: u64,
    /// Transfer orders issued by the balancer.
    pub balance_orders: u64,
    /// Kernel chunks processed by the parallel compute phase.
    pub compute_chunks: u64,
    /// Balance rounds short-circuited by the zero-order hysteresis.
    pub balance_skips: u64,
    /// Engine checkpoints taken at this frame boundary.
    pub snapshots: u64,
    /// Crash recoveries performed (rollback to a snapshot plus replay).
    pub restores: u64,
}

impl FrameCounters {
    fn merge(&mut self, other: &FrameCounters) {
        self.messages += other.messages;
        self.payload_bytes += other.payload_bytes;
        self.migrated += other.migrated;
        self.migration_bytes += other.migration_bytes;
        self.send_retries += other.send_retries;
        self.timeouts += other.timeouts;
        self.balance_orders += other.balance_orders;
        self.compute_chunks += other.compute_chunks;
        self.balance_skips += other.balance_skips;
        self.snapshots += other.snapshots;
        self.restores += other.restores;
    }
}

/// One frame's measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameTrace {
    /// Frame number.
    pub frame: u64,
    /// Seconds spent per rank (outer) per phase (inner, [`crate::Phase::index`]).
    pub rank_phase: Vec<[f64; PHASE_COUNT]>,
    /// Event counters for the frame.
    pub counters: FrameCounters,
}

impl FrameTrace {
    /// A zeroed trace for `frame` covering `ranks` ranks.
    pub fn empty(frame: u64, ranks: usize) -> Self {
        FrameTrace {
            frame,
            rank_phase: vec![[0.0; PHASE_COUNT]; ranks],
            counters: FrameCounters::default(),
        }
    }

    /// Seconds per phase summed over ranks.
    pub fn phase_totals(&self) -> [f64; PHASE_COUNT] {
        let mut out = [0.0; PHASE_COUNT];
        for rp in &self.rank_phase {
            for (acc, v) in out.iter_mut().zip(rp.iter()) {
                *acc += v;
            }
        }
        out
    }
}

/// Largest rank count that still gets one table row per rank; above this
/// the per-rank view collapses to min/median/max per phase.
pub const RANK_DETAIL_LIMIT: usize = 16;

/// The complete per-phase trace of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceReport {
    /// Which clock produced the timings.
    pub clock: ClockKind,
    /// Ranks covered (calculators + manager + image generator).
    pub ranks: usize,
    /// Dense per-frame measurements, `frames[k].frame == k`.
    pub frames: Vec<FrameTrace>,
    /// Injected-fault observations, in recording order.
    pub faults: Vec<FaultEvent>,
}

impl TraceReport {
    /// Seconds per phase summed over every frame and rank.
    pub fn phase_totals(&self) -> [f64; PHASE_COUNT] {
        let mut out = [0.0; PHASE_COUNT];
        for f in &self.frames {
            for (acc, v) in out.iter_mut().zip(f.phase_totals().iter()) {
                *acc += v;
            }
        }
        out
    }

    /// Counters summed over every frame.
    pub fn counter_totals(&self) -> FrameCounters {
        let mut out = FrameCounters::default();
        for f in &self.frames {
            out.merge(&f.counters);
        }
        out
    }

    /// Merge per-role traces from the threaded executor into one report.
    ///
    /// Every input must cover the same rank count and clock; timings and
    /// counters are summed element-wise (each role only wrote its own
    /// rank's rows, so summation is disjoint), fault events concatenated.
    /// Returns `None` on an empty input or mismatched shapes.
    pub fn merge(parts: &[TraceReport]) -> Option<TraceReport> {
        let first = parts.first()?;
        let (clock, ranks) = (first.clock, first.ranks);
        if parts.iter().any(|p| p.clock != clock || p.ranks != ranks) {
            return None;
        }
        let n_frames = parts.iter().map(|p| p.frames.len()).max().unwrap_or(0);
        let mut frames: Vec<FrameTrace> =
            (0..n_frames).map(|f| FrameTrace::empty(f as u64, ranks)).collect();
        let mut faults = Vec::new();
        for p in parts {
            for (dst, f) in frames.iter_mut().zip(p.frames.iter()) {
                for (dr, sr) in dst.rank_phase.iter_mut().zip(f.rank_phase.iter()) {
                    for (d, s) in dr.iter_mut().zip(sr.iter()) {
                        *d += s;
                    }
                }
                dst.counters.merge(&f.counters);
            }
            faults.extend_from_slice(&p.faults);
        }
        faults.sort_by_key(|e| (e.frame, e.rank));
        Some(TraceReport { clock, ranks, frames, faults })
    }

    /// Seconds per phase summed over every frame, kept per rank.
    fn rank_totals(&self) -> Vec<[f64; PHASE_COUNT]> {
        let mut out = vec![[0.0; PHASE_COUNT]; self.ranks];
        for f in &self.frames {
            for (acc, rp) in out.iter_mut().zip(f.rank_phase.iter()) {
                for (a, v) in acc.iter_mut().zip(rp.iter()) {
                    *a += v;
                }
            }
        }
        out
    }

    /// A fixed-width per-phase breakdown table (totals over all frames,
    /// share of the summed phase time, mean per frame), followed by a
    /// per-rank view: one row per rank up to [`RANK_DETAIL_LIMIT`] ranks,
    /// a min/median/max spread per phase beyond that (a 1,024-rank run
    /// must summarize, not print a thousand rows).
    pub fn format_table(&self) -> String {
        let totals = self.phase_totals();
        let grand: f64 = totals.iter().sum();
        let nf = self.frames.len().max(1) as f64;
        let mut out = String::new();
        out.push_str(&format!(
            "phase breakdown ({} clock, {} frames, {} ranks)\n",
            self.clock.name(),
            self.frames.len(),
            self.ranks
        ));
        out.push_str(&format!(
            "{:<12} {:>12} {:>8} {:>12}\n",
            "phase", "total_s", "share", "per_frame_s"
        ));
        for (p, t) in PHASES.iter().zip(totals.iter().copied()) {
            let share = if grand > 0.0 { t / grand * 100.0 } else { 0.0 };
            out.push_str(&format!(
                "{:<12} {:>12.6} {:>7.1}% {:>12.6}\n",
                p.name(),
                t,
                share,
                t / nf
            ));
        }
        let per_rank = self.rank_totals();
        if self.ranks <= RANK_DETAIL_LIMIT {
            // Small runs: one row per rank, rank column sized to the count.
            let w = self.ranks.saturating_sub(1).max(1).ilog10() as usize + 1;
            let w = w.max(4);
            out.push_str(&format!("{:>w$}", "rank", w = w));
            for p in PHASES {
                out.push_str(&format!(" {:>12}", p.name()));
            }
            out.push('\n');
            for (r, rp) in per_rank.iter().enumerate() {
                out.push_str(&format!("{r:>w$}"));
                for t in rp {
                    out.push_str(&format!(" {t:>12.6}"));
                }
                out.push('\n');
            }
        } else {
            // Large runs: spread per phase instead of a row per rank.
            out.push_str(&format!("per-rank spread over {} ranks\n", self.ranks));
            out.push_str(&format!(
                "{:<12} {:>12} {:>12} {:>12}\n",
                "phase", "min_s", "median_s", "max_s"
            ));
            for (i, p) in PHASES.iter().enumerate() {
                let mut col: Vec<f64> =
                    per_rank.iter().map(|rp| rp.get(i).copied().unwrap_or(0.0)).collect();
                col.sort_by(f64::total_cmp);
                let min = col.first().copied().unwrap_or(0.0);
                let max = col.last().copied().unwrap_or(0.0);
                let mid = col.len() / 2;
                let hi_mid = col.get(mid).copied().unwrap_or(0.0);
                let median = if col.len() % 2 == 1 {
                    hi_mid
                } else {
                    (col.get(mid.wrapping_sub(1)).copied().unwrap_or(hi_mid) + hi_mid) / 2.0
                };
                out.push_str(&format!(
                    "{:<12} {:>12.6} {:>12.6} {:>12.6}\n",
                    p.name(),
                    min,
                    median,
                    max
                ));
            }
        }
        let c = self.counter_totals();
        out.push_str(&format!(
            "counters: {} msgs, {} payload B, {} migrated ({} B), {} retries, {} timeouts, {} orders, {} skips, {} chunks, {} snapshots, {} restores, {} faults\n",
            c.messages,
            c.payload_bytes,
            c.migrated,
            c.migration_bytes,
            c.send_retries,
            c.timeouts,
            c.balance_orders,
            c.balance_skips,
            c.compute_chunks,
            c.snapshots,
            c.restores,
            self.faults.len()
        ));
        out
    }

    /// Hand-rolled JSON export. Keys are stable; floats are emitted with
    /// `{:e}` precision-preserving formatting so the file round-trips.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"clock\": \"{}\",\n", self.clock.name()));
        s.push_str(&format!("  \"ranks\": {},\n", self.ranks));
        let totals = self.phase_totals();
        s.push_str("  \"phase_totals\": {");
        for (i, (p, t)) in PHASES.iter().zip(totals.iter().copied()).enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", p.name(), json_f64(t)));
        }
        s.push_str("},\n");
        s.push_str("  \"frames\": [\n");
        for (i, f) in self.frames.iter().enumerate() {
            let c = &f.counters;
            s.push_str(&format!("    {{\"frame\": {}, \"phases\": {{", f.frame));
            let pt = f.phase_totals();
            for (j, (p, t)) in PHASES.iter().zip(pt.iter().copied()).enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\": {}", p.name(), json_f64(t)));
            }
            s.push_str(&format!(
                "}}, \"messages\": {}, \"payload_bytes\": {}, \"migrated\": {}, \"migration_bytes\": {}, \"send_retries\": {}, \"timeouts\": {}, \"balance_orders\": {}, \"balance_skips\": {}, \"compute_chunks\": {}, \"snapshots\": {}, \"restores\": {}}}{}\n",
                c.messages,
                c.payload_bytes,
                c.migrated,
                c.migration_bytes,
                c.send_retries,
                c.timeouts,
                c.balance_orders,
                c.balance_skips,
                c.compute_chunks,
                c.snapshots,
                c.restores,
                if i + 1 < self.frames.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"faults\": [");
        for (i, e) in self.faults.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"frame\": {}, \"rank\": {}, \"kind\": \"{}\"}}",
                e.frame,
                e.rank,
                e.kind.name()
            ));
        }
        s.push_str("]\n");
        s.push('}');
        s
    }
}

/// JSON-safe float formatting: finite values print shortest-round-trip,
/// non-finite values become `null` (JSON has no NaN/Infinity).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;
    use crate::recorder::{FaultKind, Recorder};

    fn sample() -> TraceReport {
        let mut r = Recorder::enabled(3, ClockKind::Virtual);
        r.phase(0, 0, Phase::Compute, 2.0);
        r.phase(0, 1, Phase::Compute, 1.0);
        r.phase(0, 2, Phase::Render, 0.5);
        r.phase(1, 0, Phase::Exchange, 0.25);
        r.add(1, crate::recorder::Counter::Messages, 4);
        r.add(1, crate::recorder::Counter::ComputeChunks, 6);
        r.finish().expect("enabled")
    }

    #[test]
    fn phase_totals_sum_ranks_and_frames() {
        let rep = sample();
        let t = rep.phase_totals();
        assert_eq!(t[Phase::Compute.index()], 3.0);
        assert_eq!(t[Phase::Exchange.index()], 0.25);
        assert_eq!(t[Phase::Render.index()], 0.5);
        assert_eq!(rep.counter_totals().messages, 4);
        assert_eq!(rep.counter_totals().compute_chunks, 6);
    }

    #[test]
    fn merge_sums_disjoint_roles() {
        let mut a = Recorder::enabled(2, ClockKind::Wall);
        a.phase(0, 0, Phase::Compute, 1.0);
        a.fault(0, 0, FaultKind::Crash);
        let mut b = Recorder::enabled(2, ClockKind::Wall);
        b.phase(0, 1, Phase::Ship, 2.0);
        b.phase(1, 1, Phase::Ship, 3.0);
        let merged =
            TraceReport::merge(&[a.finish().unwrap(), b.finish().unwrap()]).expect("same shape");
        assert_eq!(merged.frames.len(), 2);
        assert_eq!(merged.frames[0].rank_phase[0][Phase::Compute.index()], 1.0);
        assert_eq!(merged.frames[0].rank_phase[1][Phase::Ship.index()], 2.0);
        assert_eq!(merged.frames[1].rank_phase[1][Phase::Ship.index()], 3.0);
        assert_eq!(merged.faults.len(), 1);
    }

    #[test]
    fn merge_rejects_mismatched_shapes() {
        let a = Recorder::enabled(2, ClockKind::Wall).finish().unwrap();
        let b = Recorder::enabled(3, ClockKind::Wall).finish().unwrap();
        assert!(TraceReport::merge(&[a, b]).is_none());
        assert!(TraceReport::merge(&[]).is_none());
    }

    #[test]
    fn table_mentions_every_phase() {
        let table = sample().format_table();
        for p in PHASES {
            assert!(table.contains(p.name()), "missing {}", p.name());
        }
    }

    #[test]
    fn small_runs_get_one_row_per_rank() {
        let table = sample().format_table();
        assert!(table.contains("rank"), "per-rank header missing:\n{table}");
        assert!(!table.contains("per-rank spread"), "3 ranks must not summarize");
        // One line per rank plus headers/counters — nothing exploded.
        for r in 0..3 {
            assert!(
                table.lines().any(|l| l.trim_start().starts_with(&r.to_string())),
                "no row for rank {r}:\n{table}"
            );
        }
    }

    #[test]
    fn large_runs_summarize_instead_of_exploding() {
        // A 1,024-rank instrumented run: the table must collapse the
        // per-rank view to min/median/max and stay bounded in size.
        let ranks = 1024;
        let mut rec = Recorder::enabled(ranks, ClockKind::Virtual);
        for r in 0..ranks {
            rec.phase(0, r, Phase::Compute, 1.0 + r as f64);
        }
        let table = rec.finish().unwrap().format_table();
        assert!(table.contains("per-rank spread over 1024 ranks"), "{table}");
        for col in ["min_s", "median_s", "max_s"] {
            assert!(table.contains(col), "missing {col}:\n{table}");
        }
        // min 1.0, median (1+511.5+1)=512.5... with 1024 samples the median
        // of 1..=1024 is (512+513)/2 = 512.5; max 1024.
        assert!(table.contains("1024.000000"), "max wrong:\n{table}");
        assert!(table.contains("512.500000"), "median wrong:\n{table}");
        let lines = table.lines().count();
        assert!(lines < 40, "table exploded to {lines} lines");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"clock\": \"virtual\""));
        assert!(j.contains("\"phase_totals\""));
        assert!(!j.contains("NaN"));
    }

    #[test]
    fn json_floats_never_emit_nan() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
