//! The two clocks of the two-clock rule.
//!
//! The deterministic executor measures phases in *virtual seconds* — the
//! same per-rank clocks netsim advances — so instrumented runs are
//! bit-exact across machines. The threaded executor measures real elapsed
//! time and therefore lives behind the same wall-clock escape hatch as the
//! executor itself. Nothing in this module ever *advances* a simulation
//! clock; recorders only read.

use std::time::Instant;

/// Which clock produced the timings in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockKind {
    /// Virtual seconds from the deterministic executor's per-rank clocks.
    Virtual,
    /// Real elapsed seconds from the threaded executor.
    Wall,
}

impl ClockKind {
    /// Stable name used in tables and JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            ClockKind::Virtual => "virtual",
            ClockKind::Wall => "wall",
        }
    }
}

/// A read-only view over an externally advanced virtual clock.
///
/// The deterministic executor snapshots `netsim::VirtualNet::now(rank)`
/// before and after each phase; this type just carries the snapshot and
/// produces the delta. It holds no state of its own so it can never drift
/// from the simulation.
#[derive(Clone, Copy, Debug)]
pub struct VirtualClock {
    start: f64,
}

impl VirtualClock {
    /// Begin a measurement at `now` virtual seconds.
    #[inline]
    pub fn start(now: f64) -> Self {
        VirtualClock { start: now }
    }

    /// Elapsed virtual seconds given the clock's current reading.
    ///
    /// Clamped at zero: a rank that did not participate in a phase keeps
    /// its clock still, and tiny negative deltas must not appear if a
    /// caller snapshots ranks in a different order than it finishes them.
    #[inline]
    pub fn elapsed(self, now: f64) -> f64 {
        (now - self.start).max(0.0)
    }
}

/// Wall-clock stopwatch for the threaded executor.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Begin a measurement now.
    #[inline]
    pub fn start() -> Self {
        WallClock { start: Instant::now() } // psa-verify: allow(wall-clock)
    }

    /// Real seconds since `start`.
    #[inline]
    pub fn elapsed(self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_a_pure_delta() {
        let c = VirtualClock::start(10.0);
        assert_eq!(c.elapsed(12.5), 2.5);
        assert_eq!(c.elapsed(10.0), 0.0);
    }

    #[test]
    fn virtual_clock_clamps_negative_deltas() {
        let c = VirtualClock::start(10.0);
        assert_eq!(c.elapsed(9.0), 0.0);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::start();
        assert!(c.elapsed() >= 0.0);
    }

    #[test]
    fn clock_kind_names() {
        assert_eq!(ClockKind::Virtual.name(), "virtual");
        assert_eq!(ClockKind::Wall.name(), "wall");
    }
}
