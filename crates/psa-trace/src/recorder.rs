//! The recording surface the executors talk to.
//!
//! A [`Recorder`] is either *disabled* — every call is a no-op and
//! [`Recorder::finish`] yields `None` — or *enabled*, in which case it
//! accumulates per-rank per-phase timings and per-frame counters into a
//! [`TraceReport`]. Either way it is strictly write-only from the
//! simulation's point of view: it never advances a clock, never draws
//! RNG, never sends a message. That is the quietness guarantee the
//! fingerprint-equality tests enforce.

use crate::clock::ClockKind;
use crate::phase::Phase;
use crate::report::{FrameTrace, TraceReport};
use std::fmt;

/// Typed failure of the fallible recording surface.
///
/// The recorder never panics on malformed coordinates: callers that care
/// use [`Recorder::try_phase`] and get one of these back, callers that
/// don't use [`Recorder::phase`] and the write is dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The frame slot could not be materialized (frame index outside the
    /// dense storage after backfill — not reachable through the public
    /// API, but the accessor refuses rather than panics).
    FrameUnavailable {
        /// Frame that was requested.
        frame: u64,
    },
    /// `rank` is outside the report's configured `0..ranks` range.
    RankOutOfRange {
        /// Rank that was requested.
        rank: usize,
        /// Ranks the report covers.
        ranks: usize,
    },
    /// The phase index is outside the per-rank phase table (not producible
    /// by [`Phase::index`], but the accessor refuses rather than panics).
    PhaseOutOfRange {
        /// Index that was requested.
        phase: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::FrameUnavailable { frame } => {
                write!(f, "frame {frame} slot unavailable")
            }
            TraceError::RankOutOfRange { rank, ranks } => {
                write!(f, "rank {rank} out of range (ranks={ranks})")
            }
            TraceError::PhaseOutOfRange { phase } => {
                write!(f, "phase index {phase} out of range")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Per-frame event counters the executors feed the recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Messages delivered by the transport.
    Messages,
    /// Payload bytes carried by those messages.
    PayloadBytes,
    /// Particles that crossed a domain boundary in the exchange phase.
    Migrated,
    /// Bytes of migrated particle payload.
    MigrationBytes,
    /// Transient send failures that were retried with backoff.
    SendRetries,
    /// Bounded receives that expired against a crashed-but-undeclared peer.
    Timeouts,
    /// Transfer orders issued by the balancer.
    BalanceOrders,
    /// Kernel chunks processed by the parallel compute phase (0 on the
    /// legacy serial path).
    ComputeChunks,
    /// Balance rounds short-circuited by the zero-order hysteresis.
    BalanceSkips,
    /// Engine checkpoints taken at this frame boundary.
    Snapshots,
    /// Crash recoveries performed (rollback to a snapshot plus replay).
    Restores,
}

/// What kind of injected fault an event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail-stop crash took effect at a frame boundary.
    Crash,
    /// One-shot stall charged its seconds at a frame boundary.
    Stall,
    /// The manager gave up on the rank and collapsed its slice.
    DeclaredDead,
}

impl FaultKind {
    /// Stable name used in tables and JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Stall => "stall",
            FaultKind::DeclaredDead => "declared_dead",
        }
    }
}

/// One injected-fault observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Frame at which the fault took effect.
    pub frame: u64,
    /// Rank the fault hit.
    pub rank: usize,
    /// What happened.
    pub kind: FaultKind,
}

/// Accumulates a [`TraceReport`], or does nothing at all.
#[derive(Clone, Debug)]
pub struct Recorder {
    inner: Option<TraceReport>,
}

impl Recorder {
    /// A recorder that ignores everything. `finish()` yields `None`.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A recorder for `ranks` ranks timed by `clock`.
    pub fn enabled(ranks: usize, clock: ClockKind) -> Self {
        Recorder {
            inner: Some(TraceReport { clock, ranks, frames: Vec::new(), faults: Vec::new() }),
        }
    }

    /// Whether measurements are being kept. Executors use this to skip
    /// clock snapshots entirely on the disabled path.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Ensure a `FrameTrace` exists for `frame` and return it.
    ///
    /// Frames are stored densely by index; recording frame `k` materializes
    /// empty traces for any earlier frames not yet seen, so a trace always
    /// covers `0..=last_recorded_frame` in order.
    fn frame_mut(rep: &mut TraceReport, frame: u64) -> Option<&mut FrameTrace> {
        let idx = frame as usize;
        while rep.frames.len() <= idx {
            let f = rep.frames.len() as u64;
            rep.frames.push(FrameTrace::empty(f, rep.ranks));
        }
        rep.frames.get_mut(idx)
    }

    /// Add `seconds` to `rank`'s accumulator for `phase` in `frame`,
    /// reporting malformed coordinates instead of panicking or dropping.
    ///
    /// Always `Ok` on a disabled recorder (there is nothing to validate
    /// against, and the disabled path must stay a true no-op).
    pub fn try_phase(
        &mut self,
        frame: u64,
        rank: usize,
        phase: Phase,
        seconds: f64,
    ) -> Result<(), TraceError> {
        let Some(rep) = &mut self.inner else { return Ok(()) };
        let ranks = rep.ranks;
        let fr = Self::frame_mut(rep, frame).ok_or(TraceError::FrameUnavailable { frame })?;
        let row = fr.rank_phase.get_mut(rank).ok_or(TraceError::RankOutOfRange { rank, ranks })?;
        let cell = row
            .get_mut(phase.index())
            .ok_or(TraceError::PhaseOutOfRange { phase: phase.index() })?;
        *cell += seconds;
        Ok(())
    }

    /// Add `seconds` to `rank`'s accumulator for `phase` in `frame`.
    ///
    /// Infallible wrapper over [`try_phase`](Self::try_phase): a write with
    /// malformed coordinates is dropped, matching the recorder's "never
    /// disturb the run" contract for callers on the hot path.
    #[inline]
    pub fn phase(&mut self, frame: u64, rank: usize, phase: Phase, seconds: f64) {
        let _ = self.try_phase(frame, rank, phase, seconds);
    }

    /// Add `n` to `counter` for `frame`.
    #[inline]
    pub fn add(&mut self, frame: u64, counter: Counter, n: u64) {
        if let Some(rep) = &mut self.inner {
            if n == 0 {
                return;
            }
            let Some(fr) = Self::frame_mut(rep, frame) else { return };
            let c = &mut fr.counters;
            match counter {
                Counter::Messages => c.messages += n,
                Counter::PayloadBytes => c.payload_bytes += n,
                Counter::Migrated => c.migrated += n,
                Counter::MigrationBytes => c.migration_bytes += n,
                Counter::SendRetries => c.send_retries += n,
                Counter::Timeouts => c.timeouts += n,
                Counter::BalanceOrders => c.balance_orders += n,
                Counter::ComputeChunks => c.compute_chunks += n,
                Counter::BalanceSkips => c.balance_skips += n,
                Counter::Snapshots => c.snapshots += n,
                Counter::Restores => c.restores += n,
            }
        }
    }

    /// Record an injected-fault observation.
    #[inline]
    pub fn fault(&mut self, frame: u64, rank: usize, kind: FaultKind) {
        if let Some(rep) = &mut self.inner {
            rep.faults.push(FaultEvent { frame, rank, kind });
        }
    }

    /// Consume the recorder; `Some` iff it was enabled.
    pub fn finish(self) -> Option<TraceReport> {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PHASE_COUNT;

    #[test]
    fn disabled_recorder_yields_nothing() {
        let mut r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.phase(0, 0, Phase::Compute, 1.0);
        r.add(0, Counter::Messages, 5);
        r.fault(0, 0, FaultKind::Crash);
        assert!(r.finish().is_none());
    }

    #[test]
    fn enabled_recorder_accumulates() {
        let mut r = Recorder::enabled(2, ClockKind::Virtual);
        assert!(r.is_enabled());
        r.phase(0, 0, Phase::Compute, 1.5);
        r.phase(0, 0, Phase::Compute, 0.5);
        r.phase(0, 1, Phase::Exchange, 2.0);
        r.add(0, Counter::Migrated, 7);
        r.add(0, Counter::Migrated, 3);
        r.fault(0, 1, FaultKind::Stall);
        let rep = r.finish().expect("enabled");
        assert_eq!(rep.ranks, 2);
        assert_eq!(rep.clock, ClockKind::Virtual);
        assert_eq!(rep.frames.len(), 1);
        assert_eq!(rep.frames[0].rank_phase[0][Phase::Compute.index()], 2.0);
        assert_eq!(rep.frames[0].rank_phase[1][Phase::Exchange.index()], 2.0);
        assert_eq!(rep.frames[0].counters.migrated, 10);
        assert_eq!(rep.faults, vec![FaultEvent { frame: 0, rank: 1, kind: FaultKind::Stall }]);
    }

    #[test]
    fn frames_are_dense_and_ordered() {
        let mut r = Recorder::enabled(1, ClockKind::Virtual);
        r.phase(3, 0, Phase::Render, 1.0);
        r.phase(1, 0, Phase::Compute, 1.0);
        let rep = r.finish().expect("enabled");
        assert_eq!(rep.frames.len(), 4);
        for (i, f) in rep.frames.iter().enumerate() {
            assert_eq!(f.frame, i as u64);
            assert_eq!(f.rank_phase.len(), 1);
            assert_eq!(f.rank_phase[0].len(), PHASE_COUNT);
        }
    }

    #[test]
    fn out_of_range_rank_is_a_typed_error_not_a_panic() {
        let mut r = Recorder::enabled(2, ClockKind::Virtual);
        assert_eq!(
            r.try_phase(0, 7, Phase::Compute, 1.0),
            Err(TraceError::RankOutOfRange { rank: 7, ranks: 2 })
        );
        // The infallible wrapper drops the write instead of panicking.
        r.phase(0, 7, Phase::Compute, 1.0);
        r.phase(0, 1, Phase::Compute, 2.0);
        let rep = r.finish().expect("enabled");
        assert_eq!(rep.frames.len(), 1);
        assert_eq!(rep.frames[0].rank_phase[1][Phase::Compute.index()], 2.0);
        assert_eq!(rep.frames[0].rank_phase[0][Phase::Compute.index()], 0.0);
    }

    #[test]
    fn disabled_recorder_try_phase_is_ok() {
        let mut r = Recorder::disabled();
        // Nothing to validate against: the disabled path stays a no-op.
        assert_eq!(r.try_phase(0, 99, Phase::Render, 1.0), Ok(()));
        assert!(r.finish().is_none());
    }

    #[test]
    fn trace_error_messages_name_the_coordinates() {
        assert_eq!(
            TraceError::RankOutOfRange { rank: 7, ranks: 2 }.to_string(),
            "rank 7 out of range (ranks=2)"
        );
        assert_eq!(
            TraceError::FrameUnavailable { frame: 3 }.to_string(),
            "frame 3 slot unavailable"
        );
        assert_eq!(
            TraceError::PhaseOutOfRange { phase: 9 }.to_string(),
            "phase index 9 out of range"
        );
    }

    #[test]
    fn zero_count_adds_do_not_materialize_frames() {
        let mut r = Recorder::enabled(1, ClockKind::Wall);
        r.add(5, Counter::Timeouts, 0);
        let rep = r.finish().expect("enabled");
        assert!(rep.frames.is_empty());
    }
}
