//! A minimal 3-component vector tuned for particle simulation hot loops.

use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::{Axis, Scalar};

/// A 3-component single-precision vector.
///
/// `Vec3` is `repr(C)` and `Copy`; particle stores keep positions, velocities
/// and orientations as flat `Vec<Vec3>` columns, so layout stability matters
/// for the byte-accounting in `netsim` (a particle's wire size is derived
/// from `size_of::<Vec3>()`).
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    pub x: Scalar,
    pub y: Scalar,
    pub z: Scalar,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    #[inline]
    pub const fn new(x: Scalar, y: Scalar, z: Scalar) -> Self {
        Vec3 { x, y, z }
    }

    /// All components set to `v`.
    #[inline]
    pub const fn splat(v: Scalar) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Component along `axis` — the projection the domain model slices on.
    #[inline]
    pub fn along(&self, axis: Axis) -> Scalar {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
            Axis::Z => self.z,
        }
    }

    /// Mutable component along `axis`.
    #[inline]
    pub fn along_mut(&mut self, axis: Axis) -> &mut Scalar {
        match axis {
            Axis::X => &mut self.x,
            Axis::Y => &mut self.y,
            Axis::Z => &mut self.z,
        }
    }

    /// Replace the component along `axis`, returning the new vector.
    #[inline]
    pub fn with_along(mut self, axis: Axis, v: Scalar) -> Self {
        *self.along_mut(axis) = v;
        self
    }

    #[inline]
    pub fn dot(&self, o: Vec3) -> Scalar {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(&self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn length_squared(&self) -> Scalar {
        self.dot(*self)
    }

    #[inline]
    pub fn length(&self) -> Scalar {
        self.length_squared().sqrt()
    }

    /// Euclidean distance to `o`.
    #[inline]
    pub fn distance(&self, o: Vec3) -> Scalar {
        (*self - o).length()
    }

    #[inline]
    pub fn distance_squared(&self, o: Vec3) -> Scalar {
        (*self - o).length_squared()
    }

    /// Unit vector in the same direction; returns `Vec3::ZERO` for the zero
    /// vector rather than producing NaNs in hot loops.
    #[inline]
    pub fn normalized(&self) -> Vec3 {
        let len = self.length();
        if len > Scalar::EPSILON {
            *self / len
        } else {
            Vec3::ZERO
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component-wise multiply.
    #[inline]
    pub fn mul_elem(&self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Linear interpolation toward `o`.
    #[inline]
    pub fn lerp(&self, o: Vec3, t: Scalar) -> Vec3 {
        *self + (o - *self) * t
    }

    /// Reflect this vector about a unit normal `n`: `v - 2 (v·n) n`.
    ///
    /// Used by the bounce action when a particle hits an external object.
    #[inline]
    pub fn reflect(&self, n: Vec3) -> Vec3 {
        *self - n * (2.0 * self.dot(n))
    }

    /// True when every component is finite (no NaN/Inf escaped an action).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<Scalar> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: Scalar) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for Scalar {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<Scalar> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: Scalar) {
        *self = *self * s;
    }
}

impl Div<Scalar> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: Scalar) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<Scalar> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: Scalar) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = Scalar;
    #[inline]
    fn index(&self, i: usize) -> &Scalar {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl From<[Scalar; 3]> for Vec3 {
    #[inline]
    fn from(a: [Scalar; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [Scalar; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::ONE;
        v -= Vec3::new(0.5, 0.5, 0.5);
        v *= 2.0;
        v /= 3.0;
        assert!(approx_eq(v.x, 1.0, 1e-6));
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn length_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert!(approx_eq(v.normalized().length(), 1.0, 1e-6));
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn reflect_about_ground_plane() {
        let v = Vec3::new(1.0, -2.0, 0.5);
        let r = v.reflect(Vec3::Y);
        assert_eq!(r, Vec3::new(1.0, 2.0, 0.5));
    }

    #[test]
    fn axis_projection() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v.along(Axis::X), 7.0);
        assert_eq!(v.along(Axis::Y), 8.0);
        assert_eq!(v.along(Axis::Z), 9.0);
        assert_eq!(v.with_along(Axis::Y, 0.0), Vec3::new(7.0, 0.0, 9.0));
    }

    #[test]
    fn min_max_elem() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
        assert_eq!(a.mul_elem(b), Vec3::new(2.0, 20.0, 9.0));
    }

    #[test]
    fn index_and_conversions() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[2], 3.0);
        let arr: [f32; 3] = v.into();
        assert_eq!(Vec3::from(arr), v);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn finite_detection() {
        assert!(Vec3::ONE.is_finite());
        assert!(!Vec3::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f32::INFINITY, 0.0).is_finite());
    }
}
