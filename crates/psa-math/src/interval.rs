//! Half-open 1-D intervals `[lo, hi)`.
//!
//! Domain slices in the paper are contiguous ranges along the decomposition
//! axis; representing them as half-open intervals makes "every particle
//! belongs to exactly one domain" hold by construction at the shared
//! boundaries.

use crate::Scalar;

/// A half-open interval `[lo, hi)` on the decomposition axis.
///
/// `lo == hi` is permitted and denotes an empty interval (a calculator whose
/// domain was squeezed to nothing by load balancing still owns a valid,
/// empty slice).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    pub lo: Scalar,
    pub hi: Scalar,
}

impl Interval {
    /// Create `[lo, hi)`. Panics if `lo > hi` or either bound is NaN.
    #[inline]
    pub fn new(lo: Scalar, hi: Scalar) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "interval bounds must not be NaN");
        assert!(lo <= hi, "interval lower bound {lo} exceeds upper bound {hi}");
        Interval { lo, hi }
    }

    /// The "infinite space" interval of the paper's IS configuration.
    ///
    /// We use a large finite sentinel instead of `f32::INFINITY` so that
    /// equal splitting produces finite boundaries; the key property the
    /// paper relies on — all real particles land in the *central* slice(s)
    /// because the outer slices cover astronomically wide, empty ranges —
    /// is preserved.
    pub const INFINITE: Interval = Interval { lo: -1.0e9, hi: 1.0e9 };

    #[inline]
    pub fn width(&self) -> Scalar {
        self.hi - self.lo
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// Half-open membership test.
    #[inline]
    pub fn contains(&self, v: Scalar) -> bool {
        v >= self.lo && v < self.hi
    }

    #[inline]
    pub fn center(&self) -> Scalar {
        0.5 * (self.lo + self.hi)
    }

    /// Clamp a value into the closed interval (used when re-homing particles
    /// that drifted marginally past a boundary through floating-point error).
    #[inline]
    pub fn clamp(&self, v: Scalar) -> Scalar {
        crate::clamp(v, self.lo, self.hi)
    }

    /// Split into `n` equal, contiguous half-open slices covering `self`.
    ///
    /// This is exactly the initial domain construction of the paper's
    /// Figure 1: `[-10, 10)` split 4 ways yields `[-10,-5) [-5,0) [0,5)
    /// [5,10)`. The final slice's upper bound is forced to `self.hi` so the
    /// union is exact despite floating-point division.
    pub fn split_even(&self, n: usize) -> Vec<Interval> {
        assert!(n > 0, "cannot split an interval into zero slices");
        let w = self.width() / n as Scalar;
        (0..n)
            .map(|i| {
                let lo = self.lo + w * i as Scalar;
                let hi = if i + 1 == n { self.hi } else { self.lo + w * (i + 1) as Scalar };
                Interval::new(lo, hi)
            })
            .collect()
    }

    /// True when `self` and `o` share a boundary and are adjacent.
    #[inline]
    pub fn adjacent_to(&self, o: &Interval) -> bool {
        self.hi == o.lo || o.hi == self.lo
    }

    /// Intersection (may be empty).
    pub fn intersect(&self, o: &Interval) -> Interval {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        if lo <= hi {
            Interval::new(lo, hi)
        } else {
            Interval::new(lo, lo)
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_split() {
        // Paper Figure 1: [-10, 10) split into four domains P1..P4.
        let slices = Interval::new(-10.0, 10.0).split_even(4);
        assert_eq!(slices.len(), 4);
        assert_eq!(slices[0], Interval::new(-10.0, -5.0));
        assert_eq!(slices[1], Interval::new(-5.0, 0.0));
        assert_eq!(slices[2], Interval::new(0.0, 5.0));
        assert_eq!(slices[3], Interval::new(5.0, 10.0));
    }

    #[test]
    fn split_covers_exactly() {
        let iv = Interval::new(-3.0, 7.0);
        for n in 1..20 {
            let s = iv.split_even(n);
            assert_eq!(s[0].lo, iv.lo);
            assert_eq!(s[n - 1].hi, iv.hi);
            for w in s.windows(2) {
                assert_eq!(w[0].hi, w[1].lo, "slices must be contiguous");
            }
        }
    }

    #[test]
    fn half_open_membership() {
        let iv = Interval::new(0.0, 1.0);
        assert!(iv.contains(0.0));
        assert!(!iv.contains(1.0));
        assert!(iv.contains(0.999_999));
        assert!(!iv.contains(-0.000_001));
    }

    #[test]
    fn empty_interval() {
        let iv = Interval::new(2.0, 2.0);
        assert!(iv.is_empty());
        assert!(!iv.contains(2.0));
        assert_eq!(iv.width(), 0.0);
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        let _ = Interval::new(1.0, 0.0);
    }

    #[test]
    fn adjacency() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1.0, 2.0);
        let c = Interval::new(3.0, 4.0);
        assert!(a.adjacent_to(&b));
        assert!(b.adjacent_to(&a));
        assert!(!a.adjacent_to(&c));
    }

    #[test]
    fn intersection() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.intersect(&b), Interval::new(1.0, 2.0));
        let c = Interval::new(5.0, 6.0);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn infinite_space_is_wide_and_finite() {
        let inf = Interval::INFINITE;
        assert!(inf.width().is_finite());
        assert!(inf.contains(0.0));
        assert!(inf.contains(-1.0e6));
        // Splitting the IS interval into an odd number of slices leaves the
        // scene-scale region entirely inside the central slice — the effect
        // the paper observes in Table 1's IS-SLB column.
        let s = inf.split_even(5);
        let central = &s[2];
        assert!(central.contains(-100.0) && central.contains(100.0));
        assert!(!s[1].contains(0.0) && !s[3].contains(0.0));
    }
}
