//! Fixed-bin histograms for load-distribution reporting.

/// A fixed-range, fixed-bin-count histogram of `f64` observations.
///
/// Used by the benches and the `animate` CLI to summarize per-calculator
/// load distributions and per-frame times; under/overflow observations
/// clamp into the edge bins so counts are never lost.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins >= 1` equal bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1 && hi > lo, "invalid histogram range/bins");
        Histogram { lo, hi, bins: vec![0; bins], count: 0 }
    }

    /// Record one observation (clamped into the edge bins).
    pub fn push(&mut self, x: f64) {
        let k = self.bins.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let i = ((t * k as f64).floor() as isize).clamp(0, k as isize - 1) as usize;
        self.bins[i] += 1;
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.bins.len() as f64
    }

    /// The p-quantile (0..=1) estimated from bin midpoints.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p));
        if self.count == 0 {
            return self.lo;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.bins.iter().enumerate() {
            seen += b;
            if seen >= target {
                let w = (self.hi - self.lo) / self.bins.len() as f64;
                return self.bin_lo(i) + 0.5 * w;
            }
        }
        self.hi
    }

    /// A terminal sparkline of the distribution (one char per bin).
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        self.bins
            .iter()
            .map(|&b| {
                let level = (b * (GLYPHS.len() as u64 - 1) + max / 2) / max;
                GLYPHS[level as usize]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_routes_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(0.5);
        h.push(9.9);
        h.push(-3.0); // clamps low
        h.push(42.0); // clamps high
        assert_eq!(h.bins(), &[2, 0, 0, 0, 2]);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn quantiles_bracket_the_mass() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.push(i as f64);
        }
        let med = h.quantile(0.5);
        assert!((45.0..55.0).contains(&med), "median {med}");
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.sparkline().chars().count(), 4);
    }

    #[test]
    fn sparkline_peaks_where_mass_is() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for _ in 0..10 {
            h.push(2.5); // third bin
        }
        h.push(0.5);
        let s: Vec<char> = h.sparkline().chars().collect();
        assert_eq!(s[2], '█');
        assert!(s[1] == '▁');
    }
}
