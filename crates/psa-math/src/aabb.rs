//! Axis-aligned bounding boxes for simulation spaces and domain slices.

use crate::{Axis, Interval, Scalar, Vec3};

/// An axis-aligned box, half-open along each axis: `[min, max)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// Create a box from corners; panics if any `min` component exceeds the
    /// corresponding `max` component.
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb min {min:?} must be <= max {max:?} componentwise"
        );
        Aabb { min, max }
    }

    /// A cube centered at the origin with the given half-extent.
    #[inline]
    pub fn centered_cube(half: Scalar) -> Self {
        Aabb::new(Vec3::splat(-half), Vec3::splat(half))
    }

    /// The degenerate empty box (useful as a fold identity for unions).
    pub fn empty() -> Self {
        Aabb { min: Vec3::splat(Scalar::MAX), max: Vec3::splat(Scalar::MIN) }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x >= self.max.x || self.min.y >= self.max.y || self.min.z >= self.max.z
    }

    #[inline]
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    #[inline]
    pub fn volume(&self) -> Scalar {
        if self.is_empty() {
            0.0
        } else {
            let s = self.size();
            s.x * s.y * s.z
        }
    }

    /// Half-open containment test.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x < self.max.x
            && p.y >= self.min.y
            && p.y < self.max.y
            && p.z >= self.min.z
            && p.z < self.max.z
    }

    /// The extent of the box along one axis, as an [`Interval`].
    #[inline]
    pub fn interval(&self, axis: Axis) -> Interval {
        Interval::new(self.min.along(axis), self.max.along(axis))
    }

    /// Replace the extent along `axis` with `iv`, keeping the other axes.
    ///
    /// This is how a calculator's 3-D domain box is derived from its 1-D
    /// slice of the decomposition axis.
    pub fn with_interval(&self, axis: Axis, iv: Interval) -> Aabb {
        Aabb::new(self.min.with_along(axis, iv.lo), self.max.with_along(axis, iv.hi))
    }

    /// Smallest box containing both.
    pub fn union(&self, o: &Aabb) -> Aabb {
        if self.is_empty() {
            return *o;
        }
        if o.is_empty() {
            return *self;
        }
        Aabb::new(self.min.min(o.min), self.max.max(o.max))
    }

    /// Grow to include `p`.
    pub fn grow_to(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Clamp a point into the closed box.
    pub fn clamp(&self, p: Vec3) -> Vec3 {
        p.max(self.min).min(self.max)
    }
}

impl std::fmt::Display for Aabb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[({}, {}, {}) .. ({}, {}, {}))",
            self.min.x, self.min.y, self.min.z, self.max.x, self.max.y, self.max.z
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_half_open() {
        let b = Aabb::centered_cube(1.0);
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::splat(-1.0)));
        assert!(!b.contains(Vec3::splat(1.0)));
    }

    #[test]
    fn size_center_volume() {
        let b = Aabb::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(2.0, 4.0, 8.0));
        assert_eq!(b.size(), Vec3::new(2.0, 4.0, 8.0));
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 4.0));
        assert_eq!(b.volume(), 64.0);
    }

    #[test]
    fn interval_roundtrip() {
        let b = Aabb::centered_cube(5.0);
        let iv = b.interval(Axis::X);
        assert_eq!(iv, Interval::new(-5.0, 5.0));
        let narrowed = b.with_interval(Axis::X, Interval::new(-1.0, 2.0));
        assert_eq!(narrowed.min.x, -1.0);
        assert_eq!(narrowed.max.x, 2.0);
        assert_eq!(narrowed.min.y, -5.0);
        assert_eq!(narrowed.max.y, 5.0);
    }

    #[test]
    fn union_and_empty() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        let b = Aabb::centered_cube(1.0);
        assert_eq!(e.union(&b), b);
        assert_eq!(b.union(&e), b);
        let c = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = b.union(&c);
        assert!(u.contains(Vec3::ZERO));
        assert!(u.contains(Vec3::splat(2.5)));
    }

    #[test]
    fn grow_and_clamp() {
        let mut b = Aabb::empty();
        b.grow_to(Vec3::ZERO);
        b.grow_to(Vec3::splat(2.0));
        assert!(b.contains(Vec3::ONE));
        assert_eq!(b.clamp(Vec3::splat(10.0)), Vec3::splat(2.0));
        assert_eq!(b.clamp(Vec3::splat(-10.0)), Vec3::ZERO);
    }

    #[test]
    #[should_panic]
    fn inverted_corners_panic() {
        let _ = Aabb::new(Vec3::ONE, Vec3::ZERO);
    }
}
