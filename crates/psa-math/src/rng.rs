//! Deterministic, splittable random number streams.
//!
//! The whole reproduction must regenerate the paper's tables bit-for-bit
//! from a single seed, so every stochastic choice flows through [`Rng64`]:
//! a SplitMix64 generator with a cheap `split` operation that derives
//! statistically independent child streams for (particle system, frame,
//! role) tuples. SplitMix64 passes BigCrush for this kind of workload and
//! costs a handful of ALU ops per draw — appropriate for generating
//! 3.2 million particle states per frame.

use crate::{Scalar, Vec3};

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A SplitMix64 random number generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seed a new stream. Any seed (including 0) is valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The raw SplitMix64 state. Feeding it back to [`Rng64::new`] rebuilds
    /// a stream that continues exactly where this one stands — `new` stores
    /// the seed verbatim, so `state`/`new` are exact inverses. Checkpoint
    /// codecs use this to freeze mid-run streams without replaying draws.
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Derive an independent child stream keyed by `salt`.
    ///
    /// Child streams are used so that, e.g., particle creation for system 3
    /// on frame 17 draws the same values regardless of how many calculators
    /// participate — the property that makes sequential and parallel runs
    /// comparable.
    #[inline]
    pub fn split(&self, salt: u64) -> Rng64 {
        // Mix the salt through one SplitMix64 round so nearby salts give
        // distant states.
        let mut z = self.state ^ salt.wrapping_mul(GOLDEN_GAMMA);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng64 { state: z ^ (z >> 31) }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 24 bits of mantissa (plenty for f32 state).
    #[inline]
    pub fn unit(&mut self) -> Scalar {
        (self.next_u64() >> 40) as Scalar * (1.0 / (1u64 << 24) as Scalar)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: Scalar, hi: Scalar) -> Scalar {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift (unbiased
    /// enough for simulation workloads; exact rejection is unnecessary).
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: Scalar) -> bool {
        self.unit() < p
    }

    /// Standard normal via Box–Muller (both values consumed; simplicity over
    /// caching — this is not the hot path, creation is amortized).
    pub fn gaussian(&mut self) -> Scalar {
        let u1 = self.unit().max(1.0e-7);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: Scalar, sigma: Scalar) -> Scalar {
        mean + sigma * self.gaussian()
    }

    /// Uniform point inside the unit sphere (rejection sampling; ~1.9 tries
    /// expected).
    pub fn in_unit_sphere(&mut self) -> Vec3 {
        loop {
            let v = Vec3::new(self.range(-1.0, 1.0), self.range(-1.0, 1.0), self.range(-1.0, 1.0));
            if v.length_squared() < 1.0 {
                return v;
            }
        }
    }

    /// Uniform point on the unit sphere surface.
    pub fn on_unit_sphere(&mut self) -> Vec3 {
        // Marsaglia (1972).
        loop {
            let a = self.range(-1.0, 1.0);
            let b = self.range(-1.0, 1.0);
            let s = a * a + b * b;
            if s < 1.0 {
                let r = 2.0 * (1.0 - s).sqrt();
                return Vec3::new(a * r, b * r, 1.0 - 2.0 * s);
            }
        }
    }

    /// Uniform point inside an axis-aligned box given by corners.
    pub fn in_box(&mut self, min: Vec3, max: Vec3) -> Vec3 {
        Vec3::new(self.range(min.x, max.x), self.range(min.y, max.y), self.range(min.z, max.z))
    }

    /// Uniform point on a disc of radius `r` in the plane orthogonal to a
    /// unit `normal`, centered at origin.
    pub fn on_disc(&mut self, r: Scalar, normal: Vec3) -> Vec3 {
        // Build an orthonormal basis (u, v, normal).
        let n = normal.normalized();
        let helper = if n.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
        let u = n.cross(helper).normalized();
        let v = n.cross(u);
        let theta = self.range(0.0, std::f32::consts::TAU);
        let rad = r * self.unit().sqrt();
        u * (rad * theta.cos()) + v * (rad * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequences() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrips_through_new() {
        let mut a = Rng64::new(0xDEAD_BEEF);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Rng64::new(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_deterministic_and_independent() {
        let root = Rng64::new(7);
        let mut c1 = root.split(1);
        let mut c1b = root.split(1);
        let mut c2 = root.split(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn unit_in_range_and_uniform_ish() {
        let mut r = Rng64::new(9);
        let n = 10_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn below_covers_all_buckets() {
        let mut r = Rng64::new(3);
        let mut hits = [0usize; 8];
        for _ in 0..8000 {
            hits[r.below(8)] += 1;
        }
        for (i, h) in hits.iter().enumerate() {
            assert!(*h > 700, "bucket {i} only hit {h} times");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng64::new(11);
        let n = 20_000;
        let (mut s, mut s2) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let g = r.gaussian() as f64;
            s += g;
            s2 += g * g;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "gaussian var {var}");
    }

    #[test]
    fn sphere_samples_in_bounds() {
        let mut r = Rng64::new(5);
        for _ in 0..1000 {
            assert!(r.in_unit_sphere().length() < 1.0);
            let s = r.on_unit_sphere().length();
            assert!((s - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn disc_samples_orthogonal_to_normal() {
        let mut r = Rng64::new(6);
        let n = Vec3::new(0.0, 1.0, 0.0);
        for _ in 0..500 {
            let p = r.on_disc(2.0, n);
            assert!(p.y.abs() < 1e-5);
            assert!(p.length() <= 2.0 + 1e-4);
        }
    }

    #[test]
    fn in_box_respects_bounds() {
        let mut r = Rng64::new(8);
        let (min, max) = (Vec3::new(-1.0, 2.0, 3.0), Vec3::new(1.0, 4.0, 5.0));
        for _ in 0..1000 {
            let p = r.in_box(min, max);
            assert!(p.x >= -1.0 && p.x < 1.0);
            assert!(p.y >= 2.0 && p.y < 4.0);
            assert!(p.z >= 3.0 && p.z < 5.0);
        }
    }
}
