//! Foundation math for the particle-cluster-anim workspace.
//!
//! This crate deliberately has no heavyweight dependencies: it provides the
//! small, hot types that every other crate builds on.
//!
//! * [`Vec3`] — a 3-component `f32` vector with the usual operator overloads.
//! * [`Aabb`] — axis-aligned bounding boxes used for simulation spaces and
//!   domain slices.
//! * [`Axis`] — the decomposition axis of the paper's domain model.
//! * [`Interval`] — half-open 1-D intervals, the building block of domain
//!   slices (the paper splits space along one axis only).
//! * [`rng`] — deterministic, splittable random number streams (SplitMix64
//!   core), so the whole simulation is reproducible from a single seed.
//! * [`stats`] — light running-statistics helpers used by the benchmark
//!   harness and the load balancer.
//! * [`histogram`] — fixed-bin histograms for load-distribution reports.

pub mod aabb;
pub mod axis;
pub mod histogram;
pub mod interval;
pub mod rng;
pub mod stats;
pub mod vec3;

pub use aabb::Aabb;
pub use axis::Axis;
pub use histogram::Histogram;
pub use interval::Interval;
pub use rng::Rng64;
pub use vec3::Vec3;

/// Convenience alias used throughout the workspace for scalar simulation
/// quantities (positions, velocities, times measured in seconds).
pub type Scalar = f32;

/// Clamp a scalar into `[lo, hi]`.
///
/// Stable, branch-predictable helper used in hot rasterization loops.
#[inline]
pub fn clamp(x: Scalar, lo: Scalar, hi: Scalar) -> Scalar {
    if x < lo {
        lo
    } else if x > hi {
        hi
    } else {
        x
    }
}

/// Linear interpolation between `a` and `b` with `t` in `[0, 1]`.
#[inline]
pub fn lerp(a: Scalar, b: Scalar, t: Scalar) -> Scalar {
    a + (b - a) * t
}

/// Approximate float comparison used by tests across the workspace.
#[inline]
pub fn approx_eq(a: Scalar, b: Scalar, eps: Scalar) -> bool {
    (a - b).abs() <= eps * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_basic() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 6.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 6.0, 1.0), 6.0);
        assert_eq!(lerp(2.0, 6.0, 0.5), 4.0);
    }

    #[test]
    fn approx_eq_scales_with_magnitude() {
        assert!(approx_eq(1_000_000.0, 1_000_000.5, 1e-5));
        assert!(!approx_eq(1.0, 1.5, 1e-5));
    }
}
