//! The decomposition axis of the paper's domain model.
//!
//! The IPDPS'05 model slices the simulated space along exactly one axis of
//! the plane or space (paper §3.1.4); all domain bookkeeping therefore works
//! on scalars projected onto that axis.

/// One of the three coordinate axes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The horizontal axis used in the paper's Figure 1 example.
    #[default]
    X,
    Y,
    Z,
}

impl Axis {
    /// All axes, in index order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Index of the axis in `[x, y, z]` component order.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// The other two axes, in a fixed right-handed order.
    #[inline]
    pub fn others(self) -> [Axis; 2] {
        match self {
            Axis::X => [Axis::Y, Axis::Z],
            Axis::Y => [Axis::Z, Axis::X],
            Axis::Z => [Axis::X, Axis::Y],
        }
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
            Axis::Z => write!(f, "z"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_component_order() {
        assert_eq!(Axis::X.index(), 0);
        assert_eq!(Axis::Y.index(), 1);
        assert_eq!(Axis::Z.index(), 2);
    }

    #[test]
    fn others_cover_remaining_axes() {
        for axis in Axis::ALL {
            let [a, b] = axis.others();
            assert_ne!(a, axis);
            assert_ne!(b, axis);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Axis::X.to_string(), "x");
        assert_eq!(Axis::Z.to_string(), "z");
    }
}
