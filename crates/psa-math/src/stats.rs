//! Light running statistics used by the load balancer and bench harness.

/// Welford running mean/variance accumulator.
///
/// The benchmark harness uses this to summarize per-frame times; the load
/// balancer uses it to smooth noisy per-frame load reports in the threaded
/// executor (virtual time is noise-free).
#[derive(Clone, Debug, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    pub fn new() -> Self {
        Running { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance; zero until two observations exist.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator (parallel reduction of per-thread stats).
    pub fn merge(&mut self, o: &Running) {
        if o.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = o.clone();
            return;
        }
        let n = self.n + o.n;
        let d = o.mean - self.mean;
        let mean = self.mean + d * o.n as f64 / n as f64;
        let m2 = self.m2 + o.m2 + d * d * (self.n as f64 * o.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }
}

/// Coefficient-of-imbalance for a load vector: `max/mean - 1`.
///
/// Zero means perfectly balanced; the DLB ablation benches report this to
/// show convergence of the neighbor-pair balancer.
pub fn imbalance(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let max = loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    max / mean - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_moments() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        // population variance is 4 => sample variance is 32/7
        assert!((r.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
    }

    #[test]
    fn empty_running_is_safe() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Running::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn imbalance_metric() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[3.0, 3.0, 3.0]), 0.0);
        let i = imbalance(&[1.0, 1.0, 4.0]);
        assert!((i - 1.0).abs() < 1e-12); // max 4, mean 2 => 1.0
    }
}
