//! Machine-readable event-driven scaling export (`BENCH_5.json`).
//!
//! The paper stops at 8 nodes; BENCH_5 is the extrapolation its model
//! invites. The sweep drives `psa_desim::EventSim` — the discrete-event
//! executor that is fingerprint-identical to `VirtualSim` at paper scale —
//! across rank counts far beyond the queue-stepped core's reach:
//!
//! * **Speed-up curves** — virtual makespan and speed-up versus the
//!   sequential baseline at ranks ∈ {8, 32, 128, 512, 1024}, for snow,
//!   fountain, and the deliberately imbalanced vortex workload, under both
//!   SLB (static even split) and DLB (manager-driven rebalancing).
//!
//! The DLB cells are pinned to [`BalancerConfig::paper`] — the fixed
//! `min_transfer = 32`, no-short-circuit §3.2.5 walk — on purpose: BENCH_5
//! is the experiment that *measured* the dead zone past 32 ranks (zero
//! orders, ~2× balance-phase overhead, DLB/SLB inversion), and the sweep
//! keeps reproducing that defect so `BENCH_6.json` can show the balancer
//! suite fixing it against an unchanged baseline.
//! * **Balancer behaviour** — rounds in which the balancer actually moved
//!   particles, total particles moved, and the mean imbalance the run
//!   settled at; vortex is built so these columns separate SLB from DLB.
//! * **Topology** — flat crossbar versus fat-tree makespans at the largest
//!   swept rank count, holding everything else fixed.
//!
//! Every cell also records the *wall* seconds the event loop took — the
//! executor's own scaling claim (1,024 calculators × 100+ systems in
//! seconds) is part of the export. Sweeps use sparse exchange: dense
//! Figure-2 exchange is `ranks²` messages per system per frame and is
//! exactly what a 1,000-rank run cannot afford; sparse changes virtual
//! timing but never simulated state (the parity suite pins this).
//!
//! Like `BENCH_3`/`BENCH_4`, the JSON is hand-rolled and
//! [`Bench5Export::validate`] rejects NaN/empty metrics before anything is
//! written.

use std::time::Instant;

use cluster_sim::{e800, Compiler, Topology};
use psa_desim::EventSim;
use psa_runtime::{
    run_sequential, BalanceMode, BalancerConfig, ExchangeMode, RunConfig, RunReport, Scene,
};
use psa_workloads::{
    fountain_scene, myrinet_gcc, paper_run_config, snow_scene, vortex_scene, WorkloadSize,
};

/// Rank counts of the full sweep (the CI smoke tier trims this to 8/64).
pub const BENCH5_RANKS: &[usize] = &[8, 32, 128, 512, 1024];

/// Fat-tree radix used for the topology comparison points.
pub const BENCH5_FAT_TREE_RADIX: usize = 4;

/// Which workload a BENCH_5 experiment runs. Snow and fountain are the
/// paper's; vortex is the inhomogeneous workload built to make the DLB
/// columns move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bench5Workload {
    Snow,
    Fountain,
    Vortex,
}

impl Bench5Workload {
    pub const ALL: &'static [Bench5Workload] =
        &[Bench5Workload::Snow, Bench5Workload::Fountain, Bench5Workload::Vortex];

    pub fn name(&self) -> &'static str {
        match self {
            Bench5Workload::Snow => "snow",
            Bench5Workload::Fountain => "fountain",
            Bench5Workload::Vortex => "vortex",
        }
    }

    pub fn scene(&self, size: WorkloadSize) -> Scene {
        match self {
            Bench5Workload::Snow => snow_scene(size),
            Bench5Workload::Fountain => fountain_scene(size),
            Bench5Workload::Vortex => vortex_scene(size),
        }
    }

    pub fn dt(&self) -> f32 {
        match self {
            Bench5Workload::Snow => psa_workloads::snow::SNOW_DT,
            Bench5Workload::Fountain => psa_workloads::fountain::FOUNTAIN_DT,
            Bench5Workload::Vortex => psa_workloads::vortex::VORTEX_DT,
        }
    }
}

/// One (ranks, balance-mode) point of an experiment's curve.
#[derive(Clone, Debug)]
pub struct Bench5Cell {
    pub ranks: usize,
    /// `"SLB"` or `"DLB"` (paper column names).
    pub balance: &'static str,
    /// Virtual makespan of the run.
    pub makespan: f64,
    /// Steady-state virtual time (speed-ups are computed on this).
    pub steady_time: f64,
    /// Speed-up versus the sequential baseline's steady time.
    pub speedup: f64,
    /// Frames in which the balancer moved at least one particle.
    pub balance_rounds: u64,
    /// Particles the balancer moved over the whole run.
    pub balanced_particles: u64,
    /// Mean `max/mean − 1` imbalance across frames.
    pub mean_imbalance: f64,
    /// Fabric messages the run exchanged.
    pub messages: u64,
    /// Events the discrete-event loop processed.
    pub events: u64,
    /// Host seconds the event loop took (the scale claim, measured).
    pub wall_seconds: f64,
}

/// One workload's scaling curve.
#[derive(Clone, Debug)]
pub struct Bench5Experiment {
    pub workload: &'static str,
    /// Sequential baseline steady time on the paper's Myrinet/GCC machine.
    pub baseline_time: f64,
    pub cells: Vec<Bench5Cell>,
}

/// Flat-versus-fat-tree makespan at one rank count (DLB, same seed).
#[derive(Clone, Debug)]
pub struct TopologyPoint {
    pub workload: &'static str,
    pub ranks: usize,
    pub radix: usize,
    pub flat_makespan: f64,
    pub fat_tree_makespan: f64,
}

/// Everything `BENCH_5.json` carries.
pub struct Bench5Export {
    pub frames: u64,
    pub systems: usize,
    pub particles_per_system: usize,
    pub scale: f64,
    pub ranks: Vec<usize>,
    pub experiments: Vec<Bench5Experiment>,
    pub topology: Vec<TopologyPoint>,
}

fn sweep_config(wl: Bench5Workload, frames: u64, balance: BalanceMode) -> RunConfig {
    let mut cfg = paper_run_config(frames, wl.dt());
    cfg.balance = balance;
    cfg.exchange = ExchangeMode::Sparse;
    cfg
}

fn run_cell(
    wl: Bench5Workload,
    size: WorkloadSize,
    frames: u64,
    ranks: usize,
    balance: BalanceMode,
    topology: Topology,
) -> (RunReport, u64, f64) {
    let mut cluster = myrinet_gcc(ranks, 1);
    cluster.net = cluster.net.clone().with_topology(topology);
    let cfg = sweep_config(wl, frames, balance);
    let mut sim = EventSim::new(wl.scene(size), cfg, cluster, size.cost_model());
    let t0 = Instant::now();
    let report = sim.run();
    let wall = t0.elapsed().as_secs_f64();
    (report, sim.sim_stats().events, wall)
}

/// Run the sweep and assemble the export. `ranks` is the list of rank
/// counts to cover (the smoke tier passes a short one).
pub fn collect5(
    ranks: &[usize],
    frames: u64,
    systems: usize,
    particles_per_system: usize,
    scale: f64,
) -> Bench5Export {
    let size = WorkloadSize { systems, particles_per_system, scale };
    let seq_speed = e800().speed(Compiler::Gcc);
    let mut experiments = Vec::new();
    let mut topology = Vec::new();
    let top_ranks = ranks.iter().copied().max().unwrap_or(0);
    for &wl in Bench5Workload::ALL {
        let scene = wl.scene(size);
        let seq_cfg = sweep_config(wl, frames, BalanceMode::Static);
        let baseline =
            run_sequential(&scene, &seq_cfg, &size.cost_model(), seq_speed).steady_time();
        let mut cells = Vec::new();
        for &r in ranks {
            for (label, balance) in [
                ("SLB", BalanceMode::Static),
                ("DLB", BalanceMode::Dynamic(BalancerConfig::paper())),
            ] {
                let (report, events, wall) = run_cell(wl, size, frames, r, balance, Topology::Flat);
                cells.push(Bench5Cell {
                    ranks: r,
                    balance: label,
                    makespan: report.total_time,
                    steady_time: report.steady_time(),
                    speedup: report.speedup_vs(baseline),
                    balance_rounds: report.frames.iter().filter(|f| f.balanced > 0).count() as u64,
                    balanced_particles: report.frames.iter().map(|f| f.balanced).sum(),
                    mean_imbalance: report.mean_imbalance(),
                    messages: report.traffic.messages,
                    events,
                    wall_seconds: wall,
                });
            }
        }
        experiments.push(Bench5Experiment { workload: wl.name(), baseline_time: baseline, cells });
        if top_ranks > 0 {
            let paper = || BalanceMode::Dynamic(BalancerConfig::paper());
            let (flat, _, _) = run_cell(wl, size, frames, top_ranks, paper(), Topology::Flat);
            let (fat, _, _) = run_cell(
                wl,
                size,
                frames,
                top_ranks,
                paper(),
                Topology::FatTree { radix: BENCH5_FAT_TREE_RADIX },
            );
            topology.push(TopologyPoint {
                workload: wl.name(),
                ranks: top_ranks,
                radix: BENCH5_FAT_TREE_RADIX,
                flat_makespan: flat.total_time,
                fat_tree_makespan: fat.total_time,
            });
        }
    }
    Bench5Export {
        frames,
        systems,
        particles_per_system,
        scale,
        ranks: ranks.to_vec(),
        experiments,
        topology,
    }
}

impl Bench5Export {
    /// Reject empty sweeps and non-finite metrics; require that the
    /// balancer demonstrably ran somewhere (a sweep whose DLB columns are
    /// all zero measured nothing worth publishing).
    pub fn validate(&self) -> Result<(), String> {
        if self.ranks.is_empty() {
            return Err("no rank counts swept".into());
        }
        if self.experiments.len() != Bench5Workload::ALL.len() {
            return Err(format!("expected 3 experiments, got {}", self.experiments.len()));
        }
        let mut dlb_rounds = 0u64;
        for e in &self.experiments {
            let tag = format!("experiment {}", e.workload);
            if !e.baseline_time.is_finite() || e.baseline_time <= 0.0 {
                return Err(format!("{tag}: baseline_time is {}", e.baseline_time));
            }
            if e.cells.len() != self.ranks.len() * 2 {
                return Err(format!(
                    "{tag}: {} cells for {} rank counts",
                    e.cells.len(),
                    self.ranks.len()
                ));
            }
            for c in &e.cells {
                let cell = format!("{tag} {}r {}", c.ranks, c.balance);
                for (name, v) in [
                    ("makespan", c.makespan),
                    ("steady_time", c.steady_time),
                    ("speedup", c.speedup),
                    ("mean_imbalance", c.mean_imbalance),
                    ("wall_seconds", c.wall_seconds),
                ] {
                    if !v.is_finite() {
                        return Err(format!("{cell}: {name} is {v}"));
                    }
                }
                if c.makespan <= 0.0 || c.speedup <= 0.0 {
                    return Err(format!(
                        "{cell}: degenerate run (makespan {}, speedup {})",
                        c.makespan, c.speedup
                    ));
                }
                if c.events == 0 || c.messages == 0 {
                    return Err(format!("{cell}: the event loop did not run"));
                }
                if c.balance == "DLB" {
                    dlb_rounds += c.balance_rounds;
                }
            }
        }
        if dlb_rounds == 0 {
            return Err("no DLB cell recorded a single balancer round".into());
        }
        if self.topology.is_empty() {
            return Err("no topology comparison points".into());
        }
        for t in &self.topology {
            if !t.flat_makespan.is_finite()
                || !t.fat_tree_makespan.is_finite()
                || t.flat_makespan <= 0.0
                || t.fat_tree_makespan <= 0.0
            {
                return Err(format!(
                    "topology {}@{}r: makespans {} / {}",
                    t.workload, t.ranks, t.flat_makespan, t.fat_tree_makespan
                ));
            }
        }
        Ok(())
    }

    /// Serialize to the `BENCH_5.json` schema.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": 5,\n");
        s.push_str(&format!(
            "  \"workload\": {{\"systems\": {}, \"particles_per_system\": {}, \"scale\": {}, \"frames\": {}}},\n",
            self.systems,
            self.particles_per_system,
            json_f64(self.scale),
            self.frames
        ));
        s.push_str("  \"ranks\": [");
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&r.to_string());
        }
        s.push_str("],\n");
        s.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"workload\": \"{}\",\n", e.workload));
            s.push_str(&format!("      \"baseline_time\": {},\n", json_f64(e.baseline_time)));
            s.push_str("      \"cells\": [\n");
            for (j, c) in e.cells.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"ranks\": {}, \"balance\": \"{}\", \"makespan\": {}, \"steady_time\": {}, \"speedup\": {}, \"balance_rounds\": {}, \"balanced_particles\": {}, \"mean_imbalance\": {}, \"messages\": {}, \"events\": {}, \"wall_seconds\": {}}}{}\n",
                    c.ranks,
                    c.balance,
                    json_f64(c.makespan),
                    json_f64(c.steady_time),
                    json_f64(c.speedup),
                    c.balance_rounds,
                    c.balanced_particles,
                    json_f64(c.mean_imbalance),
                    c.messages,
                    c.events,
                    json_f64(c.wall_seconds),
                    if j + 1 < e.cells.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.experiments.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"topology\": [\n");
        for (i, t) in self.topology.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"workload\": \"{}\", \"ranks\": {}, \"radix\": {}, \"flat_makespan\": {}, \"fat_tree_makespan\": {}}}{}\n",
                t.workload,
                t.ranks,
                t.radix,
                json_f64(t.flat_makespan),
                json_f64(t.fat_tree_makespan),
                if i + 1 < self.topology.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// JSON-safe float (validation upstream keeps non-finite values out of
/// written files).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> Bench5Export {
        collect5(&[4, 8], 6, 4, 150, 50.0)
    }

    #[test]
    fn collect_produces_valid_export() {
        let e = smoke();
        e.validate().expect("smoke export must validate");
        assert_eq!(e.experiments.len(), 3, "snow + fountain + vortex");
        for exp in &e.experiments {
            assert_eq!(exp.cells.len(), 4, "{}: 2 ranks x 2 balance modes", exp.workload);
        }
        assert_eq!(e.topology.len(), 3, "one topology point per workload");
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let j = smoke().to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in [
            "\"bench\": 5",
            "\"experiments\"",
            "\"cells\"",
            "\"topology\"",
            "\"vortex\"",
            "\"balance\": \"DLB\"",
            "\"wall_seconds\"",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    #[test]
    fn validate_rejects_regressions() {
        let mut e = smoke();
        e.experiments[0].cells[0].makespan = f64::NAN;
        assert!(e.validate().is_err(), "NaN must fail");
        let mut e2 = smoke();
        e2.experiments.pop();
        assert!(e2.validate().is_err(), "missing experiment must fail");
        let mut e3 = smoke();
        for exp in &mut e3.experiments {
            for c in &mut exp.cells {
                c.balance_rounds = 0;
            }
        }
        assert!(e3.validate().is_err(), "a sweep where DLB never balances must fail");
        let mut e4 = smoke();
        e4.topology.clear();
        assert!(e4.validate().is_err(), "missing topology section must fail");
    }
}
