//! Machine-readable recovery-cost export (`BENCH_8.json`).
//!
//! The checkpoint/restore machinery (`psa_runtime::checkpoint`) claims
//! that recovering a crashed calculator from the last periodic snapshot
//! is strictly cheaper than the old restart-from-frame-0 behaviour. This
//! export measures that claim instead of asserting it: for every
//! (calculators, snapshot interval, crash frame) cell it runs the snow
//! workload twice —
//!
//! * **bare** — no faults, no checkpointing: the uninterrupted reference
//!   whose per-frame virtual times price what a restart would redo.
//!   `restart_cost` is the sum of frame times `0..crash_frame`: the
//!   virtual seconds a restart-from-zero throws away and pays again;
//! * **recovered** — the same seed with calculator 1 fail-stopping at
//!   `crash_frame` under [`CheckpointConfig::recovering`]. The engine
//!   rolls back to the last snapshot and replays; `recovery_cost` is the
//!   [`RecoveryEvent`]'s `replay_virtual_secs` — the only work redone.
//!
//! Cells whose crash lands *before* the first snapshot (`crash_frame <
//! interval`) have nothing to restore and degrade exactly as the
//! pre-recovery runtime did; they are kept in the export (flagged
//! `recovered: false`) because they price the boundary the interval knob
//! buys. For every other cell [`Bench8Export::validate`] enforces the
//! headline gate: the recovered run fingerprints byte-identical to the
//! bare one, loses nothing, and `recovery_cost < restart_cost` strictly.
//!
//! [`CheckpointConfig::recovering`]: psa_runtime::CheckpointConfig::recovering
//! [`RecoveryEvent`]: psa_runtime::RecoveryEvent

use std::time::Instant;

use netsim::FaultPlan;
use psa_runtime::{CheckpointConfig, RunConfig, RunReport, VirtualSim};
use psa_workloads::{myrinet_gcc, snow_scene, WorkloadSize};

/// Calculator counts of the full sweep (the CI smoke tier trims this).
pub const BENCH8_CALCULATORS: &[usize] = &[4, 8];

/// Snapshot intervals (frames between engine checkpoints) swept per cell.
pub const BENCH8_INTERVALS: &[u64] = &[2, 3, 4];

/// Crash frames swept, chosen against the default 12-frame run so they
/// land before the first snapshot (2 < interval 3 and 4), right on a
/// cadence boundary (4, 8), and deep into the run (11).
pub const BENCH8_CRASH_FRAMES: &[u64] = &[2, 4, 5, 8, 11];

/// The rank the fault plan kills (always a calculator; rank 0 hosts the
/// first calculator too, but killing rank 1 keeps the victim unambiguous).
pub const BENCH8_VICTIM: usize = 1;

/// One (calculators, interval, crash_frame) recovery measurement.
#[derive(Clone, Debug)]
pub struct Bench8Cell {
    /// Calculator processes in the cluster.
    pub calculators: usize,
    /// Snapshot cadence in frames.
    pub interval: u64,
    /// Frame at which calculator [`BENCH8_VICTIM`] fail-stops.
    pub crash_frame: u64,
    /// Did the engine recover (a snapshot existed when the crash tripped)?
    pub recovered: bool,
    /// Frame of the restoring snapshot (0 when not recovered).
    pub snapshot_frame: u64,
    /// Frames deterministically replayed to catch back up.
    pub frames_replayed: u64,
    /// Particles the snapshot restored onto the victim.
    pub particles_restored: u64,
    /// Virtual seconds of work redone during the replay.
    pub recovery_cost: f64,
    /// Virtual seconds a restart-from-frame-0 would redo (bare frame
    /// times summed over `0..crash_frame`).
    pub restart_cost: f64,
    /// Virtual seconds the checkpoint policy saved (`restart - recovery`;
    /// negative would fail validation for recovered cells).
    pub saved: f64,
    /// Recovered run's fingerprint equals the uninterrupted run's.
    pub fingerprint_ok: bool,
    /// Particles the crashed run lost (0 when recovered).
    pub lost_particles: u64,
    /// Ranks declared dead in the crashed run (0 when recovered).
    pub dead_ranks: usize,
    /// Host seconds both runs of the cell took.
    pub wall_seconds: f64,
}

/// Everything `BENCH_8.json` carries.
pub struct Bench8Export {
    pub frames: u64,
    pub particles_per_system: usize,
    pub seed: u64,
    pub calculators: Vec<usize>,
    pub intervals: Vec<u64>,
    pub crash_frames: Vec<u64>,
    pub cells: Vec<Bench8Cell>,
}

fn size(particles_per_system: usize) -> WorkloadSize {
    WorkloadSize { systems: 2, particles_per_system, scale: 25.0 }
}

fn run_config(frames: u64, seed: u64) -> RunConfig {
    RunConfig { frames, dt: 0.1, seed, warmup: 0, ..Default::default() }
}

/// Bare reference run for one calculator count: no faults, no checkpoints.
fn bare_run(calculators: usize, frames: u64, particles: usize, seed: u64) -> RunReport {
    let sz = size(particles);
    let cluster = myrinet_gcc(calculators, 1);
    VirtualSim::new(snow_scene(sz), run_config(frames, seed), cluster, sz.cost_model()).run()
}

fn run_cell(
    bare: &RunReport,
    calculators: usize,
    interval: u64,
    crash_frame: u64,
    frames: u64,
    particles: usize,
    seed: u64,
) -> Bench8Cell {
    let sz = size(particles);
    let cluster = myrinet_gcc(calculators, 1);
    let mut plan = FaultPlan::none(seed, calculators + 2);
    plan.rank_mut(BENCH8_VICTIM).crash_at = Some(crash_frame);
    let cfg = RunConfig {
        checkpoint: CheckpointConfig::recovering(interval),
        ..run_config(frames, seed)
    };

    let t0 = Instant::now();
    let report =
        VirtualSim::new(snow_scene(sz), cfg, cluster, sz.cost_model()).with_faults(plan).run();
    let wall = t0.elapsed().as_secs_f64();

    // What restart-from-zero would redo: every bare frame before the crash.
    let restart_cost: f64 =
        bare.frames.iter().take(crash_frame as usize).map(|f| f.frame_time).sum();
    // `+ 0.0` normalizes the empty sum's -0.0 so the JSON never carries a
    // signed zero.
    let recovery_cost: f64 =
        report.recoveries.iter().map(|e| e.replay_virtual_secs).sum::<f64>() + 0.0;
    let recovered = !report.recoveries.is_empty();

    Bench8Cell {
        calculators,
        interval,
        crash_frame,
        recovered,
        snapshot_frame: report.recoveries.first().map_or(0, |e| e.snapshot_frame),
        frames_replayed: report.recoveries.iter().map(|e| e.frames_replayed).sum(),
        particles_restored: report.recoveries.iter().map(|e| e.particles_restored).sum(),
        recovery_cost,
        restart_cost,
        saved: restart_cost - recovery_cost,
        fingerprint_ok: report.fingerprint() == bare.fingerprint(),
        lost_particles: report.lost_particles,
        dead_ranks: report.dead_ranks.len(),
        wall_seconds: wall,
    }
}

/// Run the sweep and assemble the export. The bare reference is priced
/// once per calculator count and shared by every (interval, crash) cell.
pub fn collect8(
    calculators: &[usize],
    intervals: &[u64],
    crash_frames: &[u64],
    frames: u64,
    particles_per_system: usize,
    seed: u64,
) -> Bench8Export {
    let mut cells = Vec::new();
    for &n in calculators {
        let bare = bare_run(n, frames, particles_per_system, seed);
        for &interval in intervals {
            for &crash in crash_frames {
                cells.push(run_cell(&bare, n, interval, crash, frames, particles_per_system, seed));
            }
        }
    }
    Bench8Export {
        frames,
        particles_per_system,
        seed,
        calculators: calculators.to_vec(),
        intervals: intervals.to_vec(),
        crash_frames: crash_frames.to_vec(),
        cells,
    }
}

impl Bench8Export {
    /// Reject empty sweeps, non-finite costs, and — the headline gate —
    /// any cell whose crash fell at or past the first snapshot yet failed
    /// to recover byte-identically for strictly less than a restart.
    pub fn validate(&self) -> Result<(), String> {
        if self.calculators.is_empty() || self.intervals.is_empty() || self.crash_frames.is_empty()
        {
            return Err("empty sweep axis".into());
        }
        if self.intervals.contains(&0) {
            return Err("interval 0 disables checkpointing and prices nothing".into());
        }
        if let Some(&c) = self.crash_frames.iter().find(|&&c| c == 0 || c >= self.frames) {
            return Err(format!("crash frame {c} outside the {}-frame run", self.frames));
        }
        let expected = self.calculators.len() * self.intervals.len() * self.crash_frames.len();
        if self.cells.len() != expected {
            return Err(format!("expected {expected} cells, got {}", self.cells.len()));
        }
        for c in &self.cells {
            let cell =
                format!("cell {}c interval {} crash@{}", c.calculators, c.interval, c.crash_frame);
            for (name, v) in [
                ("recovery_cost", c.recovery_cost),
                ("restart_cost", c.restart_cost),
                ("saved", c.saved),
                ("wall_seconds", c.wall_seconds),
            ] {
                if !v.is_finite() {
                    return Err(format!("{cell}: {name} is {v}"));
                }
            }
            if c.restart_cost <= 0.0 {
                return Err(format!("{cell}: restart cost {} is degenerate", c.restart_cost));
            }
            if c.crash_frame >= c.interval {
                // A snapshot existed: the crash must have been absorbed.
                if !c.recovered {
                    return Err(format!("{cell}: snapshot existed but the engine never recovered"));
                }
                if !c.fingerprint_ok {
                    return Err(format!("{cell}: recovered run diverged from the bare run"));
                }
                if c.lost_particles != 0 || c.dead_ranks != 0 {
                    return Err(format!(
                        "{cell}: recovery left {} lost particles, {} dead ranks",
                        c.lost_particles, c.dead_ranks
                    ));
                }
                if c.snapshot_frame != (c.crash_frame / c.interval) * c.interval {
                    return Err(format!(
                        "{cell}: snapshot frame {} off the interval cadence",
                        c.snapshot_frame
                    ));
                }
                if c.snapshot_frame + c.frames_replayed != c.crash_frame {
                    return Err(format!(
                        "{cell}: inconsistent window (snapshot {} + replayed {})",
                        c.snapshot_frame, c.frames_replayed
                    ));
                }
                if c.particles_restored == 0 {
                    return Err(format!("{cell}: snapshot restored an empty store"));
                }
                // The headline: replaying the tail must beat redoing the head.
                if c.recovery_cost >= c.restart_cost {
                    return Err(format!(
                        "{cell}: recovery ({:.6}s) did not beat restart-from-0 ({:.6}s)",
                        c.recovery_cost, c.restart_cost
                    ));
                }
            } else {
                // Crash before the first snapshot: the old degraded world.
                if c.recovered || c.recovery_cost != 0.0 {
                    return Err(format!("{cell}: recovered without a snapshot to restore"));
                }
                if c.dead_ranks == 0 || c.lost_particles == 0 {
                    return Err(format!(
                        "{cell}: pre-snapshot crash must degrade ({} dead, {} lost)",
                        c.dead_ranks, c.lost_particles
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serialize to the `BENCH_8.json` schema.
    pub fn to_json(&self) -> String {
        fn list<T: std::fmt::Display>(xs: &[T]) -> String {
            let mut s = String::from("[");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&x.to_string());
            }
            s.push(']');
            s
        }
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": 8,\n");
        s.push_str(&format!(
            "  \"run\": {{\"frames\": {}, \"particles_per_system\": {}, \"seed\": {}, \"victim_rank\": {}}},\n",
            self.frames, self.particles_per_system, self.seed, BENCH8_VICTIM
        ));
        s.push_str(&format!("  \"calculators\": {},\n", list(&self.calculators)));
        s.push_str(&format!("  \"intervals\": {},\n", list(&self.intervals)));
        s.push_str(&format!("  \"crash_frames\": {},\n", list(&self.crash_frames)));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"calculators\": {}, \"interval\": {}, \"crash_frame\": {}, \"recovered\": {}, \"snapshot_frame\": {}, \"frames_replayed\": {}, \"particles_restored\": {}, \"recovery_cost\": {}, \"restart_cost\": {}, \"saved\": {}, \"fingerprint_ok\": {}, \"lost_particles\": {}, \"dead_ranks\": {}, \"wall_seconds\": {}}}{}\n",
                c.calculators,
                c.interval,
                c.crash_frame,
                c.recovered,
                c.snapshot_frame,
                c.frames_replayed,
                c.particles_restored,
                json_f64(c.recovery_cost),
                json_f64(c.restart_cost),
                json_f64(c.saved),
                c.fingerprint_ok,
                c.lost_particles,
                c.dead_ranks,
                json_f64(c.wall_seconds),
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

fn json_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_validates() {
        let data = collect8(&[4], &[2, 3], &[2, 5, 7], 8, 300, 0xBE7C_0008);
        assert_eq!(data.cells.len(), 6);
        data.validate().unwrap_or_else(|e| panic!("BENCH_8 smoke sweep invalid: {e}"));
        // The boundary cells are present on both sides: crash@2 under
        // interval 3 degrades (no snapshot yet), under interval 2 recovers.
        let degraded = data
            .cells
            .iter()
            .find(|c| c.interval == 3 && c.crash_frame == 2)
            .expect("boundary cell");
        assert!(!degraded.recovered);
        let boundary = data
            .cells
            .iter()
            .find(|c| c.interval == 2 && c.crash_frame == 2)
            .expect("on-cadence cell");
        assert!(boundary.recovered);
        assert_eq!(boundary.frames_replayed, 0, "crash on the snapshot frame replays nothing");
    }

    #[test]
    fn recovery_beats_restart_past_the_first_interval() {
        let data = collect8(&[4], &[2], &[5, 7], 8, 300, 0xBE7C_0008);
        for c in &data.cells {
            assert!(c.recovered, "crash@{} with interval 2 must recover", c.crash_frame);
            assert!(
                c.recovery_cost < c.restart_cost,
                "crash@{}: recovery {:.6}s vs restart {:.6}s",
                c.crash_frame,
                c.recovery_cost,
                c.restart_cost
            );
            assert!(c.saved > 0.0);
        }
        // Deeper crashes waste more on a restart, and the recovery saving
        // grows with them (the replay window is bounded by the interval).
        assert!(data.cells[1].restart_cost > data.cells[0].restart_cost);
        assert!(data.cells[1].saved > data.cells[0].saved);
    }

    #[test]
    fn json_shape_is_stable() {
        let data = collect8(&[4], &[2], &[5], 8, 200, 7);
        let json = data.to_json();
        assert!(json.contains("\"bench\": 8"));
        assert!(json.contains("\"victim_rank\": 1"));
        assert!(json.contains("\"recovery_cost\""));
        assert!(json.contains("\"restart_cost\""));
        assert_eq!(json.matches("\"crash_frame\":").count(), 1);
    }
}
