//! Machine-readable session-pool export (`BENCH_7.json`).
//!
//! BENCH_1–6 measure one run at a time; BENCH_7 measures the *service*
//! built on top of them. A `psa_sessions::SessionManager` pool multiplexes
//! hundreds of concurrent seeded animation sessions over a fixed set of
//! worker lanes with cooperative frame-slicing, and the export records
//! what a capacity planner needs:
//!
//! * **Throughput** — completed sessions per pool-virtual second at
//!   session counts ∈ {100, 300, 1000} (the smoke tier trims this), for
//!   snow (domain-stable, §5.1) and vortex (the imbalanced workload);
//! * **Latency** — p50/p99 frame latency as the viewer sees it (the first
//!   frame is measured from arrival, so admission-queue wait is in the
//!   tail) plus the mean queue wait itself;
//! * **Pool health** — dispatch counts, slot recycles, and the arena high
//!   water, which is how `max_in_flight` gets sized;
//! * **Parity** — every cell re-runs one sampled session solo and checks
//!   the fingerprint matches the multiplexed run byte-for-byte; a cell
//!   that cannot prove parity does not validate.
//!
//! Like every other export, the JSON is hand-rolled and
//! [`Bench7Export::validate`] rejects NaN/degenerate metrics before
//! anything is written.

use std::time::Instant;

use psa_desim::EventSim;
use psa_runtime::Scene;
use psa_sessions::{
    derive_session_seed, AdmissionConfig, PoolConfig, SessionId, SessionManager, SessionSpec,
    TenantId,
};
use psa_workloads::{myrinet_gcc, paper_run_config, snow_scene, vortex_scene, WorkloadSize};

/// Session counts of the full sweep (the CI smoke tier trims this).
pub const BENCH7_SESSIONS: &[usize] = &[100, 300, 1000];

/// Worker lanes every BENCH_7 pool runs with.
pub const BENCH7_WORKERS: usize = 8;

/// Slot-arena size (admission `max_in_flight`) every pool runs with.
pub const BENCH7_IN_FLIGHT: usize = 32;

/// Tenants sessions are spread over (round-robin).
pub const BENCH7_TENANTS: u32 = 8;

/// Which workload a BENCH_7 cell animates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bench7Workload {
    Snow,
    Vortex,
}

impl Bench7Workload {
    pub const ALL: &'static [Bench7Workload] = &[Bench7Workload::Snow, Bench7Workload::Vortex];

    pub fn name(&self) -> &'static str {
        match self {
            Bench7Workload::Snow => "snow",
            Bench7Workload::Vortex => "vortex",
        }
    }

    pub fn scene(&self, size: WorkloadSize) -> Scene {
        match self {
            Bench7Workload::Snow => snow_scene(size),
            Bench7Workload::Vortex => vortex_scene(size),
        }
    }
}

/// One (sessions, workload) pool run.
#[derive(Clone, Debug)]
pub struct Bench7Cell {
    pub workload: &'static str,
    /// Sessions admitted.
    pub sessions: usize,
    /// Sessions that completed (must equal `sessions`).
    pub completed: usize,
    /// Pool-virtual makespan of the whole run.
    pub makespan: f64,
    /// Completed sessions per pool-virtual second.
    pub sessions_per_sec: f64,
    /// Median frame latency (pool-virtual seconds).
    pub p50_latency: f64,
    /// 99th-percentile frame latency; the queue-wait tail lives here.
    pub p99_latency: f64,
    /// Mean admission-queue wait across sessions.
    pub mean_queue_wait: f64,
    /// Frame-slice dispatches the scheduler issued.
    pub dispatches: u64,
    /// Completed slot acquire→recycle cycles.
    pub slot_recycles: u64,
    /// Most slots ever held at once (sizes `max_in_flight`).
    pub slot_high_water: usize,
    /// Did the sampled session's fingerprint match its solo run?
    pub parity_ok: bool,
    /// Host seconds the pool run took.
    pub wall_seconds: f64,
}

/// Everything `BENCH_7.json` carries.
pub struct Bench7Export {
    pub frames: u64,
    pub particles_per_system: usize,
    pub workers: usize,
    pub max_in_flight: usize,
    pub tenants: u32,
    pub session_counts: Vec<usize>,
    pub cells: Vec<Bench7Cell>,
}

fn session_size(particles_per_system: usize) -> WorkloadSize {
    WorkloadSize { systems: 2, particles_per_system, scale: 1.0 }
}

fn session_spec(wl: Bench7Workload, size: WorkloadSize, frames: u64, tenant: u32) -> SessionSpec {
    SessionSpec {
        tenant: TenantId(tenant),
        scene: wl.scene(size),
        cfg: paper_run_config(frames, 0.04),
        cluster: myrinet_gcc(2, 1),
        cost: size.cost_model(),
        arrival: 0.0,
    }
}

fn run_cell(
    wl: Bench7Workload,
    sessions: usize,
    frames: u64,
    particles_per_system: usize,
    base_seed: u64,
) -> Bench7Cell {
    let size = session_size(particles_per_system);
    let admission = AdmissionConfig {
        max_in_flight: BENCH7_IN_FLIGHT,
        per_tenant_in_flight: BENCH7_IN_FLIGHT,
        queue_capacity: usize::MAX,
        per_tenant_backlog: usize::MAX,
    };
    let mut pool = SessionManager::new(PoolConfig {
        workers: BENCH7_WORKERS,
        slice_frames: 2,
        admission,
        base_seed,
        checkpoint_interval: 0,
        instrument: false,
    });
    for i in 0..sessions {
        let spec = session_spec(wl, size, frames, i as u32 % BENCH7_TENANTS);
        if let Err(e) = pool.admit(spec) {
            if matches!(e, psa_sessions::AdmissionError::Rejected { .. }) {
                panic!("BENCH_7 admission is unbounded, rejection is a bug: {e}");
            }
        }
    }
    let t0 = Instant::now();
    let report = pool.run_to_completion();
    let wall = t0.elapsed().as_secs_f64();

    // Parity spot check: the middle session, re-run solo with its derived
    // seed, must fingerprint identically to its multiplexed outcome.
    let probe = SessionId(sessions as u64 / 2);
    let parity_ok = report.outcome_for(probe).is_some_and(|outcome| {
        let mut cfg = paper_run_config(frames, 0.04);
        cfg.seed = derive_session_seed(base_seed, probe);
        let mut sim = EventSim::new(wl.scene(size), cfg, myrinet_gcc(2, 1), size.cost_model());
        sim.run().fingerprint() == outcome.fingerprint
    });

    Bench7Cell {
        workload: wl.name(),
        sessions,
        completed: report.completed(),
        makespan: report.makespan,
        sessions_per_sec: report.sessions_per_sec(),
        p50_latency: report.latency_percentile(0.50),
        p99_latency: report.latency_percentile(0.99),
        mean_queue_wait: report.mean_queue_wait(),
        dispatches: report.dispatches,
        slot_recycles: report.slot_stats.recycled,
        slot_high_water: report.slot_stats.high_water,
        parity_ok,
        wall_seconds: wall,
    }
}

/// Run the sweep and assemble the export. `session_counts` is the list of
/// pool sizes to cover (the smoke tier passes a short one).
pub fn collect7(
    session_counts: &[usize],
    frames: u64,
    particles_per_system: usize,
    base_seed: u64,
) -> Bench7Export {
    let mut cells = Vec::new();
    for &wl in Bench7Workload::ALL {
        for &sessions in session_counts {
            cells.push(run_cell(wl, sessions, frames, particles_per_system, base_seed));
        }
    }
    Bench7Export {
        frames,
        particles_per_system,
        workers: BENCH7_WORKERS,
        max_in_flight: BENCH7_IN_FLIGHT,
        tenants: BENCH7_TENANTS,
        session_counts: session_counts.to_vec(),
        cells,
    }
}

impl Bench7Export {
    /// Reject empty sweeps, incomplete pools, non-finite or degenerate
    /// latency/throughput numbers, and any cell that failed its parity
    /// spot check.
    pub fn validate(&self) -> Result<(), String> {
        if self.session_counts.is_empty() {
            return Err("no session counts swept".into());
        }
        let expected = self.session_counts.len() * Bench7Workload::ALL.len();
        if self.cells.len() != expected {
            return Err(format!("expected {expected} cells, got {}", self.cells.len()));
        }
        for c in &self.cells {
            let cell = format!("cell {} x{}", c.workload, c.sessions);
            if c.completed != c.sessions {
                return Err(format!(
                    "{cell}: only {}/{} sessions completed",
                    c.completed, c.sessions
                ));
            }
            for (name, v) in [
                ("makespan", c.makespan),
                ("sessions_per_sec", c.sessions_per_sec),
                ("p50_latency", c.p50_latency),
                ("p99_latency", c.p99_latency),
                ("mean_queue_wait", c.mean_queue_wait),
                ("wall_seconds", c.wall_seconds),
            ] {
                if !v.is_finite() {
                    return Err(format!("{cell}: {name} is {v}"));
                }
            }
            if c.sessions_per_sec <= 0.0 {
                return Err(format!("{cell}: throughput {} is degenerate", c.sessions_per_sec));
            }
            if c.p50_latency <= 0.0 || c.p99_latency < c.p50_latency {
                return Err(format!(
                    "{cell}: latency percentiles disordered (p50 {}, p99 {})",
                    c.p50_latency, c.p99_latency
                ));
            }
            if c.dispatches == 0 || c.slot_recycles != c.sessions as u64 {
                return Err(format!(
                    "{cell}: scheduler counters degenerate ({} dispatches, {} recycles)",
                    c.dispatches, c.slot_recycles
                ));
            }
            if c.slot_high_water > self.max_in_flight {
                return Err(format!(
                    "{cell}: slot high water {} exceeds the arena ({})",
                    c.slot_high_water, self.max_in_flight
                ));
            }
            if !c.parity_ok {
                return Err(format!("{cell}: sampled session failed solo-fingerprint parity"));
            }
        }
        Ok(())
    }

    /// Serialize to the `BENCH_7.json` schema.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": 7,\n");
        s.push_str(&format!(
            "  \"pool\": {{\"workers\": {}, \"max_in_flight\": {}, \"tenants\": {}, \"frames\": {}, \"particles_per_system\": {}}},\n",
            self.workers, self.max_in_flight, self.tenants, self.frames, self.particles_per_system
        ));
        s.push_str("  \"session_counts\": [");
        for (i, n) in self.session_counts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&n.to_string());
        }
        s.push_str("],\n");
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"workload\": \"{}\", \"sessions\": {}, \"completed\": {}, \"makespan\": {}, \"sessions_per_sec\": {}, \"p50_latency\": {}, \"p99_latency\": {}, \"mean_queue_wait\": {}, \"dispatches\": {}, \"slot_recycles\": {}, \"slot_high_water\": {}, \"parity_ok\": {}, \"wall_seconds\": {}}}{}\n",
                c.workload,
                c.sessions,
                c.completed,
                json_f64(c.makespan),
                json_f64(c.sessions_per_sec),
                json_f64(c.p50_latency),
                json_f64(c.p99_latency),
                json_f64(c.mean_queue_wait),
                c.dispatches,
                c.slot_recycles,
                c.slot_high_water,
                c.parity_ok,
                json_f64(c.wall_seconds),
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// JSON-safe float (validation upstream keeps non-finite values out of
/// written files).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> Bench7Export {
        collect7(&[10, 25], 6, 150, 0xBE7C_0007)
    }

    #[test]
    fn collect_produces_valid_export() {
        let e = smoke();
        e.validate().expect("smoke export must validate");
        assert_eq!(e.cells.len(), 4, "2 session counts x {{snow, vortex}}");
        for c in &e.cells {
            assert!(c.parity_ok, "{}: multiplexed == solo", c.workload);
            assert!(c.slot_high_water <= BENCH7_IN_FLIGHT);
        }
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let j = smoke().to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in [
            "\"bench\": 7",
            "\"session_counts\"",
            "\"sessions_per_sec\"",
            "\"p99_latency\"",
            "\"parity_ok\": true",
            "\"vortex\"",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    #[test]
    fn validate_rejects_regressions() {
        let mut e = smoke();
        e.cells[0].p99_latency = f64::NAN;
        assert!(e.validate().is_err(), "NaN must fail");
        let mut e2 = smoke();
        e2.cells[0].completed -= 1;
        assert!(e2.validate().is_err(), "an incomplete pool must fail");
        let mut e3 = smoke();
        e3.cells[0].parity_ok = false;
        assert!(e3.validate().is_err(), "a parity failure must fail");
        let mut e4 = smoke();
        e4.cells[0].p99_latency = e4.cells[0].p50_latency / 2.0;
        assert!(e4.validate().is_err(), "disordered percentiles must fail");
    }

    #[test]
    fn contention_moves_the_tail() {
        // More sessions on the same pool must not shrink the p99 tail:
        // queue waits land in the first-frame latency.
        let e = smoke();
        let small = e.cells.iter().find(|c| c.sessions == 10).unwrap();
        let big = e.cells.iter().find(|c| c.sessions == 25).unwrap();
        assert!(
            big.p99_latency >= small.p99_latency,
            "p99 {} at 25 sessions vs {} at 10",
            big.p99_latency,
            small.p99_latency
        );
    }
}
