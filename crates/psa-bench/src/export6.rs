//! Machine-readable balancer-suite export (`BENCH_6.json`).
//!
//! BENCH_5 measured the defect: past ~32 ranks the paper-faithful §3.2.5
//! balancer's fixed `min_transfer = 32` suppresses every order while the
//! balance phase keeps charging its round-trip — "DLB" costs ~2× SLB and
//! does nothing. BENCH_6 is the experiment for the fix: the full
//! (workload × scenario × strategy) matrix at the same rank counts,
//! covering every strategy in the pluggable balancer suite —
//!
//! * **SLB** — static even split (the control every cell is read against),
//! * **DLB-paper** — the paper walk, pinned to [`BalancerConfig::paper`]
//!   so the dead zone stays measurable,
//! * **DLB-adapt** — the same walk with the adaptive minimum transfer
//!   (the suite's default),
//! * **DEC** — the decentralized half-excess gossip walk,
//! * **DIF** — decentralized damped-gradient diffusion,
//! * **SFC** — hierarchical space-filling-curve group balancing,
//!
//! under a healthy fabric (`baseline`) and under severely degraded
//! manager links (`degraded-mgr`), where the decentralized strategies'
//! lack of a per-frame manager round-trip in the balance phase is the
//! point being measured.
//!
//! The default workload shape is the dead-zone cell found while fixing
//! the defect: a **single** vortex system (per-system hotspots cannot
//! decorrelate across systems, so per-rank compute stays imbalanced),
//! ~700 real particles (thin enough that every neighbor-pair excess sits
//! below the paper's fixed 32), scale 500 (virtual population is real),
//! and 60 frames (the neighbor-only walks need time to flatten an
//! orbiting cluster). [`Bench6Export::validate`] gates the acceptance
//! criteria on the result whenever the sweep reaches 128 ranks; the CI
//! smoke tier (8/64 ranks) checks structure only.

use std::time::Instant;

use psa_chaos::Scenario;
use psa_desim::EventSim;
use psa_runtime::{BalanceMode, BalancerConfig, ExchangeMode, RunConfig};
use psa_workloads::{myrinet_gcc, paper_run_config, WorkloadSize};

use crate::export5::Bench5Workload;

/// Rank counts of the full sweep (CI's smoke tier trims this to 8/64).
pub const BENCH6_RANKS: &[usize] = &[8, 32, 128, 512, 1024];

/// The rank count from which the dead-zone acceptance gates apply.
pub const BENCH6_DEAD_ZONE_RANKS: usize = 128;

/// Strategy column labels, in sweep order.
pub const BENCH6_STRATEGIES: &[&str] = &["SLB", "DLB-paper", "DLB-adapt", "DEC", "DIF", "SFC"];

/// Scenario column labels, in sweep order.
pub const BENCH6_SCENARIOS: &[&str] = &["baseline", "degraded-mgr"];

fn strategy_mode(label: &str) -> BalanceMode {
    match label {
        "SLB" => BalanceMode::Static,
        "DLB-paper" => BalanceMode::Dynamic(BalancerConfig::paper()),
        "DLB-adapt" => BalanceMode::dynamic(),
        "DEC" => BalanceMode::decentralized(),
        "DIF" => BalanceMode::diffusive(),
        "SFC" => BalanceMode::hierarchical(),
        other => unreachable!("unknown strategy label {other}"),
    }
}

fn scenario_shape(label: &str) -> Scenario {
    match label {
        "baseline" => Scenario::Baseline,
        // Severe: a failing NIC / broken autonegotiation on the manager's
        // switch port, not mild congestion — mild degradation vanishes
        // under makespans dominated by compute, severe degradation is
        // what separates manager-mediated strategies from gossip.
        "degraded-mgr" => Scenario::DegradedManager { bw_scale: 64.0, lat_scale: 512.0 },
        other => unreachable!("unknown scenario label {other}"),
    }
}

/// One (ranks, scenario, strategy) point.
#[derive(Clone, Debug)]
pub struct Bench6Cell {
    pub ranks: usize,
    pub scenario: &'static str,
    pub strategy: &'static str,
    /// Virtual makespan of the run.
    pub makespan: f64,
    /// Steady-state virtual time.
    pub steady_time: f64,
    /// Frames in which the balancer moved at least one particle.
    pub balance_rounds: u64,
    /// Particles the balancer moved over the whole run.
    pub orders: u64,
    /// Mean `max/mean − 1` imbalance across frames.
    pub mean_imbalance: f64,
    /// Imbalance of the final frame (what the run converged to).
    pub final_imbalance: f64,
    /// Fabric messages the run exchanged.
    pub messages: u64,
    /// Events the discrete-event loop processed.
    pub events: u64,
    /// Host seconds the event loop took.
    pub wall_seconds: f64,
}

/// One workload's matrix.
#[derive(Clone, Debug)]
pub struct Bench6Experiment {
    pub workload: &'static str,
    pub cells: Vec<Bench6Cell>,
}

/// Everything `BENCH_6.json` carries.
pub struct Bench6Export {
    pub frames: u64,
    pub systems: usize,
    pub particles_per_system: usize,
    pub scale: f64,
    pub ranks: Vec<usize>,
    pub experiments: Vec<Bench6Experiment>,
}

/// Run the matrix and assemble the export.
pub fn collect6(
    ranks: &[usize],
    frames: u64,
    systems: usize,
    particles_per_system: usize,
    scale: f64,
) -> Bench6Export {
    let size = WorkloadSize { systems, particles_per_system, scale };
    let mut experiments = Vec::new();
    for &wl in Bench5Workload::ALL {
        let mut cells = Vec::new();
        for &r in ranks {
            let cluster = myrinet_gcc(r, 1);
            for &scenario in BENCH6_SCENARIOS {
                let plan = scenario_shape(scenario).plan(
                    paper_run_config(frames, wl.dt()).seed,
                    r,
                    &cluster.net,
                );
                for &strategy in BENCH6_STRATEGIES {
                    let mut cfg: RunConfig = paper_run_config(frames, wl.dt());
                    cfg.balance = strategy_mode(strategy);
                    cfg.exchange = ExchangeMode::Sparse;
                    let mut sim =
                        EventSim::new(wl.scene(size), cfg, cluster.clone(), size.cost_model())
                            .with_faults(plan.clone());
                    let t0 = Instant::now();
                    let report = sim.run();
                    let wall = t0.elapsed().as_secs_f64();
                    cells.push(Bench6Cell {
                        ranks: r,
                        scenario,
                        strategy,
                        makespan: report.total_time,
                        steady_time: report.steady_time(),
                        balance_rounds: report.frames.iter().filter(|f| f.balanced > 0).count()
                            as u64,
                        orders: report.frames.iter().map(|f| f.balanced).sum(),
                        mean_imbalance: report.mean_imbalance(),
                        final_imbalance: report
                            .frames
                            .last()
                            .map(|f| f.imbalance)
                            .unwrap_or(f64::NAN),
                        messages: report.traffic.messages,
                        events: sim.sim_stats().events,
                        wall_seconds: wall,
                    });
                }
            }
        }
        experiments.push(Bench6Experiment { workload: wl.name(), cells });
    }
    Bench6Export {
        frames,
        systems,
        particles_per_system,
        scale,
        ranks: ranks.to_vec(),
        experiments,
    }
}

impl Bench6Export {
    fn cell(&self, workload: &str, ranks: usize, scenario: &str, strategy: &str) -> &Bench6Cell {
        self.experiments
            .iter()
            .find(|e| e.workload == workload)
            .and_then(|e| {
                e.cells
                    .iter()
                    .find(|c| c.ranks == ranks && c.scenario == scenario && c.strategy == strategy)
            })
            .unwrap_or_else(|| panic!("missing cell {workload}/{ranks}r/{scenario}/{strategy}"))
    }

    /// Structural validation plus the acceptance gates of the balancer
    /// suite whenever the sweep reaches [`BENCH6_DEAD_ZONE_RANKS`]:
    ///
    /// 1. the paper config is **dead and inverted** on vortex at every
    ///    swept dead-zone rank count (zero orders, makespan above SLB),
    /// 2. every other dynamic strategy stays **live** there,
    /// 3. at ≥ 1 dead-zone rank count a strategy of the new suite
    ///    (DLB-adapt, DIF, or SFC) **beats the SLB makespan** the paper
    ///    config inverted against,
    /// 4. at ≥ 1 dead-zone rank count a decentralized strategy (DEC or
    ///    DIF) beats the centralized DLB-adapt under degraded manager
    ///    links.
    pub fn validate(&self) -> Result<(), String> {
        if self.ranks.is_empty() {
            return Err("no rank counts swept".into());
        }
        if self.experiments.len() != Bench5Workload::ALL.len() {
            return Err(format!("expected 3 experiments, got {}", self.experiments.len()));
        }
        let cells_per_experiment =
            self.ranks.len() * BENCH6_SCENARIOS.len() * BENCH6_STRATEGIES.len();
        for e in &self.experiments {
            let tag = format!("experiment {}", e.workload);
            if e.cells.len() != cells_per_experiment {
                return Err(format!(
                    "{tag}: {} cells, expected {cells_per_experiment}",
                    e.cells.len()
                ));
            }
            for c in &e.cells {
                let cell = format!("{tag} {}r {} {}", c.ranks, c.scenario, c.strategy);
                for (name, v) in [
                    ("makespan", c.makespan),
                    ("steady_time", c.steady_time),
                    ("mean_imbalance", c.mean_imbalance),
                    ("final_imbalance", c.final_imbalance),
                    ("wall_seconds", c.wall_seconds),
                ] {
                    if !v.is_finite() {
                        return Err(format!("{cell}: {name} is {v}"));
                    }
                }
                if c.makespan <= 0.0 {
                    return Err(format!("{cell}: degenerate makespan {}", c.makespan));
                }
                if c.events == 0 || c.messages == 0 {
                    return Err(format!("{cell}: the event loop did not run"));
                }
                if c.strategy == "SLB" && c.orders != 0 {
                    return Err(format!("{cell}: SLB moved {} particles", c.orders));
                }
            }
        }

        let dead_ranks: Vec<usize> =
            self.ranks.iter().copied().filter(|&r| r >= BENCH6_DEAD_ZONE_RANKS).collect();
        if dead_ranks.is_empty() {
            return Ok(()); // smoke tier: structure only
        }

        // Gate 1 + 2: dead zone reproduced, suite live.
        for &r in &dead_ranks {
            let slb = self.cell("vortex", r, "baseline", "SLB");
            let paper = self.cell("vortex", r, "baseline", "DLB-paper");
            if paper.orders != 0 {
                return Err(format!(
                    "vortex {r}r baseline: paper config issued {} orders — not a dead zone",
                    paper.orders
                ));
            }
            if paper.makespan <= slb.makespan {
                return Err(format!(
                    "vortex {r}r baseline: paper DLB {} did not invert against SLB {}",
                    paper.makespan, slb.makespan
                ));
            }
            for strategy in ["DLB-adapt", "DEC", "DIF", "SFC"] {
                let c = self.cell("vortex", r, "baseline", strategy);
                if c.orders == 0 {
                    return Err(format!(
                        "vortex {r}r baseline: {strategy} issued no orders in the dead zone"
                    ));
                }
            }
        }

        // Gate 3: somewhere in the dead zone the fix actually wins.
        let fixed = dead_ranks.iter().any(|&r| {
            let slb = self.cell("vortex", r, "baseline", "SLB");
            ["DLB-adapt", "DIF", "SFC"]
                .iter()
                .any(|s| self.cell("vortex", r, "baseline", s).makespan < slb.makespan)
        });
        if !fixed {
            return Err("no new strategy beat the SLB makespan at any dead-zone rank count".into());
        }

        // Gate 4: decentralization pays under manager-adjacent faults.
        let decentralized_wins = dead_ranks.iter().any(|&r| {
            let central = self.cell("vortex", r, "degraded-mgr", "DLB-adapt");
            ["DEC", "DIF"]
                .iter()
                .any(|s| self.cell("vortex", r, "degraded-mgr", s).makespan < central.makespan)
        });
        if !decentralized_wins {
            return Err("no decentralized strategy beat centralized DLB under degraded \
                        manager links at any dead-zone rank count"
                .into());
        }
        Ok(())
    }

    /// Serialize to the `BENCH_6.json` schema.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": 6,\n");
        s.push_str(&format!(
            "  \"workload\": {{\"systems\": {}, \"particles_per_system\": {}, \"scale\": {}, \"frames\": {}}},\n",
            self.systems,
            self.particles_per_system,
            json_f64(self.scale),
            self.frames
        ));
        s.push_str("  \"ranks\": [");
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&r.to_string());
        }
        s.push_str("],\n");
        s.push_str(&format!(
            "  \"scenarios\": [{}],\n",
            BENCH6_SCENARIOS.iter().map(|v| format!("\"{v}\"")).collect::<Vec<_>>().join(", ")
        ));
        s.push_str(&format!(
            "  \"strategies\": [{}],\n",
            BENCH6_STRATEGIES.iter().map(|v| format!("\"{v}\"")).collect::<Vec<_>>().join(", ")
        ));
        s.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"workload\": \"{}\",\n", e.workload));
            s.push_str("      \"cells\": [\n");
            for (j, c) in e.cells.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"ranks\": {}, \"scenario\": \"{}\", \"strategy\": \"{}\", \"makespan\": {}, \"steady_time\": {}, \"balance_rounds\": {}, \"orders\": {}, \"mean_imbalance\": {}, \"final_imbalance\": {}, \"messages\": {}, \"events\": {}, \"wall_seconds\": {}}}{}\n",
                    c.ranks,
                    c.scenario,
                    c.strategy,
                    json_f64(c.makespan),
                    json_f64(c.steady_time),
                    c.balance_rounds,
                    c.orders,
                    json_f64(c.mean_imbalance),
                    json_f64(c.final_imbalance),
                    c.messages,
                    c.events,
                    json_f64(c.wall_seconds),
                    if j + 1 < e.cells.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.experiments.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// JSON-safe float (validation upstream keeps non-finite values out of
/// written files).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> Bench6Export {
        collect6(&[4, 8], 6, 1, 200, 50.0)
    }

    #[test]
    fn collect_produces_valid_export() {
        let e = smoke();
        e.validate().expect("smoke export must validate");
        assert_eq!(e.experiments.len(), 3, "snow + fountain + vortex");
        for exp in &e.experiments {
            assert_eq!(
                exp.cells.len(),
                2 * BENCH6_SCENARIOS.len() * BENCH6_STRATEGIES.len(),
                "{}: 2 ranks x scenarios x strategies",
                exp.workload
            );
        }
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let j = smoke().to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in [
            "\"bench\": 6",
            "\"scenarios\"",
            "\"strategies\"",
            "\"degraded-mgr\"",
            "\"DLB-paper\"",
            "\"DIF\"",
            "\"wall_seconds\"",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    /// A hand-built export exercising the dead-zone gates that the smoke
    /// tier's rank counts cannot reach.
    fn synthetic() -> Bench6Export {
        let mut experiments = Vec::new();
        for wl in ["snow", "fountain", "vortex"] {
            let mut cells = Vec::new();
            for &r in &[8usize, 128] {
                for &scenario in BENCH6_SCENARIOS {
                    for &strategy in BENCH6_STRATEGIES {
                        // Shape matching the measured 128r cell: paper dead
                        // and inverted, adaptive winning, decentralized
                        // winning under the degraded manager.
                        let (makespan, orders) = match (strategy, scenario) {
                            ("SLB", _) => (7.35, 0),
                            ("DLB-paper", _) if r >= 128 => (7.42, 0),
                            ("DLB-adapt", "degraded-mgr") => (10.3, 1_000),
                            ("DEC", "degraded-mgr") => (9.5, 1_000),
                            _ => (6.9, 1_000),
                        };
                        cells.push(Bench6Cell {
                            ranks: r,
                            scenario,
                            strategy,
                            makespan,
                            steady_time: makespan * 0.8,
                            balance_rounds: if orders > 0 { 5 } else { 0 },
                            orders,
                            mean_imbalance: 10.0,
                            final_imbalance: 6.0,
                            messages: 100,
                            events: 1_000,
                            wall_seconds: 0.1,
                        });
                    }
                }
            }
            experiments.push(Bench6Experiment { workload: wl, cells });
        }
        Bench6Export {
            frames: 60,
            systems: 1,
            particles_per_system: 700,
            scale: 500.0,
            ranks: vec![8, 128],
            experiments,
        }
    }

    #[test]
    fn synthetic_dead_zone_export_validates() {
        synthetic().validate().expect("synthetic dead-zone export must validate");
    }

    #[test]
    fn validate_rejects_regressions() {
        let mut e = smoke();
        e.experiments[0].cells[0].makespan = f64::NAN;
        assert!(e.validate().is_err(), "NaN must fail");

        let mut e2 = smoke();
        e2.experiments.pop();
        assert!(e2.validate().is_err(), "missing experiment must fail");

        // A paper config that came alive in the dead zone is not the
        // defect BENCH_6 exists to document.
        let mut e3 = synthetic();
        for exp in &mut e3.experiments {
            for c in &mut exp.cells {
                if c.strategy == "DLB-paper" && c.ranks >= 128 {
                    c.orders = 7;
                }
            }
        }
        assert!(e3.validate().is_err(), "live paper config must fail the dead-zone gate");

        // Nobody beating SLB means the fix regressed.
        let mut e4 = synthetic();
        for exp in &mut e4.experiments {
            for c in &mut exp.cells {
                if c.ranks >= 128 && c.scenario == "baseline" && c.strategy != "SLB" {
                    c.makespan = 99.0;
                }
            }
        }
        assert!(e4.validate().is_err(), "no winner in the dead zone must fail");

        // Decentralized losing under the degraded manager fails gate 4.
        let mut e5 = synthetic();
        for exp in &mut e5.experiments {
            for c in &mut exp.cells {
                if c.scenario == "degraded-mgr" && (c.strategy == "DEC" || c.strategy == "DIF") {
                    c.makespan = 99.0;
                }
            }
        }
        assert!(e5.validate().is_err(), "centralized winning the chaos cell must fail");
    }
}
