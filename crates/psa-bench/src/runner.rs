//! Experiment runner: pairs a workload with a cluster and the paper's
//! config matrix, producing speed-ups against the right sequential
//! baseline.

use cluster_sim::{e800, zx2000, ClusterSpec, Compiler, CostModel};
use psa_runtime::{
    run_sequential, BalanceMode, RunConfig, RunReport, Scene, SpaceMode, VirtualSim,
};
use psa_workloads::{fountain_scene, paper_run_config, snow_scene, WorkloadSize};

/// Which paper workload an experiment runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Experiment {
    Snow,
    Fountain,
}

impl Experiment {
    pub fn scene(&self, size: WorkloadSize) -> Scene {
        match self {
            Experiment::Snow => snow_scene(size),
            Experiment::Fountain => fountain_scene(size),
        }
    }

    pub fn dt(&self) -> f32 {
        match self {
            Experiment::Snow => psa_workloads::snow::SNOW_DT,
            Experiment::Fountain => psa_workloads::fountain::FOUNTAIN_DT,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Experiment::Snow => "snow",
            Experiment::Fountain => "fountain",
        }
    }
}

/// One parallel run plus its baseline-relative speed-up.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    pub report: RunReport,
    pub speedup: f64,
}

/// Shared runner state: caches the sequential baselines (they are identical
/// across the rows of a table).
///
/// The cache is keyed on `(Experiment, speed)` only. That key is complete
/// **because** `size` and `frames` are fixed at construction — they are
/// private and have no setters, so a cached baseline can never describe a
/// different workload than the one a later `run` uses. To benchmark another
/// size or frame count, build a new `Runner`.
pub struct Runner {
    size: WorkloadSize,
    frames: u64,
    seq_cache: Vec<(Experiment, f64, f64)>, // (exp, speed, total_time)
}

impl Runner {
    pub fn new(size: WorkloadSize, frames: u64) -> Self {
        Runner { size, frames, seq_cache: Vec::new() }
    }

    /// The workload size every run and cached baseline uses.
    pub fn size(&self) -> WorkloadSize {
        self.size
    }

    /// The frame count every run and cached baseline uses.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    fn run_config(&self, exp: Experiment, space: SpaceMode, balance: BalanceMode) -> RunConfig {
        let mut cfg = paper_run_config(self.frames, exp.dt());
        cfg.space = space;
        cfg.balance = balance;
        cfg
    }

    /// Sequential baseline time for `exp` at relative machine `speed`
    /// (cached).
    pub fn sequential_time(&mut self, exp: Experiment, speed: f64) -> f64 {
        if let Some((_, _, t)) =
            self.seq_cache.iter().find(|(e, s, _)| *e == exp && (*s - speed).abs() < 1e-12)
        {
            return *t;
        }
        let scene = exp.scene(self.size);
        let cfg = self.run_config(exp, SpaceMode::Finite, BalanceMode::Static);
        let report = run_sequential(&scene, &cfg, &self.size.cost_model(), speed);
        let t = report.steady_time();
        self.seq_cache.push((exp, speed, t));
        t
    }

    /// The paper's Myrinet/GCC baseline machine (E800).
    pub fn baseline_gcc(&mut self, exp: Experiment) -> f64 {
        self.sequential_time(exp, e800().speed(Compiler::Gcc))
    }

    /// The paper's Fast-Ethernet/ICC baseline machine (Itanium zx2000).
    pub fn baseline_icc(&mut self, exp: Experiment) -> f64 {
        self.sequential_time(exp, zx2000().speed(Compiler::Icc))
    }

    /// Run one parallel configuration and compute its speed-up against
    /// `baseline_time`.
    pub fn run(
        &mut self,
        exp: Experiment,
        cluster: ClusterSpec,
        space: SpaceMode,
        balance: BalanceMode,
        baseline_time: f64,
    ) -> RunOutcome {
        self.run_inner(exp, cluster, space, balance, baseline_time, false)
    }

    /// Like [`Runner::run`] with the per-phase recorder enabled: the report
    /// carries `RunReport::phases`. Instrumentation is quiet (it only reads
    /// the virtual clocks), so timings and speed-ups are identical to an
    /// untraced run.
    pub fn run_traced(
        &mut self,
        exp: Experiment,
        cluster: ClusterSpec,
        space: SpaceMode,
        balance: BalanceMode,
        baseline_time: f64,
    ) -> RunOutcome {
        self.run_inner(exp, cluster, space, balance, baseline_time, true)
    }

    fn run_inner(
        &mut self,
        exp: Experiment,
        cluster: ClusterSpec,
        space: SpaceMode,
        balance: BalanceMode,
        baseline_time: f64,
        traced: bool,
    ) -> RunOutcome {
        let scene = exp.scene(self.size);
        let cfg = self.run_config(exp, space, balance);
        let cost: CostModel = self.size.cost_model();
        let mut sim = VirtualSim::new(scene, cfg, cluster, cost);
        if traced {
            sim = sim.with_phases();
        }
        let report = sim.run();
        let steady = report.steady_time();
        let speedup = if steady > 0.0 { baseline_time / steady } else { 0.0 };
        RunOutcome { report, speedup }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_workloads::myrinet_gcc;

    fn tiny() -> WorkloadSize {
        WorkloadSize { systems: 2, particles_per_system: 1500, scale: 100.0 }
    }

    #[test]
    fn parallel_beats_sequential_for_finite_space() {
        let mut r = Runner::new(tiny(), 10);
        let base = r.baseline_gcc(Experiment::Snow);
        assert!(base > 0.0);
        let out = r.run(
            Experiment::Snow,
            myrinet_gcc(4, 1),
            SpaceMode::Finite,
            BalanceMode::Static,
            base,
        );
        assert!(out.speedup > 1.5, "4 calculators should beat sequential: {}", out.speedup);
        assert!(out.speedup < 4.0, "cannot exceed ideal: {}", out.speedup);
    }

    #[test]
    fn sequential_cache_hits() {
        let mut r = Runner::new(tiny(), 6);
        let a = r.baseline_gcc(Experiment::Snow);
        let b = r.baseline_gcc(Experiment::Snow);
        assert_eq!(a, b);
    }

    #[test]
    fn cache_key_distinguishes_speed_and_runner() {
        let mut r = Runner::new(tiny(), 6);
        let fast = r.sequential_time(Experiment::Snow, 1.0);
        let slow = r.sequential_time(Experiment::Snow, 0.5);
        assert!((slow / fast - 2.0).abs() < 1e-9, "speed must be part of the key");
        // size/frames are fixed per Runner (no setters), so a different
        // workload needs a fresh Runner — and must not share baselines.
        let big = WorkloadSize { systems: 2, particles_per_system: 6000, scale: 100.0 };
        let mut r2 = Runner::new(big, 6);
        assert_eq!(r2.size().particles_per_system, 6000);
        assert_eq!(r2.frames(), 6);
        assert!(
            r2.sequential_time(Experiment::Snow, 1.0) > fast,
            "4x particles must cost more than the cached tiny baseline"
        );
    }

    #[test]
    fn infinite_space_static_balancing_starves_processes() {
        // The Table 1 IS-SLB effect: odd process counts leave one busy
        // calculator; speed-up collapses below 1.
        let mut r = Runner::new(tiny(), 8);
        let base = r.baseline_gcc(Experiment::Snow);
        let odd = r.run(
            Experiment::Snow,
            myrinet_gcc(5, 1),
            SpaceMode::Infinite,
            BalanceMode::Static,
            base,
        );
        let even = r.run(
            Experiment::Snow,
            myrinet_gcc(4, 1),
            SpaceMode::Infinite,
            BalanceMode::Static,
            base,
        );
        assert!(odd.speedup < 1.2, "odd IS-SLB ≈ sequential: {}", odd.speedup);
        assert!(
            even.speedup > odd.speedup,
            "even split uses two calculators: {} vs {}",
            even.speedup,
            odd.speedup
        );
    }

    #[test]
    fn dynamic_balancing_recovers_infinite_space() {
        let mut r = Runner::new(tiny(), 12);
        let base = r.baseline_gcc(Experiment::Snow);
        let slb = r.run(
            Experiment::Snow,
            myrinet_gcc(5, 1),
            SpaceMode::Infinite,
            BalanceMode::Static,
            base,
        );
        let dlb = r.run(
            Experiment::Snow,
            myrinet_gcc(5, 1),
            SpaceMode::Infinite,
            BalanceMode::dynamic(),
            base,
        );
        assert!(
            dlb.speedup > slb.speedup * 1.3,
            "DLB must recover IS imbalance: {} vs {}",
            dlb.speedup,
            slb.speedup
        );
    }
}
