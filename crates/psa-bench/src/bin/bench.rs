//! `bench` — emit the machine-readable benchmark export.
//!
//! ```text
//! bench [--scale S] [--frames F] [--out PATH]
//! ```
//!
//! Runs Tables 1–3 plus the traced snow/fountain runs and writes
//! `BENCH_3.json` (default path). Exits non-zero if any metric is NaN,
//! non-finite, or empty — CI uploads the file as an artifact, so a broken
//! run must fail loudly rather than publish nulls.

use psa_bench::export;

struct Args {
    scale: f64,
    frames: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut scale = 10.0;
    let mut frames = 25;
    let mut out = "BENCH_3.json".to_string();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args.next().and_then(|v| v.parse().ok()).expect("--scale needs a number");
            }
            "--frames" => {
                frames = args.next().and_then(|v| v.parse().ok()).expect("--frames needs a number");
            }
            "--out" => {
                out = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    Args { scale, frames, out }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "collecting BENCH_3 (scale {}, {} frames) — tables 1-3 + traced snow/fountain runs",
        args.scale, args.frames
    );
    let data = export::collect(args.scale, args.frames);
    if let Err(e) = data.validate() {
        eprintln!("BENCH_3 validation failed: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&args.out, data.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    // A compact human echo of what was written.
    for t in &data.traced {
        eprintln!(
            "{:<9} {:<7} speedup {:5.2}  {:7.0} migrated/proc/frame  {:7.0} KB/frame",
            t.experiment, t.config, t.speedup, t.migrated_per_proc_frame, t.migration_kb_per_frame
        );
    }
    println!("wrote {}", args.out);
}
