//! `bench5` — emit the event-driven scaling export (`BENCH_5.json`).
//!
//! ```text
//! bench5 [--ranks 8,32,128,512,1024] [--frames F] [--systems N]
//!        [--particles P] [--scale S] [--out PATH]
//! ```
//!
//! Runs the `psa_desim::EventSim` scaling sweep (see `psa_bench::export5`):
//! rank counts × {snow, fountain, vortex} × {SLB, DLB} speed-up curves,
//! balancer round counts, and flat-versus-fat-tree makespans at the
//! largest rank count. Exits non-zero if any metric is NaN or empty, or if
//! no DLB cell recorded a balancer round. The CI smoke tier runs
//! `--ranks 8,64` with a trimmed workload; the full defaults reach the
//! 1,024-calculator × 100-system point and report its wall time.

use psa_bench::export5;

struct Args {
    ranks: Vec<usize>,
    frames: u64,
    systems: usize,
    particles: usize,
    scale: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut ranks: Vec<usize> = export5::BENCH5_RANKS.to_vec();
    let mut frames = 10;
    let mut systems = 100;
    let mut particles = 200;
    let mut scale = 50.0;
    let mut out = "BENCH_5.json".to_string();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ranks" => {
                let list = args.next().expect("--ranks needs a comma-separated list");
                ranks = list
                    .split(',')
                    .map(|v| v.trim().parse().expect("--ranks entries must be integers"))
                    .collect();
            }
            "--frames" => {
                frames = args.next().and_then(|v| v.parse().ok()).expect("--frames needs a number");
            }
            "--systems" => {
                systems =
                    args.next().and_then(|v| v.parse().ok()).expect("--systems needs a number");
            }
            "--particles" => {
                particles =
                    args.next().and_then(|v| v.parse().ok()).expect("--particles needs a number");
            }
            "--scale" => {
                scale = args.next().and_then(|v| v.parse().ok()).expect("--scale needs a number");
            }
            "--out" => {
                out = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if ranks.is_empty() {
        eprintln!("--ranks must name at least one rank count");
        std::process::exit(2);
    }
    Args { ranks, frames, systems, particles, scale, out }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "collecting BENCH_5 (ranks {:?}, {} systems x {} particles, {} frames)",
        args.ranks, args.systems, args.particles, args.frames
    );
    let data =
        export5::collect5(&args.ranks, args.frames, args.systems, args.particles, args.scale);
    if let Err(e) = data.validate() {
        eprintln!("BENCH_5 validation failed: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&args.out, data.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    for e in &data.experiments {
        for c in &e.cells {
            eprintln!(
                "{:<9} {:>5}r {}  speedup {:>8.2}  rounds {:>3}  imbalance {:>6.3}  wall {:>7.2}s",
                e.workload,
                c.ranks,
                c.balance,
                c.speedup,
                c.balance_rounds,
                c.mean_imbalance,
                c.wall_seconds
            );
        }
    }
    for t in &data.topology {
        eprintln!(
            "{:<9} {:>5}r topology: flat {:.3}s vs fat-tree(r{}) {:.3}s",
            t.workload, t.ranks, t.flat_makespan, t.radix, t.fat_tree_makespan
        );
    }
    println!("wrote {}", args.out);
}
