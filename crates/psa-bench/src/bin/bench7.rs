//! `bench7` — emit the session-pool service export (`BENCH_7.json`).
//!
//! ```text
//! bench7 [--sessions 100,300,1000] [--frames F] [--particles P]
//!        [--seed S] [--out PATH]
//! ```
//!
//! Runs the `psa_sessions::SessionManager` service sweep (see
//! `psa_bench::export7`): session counts × {snow, vortex} pools of 8
//! worker lanes, recording sessions/sec, p50/p99 frame latency, mean
//! queue wait, and slot-arena health, with one solo-parity spot check per
//! cell. Exits non-zero if any metric is NaN/degenerate, any pool left a
//! session unfinished, or any parity check failed. The CI smoke tier runs
//! `--sessions 20,50` with a trimmed workload; the full defaults reach
//! the 1,000-session point.

use psa_bench::export7;

struct Args {
    sessions: Vec<usize>,
    frames: u64,
    particles: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut sessions: Vec<usize> = export7::BENCH7_SESSIONS.to_vec();
    let mut frames = 10;
    let mut particles = 300;
    let mut seed = 0xBE7C_0007;
    let mut out = "BENCH_7.json".to_string();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sessions" => {
                let list = args.next().expect("--sessions needs a comma-separated list");
                sessions = list
                    .split(',')
                    .map(|v| v.trim().parse().expect("--sessions entries must be integers"))
                    .collect();
            }
            "--frames" => {
                frames = args.next().and_then(|v| v.parse().ok()).expect("--frames needs a number");
            }
            "--particles" => {
                particles =
                    args.next().and_then(|v| v.parse().ok()).expect("--particles needs a number");
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).expect("--seed needs a number");
            }
            "--out" => {
                out = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if sessions.is_empty() {
        eprintln!("--sessions must name at least one pool size");
        std::process::exit(2);
    }
    Args { sessions, frames, particles, seed, out }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "collecting BENCH_7 (sessions {:?}, {} frames x {} particles/system, seed {:#x})",
        args.sessions, args.frames, args.particles, args.seed
    );
    let data = export7::collect7(&args.sessions, args.frames, args.particles, args.seed);
    if let Err(e) = data.validate() {
        eprintln!("BENCH_7 validation failed: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&args.out, data.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    for c in &data.cells {
        eprintln!(
            "{:<8} {:>5} sessions  {:>8.2} sessions/s  p50 {:>8.4}s  p99 {:>8.4}s  wait {:>8.4}s  wall {:>6.2}s",
            c.workload,
            c.sessions,
            c.sessions_per_sec,
            c.p50_latency,
            c.p99_latency,
            c.mean_queue_wait,
            c.wall_seconds
        );
    }
    println!("wrote {}", args.out);
}
