//! `bench8` — emit the crash-recovery cost export (`BENCH_8.json`).
//!
//! ```text
//! bench8 [--calculators 4,8] [--intervals 2,3,4] [--crash-frames 2,4,5,8,11]
//!        [--frames F] [--particles P] [--seed S] [--out PATH]
//! ```
//!
//! Prices checkpoint recovery against restart-from-frame-0 (see
//! `psa_bench::export8`): for every (calculators, snapshot interval,
//! crash frame) cell, a calculator fail-stops mid-run and the engine
//! restores the last snapshot and replays. Exits non-zero if any metric
//! is NaN/degenerate, any recovered cell diverged from its uninterrupted
//! reference, or recovery failed to beat the restart cost for a crash at
//! or past the first snapshot. The CI smoke tier trims every axis; the
//! full defaults sweep 30 cells.

use psa_bench::export8;

struct Args {
    calculators: Vec<usize>,
    intervals: Vec<u64>,
    crash_frames: Vec<u64>,
    frames: u64,
    particles: usize,
    seed: u64,
    out: String,
}

fn parse_list<T: std::str::FromStr>(flag: &str, raw: Option<String>) -> Vec<T> {
    raw.unwrap_or_else(|| panic!("{flag} needs a comma-separated list"))
        .split(',')
        .map(|v| {
            v.trim()
                .parse()
                .unwrap_or_else(|_| panic!("{flag} entries must be integers, got `{v}`"))
        })
        .collect()
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut calculators = export8::BENCH8_CALCULATORS.to_vec();
    let mut intervals = export8::BENCH8_INTERVALS.to_vec();
    let mut crash_frames = export8::BENCH8_CRASH_FRAMES.to_vec();
    let mut frames = 12;
    let mut particles = 300;
    let mut seed = 0xBE7C_0008;
    let mut out = "BENCH_8.json".to_string();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--calculators" => calculators = parse_list("--calculators", args.next()),
            "--intervals" => intervals = parse_list("--intervals", args.next()),
            "--crash-frames" => crash_frames = parse_list("--crash-frames", args.next()),
            "--frames" => {
                frames = args.next().and_then(|v| v.parse().ok()).expect("--frames needs a number");
            }
            "--particles" => {
                particles =
                    args.next().and_then(|v| v.parse().ok()).expect("--particles needs a number");
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).expect("--seed needs a number");
            }
            "--out" => {
                out = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if calculators.is_empty() || intervals.is_empty() || crash_frames.is_empty() {
        eprintln!("every sweep axis needs at least one entry");
        std::process::exit(2);
    }
    Args { calculators, intervals, crash_frames, frames, particles, seed, out }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "collecting BENCH_8 (calculators {:?} x intervals {:?} x crashes {:?}, {} frames x {} particles/system, seed {:#x})",
        args.calculators, args.intervals, args.crash_frames, args.frames, args.particles, args.seed
    );
    let data = export8::collect8(
        &args.calculators,
        &args.intervals,
        &args.crash_frames,
        args.frames,
        args.particles,
        args.seed,
    );
    if let Err(e) = data.validate() {
        eprintln!("BENCH_8 validation failed: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&args.out, data.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    for c in &data.cells {
        eprintln!(
            "{:>2}c interval {:>2} crash@{:>2}  {}  replayed {:>2}  recovery {:>9.4}s  restart {:>9.4}s  saved {:>9.4}s",
            c.calculators,
            c.interval,
            c.crash_frame,
            if c.recovered { "recovered" } else { "degraded " },
            c.frames_replayed,
            c.recovery_cost,
            c.restart_cost,
            c.saved
        );
    }
    println!("wrote {}", args.out);
}
