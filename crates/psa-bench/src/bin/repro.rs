//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro table1 [--scale S] [--frames F]   Table 1 (snow, Myrinet+GCC)
//! repro table2 ...                        Table 2 (snow, FE+ICC, heterogeneous)
//! repro table3 ...                        Table 3 (fountain, Myrinet+GCC)
//! repro text-snow ...                     §5.1 in-text numbers
//! repro text-fountain ...                 §5.2 in-text numbers
//! repro reductions ...                    §5.3 time reductions
//! repro all ...                           everything above
//! ```
//!
//! Defaults: scale 10 (40k real particles stand for each 400k-particle
//! system), 25 frames. `--scale 1 --frames 30` runs the full paper size.

use psa_bench::tables::{self, format_table, CONFIG_COLUMNS};
use psa_bench::{paper, Experiment};
use psa_workloads::WorkloadSize;

struct Args {
    cmd: String,
    scale: f64,
    frames: u64,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "all".to_string());
    let mut scale = 10.0;
    let mut frames = 25;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args.next().and_then(|v| v.parse().ok()).expect("--scale needs a number");
            }
            "--frames" => {
                frames = args.next().and_then(|v| v.parse().ok()).expect("--frames needs a number");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    Args { cmd, scale, frames }
}

fn main() {
    let args = parse_args();
    let size = WorkloadSize::paper_scaled(args.scale);
    let frames = args.frames;
    println!(
        "# Reproduction: {} real particles/system stand for 400k (scale {}), {} frames\n",
        size.particles_per_system, args.scale, frames
    );
    let columns: Vec<&str> = CONFIG_COLUMNS.iter().map(|(c, _, _)| *c).collect();

    match args.cmd.as_str() {
        "table1" => print_table1(size, frames, &columns),
        "table2" => print_table2(size, frames),
        "table3" => print_table3(size, frames, &columns),
        "text-snow" => print_text(size, frames, Experiment::Snow),
        "text-fountain" => print_text(size, frames, Experiment::Fountain),
        "reductions" => print_reductions(size, frames),
        "all" => {
            print_table1(size, frames, &columns);
            print_table2(size, frames);
            print_table3(size, frames, &columns);
            print_text(size, frames, Experiment::Snow);
            print_text(size, frames, Experiment::Fountain);
            print_reductions(size, frames);
        }
        other => {
            eprintln!("unknown command: {other}");
            std::process::exit(2);
        }
    }
}

fn print_table1(size: WorkloadSize, frames: u64, columns: &[&str]) {
    let rows = tables::table1(size, frames);
    println!(
        "{}",
        format_table(
            "## Table 1 — Snow, Myrinet + GNU/GCC (speed-up vs sequential E800+GCC)",
            columns,
            &rows
        )
    );
}

fn print_table3(size: WorkloadSize, frames: u64, columns: &[&str]) {
    let rows = tables::table3(size, frames);
    println!(
        "{}",
        format_table(
            "## Table 3 — Fountain, Myrinet + GNU/GCC (speed-up vs sequential E800+GCC)",
            columns,
            &rows
        )
    );
}

fn print_table2(size: WorkloadSize, frames: u64) {
    let rows = tables::table2(size, frames);
    println!(
        "{}",
        format_table(
            "## Table 2 — Snow, Fast-Ethernet + ICC, FS-DLB (speed-up vs sequential Itanium+ICC)",
            &["Speed-Up"],
            &rows
        )
    );
}

fn print_text(size: WorkloadSize, frames: u64, exp: Experiment) {
    let tn = tables::text_numbers(size, frames);
    match exp {
        Experiment::Snow => {
            println!("## §5.1 in-text numbers — snow");
            println!(
                "exchange: {:.0} particles/process/frame (paper ≈ {:.0}); {:.0} KB/frame total (paper ≈ {:.0})",
                tn.snow_exchange.0,
                paper::SNOW_EXCHANGE_PER_PROC,
                tn.snow_exchange.1,
                paper::SNOW_EXCHANGE_TOTAL_KB
            );
            println!(
                "FE+ICC 8*B/16P: FS-DLB {:.2} (paper {:.2}), FS-SLB {:.2} (paper {:.2})",
                tn.snow_fe.0,
                paper::SNOW_FE_DLB,
                tn.snow_fe.1,
                paper::SNOW_FE_SLB_FS
            );
            println!(
                "4*B + 4*A Myrinet: 8P {:.2} (paper {:.2}), 16P {:.2} (paper {:.2})\n",
                tn.snow_mixed.0,
                paper::SNOW_MIXED_8P,
                tn.snow_mixed.1,
                paper::SNOW_MIXED_16P
            );
        }
        Experiment::Fountain => {
            println!("## §5.2 in-text numbers — fountain");
            println!(
                "exchange: {:.0} particles/process/frame (paper ≈ {:.0}); {:.0} KB/frame total (paper ≈ {:.0})",
                tn.fountain_exchange.0,
                paper::FOUNTAIN_EXCHANGE_PER_PROC,
                tn.fountain_exchange.1,
                paper::FOUNTAIN_EXCHANGE_TOTAL_KB
            );
            println!(
                "16 nodes (8*B + 8*A) Myrinet: {:.2} (paper {:.2})",
                tn.fountain_16_nodes,
                paper::FOUNTAIN_16_NODES
            );
            println!(
                "best Fast-Ethernet (2*B(4P)+2*C(2P)): {:.2} (paper {:.2})\n",
                tn.fountain_fe_best,
                paper::FOUNTAIN_FE_BEST
            );
        }
    }
}

fn print_reductions(size: WorkloadSize, frames: u64) {
    let r = tables::reductions(size, frames);
    println!("## §5.3 time reductions");
    println!("snow over Myrinet:       {:.0}% (paper {:.0}%)", r.snow_myrinet.0, r.snow_myrinet.1);
    println!("snow over Fast-Ethernet: {:.0}% (paper {:.0}%)", r.snow_fe.0, r.snow_fe.1);
    println!(
        "fountain over Myrinet:   {:.0}% (paper {:.0}%)\n",
        r.fountain_myrinet.0, r.fountain_myrinet.1
    );
}
