//! `bench4` — emit the parallel-kernel export (`BENCH_4.json`).
//!
//! ```text
//! bench4 [--scale S] [--frames F] [--out PATH]
//! ```
//!
//! Runs the worker-count sweep over snow and fountain (see
//! `psa_bench::export4`) and measures the frame hot path's allocation
//! counts with a counting global allocator: the same exchange-staging loop
//! is driven once in its seed form (fresh `Vec`s every frame, allocating
//! `collect_leavers`) and once in its reworked form
//! (`collect_leavers_into` + reused buffers), and the per-frame heap
//! allocation counts of both land in the export. Exits non-zero if any
//! metric is NaN, the fingerprints differ across worker counts, or the hot
//! path fails to allocate less than the naive staging.

// A counting `#[global_allocator]` is the whole point of this binary and
// `GlobalAlloc` is an unsafe trait; the impl below only delegates to
// `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use psa_bench::export4::{self, AllocationCounts};
use psa_core::{Particle, SubDomainStore};
use psa_math::{Axis, Interval, Rng64, Vec3};

/// Counts every heap allocation made by this binary.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic
// with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const STAGE_PARTICLES: usize = 4_000;
const STAGE_DESTS: usize = 8;
const STAGE_FRAMES: u64 = 32;

/// A store over [0, 10) with particles spread across it; `drift` moves a
/// band of them out of the slice each "frame" so the staging loop has real
/// leavers to route.
fn staging_store() -> SubDomainStore {
    let slice = Interval::new(0.0, 10.0);
    let mut store = SubDomainStore::new(slice, Axis::X, STAGE_DESTS);
    let mut rng = Rng64::new(0xBE4C);
    for _ in 0..STAGE_PARTICLES {
        store.insert(Particle::at(Vec3::new(rng.range(0.0, 10.0), 0.0, 0.0)));
    }
    store
}

fn drift(store: &mut SubDomainStore, frame: u64) {
    // Alternate direction so the population never leaks away.
    let dx = if frame.is_multiple_of(2) { 0.6 } else { -0.6 };
    store.for_each_mut(|p| p.position.x += dx);
}

fn dest_of(p: &Particle) -> usize {
    ((p.position.x.abs() as usize) + 1) % STAGE_DESTS
}

/// Seed-form staging: every frame allocates its leaver vector and a fresh
/// per-destination spine.
fn run_naive(store: &mut SubDomainStore) -> u64 {
    let before = allocs();
    for frame in 0..STAGE_FRAMES {
        drift(store, frame);
        let leavers = store.collect_leavers();
        let mut per_dest: Vec<Vec<Particle>> = vec![Vec::new(); STAGE_DESTS];
        for p in leavers {
            per_dest[dest_of(&p)].push(p);
        }
        for batch in per_dest {
            store.extend(batch);
        }
    }
    (allocs() - before) / STAGE_FRAMES
}

/// Reworked staging: `collect_leavers_into` plus buffers reused across
/// frames — the steady state allocates nothing.
fn run_hot_path(store: &mut SubDomainStore) -> u64 {
    let mut leavers: Vec<Particle> = Vec::new();
    let mut per_dest: Vec<Vec<Particle>> = (0..STAGE_DESTS).map(|_| Vec::new()).collect();
    // Warm the buffers so the measured frames see the steady state.
    drift(store, 0);
    store.collect_leavers_into(&mut leavers);
    for p in leavers.drain(..) {
        per_dest[dest_of(&p)].push(p);
    }
    for batch in per_dest.iter_mut() {
        store.extend(batch.drain(..));
    }
    let before = allocs();
    for frame in 1..=STAGE_FRAMES {
        drift(store, frame);
        store.collect_leavers_into(&mut leavers);
        for p in leavers.drain(..) {
            per_dest[dest_of(&p)].push(p);
        }
        for batch in per_dest.iter_mut() {
            store.extend(batch.drain(..));
        }
    }
    (allocs() - before) / STAGE_FRAMES
}

fn measure_allocations() -> AllocationCounts {
    let mut naive_store = staging_store();
    let naive_per_frame = run_naive(&mut naive_store);
    let mut hot_store = staging_store();
    let hot_path_per_frame = run_hot_path(&mut hot_store);
    AllocationCounts { naive_per_frame, hot_path_per_frame }
}

struct Args {
    scale: f64,
    frames: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut scale = 10.0;
    let mut frames = 25;
    let mut out = "BENCH_4.json".to_string();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args.next().and_then(|v| v.parse().ok()).expect("--scale needs a number");
            }
            "--frames" => {
                frames = args.next().and_then(|v| v.parse().ok()).expect("--frames needs a number");
            }
            "--out" => {
                out = args.next().expect("--out needs a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    Args { scale, frames, out }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "collecting BENCH_4 (scale {}, {} frames) — worker sweep + allocation counts",
        args.scale, args.frames
    );
    let allocations = measure_allocations();
    let data = export4::collect4(args.scale, args.frames, allocations);
    if let Err(e) = data.validate() {
        eprintln!("BENCH_4 validation failed: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&args.out, data.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    for e in &data.experiments {
        let s4 = e.scaling.iter().find(|s| s.workers == 4).map_or(0.0, |s| s.speedup);
        eprintln!(
            "{:<9} chunks {:>7}  4-worker compute speedup {:4.2}  fingerprint invariant: {}",
            e.experiment, e.total_chunks, s4, e.fingerprint_invariant
        );
    }
    eprintln!(
        "staging allocations/frame: naive {} -> hot path {}",
        data.allocations.naive_per_frame, data.allocations.hot_path_per_frame
    );
    println!("wrote {}", args.out);
}
