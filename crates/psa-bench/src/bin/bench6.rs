//! `bench6` — emit the balancer-suite matrix export (`BENCH_6.json`).
//!
//! ```text
//! bench6 [--ranks 8,32,128,512,1024] [--frames F] [--systems N]
//!        [--particles P] [--scale S] [--out PATH]
//! ```
//!
//! Runs the full (workload × scenario × strategy) matrix of
//! `psa_bench::export6`: snow/fountain/vortex × {baseline, degraded
//! manager links} × {SLB, DLB-paper, DLB-adapt, DEC, DIF, SFC} at every
//! requested rank count. Exits non-zero if any metric is NaN or missing,
//! or — whenever the sweep reaches 128 ranks — if the acceptance gates
//! fail: the paper config must stay dead and inverted on vortex, every
//! suite strategy must stay live, at least one must beat the SLB
//! makespan, and a decentralized strategy must beat the centralized one
//! under the degraded manager. The CI smoke tier runs `--ranks 8,64`
//! with a trimmed workload (structure-only validation).

use psa_bench::export6;

struct Args {
    ranks: Vec<usize>,
    frames: u64,
    systems: usize,
    particles: usize,
    scale: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut ranks: Vec<usize> = export6::BENCH6_RANKS.to_vec();
    let mut frames = 60;
    let mut systems = 1;
    let mut particles = 700;
    let mut scale = 500.0;
    let mut out = "BENCH_6.json".to_string();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ranks" => {
                let list = args.next().expect("--ranks needs a comma-separated list");
                ranks = list
                    .split(',')
                    .map(|v| v.trim().parse().expect("--ranks entries must be integers"))
                    .collect();
            }
            "--frames" => {
                frames = args.next().and_then(|v| v.parse().ok()).expect("--frames needs a number");
            }
            "--systems" => {
                systems =
                    args.next().and_then(|v| v.parse().ok()).expect("--systems needs a number");
            }
            "--particles" => {
                particles =
                    args.next().and_then(|v| v.parse().ok()).expect("--particles needs a number");
            }
            "--scale" => {
                scale = args.next().and_then(|v| v.parse().ok()).expect("--scale needs a number");
            }
            "--out" => {
                out = args.next().expect("--out needs a path");
            }
            other => panic!("unknown argument {other}"),
        }
    }
    Args { ranks, frames, systems, particles, scale, out }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "bench6: ranks {:?}, {} system(s) x {} particles, scale {}, {} frames",
        args.ranks, args.systems, args.particles, args.scale, args.frames
    );
    let export =
        export6::collect6(&args.ranks, args.frames, args.systems, args.particles, args.scale);
    for e in &export.experiments {
        for c in &e.cells {
            eprintln!(
                "{:<9} {:>5}r {:<12} {:<10} makespan {:>9.4}  orders {:>9}  imb {:>7.3} -> {:>7.3}  wall {:>6.2}s",
                e.workload,
                c.ranks,
                c.scenario,
                c.strategy,
                c.makespan,
                c.orders,
                c.mean_imbalance,
                c.final_imbalance,
                c.wall_seconds
            );
        }
    }
    if let Err(e) = export.validate() {
        eprintln!("bench6: validation failed: {e}");
        std::process::exit(1);
    }
    std::fs::write(&args.out, export.to_json()).expect("write export");
    eprintln!("wrote {}", args.out);
}
