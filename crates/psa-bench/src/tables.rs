//! Regeneration of every table and in-text number of the paper.

use psa_runtime::{BalanceMode, SpaceMode};
use psa_workloads::{myrinet_gcc, table1_rows, table2_rows, WorkloadSize};

use crate::paper;
use crate::runner::{Experiment, Runner};

/// One reproduced table row: measured speed-ups next to the paper's.
#[derive(Clone, Debug)]
pub struct TableRow {
    pub label: String,
    /// Measured speed-ups, one per column.
    pub ours: Vec<f64>,
    /// Paper speed-ups, one per column.
    pub paper: Vec<f64>,
}

/// The four configuration columns of Tables 1 and 3.
pub const CONFIG_COLUMNS: [(&str, SpaceMode, bool); 4] = [
    ("IS-SLB", SpaceMode::Infinite, false),
    ("FS-SLB", SpaceMode::Finite, false),
    ("IS-DLB", SpaceMode::Infinite, true),
    ("FS-DLB", SpaceMode::Finite, true),
];

fn balance_of(dynamic: bool) -> BalanceMode {
    if dynamic {
        BalanceMode::dynamic()
    } else {
        BalanceMode::Static
    }
}

fn myrinet_table(
    exp: Experiment,
    paper_vals: &[[f64; 4]; 6],
    size: WorkloadSize,
    frames: u64,
) -> Vec<TableRow> {
    let mut runner = Runner::new(size, frames);
    let base = runner.baseline_gcc(exp);
    table1_rows()
        .into_iter()
        .zip(paper_vals.iter())
        .map(|((label, nodes, ppn), paper_row)| {
            let ours: Vec<f64> = CONFIG_COLUMNS
                .iter()
                .map(|(_, space, dynamic)| {
                    runner
                        .run(exp, myrinet_gcc(nodes, ppn), *space, balance_of(*dynamic), base)
                        .speedup
                })
                .collect();
            TableRow { label: label.to_string(), ours, paper: paper_row.to_vec() }
        })
        .collect()
}

/// Table 1: snow on Myrinet + GCC across the IS/FS × SLB/DLB matrix.
pub fn table1(size: WorkloadSize, frames: u64) -> Vec<TableRow> {
    myrinet_table(Experiment::Snow, &paper::TABLE1, size, frames)
}

/// Table 3: fountain on Myrinet + GCC, same matrix.
pub fn table3(size: WorkloadSize, frames: u64) -> Vec<TableRow> {
    myrinet_table(Experiment::Fountain, &paper::TABLE3, size, frames)
}

/// Table 2: snow on the heterogeneous Fast-Ethernet + ICC mixes, FS-DLB,
/// against the Itanium ICC sequential baseline.
pub fn table2(size: WorkloadSize, frames: u64) -> Vec<TableRow> {
    let mut runner = Runner::new(size, frames);
    let base = runner.baseline_icc(Experiment::Snow);
    table2_rows()
        .into_iter()
        .zip(paper::TABLE2.iter())
        .map(|((label, cluster), &paper_v)| {
            let out = runner.run(
                Experiment::Snow,
                cluster,
                SpaceMode::Finite,
                BalanceMode::dynamic(),
                base,
            );
            TableRow { label: label.to_string(), ours: vec![out.speedup], paper: vec![paper_v] }
        })
        .collect()
}

/// The in-text §5.1/§5.2 numbers: migration volumes and the named runs.
#[derive(Clone, Debug)]
pub struct TextNumbers {
    /// (per-process particles/frame, total KB/frame) for snow at 16 procs.
    pub snow_exchange: (f64, f64),
    /// Same for fountain.
    pub fountain_exchange: (f64, f64),
    /// Snow FE+ICC 16P: (FS-DLB, FS-SLB).
    pub snow_fe: (f64, f64),
    /// Snow 4*B+4*A Myrinet: (8P, 16P).
    pub snow_mixed: (f64, f64),
    /// Fountain 8*B+8*A (16 nodes, 16 P.), Myrinet.
    pub fountain_16_nodes: f64,
    /// Fountain best Fast-Ethernet (2*B(4P)+2*C(2P), FS-DLB).
    pub fountain_fe_best: f64,
}

/// Regenerate the in-text numbers.
pub fn text_numbers(size: WorkloadSize, frames: u64) -> TextNumbers {
    use cluster_sim::ClusterSpec;
    use cluster_sim::{e60, e800, zx2000, Compiler, NetworkModel};

    let mut runner = Runner::new(size, frames);

    // Exchange volumes measured on the 8*B/16P Myrinet FS-SLB runs (static
    // domains — with DLB active the cuts crowd into dense regions and
    // boundary-crossing rates rise above what the paper reports).
    let base_gcc_snow = runner.baseline_gcc(Experiment::Snow);
    let snow16 = runner.run(
        Experiment::Snow,
        myrinet_gcc(8, 2),
        SpaceMode::Finite,
        BalanceMode::Static,
        base_gcc_snow,
    );
    let procs = 16.0;
    let snow_exchange = (snow16.report.mean_migrated() / procs, snow16.report.mean_migration_kb());

    let base_gcc_fountain = runner.baseline_gcc(Experiment::Fountain);
    let fountain16 = runner.run(
        Experiment::Fountain,
        myrinet_gcc(8, 2),
        SpaceMode::Finite,
        BalanceMode::Static,
        base_gcc_fountain,
    );
    let fountain_exchange =
        (fountain16.report.mean_migrated() / procs, fountain16.report.mean_migration_kb());

    // Snow on Fast-Ethernet + ICC, 8 E800 / 16 P.
    let fe_cluster =
        || ClusterSpec::homogeneous(NetworkModel::fast_ethernet(), Compiler::Icc, e800(), 8, 2);
    let base_icc_snow = runner.baseline_icc(Experiment::Snow);
    let snow_fe_dlb = runner
        .run(
            Experiment::Snow,
            fe_cluster(),
            SpaceMode::Finite,
            BalanceMode::dynamic(),
            base_icc_snow,
        )
        .speedup;
    let snow_fe_slb = runner
        .run(Experiment::Snow, fe_cluster(), SpaceMode::Finite, BalanceMode::Static, base_icc_snow)
        .speedup;

    // Snow mixed 4*B + 4*A on Myrinet + GCC (8 and 16 processes).
    let mixed = |ppn: usize| {
        ClusterSpec::new(NetworkModel::myrinet(), Compiler::Gcc)
            .add_nodes(e800(), 4, ppn)
            .add_nodes(e60(), 4, ppn)
    };
    let snow_mixed_8 = runner
        .run(Experiment::Snow, mixed(1), SpaceMode::Finite, BalanceMode::dynamic(), base_gcc_snow)
        .speedup;
    let snow_mixed_16 = runner
        .run(Experiment::Snow, mixed(2), SpaceMode::Finite, BalanceMode::dynamic(), base_gcc_snow)
        .speedup;

    // Fountain on 16 nodes (8*B + 8*A), Myrinet + GCC.
    let sixteen_nodes = ClusterSpec::new(NetworkModel::myrinet(), Compiler::Gcc)
        .add_nodes(e800(), 8, 1)
        .add_nodes(e60(), 8, 1);
    let fountain_16 = runner
        .run(
            Experiment::Fountain,
            sixteen_nodes,
            SpaceMode::Finite,
            BalanceMode::dynamic(),
            base_gcc_fountain,
        )
        .speedup;

    // Fountain best FE: 2*B (4P) + 2*C (2P), FS-DLB vs Itanium ICC.
    let base_icc_fountain = runner.baseline_icc(Experiment::Fountain);
    let fe_best_cluster = ClusterSpec::new(NetworkModel::fast_ethernet(), Compiler::Icc)
        .add_nodes(e800(), 2, 2)
        .add_nodes(zx2000(), 2, 1);
    let fountain_fe = runner
        .run(
            Experiment::Fountain,
            fe_best_cluster,
            SpaceMode::Finite,
            BalanceMode::dynamic(),
            base_icc_fountain,
        )
        .speedup;

    TextNumbers {
        snow_exchange,
        fountain_exchange,
        snow_fe: (snow_fe_dlb, snow_fe_slb),
        snow_mixed: (snow_mixed_8, snow_mixed_16),
        fountain_16_nodes: fountain_16,
        fountain_fe_best: fountain_fe,
    }
}

/// §5.3's time reductions, derived from the best measured speed-ups.
pub struct Reductions {
    /// (ours %, paper %) — snow over Myrinet.
    pub snow_myrinet: (f64, f64),
    /// snow over Fast-Ethernet.
    pub snow_fe: (f64, f64),
    /// fountain over Myrinet.
    pub fountain_myrinet: (f64, f64),
}

/// Compute the §5.3 reductions from fresh best-config runs.
pub fn reductions(size: WorkloadSize, frames: u64) -> Reductions {
    let t1 = table1(size, frames);
    let t3 = table3(size, frames);
    let best = |rows: &[TableRow]| -> f64 {
        rows.iter().flat_map(|r| r.ours.iter().copied()).fold(0.0, f64::max)
    };
    let tn = text_numbers(size, frames);
    Reductions {
        snow_myrinet: (paper::reduction_pct(best(&t1)), paper::REDUCTION_SNOW_MYRINET),
        snow_fe: (paper::reduction_pct(tn.snow_fe.0.max(tn.snow_fe.1)), paper::REDUCTION_SNOW_FE),
        fountain_myrinet: (paper::reduction_pct(best(&t3)), paper::REDUCTION_FOUNTAIN_MYRINET),
    }
}

/// Render rows as an aligned text table.
pub fn format_table(title: &str, columns: &[&str], rows: &[TableRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!("{:<34}", "Nodes vs. Processes"));
    for c in columns {
        s.push_str(&format!("{c:>9}{:>9}", format!("(paper)")));
    }
    s.push('\n');
    for r in rows {
        s.push_str(&format!("{:<34}", r.label));
        for (o, p) in r.ours.iter().zip(r.paper.iter()) {
            s.push_str(&format!("{o:>9.2}{p:>9.2}"));
        }
        s.push('\n');
    }
    s
}
