//! Machine-readable parallel-kernel export (`BENCH_4.json`).
//!
//! Quantifies the intra-rank chunked kernel (`psa_core::kernel`) on the
//! paper workloads:
//!
//! * **Worker-count invariance** — the same seed and chunk size must yield
//!   byte-identical [`RunReport::fingerprint`]s at 1, 2, 4 and 8 workers.
//!   This is the kernel's determinism contract, checked on real traced
//!   virtual runs of snow and fountain.
//! * **Compute-phase scaling** — per-frame chunk counts are measured by the
//!   trace recorder (`compute_chunks`), and the compute-phase time at `w`
//!   workers is projected with the busiest-worker chunk-schedule bound
//!   [`kernel::parallel_scale`]: `t_w = Σ_frames t_f · ⌈chunks_f/w⌉ /
//!   chunks_f`. The projection is deterministic (virtual-time philosophy:
//!   CI machines with one core report the same numbers as a 32-core box);
//!   real `thread::scope` workers exist for multicore hosts but are never
//!   what the gate measures.
//! * **Frame hot-path allocations** — the `bench4` binary counts heap
//!   allocations per frame of exchange staging before (fresh vectors +
//!   `collect_leavers`) and after (`collect_leavers_into` + reused
//!   buffers) the allocation-free rework, via a counting global allocator.
//!
//! Like `BENCH_3`, the JSON is hand-rolled and [`Bench4Export::validate`]
//! rejects NaN/empty metrics before anything is written.

use psa_core::kernel;
use psa_runtime::{ParallelConfig, RunReport, VirtualSim};
use psa_trace::Phase;
use psa_workloads::{myrinet_gcc, paper_run_config, WorkloadSize};

use crate::runner::Experiment;

/// Chunk size every BENCH_4 run uses (the kernel default).
pub const BENCH4_CHUNK: usize = kernel::DEFAULT_CHUNK;

/// Worker counts the scaling sweep covers.
pub const BENCH4_WORKERS: &[usize] = &[1, 2, 4, 8];

/// One point of the compute-phase scaling sweep.
#[derive(Clone, Copy, Debug)]
pub struct WorkerScale {
    pub workers: usize,
    /// Projected compute-phase seconds (busiest-worker bound over the
    /// measured per-frame chunk counts).
    pub compute_time: f64,
    /// `compute_time(1) / compute_time(workers)`.
    pub speedup: f64,
    /// Fingerprint of the traced run executed at this worker count.
    pub fingerprint: u64,
}

/// One experiment's kernel measurements.
#[derive(Clone, Debug)]
pub struct Bench4Experiment {
    pub experiment: &'static str,
    pub chunk: usize,
    /// Kernel chunks processed over the whole run (all frames, all ranks).
    pub total_chunks: u64,
    /// All worker counts produced the same run fingerprint.
    pub fingerprint_invariant: bool,
    pub scaling: Vec<WorkerScale>,
}

/// Heap allocations per frame of exchange staging, measured by `bench4`'s
/// counting allocator.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllocationCounts {
    /// Seed-style staging: fresh `Vec`s every frame.
    pub naive_per_frame: u64,
    /// Reworked staging: `collect_leavers_into` + reused buffers.
    pub hot_path_per_frame: u64,
}

/// Everything `BENCH_4.json` carries.
pub struct Bench4Export {
    pub scale: f64,
    pub frames: u64,
    pub experiments: Vec<Bench4Experiment>,
    pub allocations: AllocationCounts,
}

/// One traced virtual run at the given worker count.
fn traced_run(exp: Experiment, size: WorkloadSize, frames: u64, workers: usize) -> RunReport {
    let scene = exp.scene(size);
    let mut cfg = paper_run_config(frames, exp.dt());
    cfg.parallel = ParallelConfig { workers, chunk: BENCH4_CHUNK };
    VirtualSim::new(scene, cfg, myrinet_gcc(8, 2), size.cost_model()).with_phases().run()
}

/// Projected compute-phase time at `workers` from the 1-worker trace:
/// each frame's compute seconds shrink by the busiest-worker bound for
/// that frame's measured chunk count.
fn projected_compute_time(report: &RunReport, workers: usize) -> f64 {
    let phases = report.phases.as_ref().expect("traced run carries phases");
    phases
        .frames
        .iter()
        .map(|f| {
            let t = f.phase_totals()[Phase::Compute.index()];
            t * kernel::parallel_scale(f.counters.compute_chunks, workers)
        })
        .sum()
}

/// Run the sweep and assemble the export. `allocations` comes from the
/// caller (the `bench4` binary hosts the counting allocator).
pub fn collect4(scale: f64, frames: u64, allocations: AllocationCounts) -> Bench4Export {
    let size = WorkloadSize::paper_scaled(scale);
    let mut experiments = Vec::new();
    for exp in [Experiment::Snow, Experiment::Fountain] {
        let reports: Vec<RunReport> =
            BENCH4_WORKERS.iter().map(|&w| traced_run(exp, size, frames, w)).collect();
        let fp0 = reports[0].fingerprint();
        let fingerprint_invariant = reports.iter().all(|r| r.fingerprint() == fp0);
        let base = &reports[0];
        let total_chunks = base
            .phases
            .as_ref()
            .expect("traced run carries phases")
            .counter_totals()
            .compute_chunks;
        let t1 = projected_compute_time(base, 1);
        let scaling = BENCH4_WORKERS
            .iter()
            .zip(&reports)
            .map(|(&w, r)| {
                let tw = projected_compute_time(base, w);
                WorkerScale {
                    workers: w,
                    compute_time: tw,
                    speedup: if tw > 0.0 { t1 / tw } else { 0.0 },
                    fingerprint: r.fingerprint(),
                }
            })
            .collect();
        experiments.push(Bench4Experiment {
            experiment: exp.name(),
            chunk: BENCH4_CHUNK,
            total_chunks,
            fingerprint_invariant,
            scaling,
        });
    }
    Bench4Export { scale, frames, experiments, allocations }
}

impl Bench4Export {
    /// Reject empty sweeps, non-finite metrics, broken invariance, and a
    /// hot path that fails to beat the naive staging.
    pub fn validate(&self) -> Result<(), String> {
        if self.experiments.is_empty() {
            return Err("no experiments collected".into());
        }
        for e in &self.experiments {
            let tag = format!("experiment {}", e.experiment);
            if !e.fingerprint_invariant {
                return Err(format!("{tag}: fingerprints differ across worker counts"));
            }
            if e.total_chunks == 0 {
                return Err(format!("{tag}: no kernel chunks recorded"));
            }
            if e.scaling.len() != BENCH4_WORKERS.len() {
                return Err(format!("{tag}: incomplete scaling sweep"));
            }
            for s in &e.scaling {
                if !s.compute_time.is_finite() || s.compute_time <= 0.0 {
                    return Err(format!(
                        "{tag}: compute_time({}) is {}",
                        s.workers, s.compute_time
                    ));
                }
                if !s.speedup.is_finite() || s.speedup < 1.0 - 1e-9 {
                    return Err(format!("{tag}: speedup({}) is {}", s.workers, s.speedup));
                }
            }
        }
        let a = &self.allocations;
        if a.naive_per_frame == 0 {
            return Err("allocation micro-bench recorded no naive allocations".into());
        }
        if a.hot_path_per_frame >= a.naive_per_frame {
            return Err(format!(
                "hot path must allocate less than naive staging: {} >= {}",
                a.hot_path_per_frame, a.naive_per_frame
            ));
        }
        Ok(())
    }

    /// Serialize to the `BENCH_4.json` schema.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": 4,\n");
        s.push_str(&format!(
            "  \"workload\": {{\"scale\": {}, \"frames\": {}}},\n",
            json_f64(self.scale),
            self.frames
        ));
        s.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"experiment\": \"{}\",\n", e.experiment));
            s.push_str(&format!("      \"chunk\": {},\n", e.chunk));
            s.push_str(&format!("      \"total_chunks\": {},\n", e.total_chunks));
            s.push_str(&format!("      \"fingerprint_invariant\": {},\n", e.fingerprint_invariant));
            s.push_str("      \"scaling\": [\n");
            for (j, w) in e.scaling.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"workers\": {}, \"compute_time\": {}, \"speedup\": {}, \"fingerprint\": {}}}{}\n",
                    w.workers,
                    json_f64(w.compute_time),
                    json_f64(w.speedup),
                    w.fingerprint,
                    if j + 1 < e.scaling.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.experiments.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"allocations\": {{\"naive_per_frame\": {}, \"hot_path_per_frame\": {}}}\n",
            self.allocations.naive_per_frame, self.allocations.hot_path_per_frame
        ));
        s.push_str("}\n");
        s
    }
}

/// JSON-safe float (validation upstream keeps non-finite values out of
/// written files).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> Bench4Export {
        collect4(50.0, 8, AllocationCounts { naive_per_frame: 10, hot_path_per_frame: 2 })
    }

    #[test]
    fn collect_produces_valid_export() {
        let e = smoke();
        e.validate().expect("smoke export must validate");
        assert_eq!(e.experiments.len(), 2, "snow + fountain");
        for exp in &e.experiments {
            assert!(exp.fingerprint_invariant, "{}: fingerprints must match", exp.experiment);
            let s4 = exp.scaling.iter().find(|s| s.workers == 4).expect("4-worker point");
            assert!(
                s4.speedup > 1.5,
                "{}: 4-worker compute speedup {} <= 1.5",
                exp.experiment,
                s4.speedup
            );
        }
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let j = smoke().to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in [
            "\"bench\": 4",
            "\"experiments\"",
            "\"scaling\"",
            "\"allocations\"",
            "\"fingerprint_invariant\": true",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    #[test]
    fn validate_rejects_regressions() {
        let mut e = smoke();
        e.allocations.hot_path_per_frame = e.allocations.naive_per_frame;
        assert!(e.validate().is_err(), "hot path not better than naive must fail");
        let mut e2 = smoke();
        e2.experiments[0].fingerprint_invariant = false;
        assert!(e2.validate().is_err(), "broken invariance must fail");
        let mut e3 = smoke();
        e3.experiments[0].scaling[1].compute_time = f64::NAN;
        assert!(e3.validate().is_err(), "NaN must fail");
    }
}
