//! Minimal micro-benchmark harness.
//!
//! The workspace builds offline, so the benches can't pull in criterion;
//! this module provides the small subset the bench targets need: named
//! groups, warm-up, repeated timed samples, and median/min reporting. Bench
//! binaries use `harness = false` and drive this from `main`.

use std::hint::black_box;
use std::time::Instant;

/// Samples per benchmark (after one warm-up run). Override with
/// `PSA_BENCH_SAMPLES`.
fn samples() -> usize {
    std::env::var("PSA_BENCH_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(15)
}

/// A named group of measurements, printed criterion-style.
#[derive(Debug)]
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    pub fn new(name: &str) -> Self {
        println!("group {name}");
        Group { name: name.into(), samples: samples() }
    }

    /// Time `f` for `samples` runs; prints median and min.
    pub fn bench<T>(&self, label: &str, mut f: impl FnMut() -> T) {
        let mut times = Vec::with_capacity(self.samples);
        black_box(f()); // warm-up
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_secs_f64());
        }
        report(&self.name, label, &mut times);
    }

    /// Time `run` over fresh state from `setup` (setup time excluded).
    pub fn bench_batched<S, T>(
        &self,
        label: &str,
        mut setup: impl FnMut() -> S,
        mut run: impl FnMut(S) -> T,
    ) {
        let mut times = Vec::with_capacity(self.samples);
        black_box(run(setup())); // warm-up
        for _ in 0..self.samples {
            let state = setup();
            let t0 = Instant::now();
            black_box(run(state));
            times.push(t0.elapsed().as_secs_f64());
        }
        report(&self.name, label, &mut times);
    }
}

fn report(group: &str, label: &str, times: &mut [f64]) {
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    let min = times[0];
    println!("  {group}/{label}: median {} min {}", fmt_time(median), fmt_time(min));
}

fn fmt_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}
