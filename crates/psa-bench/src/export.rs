//! Machine-readable benchmark export (`BENCH_3.json`).
//!
//! Collects every table of the paper plus two traced runs per workload
//! (FS-SLB to match the §5.1/§5.2 exchange-volume measurements, FS-DLB for
//! the headline configuration), each carrying its full per-frame per-phase
//! breakdown from `psa-trace`. The JSON is hand-rolled — the workspace is
//! offline and deliberately serde-free — and [`BenchExport::validate`]
//! rejects NaN or empty metrics before anything is written, so a CI
//! artifact either contains real numbers or the job fails.

use psa_runtime::{BalanceMode, SpaceMode};
use psa_trace::TraceReport;
use psa_workloads::{myrinet_gcc, WorkloadSize};

use crate::runner::{Experiment, Runner};
use crate::tables::{self, TableRow, CONFIG_COLUMNS};

/// One instrumented run: a headline speed-up plus the phase trace behind it.
pub struct TracedRun {
    pub experiment: &'static str,
    /// Space/balance column label (`FS-SLB`, `FS-DLB`, ...).
    pub config: &'static str,
    /// Human cluster description, paper notation.
    pub cluster: String,
    pub processes: usize,
    pub speedup: f64,
    /// Mean particles shipped per process per steady frame (paper scale).
    pub migrated_per_proc_frame: f64,
    /// Mean migrated payload per steady frame, KB (paper scale).
    pub migration_kb_per_frame: f64,
    pub phases: TraceReport,
}

/// Everything `BENCH_3.json` carries.
pub struct BenchExport {
    pub scale: f64,
    pub size: WorkloadSize,
    pub frames: u64,
    pub table1: Vec<TableRow>,
    pub table2: Vec<TableRow>,
    pub table3: Vec<TableRow>,
    pub traced: Vec<TracedRun>,
}

/// Run the full matrix once and assemble the export.
pub fn collect(scale: f64, frames: u64) -> BenchExport {
    let size = WorkloadSize::paper_scaled(scale);
    let table1 = tables::table1(size, frames);
    let table2 = tables::table2(size, frames);
    let table3 = tables::table3(size, frames);

    let mut runner = Runner::new(size, frames);
    let mut traced = Vec::new();
    for exp in [Experiment::Snow, Experiment::Fountain] {
        let base = runner.baseline_gcc(exp);
        // FS-SLB on 8*B/16P is where the paper measures exchange volumes;
        // FS-DLB on the same machines is the headline configuration.
        for (config, balance) in
            [("FS-SLB", BalanceMode::Static), ("FS-DLB", BalanceMode::dynamic())]
        {
            let out = runner.run_traced(exp, myrinet_gcc(8, 2), SpaceMode::Finite, balance, base);
            let procs = 16usize;
            traced.push(TracedRun {
                experiment: exp.name(),
                config,
                cluster: "8*B, 16 P., Myrinet+GCC".to_string(),
                processes: procs,
                speedup: out.speedup,
                migrated_per_proc_frame: out.report.mean_migrated() / procs as f64,
                migration_kb_per_frame: out.report.mean_migration_kb(),
                phases: out.report.phases.expect("traced run must carry a phase trace"),
            });
        }
    }
    BenchExport { scale, size, frames, table1, table2, table3, traced }
}

impl BenchExport {
    /// Reject empty tables, empty traces, and any non-finite metric. The
    /// `bench` binary runs this before writing, so a committed or uploaded
    /// `BENCH_3.json` can be trusted not to hide a NaN behind a `null`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rows) in
            [("table1", &self.table1), ("table2", &self.table2), ("table3", &self.table3)]
        {
            if rows.is_empty() {
                return Err(format!("{name} has no rows"));
            }
            for row in rows {
                if row.ours.is_empty() {
                    return Err(format!("{name} row '{}' has no measurements", row.label));
                }
                for (i, v) in row.ours.iter().enumerate() {
                    if !v.is_finite() {
                        return Err(format!("{name} row '{}' col {i} is {v}", row.label));
                    }
                }
            }
        }
        if self.traced.is_empty() {
            return Err("no traced runs collected".into());
        }
        for t in &self.traced {
            let tag = format!("traced {} {}", t.experiment, t.config);
            if t.phases.frames.is_empty() {
                return Err(format!("{tag}: phase trace has no frames"));
            }
            let totals = t.phases.phase_totals();
            if totals.iter().any(|v| !v.is_finite()) {
                return Err(format!("{tag}: non-finite phase total"));
            }
            if totals.iter().sum::<f64>() <= 0.0 {
                return Err(format!("{tag}: phase totals sum to zero"));
            }
            for (label, v) in [
                ("speedup", t.speedup),
                ("migrated_per_proc_frame", t.migrated_per_proc_frame),
                ("migration_kb_per_frame", t.migration_kb_per_frame),
            ] {
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("{tag}: {label} is {v}"));
                }
            }
        }
        Ok(())
    }

    /// Serialize to the `BENCH_3.json` schema.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": 3,\n");
        s.push_str(&format!(
            "  \"workload\": {{\"scale\": {}, \"systems\": {}, \"particles_per_system\": {}, \"frames\": {}}},\n",
            json_f64(self.scale),
            self.size.systems,
            self.size.particles_per_system,
            self.frames
        ));
        s.push_str("  \"columns\": [");
        for (i, (c, _, _)) in CONFIG_COLUMNS.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{c}\""));
        }
        s.push_str("],\n");
        s.push_str("  \"tables\": {\n");
        for (i, (name, rows)) in
            [("table1", &self.table1), ("table2", &self.table2), ("table3", &self.table3)]
                .iter()
                .enumerate()
        {
            s.push_str(&format!("    \"{name}\": [\n"));
            for (j, row) in rows.iter().enumerate() {
                s.push_str(&format!(
                    "      {{\"label\": \"{}\", \"ours\": [{}], \"paper\": [{}]}}{}\n",
                    row.label.replace('"', "'"),
                    join_f64(&row.ours),
                    join_f64(&row.paper),
                    if j + 1 < rows.len() { "," } else { "" }
                ));
            }
            s.push_str(&format!("    ]{}\n", if i < 2 { "," } else { "" }));
        }
        s.push_str("  },\n");
        s.push_str("  \"traced_runs\": [\n");
        for (i, t) in self.traced.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"experiment\": \"{}\",\n", t.experiment));
            s.push_str(&format!("      \"config\": \"{}\",\n", t.config));
            s.push_str(&format!("      \"cluster\": \"{}\",\n", t.cluster));
            s.push_str(&format!("      \"processes\": {},\n", t.processes));
            s.push_str(&format!("      \"speedup\": {},\n", json_f64(t.speedup)));
            s.push_str(&format!(
                "      \"exchange\": {{\"migrated_per_proc_frame\": {}, \"migration_kb_per_frame\": {}}},\n",
                json_f64(t.migrated_per_proc_frame),
                json_f64(t.migration_kb_per_frame)
            ));
            // TraceReport::to_json is already valid JSON; reindent for
            // readability of the composite file.
            let phases = t.phases.to_json().replace('\n', "\n      ");
            s.push_str(&format!("      \"phases\": {phases}\n"));
            s.push_str(&format!("    }}{}\n", if i + 1 < self.traced.len() { "," } else { "" }));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// JSON-safe float: finite prints round-trip, non-finite becomes `null`
/// (validation upstream ensures the latter never reaches a written file).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn join_f64(vs: &[f64]) -> String {
    vs.iter().map(|v| json_f64(*v)).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> BenchExport {
        // Tiny but real: exercises the full collect path at smoke size.
        collect(100.0, 6)
    }

    #[test]
    fn collect_produces_valid_export() {
        let e = smoke();
        e.validate().expect("smoke export must validate");
        assert_eq!(e.traced.len(), 4, "snow+fountain x SLB/DLB");
        assert!(e.traced.iter().all(|t| !t.phases.frames.is_empty()));
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let e = smoke();
        let j = e.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in [
            "\"bench\": 3",
            "\"table1\"",
            "\"table2\"",
            "\"table3\"",
            "\"traced_runs\"",
            "\"phases\"",
            "\"exchange\"",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    #[test]
    fn validate_rejects_nan_and_empty() {
        let mut e = smoke();
        e.table1[0].ours[0] = f64::NAN;
        assert!(e.validate().is_err());
        let mut e2 = smoke();
        e2.traced.clear();
        assert!(e2.validate().is_err());
        let mut e3 = smoke();
        e3.traced[0].phases.frames.clear();
        assert!(e3.validate().is_err());
    }
}
