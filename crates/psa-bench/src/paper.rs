//! The paper's published numbers, used as the comparison column in every
//! reproduced table.

/// Table 1 — snow, Myrinet + GNU/GCC, speed-up vs sequential E800+GCC.
/// Rows: 4*B/4P, 5*B/5P, 6*B/6P, 7*B/7P, 8*B/8P, 8*B/16P.
/// Columns: IS-SLB, FS-SLB, IS-DLB, FS-DLB.
pub const TABLE1: [[f64; 4]; 6] = [
    [1.74, 1.74, 1.73, 1.75],
    [0.82, 2.49, 2.90, 2.50],
    [1.74, 3.12, 2.99, 3.11],
    [0.92, 3.63, 3.15, 3.65],
    [1.74, 4.14, 3.37, 4.14],
    [1.73, 6.47, 3.75, 6.37],
];

/// Table 2 — snow, Fast-Ethernet + ICC, FS-DLB, speed-up vs sequential
/// Itanium+ICC. Rows in paper order (see `psa_workloads::table2_rows`).
pub const TABLE2: [f64; 8] = [1.36, 1.5, 2.4, 2.02, 2.67, 3.15, 2.84, 2.61];

/// Table 3 — fountain, Myrinet + GNU/GCC, same layout as Table 1.
pub const TABLE3: [[f64; 4]; 6] = [
    [0.98, 1.09, 1.49, 1.49],
    [0.92, 1.19, 1.76, 1.76],
    [0.98, 1.31, 2.02, 2.05],
    [0.92, 1.54, 2.34, 2.36],
    [0.98, 1.86, 2.66, 2.67],
    [0.98, 2.66, 3.74, 3.82],
];

/// §5.1 in-text: snow exchange ≈ 560 particles/process/frame, ≈ 613 KB
/// total across 16 processes.
pub const SNOW_EXCHANGE_PER_PROC: f64 = 560.0;
pub const SNOW_EXCHANGE_TOTAL_KB: f64 = 613.0;

/// §5.2 in-text: fountain exchange ≈ 4000 particles/process/frame,
/// ≈ 4375 KB total.
pub const FOUNTAIN_EXCHANGE_PER_PROC: f64 = 4000.0;
pub const FOUNTAIN_EXCHANGE_TOTAL_KB: f64 = 4375.0;

/// §5.1: snow on Fast-Ethernet + ICC, 8 E800 nodes / 16 processes.
pub const SNOW_FE_DLB: f64 = 2.56;
pub const SNOW_FE_SLB_FS: f64 = 2.65;

/// §5.1: snow with 4 E800 + 4 E60 nodes (Myrinet+GCC), 8 and 16 processes.
pub const SNOW_MIXED_8P: f64 = 2.76;
pub const SNOW_MIXED_16P: f64 = 2.93;

/// §5.2: fountain with 8 E800 + 8 E60 (16 nodes), Myrinet + GCC.
pub const FOUNTAIN_16_NODES: f64 = 4.28;

/// §5.2: fountain's best Fast-Ethernet result (2*B + 2*C, FS-DLB).
pub const FOUNTAIN_FE_BEST: f64 = 1.26;

/// §5.3: time reductions. Snow 84 % (Myrinet), 68 % (Fast-Ethernet);
/// fountain 66 % (Myrinet).
pub const REDUCTION_SNOW_MYRINET: f64 = 84.0;
pub const REDUCTION_SNOW_FE: f64 = 68.0;
pub const REDUCTION_FOUNTAIN_MYRINET: f64 = 66.0;

/// Paper speed-up → time-reduction percentage: `(1 − 1/s) × 100`.
pub fn reduction_pct(speedup: f64) -> f64 {
    if speedup <= 0.0 {
        0.0
    } else {
        (1.0 - 1.0 / speedup) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_formula_matches_paper() {
        // 84% reduction ⇔ speed-up 6.25; the paper's best snow Myrinet
        // speed-up is 6.47 ⇒ 84.5% — consistent with the reported 84%.
        assert!((reduction_pct(6.47) - 84.5).abs() < 0.2);
        // 68% ⇔ 3.125; snow FE+ICC best (SLB-FS 2.65) gives 62%; the
        // paper's 68% likely counts a larger mix — we report ours.
        assert!(reduction_pct(1.0) == 0.0);
        assert_eq!(reduction_pct(0.0), 0.0);
    }

    #[test]
    fn tables_have_paper_shapes() {
        // IS-SLB odd rows (5P, 7P) are below 1; even rows ≈ 1.74.
        assert!(TABLE1[1][0] < 1.0 && TABLE1[3][0] < 1.0);
        assert!(TABLE1[0][0] > 1.7 && TABLE1[4][0] > 1.7);
        // Fountain: DLB beats SLB everywhere.
        for row in TABLE3 {
            assert!(row[3] >= row[1]);
            assert!(row[2] >= row[0]);
        }
        // Table 2's best mix is 2*B(4P)+2*C(2P).
        let best = TABLE2.iter().cloned().fold(0.0, f64::max);
        assert_eq!(best, TABLE2[5]);
    }
}
