//! Reproduction harness library.
//!
//! One function per paper artifact (Table 1, Table 2, Table 3, the in-text
//! §5.1/§5.2/§5.3 numbers), each returning structured rows that the `repro`
//! binary prints alongside the paper's published values. Everything is
//! deterministic: same seed, same table.

pub mod export;
pub mod export4;
pub mod export5;
pub mod export6;
pub mod export7;
pub mod export8;
pub mod micro;
pub mod paper;
pub mod runner;
pub mod tables;

pub use export::{collect, BenchExport, TracedRun};
pub use export4::{collect4, AllocationCounts, Bench4Export};
pub use export5::{collect5, Bench5Export, Bench5Workload};
pub use export6::{collect6, Bench6Export};
pub use export7::{collect7, Bench7Export, Bench7Workload};
pub use export8::{collect8, Bench8Cell, Bench8Export};
pub use runner::{Experiment, RunOutcome};
pub use tables::{reductions, table1, table2, table3, text_numbers, TableRow};
