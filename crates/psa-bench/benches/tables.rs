//! End-to-end table regeneration as benches.
//!
//! Each target runs a reduced-scale instance of a paper artifact through
//! the full virtual executor, so `cargo bench` exercises the exact code
//! paths `repro` uses for EXPERIMENTS.md — plus the network ablation
//! (Myrinet vs switched FE vs hub FE) over an identical run.

use cluster_sim::{e800, ClusterSpec, Compiler, NetworkModel};
use psa_bench::micro::Group;
use psa_runtime::{BalanceMode, RunConfig, SpaceMode, VirtualSim};
use psa_workloads::{fountain_scene, myrinet_gcc, paper_run_config, snow_scene, WorkloadSize};

fn size() -> WorkloadSize {
    WorkloadSize { systems: 8, particles_per_system: 2_000, scale: 200.0 }
}

fn run(scene: psa_runtime::Scene, cfg: RunConfig, cluster: ClusterSpec) -> f64 {
    let mut sim = VirtualSim::new(scene, cfg, cluster, size().cost_model());
    sim.run().steady_time()
}

fn bench_table1_cell() {
    // One Table-1 cell per config column (8*B/8P row).
    let g = Group::new("table1_8B8P");
    for (label, space, dynamic) in [
        ("IS-SLB", SpaceMode::Infinite, false),
        ("FS-SLB", SpaceMode::Finite, false),
        ("FS-DLB", SpaceMode::Finite, true),
    ] {
        g.bench(label, || {
            let mut cfg = paper_run_config(8, psa_workloads::snow::SNOW_DT);
            cfg.space = space;
            cfg.balance = if dynamic { BalanceMode::dynamic() } else { BalanceMode::Static };
            run(snow_scene(size()), cfg, myrinet_gcc(8, 1))
        });
    }
}

fn bench_table3_cell() {
    let g = Group::new("table3_8B8P");
    for (label, dynamic) in [("FS-SLB", false), ("FS-DLB", true)] {
        g.bench(label, || {
            let mut cfg = paper_run_config(8, psa_workloads::fountain::FOUNTAIN_DT);
            cfg.balance = if dynamic { BalanceMode::dynamic() } else { BalanceMode::Static };
            run(fountain_scene(size()), cfg, myrinet_gcc(8, 1))
        });
    }
}

fn bench_network_ablation() {
    // Identical snow run over three fabrics; the reported virtual steady
    // times are the ablation result (printed per-iteration time is host
    // cost; the interesting artifact is deterministic anyway).
    let g = Group::new("network_ablation");
    for (label, net) in [
        ("myrinet", NetworkModel::myrinet()),
        ("fe_switched", NetworkModel::fast_ethernet()),
        ("fe_hub", NetworkModel::fast_ethernet_hub()),
    ] {
        let cluster = ClusterSpec::homogeneous(net, Compiler::Gcc, e800(), 8, 2);
        g.bench(label, || {
            let cfg = paper_run_config(6, psa_workloads::snow::SNOW_DT);
            run(snow_scene(size()), cfg, cluster.clone())
        });
    }
}

fn bench_schedule_ablation() {
    // §3.3: per-system (Figure 2 verbatim) vs phase-batched combination of
    // the eight fountain systems.
    use psa_runtime::SystemSchedule;
    let g = Group::new("schedule_ablation");
    for (label, schedule) in
        [("per_system", SystemSchedule::PerSystem), ("batched", SystemSchedule::Batched)]
    {
        g.bench(label, || {
            let mut cfg = paper_run_config(6, psa_workloads::fountain::FOUNTAIN_DT);
            cfg.schedule = schedule;
            cfg.balance = BalanceMode::Static;
            run(fountain_scene(size()), cfg, myrinet_gcc(8, 1))
        });
    }
}

fn bench_balancer_ablation() {
    // Centralized (§3.2.5) vs decentralized (§6 future work) balancing on
    // the irregular fountain load.
    let g = Group::new("balancer_ablation");
    for (label, balance) in [
        ("centralized", BalanceMode::dynamic()),
        ("decentralized", BalanceMode::decentralized()),
        ("static", BalanceMode::Static),
    ] {
        g.bench(label, || {
            let mut cfg = paper_run_config(6, psa_workloads::fountain::FOUNTAIN_DT);
            cfg.balance = balance;
            run(fountain_scene(size()), cfg, myrinet_gcc(8, 1))
        });
    }
}

fn main() {
    bench_table1_cell();
    bench_table3_cell();
    bench_network_ablation();
    bench_schedule_ablation();
    bench_balancer_ablation();
}
