//! Exchange-path micro-benches + the sub-domain bucket ablation (paper §4).
//!
//! The authors replaced "all particles of a domain in one vector" with
//! per-sub-domain vectors to accelerate leaver detection and balancing.
//! `buckets/1` is the original storage; higher bucket counts are the
//! paper's scheme.

use psa_bench::micro::Group;
use psa_core::{Particle, SubDomainStore};
use psa_math::{Axis, Interval, Rng64, Vec3};

fn populated(buckets: usize, n: usize, drift: f32) -> SubDomainStore {
    let slice = Interval::new(-10.0, 10.0);
    let mut store = SubDomainStore::new(slice, Axis::X, buckets);
    let mut rng = Rng64::new(42);
    for _ in 0..n {
        let p = Particle::at(Vec3::new(rng.range(-10.0, 10.0), rng.range(0.0, 30.0), 0.0))
            .with_velocity(Vec3::new(rng.range(-drift, drift), -5.0, 0.0));
        store.insert(p);
    }
    store
}

fn bench_leaver_scan() {
    let g = Group::new("leaver_scan");
    for buckets in [1usize, 4, 8, 16, 32] {
        g.bench_batched(
            &format!("buckets/{buckets}"),
            || {
                let mut s = populated(buckets, 100_000, 1.0);
                // move particles so some leave
                s.for_each_mut(|p| p.position += p.velocity * 0.1);
                s
            },
            |mut s| s.collect_leavers(),
        );
    }
}

fn bench_donation() {
    // Donation of 5% of a 100k-particle domain: bucketed stores only sort
    // the straddling bucket; one bucket degenerates to the full sort the
    // paper wanted to avoid.
    let g = Group::new("donation_5pct");
    for buckets in [1usize, 8, 32] {
        g.bench_batched(
            &format!("buckets/{buckets}"),
            || populated(buckets, 100_000, 0.5),
            |mut s| s.donate_low(5_000),
        );
    }
}

fn bench_reshape() {
    let g = Group::new("reshape");
    g.bench_batched(
        "100k",
        || populated(8, 100_000, 0.5),
        |mut s| s.reshape(Interval::new(-8.0, 9.0)),
    );
}

fn main() {
    bench_leaver_scan();
    bench_donation();
    bench_reshape();
}
