//! Load-balancer micro-benches + the threshold/parity ablations called out
//! in DESIGN.md.

use psa_bench::micro::Group;
use psa_math::Rng64;
use psa_runtime::balance::{evaluate, BalancerConfig, LoadInfo};

fn loads(n: usize, seed: u64) -> Vec<LoadInfo> {
    let mut rng = Rng64::new(seed);
    (0..n)
        .map(|_| {
            let count = rng.below(100_000);
            LoadInfo { count, time: count as f64 * 1.5e-6 }
        })
        .collect()
}

fn bench_evaluate() {
    let g = Group::new("evaluate_pairs");
    for n in [4usize, 16, 64, 256] {
        let l = loads(n, 7);
        let powers = vec![1.0; n];
        let cfg = BalancerConfig::default();
        g.bench(&format!("{n}"), || evaluate(&l, &powers, 0, &cfg));
    }
}

/// Ablation: convergence rounds to flatten a point load as a function of
/// the rebalance threshold (lower time = fewer rounds).
fn bench_threshold_convergence() {
    let g = Group::new("threshold_convergence");
    for threshold in [0.05f64, 0.15, 0.4] {
        g.bench(&format!("{threshold}"), || {
            let n = 16;
            let mut counts = vec![0usize; n];
            counts[0] = 1_000_000;
            let powers = vec![1.0; n];
            let cfg = BalancerConfig { rel_threshold: threshold, ..BalancerConfig::fixed(64) };
            let mut rounds = 0;
            for round in 0..1_000 {
                let l: Vec<LoadInfo> =
                    counts.iter().map(|&c| LoadInfo { count: c, time: c as f64 * 1e-6 }).collect();
                let ts = evaluate(&l, &powers, round % 2, &cfg);
                if ts.is_empty() {
                    rounds = round;
                    break;
                }
                for t in ts {
                    counts[t.donor] -= t.amount;
                    counts[t.receiver] += t.amount;
                }
            }
            rounds
        });
    }
}

/// Ablation: fixed starting parity vs the paper's alternating parity. With
/// a fixed parity the spike drains strictly slower (pairs starve).
fn bench_parity() {
    let drain = |alternate: bool| {
        let n = 12;
        let mut counts = vec![1_000usize; n];
        counts[5] = 500_000;
        let powers = vec![1.0; n];
        let cfg = BalancerConfig { rel_threshold: 0.1, ..BalancerConfig::fixed(64) };
        let mut rounds = 0u32;
        for round in 0..2_000usize {
            let l: Vec<LoadInfo> =
                counts.iter().map(|&c| LoadInfo { count: c, time: c as f64 * 1e-6 }).collect();
            let start = if alternate { round % 2 } else { 0 };
            let ts = evaluate(&l, &powers, start, &cfg);
            if ts.is_empty() {
                rounds = round as u32;
                break;
            }
            for t in ts {
                counts[t.donor] -= t.amount;
                counts[t.receiver] += t.amount;
            }
        }
        rounds
    };
    let g = Group::new("parity_drain_rounds");
    g.bench("alternating", || drain(true));
    g.bench("fixed", || drain(false));
}

fn main() {
    bench_evaluate();
    bench_threshold_convergence();
    bench_parity();
}
