//! Collision broadphase benches: grid vs brute force, and the
//! domain-decomposition payoff (local + ghosts vs whole space).

use psa_bench::micro::Group;
use psa_core::collide::{colliding_pairs, UniformGrid};
use psa_core::Particle;
use psa_math::{Rng64, Vec3};

fn cloud(n: usize, r: f32) -> Vec<Particle> {
    let mut rng = Rng64::new(99);
    (0..n)
        .map(|_| Particle::at(rng.in_box(Vec3::splat(-10.0), Vec3::splat(10.0))).with_size(r))
        .collect()
}

fn bench_grid_vs_brute() {
    let g = Group::new("broadphase");
    for n in [1_000usize, 5_000, 20_000] {
        let ps = cloud(n, 0.15);
        g.bench(&format!("grid/{n}"), || colliding_pairs(&ps, &[], 0.3));
        if n <= 5_000 {
            g.bench(&format!("brute/{n}"), || {
                let mut pairs = Vec::new();
                for i in 0..ps.len() {
                    for j in i + 1..ps.len() {
                        let rr = ps[i].size + ps[j].size;
                        if ps[i].position.distance_squared(ps[j].position) < rr * rr {
                            pairs.push((i as u32, j as u32));
                        }
                    }
                }
                pairs
            });
        }
    }
}

fn bench_grid_build() {
    let ps = cloud(50_000, 0.15);
    let g = Group::new("grid_build");
    g.bench("50k", || UniformGrid::build(&ps, 0.3));
}

fn bench_domain_locality() {
    // The §3.1.4 argument: collision over one slice + ghost slab instead of
    // the full cloud.
    let ps = cloud(50_000, 0.15);
    let slice = (-1.25f32, 1.25f32); // one of 8 slices of [-10, 10)
    let local: Vec<Particle> =
        ps.iter().filter(|p| p.position.x >= slice.0 && p.position.x < slice.1).copied().collect();
    let ghosts: Vec<Particle> = ps
        .iter()
        .filter(|p| {
            let x = p.position.x;
            (x >= slice.0 - 0.3 && x < slice.0) || (x >= slice.1 && x < slice.1 + 0.3)
        })
        .copied()
        .collect();
    let g = Group::new("domain_locality");
    g.bench("whole_space_50k", || colliding_pairs(&ps, &[], 0.3));
    g.bench("slice_plus_ghosts", || colliding_pairs(&local, &ghosts, 0.3));
}

fn main() {
    bench_grid_vs_brute();
    bench_grid_build();
    bench_domain_locality();
}
