//! Image-generator benches: point-splat throughput, blend modes, image
//! encoding — the per-particle render cost the virtual-time model charges.

use psa_bench::micro::Group;
use psa_core::Particle;
use psa_math::{Aabb, Rng64, Vec3};
use psa_render::{render_particles, Camera, Framebuffer, SplatConfig};

fn scene(n: usize) -> (Vec<Particle>, Camera) {
    let mut rng = Rng64::new(7);
    let ps = (0..n)
        .map(|_| {
            Particle::at(rng.in_box(Vec3::splat(-10.0), Vec3::splat(10.0)))
                .with_size(0.08)
                .with_color(Vec3::new(rng.unit(), rng.unit(), rng.unit()))
        })
        .collect();
    let cam = Camera::ortho(Aabb::new(Vec3::splat(-10.0), Vec3::splat(10.0)), 640, 480);
    (ps, cam)
}

fn bench_splat_throughput() {
    let g = Group::new("splat");
    for n in [10_000usize, 100_000, 400_000] {
        let (ps, cam) = scene(n);
        let mut fb = Framebuffer::new(640, 480);
        g.bench(&format!("alpha/{n}"), || {
            fb.clear(Vec3::ZERO);
            render_particles(&mut fb, &cam, &ps, &SplatConfig::default())
        });
        let cfg = SplatConfig { additive: true, ..Default::default() };
        g.bench(&format!("additive/{n}"), || {
            fb.clear(Vec3::ZERO);
            render_particles(&mut fb, &cam, &ps, &cfg)
        });
    }
}

fn bench_encode() {
    let mut fb = Framebuffer::new(640, 480);
    fb.clear(Vec3::new(0.3, 0.5, 0.7));
    let g = Group::new("encode");
    g.bench("to_rgb8_640x480", || fb.to_rgb8());
}

fn main() {
    bench_splat_throughput();
    bench_encode();
}
