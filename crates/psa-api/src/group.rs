//! Particle groups — the unit the immediate-mode API operates on.

use psa_core::{Particle, ParticleStore};
use psa_math::Vec3;

/// A named set of particles with a capacity cap, mirroring the original
/// API's `pGenParticleGroups`/`pSetMaxParticles`.
#[derive(Clone, Debug)]
pub struct ParticleGroup {
    pub name: String,
    store: ParticleStore,
    max_particles: usize,
}

impl ParticleGroup {
    pub fn new(name: impl Into<String>, max_particles: usize) -> Self {
        ParticleGroup { name: name.into(), store: ParticleStore::new(), max_particles }
    }

    pub fn len(&self) -> usize {
        self.store.len()
    }

    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    pub fn max_particles(&self) -> usize {
        self.max_particles
    }

    /// Add a particle unless the group is at capacity; returns whether it
    /// was admitted (the original API silently drops over-cap emissions).
    pub fn add(&mut self, p: Particle) -> bool {
        if self.store.len() >= self.max_particles {
            return false;
        }
        self.store.push(p);
        true
    }

    pub fn particles(&self) -> &[Particle] {
        self.store.as_slice()
    }

    pub fn particles_mut(&mut self) -> &mut [Particle] {
        self.store.as_mut_slice()
    }

    pub fn retain<F: FnMut(&Particle) -> bool>(&mut self, f: F) -> usize {
        self.store.retain_unordered(f)
    }

    pub fn clear(&mut self) {
        self.store.clear();
    }

    /// Mean position — handy for tests and camera targeting.
    pub fn centroid(&self) -> Vec3 {
        if self.store.is_empty() {
            return Vec3::ZERO;
        }
        self.store.iter().fold(Vec3::ZERO, |acc, p| acc + p.position) / self.store.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_enforced() {
        let mut g = ParticleGroup::new("g", 2);
        assert!(g.add(Particle::at(Vec3::ZERO)));
        assert!(g.add(Particle::at(Vec3::ONE)));
        assert!(!g.add(Particle::at(Vec3::X)), "over-cap emission dropped");
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn centroid() {
        let mut g = ParticleGroup::new("g", 10);
        g.add(Particle::at(Vec3::new(2.0, 0.0, 0.0)));
        g.add(Particle::at(Vec3::new(4.0, 2.0, 0.0)));
        assert_eq!(g.centroid(), Vec3::new(3.0, 1.0, 0.0));
        g.clear();
        assert_eq!(g.centroid(), Vec3::ZERO);
    }

    #[test]
    fn retain_removes() {
        let mut g = ParticleGroup::new("g", 10);
        for x in 0..6 {
            g.add(Particle::at(Vec3::new(x as f32, 0.0, 0.0)));
        }
        let removed = g.retain(|p| p.position.x < 3.0);
        assert_eq!(removed, 3);
        assert_eq!(g.len(), 3);
    }
}
