//! Generation/test domains — the `pDomain` vocabulary of McAllister's API.
//!
//! A domain is a region of space that can (a) generate uniformly-ish
//! distributed points and (b) answer membership queries (used by sinks and
//! bounce tests). The original API ships the same dual-use shapes.

use psa_math::{Aabb, Rng64, Scalar, Vec3};

/// A generation/test domain.
#[derive(Clone, Debug, PartialEq)]
pub enum PDomain {
    /// A single point.
    Point(Vec3),
    /// The segment from `a` to `b`.
    Line { a: Vec3, b: Vec3 },
    /// The triangle `a b c` (uniform via barycentric sampling).
    Triangle { a: Vec3, b: Vec3, c: Vec3 },
    /// An axis-aligned box.
    Box(Aabb),
    /// A spherical shell between `r_inner` and `r_outer` (solid when
    /// `r_inner == 0`).
    Sphere { center: Vec3, r_outer: Scalar, r_inner: Scalar },
    /// A disc of radius `r` with unit normal `n`.
    Disc { center: Vec3, radius: Scalar, normal: Vec3 },
    /// A cylinder from `base` along `axis` with the given radius.
    Cylinder { base: Vec3, axis: Vec3, radius: Scalar },
    /// A cone with apex `apex`, axis direction `axis` (length = height)
    /// and base radius `radius`.
    Cone { apex: Vec3, axis: Vec3, radius: Scalar },
    /// A Gaussian blob (generates normally-distributed points; membership
    /// is within 3σ).
    Blob { center: Vec3, stdev: Scalar },
    /// The half-space `n·x >= d` (generation not supported — used for
    /// sinks and bounce).
    Plane { normal: Vec3, d: Scalar },
}

impl PDomain {
    /// Draw a point from the domain.
    ///
    /// # Panics
    /// Panics for [`PDomain::Plane`] (an unbounded region cannot generate).
    pub fn generate(&self, rng: &mut Rng64) -> Vec3 {
        match self {
            PDomain::Point(p) => *p,
            PDomain::Line { a, b } => a.lerp(*b, rng.unit()),
            PDomain::Triangle { a, b, c } => {
                let (mut u, mut v) = (rng.unit(), rng.unit());
                if u + v > 1.0 {
                    u = 1.0 - u;
                    v = 1.0 - v;
                }
                *a + (*b - *a) * u + (*c - *a) * v
            }
            PDomain::Box(bx) => rng.in_box(bx.min, bx.max),
            PDomain::Sphere { center, r_outer, r_inner } => {
                // radius via inverse CDF of r² density between shells
                let u = rng.unit();
                let r3 = r_inner.powi(3) + u * (r_outer.powi(3) - r_inner.powi(3));
                *center + rng.on_unit_sphere() * r3.cbrt()
            }
            PDomain::Disc { center, radius, normal } => *center + rng.on_disc(*radius, *normal),
            PDomain::Cylinder { base, axis, radius } => {
                let t = rng.unit();
                *base + *axis * t + rng.on_disc(*radius, *axis)
            }
            PDomain::Cone { apex, axis, radius } => {
                // uniform in height³ so density is uniform in volume
                let t = rng.unit().cbrt();
                *apex + *axis * t + rng.on_disc(radius * t, *axis)
            }
            PDomain::Blob { center, stdev } => {
                *center
                    + Vec3::new(
                        rng.normal(0.0, *stdev),
                        rng.normal(0.0, *stdev),
                        rng.normal(0.0, *stdev),
                    )
            }
            PDomain::Plane { .. } => {
                panic!("PDPlane is a test-only domain; it cannot generate points")
            }
        }
    }

    /// Membership test (within a small tolerance for lower-dimensional
    /// shapes).
    pub fn within(&self, p: Vec3) -> bool {
        const EPS: Scalar = 1e-3;
        match self {
            PDomain::Point(q) => p.distance(*q) < EPS,
            PDomain::Line { a, b } => {
                let ab = *b - *a;
                let t = ((p - *a).dot(ab) / ab.length_squared()).clamp(0.0, 1.0);
                p.distance(*a + ab * t) < EPS
            }
            PDomain::Triangle { a, b, c } => {
                // project onto the triangle plane and do barycentric test
                let n = (*b - *a).cross(*c - *a);
                let area2 = n.length();
                if area2 < EPS {
                    return false;
                }
                let dist = (p - *a).dot(n.normalized());
                if dist.abs() > EPS {
                    return false;
                }
                let q = p - n.normalized() * dist;
                let w1 = (*b - q).cross(*c - q).length() / area2;
                let w2 = (*c - q).cross(*a - q).length() / area2;
                let w3 = (*a - q).cross(*b - q).length() / area2;
                (w1 + w2 + w3 - 1.0).abs() < 1e-2
            }
            PDomain::Box(bx) => bx.contains(p),
            PDomain::Sphere { center, r_outer, r_inner } => {
                let d = p.distance(*center);
                d <= *r_outer && d >= *r_inner
            }
            PDomain::Disc { center, radius, normal } => {
                let rel = p - *center;
                rel.dot(normal.normalized()).abs() < EPS && rel.length() <= *radius
            }
            PDomain::Cylinder { base, axis, radius } => {
                let t = (p - *base).dot(*axis) / axis.length_squared();
                if !(0.0..=1.0).contains(&t) {
                    return false;
                }
                let closest = *base + *axis * t;
                p.distance(closest) <= *radius
            }
            PDomain::Cone { apex, axis, radius } => {
                let t = (p - *apex).dot(*axis) / axis.length_squared();
                if !(0.0..=1.0).contains(&t) {
                    return false;
                }
                let closest = *apex + *axis * t;
                p.distance(closest) <= radius * t
            }
            PDomain::Blob { center, stdev } => p.distance(*center) <= 3.0 * *stdev,
            PDomain::Plane { normal, d } => p.dot(*normal) >= *d,
        }
    }

    /// Whether the domain can generate points.
    pub fn can_generate(&self) -> bool {
        !matches!(self, PDomain::Plane { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng64 {
        Rng64::new(0xD0)
    }

    /// Every generating domain must produce points it classifies as inside.
    #[test]
    fn generate_lands_within() {
        let domains = vec![
            PDomain::Point(Vec3::new(1.0, 2.0, 3.0)),
            PDomain::Line { a: Vec3::ZERO, b: Vec3::new(4.0, 0.0, 0.0) },
            PDomain::Triangle {
                a: Vec3::ZERO,
                b: Vec3::new(2.0, 0.0, 0.0),
                c: Vec3::new(0.0, 2.0, 0.0),
            },
            PDomain::Box(Aabb::centered_cube(2.0)),
            PDomain::Sphere { center: Vec3::ONE, r_outer: 2.0, r_inner: 1.0 },
            PDomain::Disc { center: Vec3::ZERO, radius: 1.5, normal: Vec3::Y },
            PDomain::Cylinder { base: Vec3::ZERO, axis: Vec3::Y * 3.0, radius: 0.5 },
            PDomain::Cone { apex: Vec3::ZERO, axis: Vec3::Y * 2.0, radius: 1.0 },
            PDomain::Blob { center: Vec3::ZERO, stdev: 0.3 },
        ];
        let mut r = rng();
        for d in domains {
            for _ in 0..200 {
                let p = d.generate(&mut r);
                // Blob: allow the 3σ cutoff to clip a tiny tail
                if let PDomain::Blob { .. } = d {
                    continue;
                }
                assert!(d.within(p), "{d:?} generated {p:?} outside itself");
            }
        }
    }

    #[test]
    fn shell_respects_inner_radius() {
        let d = PDomain::Sphere { center: Vec3::ZERO, r_outer: 2.0, r_inner: 1.5 };
        let mut r = rng();
        for _ in 0..500 {
            let p = d.generate(&mut r);
            let dist = p.length();
            assert!((1.5..=2.0 + 1e-4).contains(&dist), "dist {dist}");
        }
    }

    #[test]
    fn cone_is_narrow_at_apex() {
        let d = PDomain::Cone { apex: Vec3::ZERO, axis: Vec3::Y * 2.0, radius: 1.0 };
        assert!(d.within(Vec3::new(0.0, 1.9, 0.0)));
        assert!(d.within(Vec3::new(0.8, 1.9, 0.0)));
        assert!(!d.within(Vec3::new(0.8, 0.2, 0.0)), "wide point near apex is outside");
        assert!(!d.within(Vec3::new(0.0, 2.5, 0.0)));
    }

    #[test]
    fn plane_is_test_only() {
        let d = PDomain::Plane { normal: Vec3::Y, d: 0.0 };
        assert!(!d.can_generate());
        assert!(d.within(Vec3::new(0.0, 1.0, 0.0)));
        assert!(!d.within(Vec3::new(0.0, -1.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "cannot generate")]
    fn plane_generation_panics() {
        let mut r = rng();
        let _ = PDomain::Plane { normal: Vec3::Y, d: 0.0 }.generate(&mut r);
    }

    #[test]
    fn line_membership() {
        let d = PDomain::Line { a: Vec3::ZERO, b: Vec3::new(2.0, 0.0, 0.0) };
        assert!(d.within(Vec3::new(1.0, 0.0, 0.0)));
        assert!(!d.within(Vec3::new(1.0, 0.5, 0.0)));
        assert!(!d.within(Vec3::new(3.0, 0.0, 0.0)));
    }

    #[test]
    fn blob_moments() {
        let d = PDomain::Blob { center: Vec3::new(5.0, 0.0, 0.0), stdev: 0.5 };
        let mut r = rng();
        let n = 2000;
        let mean: Vec3 = (0..n).fold(Vec3::ZERO, |acc, _| acc + d.generate(&mut r)) / n as f32;
        assert!((mean.x - 5.0).abs() < 0.1, "mean {mean:?}");
        assert!(mean.y.abs() < 0.1);
    }
}
