//! A McAllister-style Particle System API.
//!
//! The paper validates its model by completely rewriting David McAllister's
//! Particle System API (UNC TR 00-007) on top of the distributed model.
//! This crate is our equivalent of that user-facing layer: an
//! immediate-mode, stateful API in the spirit of the original —
//! generation *domains* (`PDPoint`, `PDLine`, `PDBox`, `PDSphere`,
//! `PDCone`, …), a current-state context that stamps new particles
//! (`p_color`, `p_velocity`, `p_size`), and per-frame action calls
//! (`p_source`, `p_gravity`, `p_bounce`, `p_kill_old`, `p_move`, …).
//!
//! Two ways to run it:
//!
//! * **immediate mode** — call the `p_*` methods on a [`Context`] each
//!   frame and read back the particles (single-process, like the original
//!   UNIX/Win32 implementation);
//! * **compiled mode** — [`Context::compile`] lowers the recorded action
//!   sequence onto `psa-core` action lists, which the cluster runtime
//!   executes under the paper's model.

pub mod context;
pub mod domain_shapes;
pub mod group;

pub use context::Context;
pub use domain_shapes::PDomain;
pub use group::ParticleGroup;
