//! The stateful, immediate-mode API context.
//!
//! Mirrors the call style of McAllister's API: *state* calls set the
//! attributes stamped onto newly created particles (`p_color`,
//! `p_velocity_domain`, `p_size`, …); *action* calls execute immediately on
//! the current particle group (`p_source`, `p_gravity`, `p_bounce`,
//! `p_move`, …). The context also records the action sequence of the
//! current frame so [`Context::compile`] can lower it onto the cluster
//! runtime's action lists.

use psa_core::actions::{
    ActionList, BounceOff, Damping, Fade, Gravity, KillBelow, KillOld, KillOutside, MoveParticles,
    OrbitPoint, RandomAccel, Wind,
};
use psa_core::objects::ExternalObject;
use psa_core::system::{EmissionShape, VelocityModel};
use psa_core::Particle;
use psa_math::{Aabb, Rng64, Scalar, Vec3};

use crate::domain_shapes::PDomain;
use crate::group::ParticleGroup;

/// State registers stamped onto emitted particles.
#[derive(Clone, Debug)]
struct StateRegs {
    color: Vec3,
    alpha: Scalar,
    size: Scalar,
    mass: Scalar,
    orientation: Vec3,
    velocity: PDomain,
    start_position: PDomain,
}

impl Default for StateRegs {
    fn default() -> Self {
        StateRegs {
            color: Vec3::ONE,
            alpha: 1.0,
            size: 1.0,
            mass: 1.0,
            orientation: Vec3::Y,
            velocity: PDomain::Point(Vec3::ZERO),
            start_position: PDomain::Point(Vec3::ZERO),
        }
    }
}

/// A recorded per-frame action (for [`Context::compile`]).
#[derive(Clone, Debug)]
enum Recorded {
    Source { rate: usize },
    Gravity(Vec3),
    RandomAccel(Scalar),
    Damping(Scalar),
    Wind { wind: Vec3, drag: Scalar },
    OrbitPoint { center: Vec3, strength: Scalar },
    Bounce { object: ExternalObject, friction: Scalar, resilience: Scalar },
    KillOld(Scalar),
    KillBelowY(Scalar),
    KillOutside(Aabb),
    Fade { rate: Scalar, kill: bool },
    Move,
}

/// The immediate-mode API context.
pub struct Context {
    rng: Rng64,
    dt: Scalar,
    groups: Vec<ParticleGroup>,
    current: usize,
    state: StateRegs,
    recorded: Vec<Recorded>,
}

impl Context {
    pub fn new(seed: u64) -> Self {
        Context {
            rng: Rng64::new(seed),
            dt: 1.0 / 30.0,
            groups: Vec::new(),
            current: 0,
            state: StateRegs::default(),
            recorded: Vec::new(),
        }
    }

    // ---- group management ----------------------------------------------

    /// `pGenParticleGroups` + `pSetMaxParticles` in one call; returns the
    /// group handle and makes it current.
    pub fn p_gen_particle_group(&mut self, name: &str, max_particles: usize) -> usize {
        self.groups.push(ParticleGroup::new(name, max_particles));
        self.current = self.groups.len() - 1;
        self.current
    }

    /// `pCurrentGroup`.
    pub fn p_current_group(&mut self, handle: usize) {
        assert!(handle < self.groups.len(), "unknown particle group {handle}");
        self.current = handle;
    }

    pub fn group(&self, handle: usize) -> &ParticleGroup {
        &self.groups[handle]
    }

    pub fn current(&self) -> &ParticleGroup {
        &self.groups[self.current]
    }

    // ---- state calls -----------------------------------------------------

    /// `pTimeStep`.
    pub fn p_time_step(&mut self, dt: Scalar) {
        assert!(dt > 0.0);
        self.dt = dt;
    }

    /// `pColor`.
    pub fn p_color(&mut self, r: Scalar, g: Scalar, b: Scalar, alpha: Scalar) {
        self.state.color = Vec3::new(r, g, b);
        self.state.alpha = alpha;
    }

    /// `pSize`.
    pub fn p_size(&mut self, size: Scalar) {
        self.state.size = size;
    }

    /// `pMass`.
    pub fn p_mass(&mut self, mass: Scalar) {
        self.state.mass = mass;
    }

    /// `pUpVec`-style orientation register.
    pub fn p_orientation(&mut self, up: Vec3) {
        self.state.orientation = up.normalized();
    }

    /// `pVelocityD` — initial velocities drawn from a domain.
    pub fn p_velocity_domain(&mut self, d: PDomain) {
        assert!(d.can_generate(), "velocity domain must generate");
        self.state.velocity = d;
    }

    /// `pStartingPositionD` — where sources emit.
    pub fn p_position_domain(&mut self, d: PDomain) {
        assert!(d.can_generate(), "position domain must generate");
        self.state.start_position = d;
    }

    // ---- actions (immediate) ----------------------------------------------

    /// Begin a frame: clears the recorded action list.
    pub fn p_new_frame(&mut self) {
        self.recorded.clear();
    }

    /// `pSource` — emit `rate` particles from the current position domain.
    pub fn p_source(&mut self, rate: usize) {
        self.recorded.push(Recorded::Source { rate });
        for _ in 0..rate {
            let p = Particle {
                position: self.state.start_position.generate(&mut self.rng),
                velocity: self.state.velocity.generate(&mut self.rng),
                orientation: self.state.orientation,
                color: self.state.color,
                age: 0.0,
                size: self.state.size,
                alpha: self.state.alpha,
                mass: self.state.mass,
            };
            if !self.groups[self.current].add(p) {
                break; // at capacity
            }
        }
    }

    /// `pGravity`.
    pub fn p_gravity(&mut self, g: Vec3) {
        self.recorded.push(Recorded::Gravity(g));
        let dv = g * self.dt;
        for p in self.groups[self.current].particles_mut() {
            p.velocity += dv;
        }
    }

    /// `pRandomAccel` — isotropic random acceleration.
    pub fn p_random_accel(&mut self, magnitude: Scalar) {
        self.recorded.push(Recorded::RandomAccel(magnitude));
        let m = magnitude * self.dt;
        for p in self.groups[self.current].particles_mut() {
            p.velocity += self.rng.in_unit_sphere() * m;
        }
    }

    /// `pDamping`.
    pub fn p_damping(&mut self, rate: Scalar) {
        self.recorded.push(Recorded::Damping(rate));
        let keep = (1.0 - rate).powf(self.dt);
        for p in self.groups[self.current].particles_mut() {
            p.velocity *= keep;
        }
    }

    /// Wind coupling.
    pub fn p_wind(&mut self, wind: Vec3, drag: Scalar) {
        self.recorded.push(Recorded::Wind { wind, drag });
        let k = (drag * self.dt).min(1.0);
        for p in self.groups[self.current].particles_mut() {
            p.velocity = p.velocity.lerp(wind, k);
        }
    }

    /// `pOrbitPoint`.
    pub fn p_orbit_point(&mut self, center: Vec3, strength: Scalar) {
        self.recorded.push(Recorded::OrbitPoint { center, strength });
        let act = OrbitPoint::new(center, strength);
        let s = strength * self.dt;
        let eps2 = act.epsilon * act.epsilon;
        for p in self.groups[self.current].particles_mut() {
            let rel = center - p.position;
            let d2 = rel.length_squared() + eps2;
            p.velocity += rel * (s / (d2 * d2.sqrt()));
        }
    }

    /// `pBounce` against a plane/sphere/box obstacle.
    pub fn p_bounce(&mut self, object: ExternalObject, friction: Scalar, resilience: Scalar) {
        self.recorded.push(Recorded::Bounce { object: object.clone(), friction, resilience });
        for p in self.groups[self.current].particles_mut() {
            object.bounce(&mut p.position, &mut p.velocity, resilience, friction);
        }
    }

    /// `pKillOld`.
    pub fn p_kill_old(&mut self, max_age: Scalar) {
        self.recorded.push(Recorded::KillOld(max_age));
        self.groups[self.current].retain(|p| p.age <= max_age);
    }

    /// Remove particles below ground height `h` (Algorithm 1's "remove
    /// particles under the position").
    pub fn p_kill_below(&mut self, h: Scalar) {
        self.recorded.push(Recorded::KillBelowY(h));
        self.groups[self.current].retain(|p| p.position.y >= h);
    }

    /// `pSink` with an out-of-bounds box.
    pub fn p_kill_outside(&mut self, bounds: Aabb) {
        self.recorded.push(Recorded::KillOutside(bounds));
        self.groups[self.current].retain(|p| bounds.contains(p.position));
    }

    /// Alpha fade.
    pub fn p_fade(&mut self, rate: Scalar, kill_at_zero: bool) {
        self.recorded.push(Recorded::Fade { rate, kill: kill_at_zero });
        let da = rate * self.dt;
        for p in self.groups[self.current].particles_mut() {
            p.alpha = (p.alpha - da).max(0.0);
        }
        if kill_at_zero {
            self.groups[self.current].retain(|p| p.alpha > 0.0);
        }
    }

    /// `pMove` — integrate and age.
    pub fn p_move(&mut self) {
        self.recorded.push(Recorded::Move);
        let dt = self.dt;
        for p in self.groups[self.current].particles_mut() {
            p.position += p.velocity * dt;
            p.age += dt;
        }
    }

    // ---- compilation to the cluster runtime -------------------------------

    /// Lower the most recent frame's recorded sequence to a `psa-core`
    /// action list plus the emission parameters a `SystemSpec` needs.
    ///
    /// Returns `(emit_per_frame, emission shape, velocity model, action
    /// list)`. Fails when a state domain has no cluster-side equivalent.
    pub fn compile(&self) -> Result<(usize, EmissionShape, VelocityModel, ActionList), String> {
        let emission = match &self.state.start_position {
            PDomain::Point(p) => EmissionShape::Point(*p),
            PDomain::Box(b) => EmissionShape::Box { min: b.min, max: b.max },
            PDomain::Disc { center, radius, normal } => {
                EmissionShape::Disc { center: *center, radius: *radius, normal: *normal }
            }
            PDomain::Sphere { center, r_outer, .. } => {
                EmissionShape::Sphere { center: *center, radius: *r_outer }
            }
            other => return Err(format!("no cluster emission equivalent for {other:?}")),
        };
        let velocity = match &self.state.velocity {
            PDomain::Point(v) => VelocityModel::Constant(*v),
            PDomain::Sphere { center, r_outer, .. } => {
                VelocityModel::Jittered { base: *center, jitter: *r_outer }
            }
            PDomain::Cone { apex, axis, radius } => {
                let height = axis.length();
                VelocityModel::Cone {
                    axis: axis.normalized(),
                    speed_lo: height * 0.8 + apex.length() * 0.0,
                    speed_hi: height,
                    half_angle: (radius / height).atan(),
                }
            }
            other => return Err(format!("no cluster velocity equivalent for {other:?}")),
        };
        let mut list = ActionList::new();
        let mut rate = 0;
        for r in &self.recorded {
            match r {
                Recorded::Source { rate: n } => rate += n,
                Recorded::Gravity(g) => list.push(Gravity::new(*g)),
                Recorded::RandomAccel(m) => list.push(RandomAccel::new(*m)),
                Recorded::Damping(r) => list.push(Damping::new(*r)),
                Recorded::Wind { wind, drag } => list.push(Wind::new(*wind, *drag)),
                Recorded::OrbitPoint { center, strength } => {
                    list.push(OrbitPoint::new(*center, *strength))
                }
                Recorded::Bounce { object, friction, resilience } => {
                    list.push(BounceOff::new(object.clone(), *resilience, *friction))
                }
                Recorded::KillOld(age) => list.push(KillOld::new(*age)),
                Recorded::KillBelowY(h) => list.push(KillBelow::ground(*h)),
                Recorded::KillOutside(b) => list.push(KillOutside::new(*b)),
                Recorded::Fade { rate, kill } => list.push(Fade::new(*rate, *kill)),
                Recorded::Move => list.push(MoveParticles),
            }
        }
        list.validate()?;
        Ok((rate, emission, velocity, list))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fountain_frame(ctx: &mut Context) {
        ctx.p_new_frame();
        ctx.p_source(100);
        ctx.p_gravity(Vec3::new(0.0, -9.81, 0.0));
        ctx.p_bounce(ExternalObject::ground(0.0), 0.1, 0.4);
        ctx.p_kill_old(3.0);
        ctx.p_move();
    }

    fn ctx() -> Context {
        let mut c = Context::new(42);
        c.p_gen_particle_group("fountain", 10_000);
        c.p_time_step(0.05);
        c.p_color(0.4, 0.6, 1.0, 1.0);
        c.p_size(0.1);
        c.p_position_domain(PDomain::Point(Vec3::new(0.0, 0.5, 0.0)));
        c.p_velocity_domain(PDomain::Cone { apex: Vec3::ZERO, axis: Vec3::Y * 10.0, radius: 3.0 });
        c
    }

    #[test]
    fn immediate_mode_simulates() {
        let mut c = ctx();
        for _ in 0..30 {
            fountain_frame(&mut c);
        }
        let g = c.current();
        assert_eq!(g.len(), 3000);
        // droplets went up
        assert!(g.centroid().y > 0.5);
        // state was stamped
        assert!(g.particles().iter().all(|p| p.color == Vec3::new(0.4, 0.6, 1.0)));
    }

    #[test]
    fn capacity_bounds_population() {
        let mut c = Context::new(1);
        c.p_gen_particle_group("small", 250);
        c.p_position_domain(PDomain::Point(Vec3::ZERO));
        c.p_velocity_domain(PDomain::Point(Vec3::Y));
        for _ in 0..10 {
            c.p_new_frame();
            c.p_source(100);
            c.p_move();
        }
        assert_eq!(c.current().len(), 250);
    }

    #[test]
    fn kill_old_and_below_work_through_api() {
        let mut c = ctx();
        for _ in 0..100 {
            c.p_new_frame();
            c.p_source(10);
            c.p_gravity(Vec3::new(0.0, -9.81, 0.0));
            c.p_kill_old(0.5); // 10 frames at dt 0.05
            c.p_move();
        }
        // population ≈ rate × lifetime_frames
        let n = c.current().len();
        assert!((90..=115).contains(&n), "steady population {n}");
    }

    #[test]
    fn compile_produces_runtime_actions() {
        let mut c = ctx();
        fountain_frame(&mut c);
        let (rate, emission, velocity, list) = c.compile().expect("compilable");
        assert_eq!(rate, 100);
        assert!(matches!(emission, EmissionShape::Point(_)));
        assert!(matches!(velocity, VelocityModel::Cone { .. }));
        assert_eq!(list.len(), 4); // gravity, bounce, kill-old, move
        assert!(list.validate().is_ok());
    }

    #[test]
    fn compile_rejects_unsupported_domains() {
        let mut c = ctx();
        c.p_position_domain(PDomain::Line { a: Vec3::ZERO, b: Vec3::X });
        fountain_frame(&mut c);
        assert!(c.compile().is_err());
    }

    #[test]
    fn multiple_groups_are_independent() {
        let mut c = Context::new(5);
        let a = c.p_gen_particle_group("a", 1000);
        let b = c.p_gen_particle_group("b", 1000);
        c.p_position_domain(PDomain::Point(Vec3::ZERO));
        c.p_velocity_domain(PDomain::Point(Vec3::ZERO));
        c.p_current_group(a);
        c.p_source(10);
        c.p_current_group(b);
        c.p_source(20);
        assert_eq!(c.group(a).len(), 10);
        assert_eq!(c.group(b).len(), 20);
    }
}
