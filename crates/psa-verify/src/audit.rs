//! Central suppression + escape-hatch audit.
//!
//! Every pass (token lints, taint, panic reachability, protocol
//! conformance) emits *raw* findings — nothing is filtered at the point of
//! detection. This pass is the single place `// psa-verify: allow(<key>)`
//! annotations are honoured, which is what makes the audit sound: an
//! annotation that suppressed nothing in the whole run *provably* guards
//! nothing, and becomes a `stale-allow` error. The escape-hatch inventory
//! can only shrink — deleting dead allows is mandatory, not housekeeping.
//!
//! A raw finding may carry several keys (taint findings accept both
//! `nondet-taint` and the source-class key); suppression by *any* key
//! counts the annotation as used.

use crate::corpus::Unit;
use crate::lints::{known_allow_key, STALE_ALLOW};
use crate::report::Violation;

/// One unsuppressed finding: the violation plus every allow-key that may
/// silence it, tied back to its corpus unit.
#[derive(Debug)]
pub struct Raw {
    pub unit: usize,
    pub v: Violation,
    pub keys: Vec<&'static str>,
}

/// Apply allow-annotations to `raws`; surviving violations come back, plus
/// (when `audit` is set) a `stale-allow` error per annotation that never
/// suppressed anything or names an unknown key.
pub fn apply(units: &[Unit], raws: Vec<Raw>, audit: bool) -> Vec<Violation> {
    // Per unit: one `used` flag per annotation, file-level then line-level.
    let mut file_used: Vec<Vec<bool>> =
        units.iter().map(|u| vec![false; u.model.file_allows.len()]).collect();
    let mut line_used: Vec<Vec<bool>> =
        units.iter().map(|u| vec![false; u.model.line_allows.len()]).collect();

    let mut out = Vec::new();
    for raw in raws {
        let u = &units[raw.unit];
        let vline = raw.v.line - 1; // violations are 1-based
        let mut suppressed = false;
        for (ai, (_, name)) in u.model.file_allows.iter().enumerate() {
            if raw.keys.iter().any(|k| k == name) {
                file_used[raw.unit][ai] = true;
                suppressed = true;
            }
        }
        for (ai, (aline, name)) in u.model.line_allows.iter().enumerate() {
            if raw.keys.iter().any(|k| k == name) && (*aline == vline || aline + 1 == vline) {
                line_used[raw.unit][ai] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(raw.v);
        }
    }

    if audit {
        for (ui, u) in units.iter().enumerate() {
            let annotations = u
                .model
                .file_allows
                .iter()
                .zip(&file_used[ui])
                .chain(u.model.line_allows.iter().zip(&line_used[ui]));
            for ((aline, name), used) in annotations {
                if name == STALE_ALLOW.allow_key {
                    // `allow(stale-allow)` would make the audit self-defeating.
                    continue;
                }
                let reason = if !known_allow_key(name) {
                    Some(format!("allow({name}) names an unknown lint key"))
                } else if !used {
                    Some(format!("allow({name}) suppresses nothing"))
                } else {
                    None
                };
                if let Some(needle) = reason {
                    out.push(Violation {
                        lint: STALE_ALLOW.id.to_string(),
                        file: u.rel.clone(),
                        line: aline + 1,
                        needle,
                        message: STALE_ALLOW.message.to_string(),
                        severity: "error".to_string(),
                        snippet: u
                            .raw_lines()
                            .get(*aline)
                            .map_or(String::new(), |l| l.trim().to_string()),
                    });
                }
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(unit: usize, line: usize, lint: &str, keys: Vec<&'static str>) -> Raw {
        Raw {
            unit,
            v: Violation {
                lint: lint.to_string(),
                file: "f.rs".to_string(),
                line,
                needle: "x".to_string(),
                message: "m".to_string(),
                severity: "error".to_string(),
                snippet: String::new(),
            },
            keys,
        }
    }

    #[test]
    fn line_allow_suppresses_and_counts_as_used() {
        let u = Unit::parse(
            "f.rs",
            "use x;\n// psa-verify: allow(wall-clock) reason\nlet t = Instant::now();\n"
                .to_string(),
        );
        let out = apply(&[u], vec![raw(0, 3, "wall-clock", vec!["wall-clock"])], true);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn unused_allow_is_a_stale_allow_error() {
        let u = Unit::parse(
            "f.rs",
            "use x;\n// psa-verify: allow(wall-clock) nothing here\nlet y = 1;\n".to_string(),
        );
        let out = apply(&[u], vec![], true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "stale-allow");
        assert_eq!(out[0].line, 2);
        assert!(out[0].needle.contains("suppresses nothing"));
    }

    #[test]
    fn unknown_key_is_a_stale_allow_error_even_if_positioned_right() {
        let u = Unit::parse(
            "f.rs",
            "use x;\n// psa-verify: allow(wallclock) typo\nlet t = Instant::now();\n".to_string(),
        );
        let out = apply(&[u], vec![raw(0, 3, "wall-clock", vec!["wall-clock"])], true);
        assert_eq!(out.len(), 2, "{out:#?}"); // the violation AND the typo'd allow
        assert!(out.iter().any(|v| v.lint == "stale-allow" && v.needle.contains("unknown")));
        assert!(out.iter().any(|v| v.lint == "wall-clock"));
    }

    #[test]
    fn any_key_of_a_multi_key_finding_suppresses_it() {
        let u = Unit::parse(
            "f.rs",
            "use x;\n// psa-verify: allow(wall-clock) timing fence\nlet t = Instant::now();\n"
                .to_string(),
        );
        let out =
            apply(&[u], vec![raw(0, 3, "nondet-taint", vec!["nondet-taint", "wall-clock"])], true);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn file_allow_suppresses_any_line_and_audit_can_be_disabled() {
        let u = Unit::parse(
            "f.rs",
            "// psa-verify: allow(index-panic) bounds by construction\nfn f() {}\n// psa-verify: allow(unordered) dead\n".to_string(),
        );
        let raws = vec![raw(0, 2, "index-panic", vec!["index-panic"])];
        assert!(apply(&[Unit::parse("f.rs", u.src.clone())], raws, false).is_empty());
        let audited = apply(&[u], vec![raw(0, 2, "index-panic", vec!["index-panic"])], true);
        assert_eq!(audited.len(), 1, "{audited:#?}");
        assert_eq!(audited[0].lint, "stale-allow");
        assert_eq!(audited[0].line, 3);
    }
}
