//! The lint registry: token-pattern lints, the analysis lints layered on
//! the call graph, and the per-file pattern runner.
//!
//! Token lints match *token sequences* on the lexed code channel, so
//! `BuildHashMapConfig` no longer matches `HashMap` and `unwrap_or_else`
//! never matches `unwrap` — the substring false-positive class of the v1
//! lexical scanner is structurally gone. Analysis lints (`nondet-taint`,
//! `panic-reach`, `index-panic`, `protocol-order`, `stale-allow`) have no
//! patterns here; they are produced by the `taint` / `panics` / `proto` /
//! `audit` passes and registered in [`ALL_LINTS`] so the selftest coverage
//! rule ("every lint id has a fixture") applies to them too.

use crate::lex::Tok;
use crate::report::Violation;
use crate::scan::FileModel;

/// One registered lint.
pub struct LintDef {
    /// Stable id used in reports and CI filters.
    pub id: &'static str,
    /// Name accepted by `// psa-verify: allow(<key>)`.
    pub allow_key: &'static str,
    /// Token-sequence patterns that fire the lint (empty for analysis
    /// lints, which are produced by the graph passes instead).
    pub patterns: &'static [&'static [&'static str]],
    /// Human explanation of why the construct is banned.
    pub message: &'static str,
    /// Whether `#[cfg(test)]` / `#[test]` bodies are exempt.
    pub skip_tests: bool,
}

/// Unordered collections make iteration order depend on the hasher seed,
/// which breaks bit-reproducible runs.
pub const UNORDERED: LintDef = LintDef {
    id: "unordered-collections",
    allow_key: "unordered",
    patterns: &[&["HashMap"], &["HashSet"]],
    message: "unordered collection in a simulation crate; use BTreeMap/BTreeSet \
              or annotate `// psa-verify: allow(unordered)` with a reason",
    skip_tests: false,
};

/// Wall-clock reads and sleeps inside virtual-time code couple results to
/// host timing.
pub const WALL_CLOCK: LintDef = LintDef {
    id: "wall-clock",
    allow_key: "wall-clock",
    patterns: &[
        &["Instant", "::", "now"],
        &["SystemTime"],
        &["thread", "::", "sleep"],
        &["sleep", "("],
    ],
    message: "wall-clock/sleep in virtual-time code; virtual time must come from \
              the cost model, and injected fault delays must be charged as \
              virtual ticks (netsim fault plans), or annotate \
              `// psa-verify: allow(wall-clock)`",
    skip_tests: false,
};

/// A bare blocking `recv()` in a protocol loop hangs the whole executor
/// when a peer dies silently; bounded receives turn a lost peer into a
/// typed `TransportError::Timeout` the run report can explain.
pub const UNBOUNDED_RECV: LintDef = LintDef {
    id: "no-unbounded-recv",
    allow_key: "unbounded-recv",
    patterns: &[&[".", "recv", "("]],
    message: "unbounded blocking receive in a protocol module; use \
              `recv_deadline` so a lost peer surfaces as a typed \
              TransportError::Timeout with rank/frame context, or annotate \
              `// psa-verify: allow(unbounded-recv)` with a reason",
    skip_tests: true,
};

/// Ambient RNG bypasses the seeded `psa-math::rng` streams the tables
/// regenerate from.
pub const AMBIENT_RNG: LintDef = LintDef {
    id: "ambient-rng",
    allow_key: "ambient-rng",
    patterns: &[
        &["thread_rng"],
        &["rand", "::", "random"],
        &["from_entropy"],
        &["OsRng"],
        &["getrandom"],
    ],
    message: "ambient RNG; all randomness must flow through seeded psa_math::Rng64 \
              streams",
    skip_tests: false,
};

/// Message-handling code must return typed errors, never panic: a poisoned
/// rank thread deadlocks the executor instead of failing the run report.
pub const PROTOCOL_PANIC: LintDef = LintDef {
    id: "protocol-panic",
    allow_key: "panic",
    patterns: &[
        &[".", "unwrap", "(", ")"],
        &[".", "expect", "("],
        &["panic", "!"],
        &["unreachable", "!"],
        &["todo", "!"],
        &["unimplemented", "!"],
    ],
    message: "panic path in a protocol module; return a typed ProtocolError/\
              TransportError to the executor instead",
    skip_tests: true,
};

/// Thread spawns outside the approved kernel module make execution order —
/// and therefore RNG stream consumption — depend on the scheduler. All
/// intra-rank parallelism must flow through `psa_core::kernel`, whose
/// chunk-keyed streams and chunk-order merge keep results worker-count
/// invariant.
pub const THREAD_CONFINEMENT: LintDef = LintDef {
    id: "thread-confinement",
    allow_key: "thread-spawn",
    patterns: &[&["thread", "::", "spawn"], &["thread", "::", "scope"]],
    message: "thread spawn in a simulation crate outside psa_core::kernel; route \
              parallel compute through the chunked kernel (deterministic for any \
              worker count), or annotate `// psa-verify: allow(thread-spawn)` \
              with a reason",
    skip_tests: true,
};

// ---------------------------------------------------------------------------
// Analysis lints (call-graph passes; no token patterns).
// ---------------------------------------------------------------------------

/// Nondeterminism taint: an ambient source (wall clock, unordered
/// collection, ambient RNG, thread identity) inside a function reachable
/// from a phase entry point.
pub const NONDET_TAINT: LintDef = LintDef {
    id: "nondet-taint",
    allow_key: "nondet-taint",
    patterns: &[],
    message: "nondeterministic source reachable from a phase entry point; state \
              that feeds fingerprints must be a pure function of the seed — \
              route randomness through psa_math::Rng64, timing through the cost \
              model, and iteration through ordered collections",
    skip_tests: true,
};

/// Panic reachability: a panic-family construct inside a function reachable
/// from the protocol send/recv roots, found over the call graph.
pub const PANIC_REACH: LintDef = LintDef {
    id: "panic-reach",
    allow_key: "panic-reach",
    patterns: &[],
    message: "panic path reachable from a protocol root over the call graph; a \
              poisoned rank thread deadlocks its peers — return a typed error \
              up the call chain instead",
    skip_tests: true,
};

/// Indexing that can panic inside functions reachable from protocol roots.
pub const INDEX_PANIC: LintDef = LintDef {
    id: "index-panic",
    allow_key: "index-panic",
    patterns: &[],
    message: "slice/array indexing reachable from a protocol root; an \
              out-of-range index panics the rank thread — use get()/get_mut() \
              with a typed error, or annotate \
              `// psa-verify: allow(index-panic)` with the bounds invariant",
    skip_tests: true,
};

/// Figure-2 protocol conformance: the statically extracted send/recv
/// sequence of an executor role must match the six-phase state machine.
pub const PROTOCOL_ORDER: LintDef = LintDef {
    id: "protocol-order",
    allow_key: "protocol-order",
    patterns: &[],
    message: "executor send/recv sequence deviates from the Figure-2 six-phase \
              protocol state machine (see psa-verify's proto module for the \
              per-role spec)",
    skip_tests: true,
};

/// Suppression audit: an `// psa-verify: allow(...)` annotation that no
/// longer suppresses anything (or names an unknown lint) is an error, so
/// the escape-hatch inventory can only shrink.
pub const STALE_ALLOW: LintDef = LintDef {
    id: "stale-allow",
    allow_key: "stale-allow",
    patterns: &[],
    message: "stale `// psa-verify: allow(...)` annotation: it suppresses \
              nothing on this line or file — delete it (the escape-hatch \
              inventory may only shrink)",
    skip_tests: false,
};

pub const ALL_LINTS: &[&LintDef] = &[
    &UNORDERED,
    &WALL_CLOCK,
    &AMBIENT_RNG,
    &PROTOCOL_PANIC,
    &UNBOUNDED_RECV,
    &THREAD_CONFINEMENT,
    &NONDET_TAINT,
    &PANIC_REACH,
    &INDEX_PANIC,
    &PROTOCOL_ORDER,
    &STALE_ALLOW,
];

/// Look up a lint by id.
pub fn by_id(id: &str) -> Option<&'static LintDef> {
    ALL_LINTS.iter().copied().find(|l| l.id == id)
}

/// Is `key` a registered allow-key?
pub fn known_allow_key(key: &str) -> bool {
    ALL_LINTS.iter().any(|l| l.allow_key == key)
}

/// Run the token-pattern lints over one lexed file. Returns *raw*
/// violations — allow-annotations are applied later by the suppression
/// pass, which also audits them.
pub fn run_lints(
    display_path: &str,
    model: &FileModel,
    toks: &[Tok],
    lints: &[&'static LintDef],
    raw_lines: &[&str],
) -> Vec<(Violation, &'static str)> {
    let mut out: Vec<(Violation, &'static str)> = Vec::new();
    for lint in lints {
        let mut seen_lines: Vec<usize> = Vec::new();
        for pattern in lint.patterns {
            for k in 0..toks.len() {
                if !pattern
                    .iter()
                    .enumerate()
                    .all(|(off, want)| toks.get(k + off).is_some_and(|t| t.text == *want))
                {
                    continue;
                }
                let line = toks[k].line;
                if lint.skip_tests && model.in_test.get(line).copied().unwrap_or(false) {
                    continue;
                }
                // One finding per (lint, line): overlapping patterns (e.g.
                // `thread::sleep` and `sleep(`) describe the same construct.
                if seen_lines.contains(&line) {
                    continue;
                }
                seen_lines.push(line);
                out.push((
                    Violation {
                        lint: lint.id.to_string(),
                        file: display_path.to_string(),
                        line: line + 1,
                        needle: pattern.concat(),
                        message: lint.message.to_string(),
                        severity: "error".to_string(),
                        snippet: raw_lines
                            .get(line)
                            .map_or(String::new(), |l| l.trim().to_string()),
                    },
                    lint.allow_key,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;

    fn scan(src: &str, lints: &[&'static LintDef]) -> Vec<Violation> {
        let model = FileModel::parse(src);
        let toks = tokenize(&model.code);
        let raw: Vec<&str> = src.lines().collect();
        run_lints("test.rs", &model, &toks, lints, &raw)
            .into_iter()
            .filter(|(v, key)| !model.allowed(v.line - 1, key))
            .map(|(v, _)| v)
            .collect()
    }

    #[test]
    fn hashmap_fires_but_btreemap_does_not() {
        let v = scan(
            "use std::collections::HashMap;\nuse std::collections::BTreeMap;\n",
            &[&UNORDERED],
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].lint, "unordered-collections");
    }

    #[test]
    fn identifier_containing_a_needle_does_not_fire() {
        // The v1 substring scanner tripped on all of these.
        let v = scan(
            "struct BuildHashMapConfig;\nlet my_thread_rng_label = 1;\nfn sleepy() {}\n",
            &[&UNORDERED, &AMBIENT_RNG, &WALL_CLOCK],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn string_and_comment_mentions_do_not_fire() {
        let v = scan(
            "// HashMap is banned\nlet s = \"HashMap\";\nlet t = r#\"Instant::now\"#;\n",
            &[&UNORDERED, &WALL_CLOCK],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let v = scan(
            "let x = y.unwrap_or_else(Vec::new);\nlet z = y.unwrap_or(0);\n",
            &[&PROTOCOL_PANIC],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn spaced_tokens_still_fire() {
        // Token matching sees through whitespace the substring scanner
        // required to be absent.
        let v = scan("let t = Instant :: now();\n", &[&WALL_CLOCK]);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn panics_in_test_mods_are_exempt() {
        let src =
            "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        let v = scan(src, &[&PROTOCOL_PANIC]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn allow_annotations_suppress() {
        let src = "use a;\n// psa-verify: allow(wall-clock) timing loop\nlet t = Instant::now();\nlet u = Instant::now();\n";
        let v = scan(src, &[&WALL_CLOCK]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn file_level_allow_suppresses_everywhere() {
        let src = "// psa-verify: allow(wall-clock) whole file measures real time\nuse std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert!(scan(src, &[&WALL_CLOCK]).is_empty());
    }

    #[test]
    fn bare_recv_fires_but_deadline_and_try_variants_do_not() {
        let v = scan(
            "let a = ep.recv(peer)?;\nlet b = ep.recv_deadline(peer, d)?;\nlet c = ep.try_recv(peer)?;\n",
            &[&UNBOUNDED_RECV],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].lint, "no-unbounded-recv");
    }

    #[test]
    fn recv_in_test_mods_is_exempt() {
        let src = "fn f(ep: &E) { ep.recv(0); }\n#[cfg(test)]\nmod tests {\n    fn g(ep: &E) { ep.recv(0); }\n}\n";
        let v = scan(src, &[&UNBOUNDED_RECV]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn every_lint_id_resolves_and_analysis_lints_are_registered() {
        for l in ALL_LINTS {
            assert!(by_id(l.id).is_some());
        }
        assert!(by_id("no-such-lint").is_none());
        for id in ["nondet-taint", "panic-reach", "index-panic", "protocol-order", "stale-allow"] {
            assert!(by_id(id).is_some(), "analysis lint {id} must be registered");
            assert!(by_id(id).unwrap().patterns.is_empty());
        }
        assert!(known_allow_key("wall-clock"));
        assert!(!known_allow_key("bogus"));
    }
}
