//! The lint set: what to look for, where panics are forbidden, and the
//! per-file runner.

use crate::report::Violation;
use crate::scan::FileModel;

/// One lexical lint: needles searched on the stripped code channel.
pub struct LintDef {
    /// Stable id used in reports and CI filters.
    pub id: &'static str,
    /// Name accepted by `// psa-verify: allow(<key>)`.
    pub allow_key: &'static str,
    /// Substrings that fire the lint when found in code.
    pub needles: &'static [&'static str],
    /// Human explanation of why the construct is banned.
    pub message: &'static str,
    /// Whether `#[cfg(test)]` / `#[test]` bodies are exempt.
    pub skip_tests: bool,
}

/// Unordered collections make iteration order depend on the hasher seed,
/// which breaks bit-reproducible runs.
pub const UNORDERED: LintDef = LintDef {
    id: "unordered-collections",
    allow_key: "unordered",
    needles: &["HashMap", "HashSet"],
    message: "unordered collection in a simulation crate; use BTreeMap/BTreeSet \
              or annotate `// psa-verify: allow(unordered)` with a reason",
    skip_tests: false,
};

/// Wall-clock reads and sleeps inside virtual-time code couple results to
/// host timing.
pub const WALL_CLOCK: LintDef = LintDef {
    id: "wall-clock",
    allow_key: "wall-clock",
    needles: &["Instant::now", "SystemTime", "thread::sleep", "sleep("],
    message: "wall-clock/sleep in virtual-time code; virtual time must come from \
              the cost model, and injected fault delays must be charged as \
              virtual ticks (netsim fault plans), or annotate \
              `// psa-verify: allow(wall-clock)`",
    skip_tests: false,
};

/// A bare blocking `recv()` in a protocol loop hangs the whole executor
/// when a peer dies silently; bounded receives turn a lost peer into a
/// typed `TransportError::Timeout` the run report can explain.
pub const UNBOUNDED_RECV: LintDef = LintDef {
    id: "no-unbounded-recv",
    allow_key: "unbounded-recv",
    needles: &[".recv("],
    message: "unbounded blocking receive in a protocol module; use \
              `recv_deadline` so a lost peer surfaces as a typed \
              TransportError::Timeout with rank/frame context, or annotate \
              `// psa-verify: allow(unbounded-recv)` with a reason",
    skip_tests: true,
};

/// Ambient RNG bypasses the seeded `psa-math::rng` streams the tables
/// regenerate from.
pub const AMBIENT_RNG: LintDef = LintDef {
    id: "ambient-rng",
    allow_key: "ambient-rng",
    needles: &["thread_rng", "rand::random", "from_entropy", "OsRng", "getrandom"],
    message: "ambient RNG; all randomness must flow through seeded psa_math::Rng64 \
              streams",
    skip_tests: false,
};

/// Message-handling code must return typed errors, never panic: a poisoned
/// rank thread deadlocks the executor instead of failing the run report.
pub const PROTOCOL_PANIC: LintDef = LintDef {
    id: "protocol-panic",
    allow_key: "panic",
    needles: &[".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"],
    message: "panic path in a protocol module; return a typed ProtocolError/\
              TransportError to the executor instead",
    skip_tests: true,
};

/// Thread spawns outside the approved kernel module make execution order —
/// and therefore RNG stream consumption — depend on the scheduler. All
/// intra-rank parallelism must flow through `psa_core::kernel`, whose
/// chunk-keyed streams and chunk-order merge keep results worker-count
/// invariant.
pub const THREAD_CONFINEMENT: LintDef = LintDef {
    id: "thread-confinement",
    allow_key: "thread-spawn",
    needles: &["thread::spawn", "thread::scope"],
    message: "thread spawn in a simulation crate outside psa_core::kernel; route \
              parallel compute through the chunked kernel (deterministic for any \
              worker count), or annotate `// psa-verify: allow(thread-spawn)` \
              with a reason",
    skip_tests: true,
};

pub const ALL_LINTS: &[&LintDef] =
    &[&UNORDERED, &WALL_CLOCK, &AMBIENT_RNG, &PROTOCOL_PANIC, &UNBOUNDED_RECV, &THREAD_CONFINEMENT];

/// Look up a lint by id.
pub fn by_id(id: &str) -> Option<&'static LintDef> {
    ALL_LINTS.iter().copied().find(|l| l.id == id)
}

/// Run `lints` over one parsed file; `display_path` goes into diagnostics.
pub fn run_lints(
    display_path: &str,
    model: &FileModel,
    lints: &[&LintDef],
    raw_lines: &[&str],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, code) in model.code.iter().enumerate() {
        for lint in lints {
            if lint.skip_tests && model.in_test[i] {
                continue;
            }
            let Some(needle) = lint.needles.iter().find(|n| code.contains(*n)) else {
                continue;
            };
            if model.allowed(i, lint.allow_key) {
                continue;
            }
            out.push(Violation {
                lint: lint.id.to_string(),
                file: display_path.to_string(),
                line: i + 1,
                needle: needle.to_string(),
                message: lint.message.to_string(),
                snippet: raw_lines.get(i).map_or(String::new(), |l| l.trim().to_string()),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str, lints: &[&LintDef]) -> Vec<Violation> {
        let model = FileModel::parse(src);
        let raw: Vec<&str> = src.lines().collect();
        run_lints("test.rs", &model, lints, &raw)
    }

    #[test]
    fn hashmap_fires_but_btreemap_does_not() {
        let v = scan(
            "use std::collections::HashMap;\nuse std::collections::BTreeMap;\n",
            &[&UNORDERED],
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].lint, "unordered-collections");
    }

    #[test]
    fn string_and_comment_mentions_do_not_fire() {
        let v = scan(
            "// HashMap is banned\nlet s = \"HashMap\";\nlet t = r#\"Instant::now\"#;\n",
            &[&UNORDERED, &WALL_CLOCK],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let v = scan(
            "let x = y.unwrap_or_else(Vec::new);\nlet z = y.unwrap_or(0);\n",
            &[&PROTOCOL_PANIC],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn panics_in_test_mods_are_exempt() {
        let src =
            "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        let v = scan(src, &[&PROTOCOL_PANIC]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn allow_annotations_suppress() {
        let src = "use a;\n// psa-verify: allow(wall-clock) timing loop\nlet t = Instant::now();\nlet u = Instant::now();\n";
        let v = scan(src, &[&WALL_CLOCK]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn file_level_allow_suppresses_everywhere() {
        let src = "// psa-verify: allow(wall-clock) whole file measures real time\nuse std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert!(scan(src, &[&WALL_CLOCK]).is_empty());
    }

    #[test]
    fn bare_recv_fires_but_deadline_and_try_variants_do_not() {
        let v = scan(
            "let a = ep.recv(peer)?;\nlet b = ep.recv_deadline(peer, d)?;\nlet c = ep.try_recv(peer)?;\n",
            &[&UNBOUNDED_RECV],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].lint, "no-unbounded-recv");
    }

    #[test]
    fn recv_in_test_mods_is_exempt() {
        let src = "fn f(ep: &E) { ep.recv(0); }\n#[cfg(test)]\nmod tests {\n    fn g(ep: &E) { ep.recv(0); }\n}\n";
        let v = scan(src, &[&UNBOUNDED_RECV]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn every_lint_id_resolves() {
        for l in ALL_LINTS {
            assert!(by_id(l.id).is_some());
        }
        assert!(by_id("no-such-lint").is_none());
    }
}
