//! Lightweight function-level AST over the token stream.
//!
//! Full Rust parsing is out of reach offline (no `syn`), and unnecessary:
//! every analysis in this tool needs exactly one shape — *which functions
//! exist, and what ordered facts does each body contain*. This module
//! extracts, per function:
//!
//! * **calls** — `name(` / `.name(` / `path::name(` callee names, used by
//!   the conservative call graph;
//! * **protocol events** — `Msg::Kind` constructions inside a send call
//!   (`send` / `send_to`) and `Msg::Kind` match patterns followed by `=>`,
//!   in token order, used by the Figure-2 conformance check;
//! * **panic sites** — `.unwrap()` / `.expect(` / panic-family macros;
//! * **indexing sites** — postfix `[expr]` with a non-literal index;
//! * **nondeterminism sources** — wall clocks, unordered collections,
//!   ambient RNG, thread identity.
//!
//! Nested `fn` items are split out into their own records (their tokens do
//! not leak into the enclosing body), and `macro_rules!` definitions are
//! skipped entirely — a `$pat => $out` template arm is not a receive.

use crate::lex::{Tok, TokKind};
use crate::scan::FileModel;

/// Direction of a protocol event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    Send,
    Recv,
}

impl Dir {
    pub fn name(self) -> &'static str {
        match self {
            Dir::Send => "send",
            Dir::Recv => "recv",
        }
    }
}

/// One ordered fact inside a function body.
#[derive(Clone, Debug)]
pub enum BodyItem {
    /// A call to `name` (function, method, or path tail).
    Call { name: String, line: usize },
    /// A `Msg::kind` send or receive.
    Event { dir: Dir, kind: String, line: usize },
}

/// A construct that can panic at runtime.
#[derive(Clone, Debug)]
pub struct Site {
    /// What fired (`.unwrap()`, `panic!`, `[index]`, ...).
    pub what: String,
    /// 0-based line.
    pub line: usize,
}

/// Which determinism contract a nondeterminism source falls under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceClass {
    /// `Instant::now` / `SystemTime`: audited via `allow(wall-clock)`.
    WallClock,
    /// `HashMap` / `HashSet` / `RandomState`: audited via `allow(unordered)`.
    Unordered,
    /// `thread_rng` / `OsRng` / ...: audited via `allow(ambient-rng)`.
    AmbientRng,
    /// `thread::current`: no per-source escape hatch; only
    /// `allow(nondet-taint)` can suppress it.
    ThreadId,
}

impl SourceClass {
    /// The allow-key of the lexical lint that audits this source class,
    /// if one exists.
    pub fn allow_key(self) -> Option<&'static str> {
        match self {
            SourceClass::WallClock => Some("wall-clock"),
            SourceClass::Unordered => Some("unordered"),
            SourceClass::AmbientRng => Some("ambient-rng"),
            SourceClass::ThreadId => None,
        }
    }
}

/// One nondeterminism source occurrence.
#[derive(Clone, Debug)]
pub struct SourceHit {
    pub class: SourceClass,
    pub what: String,
    pub line: usize,
}

/// One function item.
#[derive(Clone, Debug)]
pub struct FnInfo {
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Inside a `#[cfg(test)]` / `#[test]` item.
    pub is_test: bool,
    /// Calls and protocol events, in token order.
    pub items: Vec<BodyItem>,
    /// Panic-family sites (`.unwrap()`, `.expect(`, `panic!`, ...).
    pub panics: Vec<Site>,
    /// Non-literal postfix indexing sites.
    pub indexing: Vec<Site>,
    /// Nondeterminism sources.
    pub sources: Vec<SourceHit>,
}

impl FnInfo {
    /// Callee names in order (convenience over [`FnInfo::items`]).
    pub fn calls(&self) -> impl Iterator<Item = (&str, usize)> {
        self.items.iter().filter_map(|i| match i {
            BodyItem::Call { name, line } => Some((name.as_str(), *line)),
            _ => None,
        })
    }
}

/// Functions whose argument list carries protocol messages.
const SEND_FNS: &[&str] = &["send", "send_to"];

/// Idents that look like calls but never are.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "else", "in", "as", "let", "fn",
    "pub", "impl", "use", "mod", "struct", "enum", "trait", "where", "unsafe", "ref", "mut", "dyn",
    "box", "Some", "Ok", "Err", "None",
];

/// Panic-family macros.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Token-sequence patterns for nondeterminism sources.
const SOURCE_PATTERNS: &[(&[&str], SourceClass)] = &[
    (&["Instant", "::", "now"], SourceClass::WallClock),
    (&["SystemTime"], SourceClass::WallClock),
    (&["HashMap"], SourceClass::Unordered),
    (&["HashSet"], SourceClass::Unordered),
    (&["RandomState"], SourceClass::Unordered),
    (&["thread_rng"], SourceClass::AmbientRng),
    (&["rand", "::", "random"], SourceClass::AmbientRng),
    (&["from_entropy"], SourceClass::AmbientRng),
    (&["OsRng"], SourceClass::AmbientRng),
    (&["getrandom"], SourceClass::AmbientRng),
    (&["thread", "::", "current"], SourceClass::ThreadId),
];

/// Extract every function item from a tokenized file.
pub fn collect_fns(toks: &[Tok], model: &FileModel) -> Vec<FnInfo> {
    // Pass 1: locate `macro_rules!` definition ranges (skipped wholesale)
    // and every `fn` item with its body token range.
    let mut masked = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("macro_rules") {
            if let Some(end) = skip_macro_def(toks, i) {
                for m in masked.iter_mut().take(end).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }

    let mut fns_raw: Vec<(String, usize, usize, usize)> = Vec::new(); // (name, fn_line, body_start, body_end)
    let mut i = 0;
    while i < toks.len() {
        if masked[i] || !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1; // `fn(` pointer type, `Fn()` bounds, etc.
            continue;
        }
        // Scan from the name for the body `{` or a `;` (no body) at
        // bracket depth zero relative to the signature.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut body: Option<(usize, usize)> = None;
        while j < toks.len() {
            let t = &toks[j];
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "{" if depth <= 0 => {
                    body = Some((j, match_brace(toks, j)));
                    break;
                }
                ";" if depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if let Some((bs, be)) = body {
            fns_raw.push((name_tok.text.clone(), toks[i].line, bs, be));
            i = bs + 1; // keep scanning inside for nested fns
        } else {
            i = j + 1;
        }
    }

    // Pass 2: per function, walk its body excluding any strictly-nested
    // function bodies and masked macro-definition ranges.
    let mut out = Vec::new();
    for &(ref name, line, bs, be) in &fns_raw {
        let nested: Vec<(usize, usize)> = fns_raw
            .iter()
            .filter(|&&(_, _, nbs, nbe)| nbs > bs && nbe <= be)
            .map(|&(_, _, nbs, nbe)| (nbs, nbe))
            .collect();
        let own: Vec<usize> = (bs..be)
            .filter(|&k| !masked[k] && !nested.iter().any(|&(nbs, nbe)| k > nbs && k < nbe))
            .collect();
        let mut info = FnInfo {
            name: name.clone(),
            line,
            is_test: model.in_test.get(line).copied().unwrap_or(false),
            items: Vec::new(),
            panics: Vec::new(),
            indexing: Vec::new(),
            sources: Vec::new(),
        };
        extract_body(toks, &own, &mut info);
        out.push(info);
    }
    out
}

/// Skip a `macro_rules! name { ... }` definition; returns the index one
/// past the closing delimiter.
fn skip_macro_def(toks: &[Tok], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if !toks.get(j)?.is_punct("!") {
        return None;
    }
    j += 1;
    if toks.get(j)?.kind == TokKind::Ident {
        j += 1;
    }
    let open = toks.get(j)?;
    if !matches!(open.text.as_str(), "{" | "(" | "[") {
        return None;
    }
    Some(match_delim(toks, j))
}

/// Index one past the token closing the brace opened at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    match_delim(toks, open)
}

fn match_delim(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return open + 1,
    };
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct(o) {
            depth += 1;
        } else if toks[j].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Walk one body (as a list of visible token indices) collecting calls,
/// events, panic/indexing sites, and nondeterminism sources.
fn extract_body(toks: &[Tok], own: &[usize], info: &mut FnInfo) {
    let at = |k: usize| -> Option<&Tok> { own.get(k).map(|&i| &toks[i]) };
    for k in 0..own.len() {
        let t = &toks[own[k]];

        // Calls: Ident followed by `(`, not a keyword/constructor, not a
        // macro invocation (`name!`), not the declaration name (`fn name(`).
        if t.kind == TokKind::Ident
            && at(k + 1).is_some_and(|n| n.is_punct("("))
            && !NON_CALL_IDENTS.contains(&t.text.as_str())
            && !(k > 0 && at(k - 1).is_some_and(|p| p.is_ident("fn")))
        {
            info.items.push(BodyItem::Call { name: t.text.clone(), line: t.line });
            // Send events: `Msg::Kind` anywhere inside a send-call's args.
            if SEND_FNS.contains(&t.text.as_str()) {
                let close = match_delim_in(toks, own, k + 1);
                let mut m = k + 2;
                while m + 2 < close {
                    if at(m).is_some_and(|x| x.is_ident("Msg"))
                        && at(m + 1).is_some_and(|x| x.is_punct("::"))
                        && at(m + 2).is_some_and(|x| x.kind == TokKind::Ident)
                    {
                        let kt = at(m + 2).expect("checked");
                        info.items.push(BodyItem::Event {
                            dir: Dir::Send,
                            kind: kt.text.clone(),
                            line: kt.line,
                        });
                        m += 3;
                        continue;
                    }
                    m += 1;
                }
            }
        }

        // Recv events: `Msg::Kind` (+ optional `{..}`/`(..)` group), then
        // past any `)` / `|` / `None`, a `=>` — i.e. a match-arm pattern.
        if t.is_ident("Msg")
            && at(k + 1).is_some_and(|x| x.is_punct("::"))
            && at(k + 2).is_some_and(|x| x.kind == TokKind::Ident)
        {
            let kt = at(k + 2).expect("checked");
            let kind = kt.text.clone();
            let (kline, mut m) = (kt.line, k + 3);
            if at(m).is_some_and(|x| x.is_punct("{") || x.is_punct("(")) {
                m = match_delim_in(toks, own, m);
            }
            while at(m).is_some_and(|x| x.is_punct(")") || x.is_punct("|") || x.is_ident("None")) {
                m += 1;
            }
            if at(m).is_some_and(|x| x.is_punct("=>")) {
                info.items.push(BodyItem::Event { dir: Dir::Recv, kind, line: kline });
            }
        }

        // Panic sites.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && at(k + 1).is_some_and(|n| n.is_punct("!"))
        {
            info.panics.push(Site { what: format!("{}!", t.text), line: t.line });
        }
        if t.is_punct(".") {
            if at(k + 1).is_some_and(|n| n.is_ident("unwrap"))
                && at(k + 2).is_some_and(|n| n.is_punct("("))
                && at(k + 3).is_some_and(|n| n.is_punct(")"))
            {
                info.panics.push(Site { what: ".unwrap()".into(), line: t.line });
            }
            if at(k + 1).is_some_and(|n| n.is_ident("expect"))
                && at(k + 2).is_some_and(|n| n.is_punct("("))
            {
                info.panics.push(Site { what: ".expect(".into(), line: t.line });
            }
        }

        // Indexing: postfix `[` after an expression (`ident` / `)` / `]`),
        // with a non-literal index. Attribute (`#[`), type (`: [f64; N]`),
        // and array-literal (`= [..]`) positions fail the prefix test.
        if t.is_punct("[")
            && k > 0
            && at(k - 1).is_some_and(|p| {
                (p.kind == TokKind::Ident && !NON_CALL_IDENTS.contains(&p.text.as_str()))
                    || p.is_punct(")")
                    || p.is_punct("]")
            })
        {
            let close = match_delim_in(toks, own, k);
            let single_literal =
                close == k + 3 && at(k + 1).is_some_and(|x| x.kind == TokKind::Literal);
            if close > k + 1 && !single_literal {
                let idx_text: String = own[k..close.min(own.len())]
                    .iter()
                    .map(|&i| toks[i].text.as_str())
                    .collect::<Vec<_>>()
                    .join("");
                info.indexing.push(Site {
                    what: format!("[{}]", idx_text.trim_matches(['[', ']'])),
                    line: t.line,
                });
            }
        }

        // Nondeterminism sources.
        for &(pat, class) in SOURCE_PATTERNS {
            if pat
                .iter()
                .enumerate()
                .all(|(off, want)| at(k + off).is_some_and(|x| x.text == *want))
            {
                info.sources.push(SourceHit { class, what: pat.concat(), line: t.line });
            }
        }
    }
}

/// `match_delim` restricted to the visible-index list: `open_k` indexes
/// into `own`; returns the `own` index one past the matching closer.
fn match_delim_in(toks: &[Tok], own: &[usize], open_k: usize) -> usize {
    let Some(&oi) = own.get(open_k) else { return open_k + 1 };
    let (o, c) = match toks[oi].text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return open_k + 1,
    };
    let mut depth = 0i32;
    let mut k = open_k;
    while k < own.len() {
        let t = &toks[own[k]];
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    own.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;

    fn fns(src: &str) -> Vec<FnInfo> {
        let model = FileModel::parse(src);
        let toks = tokenize(&model.code);
        collect_fns(&toks, &model)
    }

    #[test]
    fn finds_free_impl_and_nested_fns() {
        let src = "fn a() { helper(); }\nimpl T { fn b(&self) { fn inner() { x.unwrap(); } inner(); } }\n";
        let f = fns(src);
        let names: Vec<&str> = f.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "inner"]);
        // inner's unwrap belongs to inner, not b
        let b = f.iter().find(|f| f.name == "b").unwrap();
        assert!(b.panics.is_empty(), "{:?}", b.panics);
        let inner = f.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(inner.panics.len(), 1);
        assert!(b.calls().any(|(n, _)| n == "inner"));
    }

    #[test]
    fn macro_rules_bodies_are_invisible() {
        let src = "macro_rules! m { ($p:pat => $o:expr) => { match x { Msg::Load { .. } => 1 } }; }\nfn real() {}\n";
        let f = fns(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "real");
        assert!(f[0].items.is_empty());
    }

    #[test]
    fn send_and_recv_events_in_order() {
        let src = r#"
fn role(ep: &E) {
    ep.send(to, Msg::Particles { system: 0, batch, scale: 1.0 });
    ep.send(to, Msg::EndOfTransmission { system: 0 });
    let b = expect_msg!(ep, d, from, Msg::Load { info, .. } => info, "Load");
    match q {
        Some(Msg::Orders { .. }) | None => {}
    }
}
"#;
        let f = fns(src);
        let events: Vec<(Dir, &str)> = f[0]
            .items
            .iter()
            .filter_map(|i| match i {
                BodyItem::Event { dir, kind, .. } => Some((*dir, kind.as_str())),
                _ => None,
            })
            .collect();
        assert_eq!(
            events,
            vec![
                (Dir::Send, "Particles"),
                (Dir::Send, "EndOfTransmission"),
                (Dir::Recv, "Load"),
                (Dir::Recv, "Orders"),
            ]
        );
    }

    #[test]
    fn if_let_on_a_message_is_neither_send_nor_recv() {
        let src = "fn send_to(&mut self, msg: Msg) {\n    if let Msg::Particles { batch, .. } = &msg { count(batch); }\n    self.net.send(from, to, msg);\n}\n";
        let f = fns(src);
        let events: Vec<_> =
            f[0].items.iter().filter(|i| matches!(i, BodyItem::Event { .. })).collect();
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn unit_variant_match_arm_is_a_recv() {
        let src = "fn f(m: Msg) -> u32 { match m { Msg::EndOfTransmission => 1, _ => 0 } }\n";
        let f = fns(src);
        assert!(f[0]
            .items
            .iter()
            .any(|i| matches!(i, BodyItem::Event { dir: Dir::Recv, kind, .. } if kind == "EndOfTransmission")));
    }

    #[test]
    fn indexing_detection_skips_types_attrs_and_literals() {
        let src = "#[derive(Debug)]\nfn f(v: &[f64], i: usize) -> f64 {\n    let a: [f64; 3] = [0.0, 1.0, 2.0];\n    let first = v[0];\n    v[i] + a[i + 1]\n}\n";
        let f = fns(src);
        let sites: Vec<usize> = f[0].indexing.iter().map(|s| s.line).collect();
        assert_eq!(sites, vec![4, 4], "{:?}", f[0].indexing);
    }

    #[test]
    fn panic_sites_and_sources_collected() {
        let src = "fn f() {\n    let t = Instant::now();\n    let m = HashMap::new();\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!(\"no\");\n    z.unwrap_or_else(d);\n}\n";
        let f = fns(src);
        assert_eq!(f[0].panics.len(), 3, "{:?}", f[0].panics);
        assert_eq!(f[0].sources.len(), 2, "{:?}", f[0].sources);
        assert!(f[0].sources.iter().any(|s| s.class == SourceClass::WallClock));
        assert!(f[0].sources.iter().any(|s| s.class == SourceClass::Unordered));
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn shipped() {}\n";
        let f = fns(src);
        assert!(f.iter().find(|f| f.name == "helper").unwrap().is_test);
        assert!(!f.iter().find(|f| f.name == "shipped").unwrap().is_test);
    }
}
