//! `psa-verify` — workspace determinism & protocol-safety analysis pass.
//!
//! The compiler cannot see that `HashMap` iteration order breaks
//! bit-reproducible runs, or that an `unwrap()` in a message handler turns
//! a torn-down peer into a deadlocked executor. This tool walks every
//! source file in the workspace and enforces those repo-specific invariants
//! lexically (see `scan` for why the three text channels make that sound).
//!
//! Usage:
//!
//! ```text
//! cargo run -p psa-verify -- check            # lint the whole workspace
//! cargo run -p psa-verify -- check --json     # same, JSON report on stdout
//! cargo run -p psa-verify -- check PATH...    # lint specific files/dirs
//!                                             # (ALL lints apply — used on
//!                                             # the bad-fixture corpus)
//! cargo run -p psa-verify -- selftest         # every lint must catch its
//!                                             # fixture; good fixtures must
//!                                             # pass clean
//! ```
//!
//! Exit codes: 0 clean, 1 violations found (or selftest failure), 2 usage
//! or I/O error.

mod lints;
mod policy;
mod report;
mod scan;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lints::{run_lints, ALL_LINTS};
use report::Violation;
use scan::FileModel;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let mut json = false;
            let mut paths = Vec::new();
            for a in &args[1..] {
                match a.as_str() {
                    "--json" => json = true,
                    flag if flag.starts_with('-') => {
                        eprintln!("psa-verify: unknown flag `{flag}`");
                        return ExitCode::from(2);
                    }
                    p => paths.push(PathBuf::from(p)),
                }
            }
            run_check(&paths, json)
        }
        Some("selftest") => run_selftest(),
        _ => {
            eprintln!("usage: psa-verify <check [--json] [PATH...] | selftest>");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/psa-verify`, two up.
fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .unwrap_or_else(|_| env!("CARGO_MANIFEST_DIR").to_string());
    Path::new(&manifest).join("../..").canonicalize().unwrap_or_else(|_| PathBuf::from("."))
}

fn run_check(paths: &[PathBuf], json: bool) -> ExitCode {
    let workspace_mode = paths.is_empty();
    let root = workspace_root();
    let files = if workspace_mode {
        collect_rs(&root, true)
    } else {
        let mut out = Vec::new();
        for p in paths {
            if p.is_dir() {
                out.extend(collect_rs(p, false));
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p.clone());
            } else {
                eprintln!("psa-verify: `{}` is not a .rs file or directory", p.display());
                return ExitCode::from(2);
            }
        }
        out
    };

    let mut violations = Vec::new();
    for path in &files {
        let rel = display_path(path, &root);
        let Ok(src) = std::fs::read_to_string(path) else {
            eprintln!("psa-verify: cannot read `{}`", path.display());
            return ExitCode::from(2);
        };
        let set: Vec<_> = if workspace_mode { policy::lints_for(&rel) } else { ALL_LINTS.to_vec() };
        violations.extend(check_source(&rel, &src, &set));
    }
    violations.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));

    if json {
        println!("{}", report::json(files.len(), &violations));
    } else {
        print!("{}", report::human(&violations));
        println!("{}", report::summary(files.len(), &violations));
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Parse one source buffer and run the given lint set over it.
fn check_source(rel: &str, src: &str, set: &[&'static lints::LintDef]) -> Vec<Violation> {
    let model = FileModel::parse(src);
    let raw: Vec<&str> = src.lines().collect();
    run_lints(rel, &model, set, &raw)
}

/// Recursively collect `.rs` files. In workspace mode, directories named in
/// [`policy::SKIP_DIRS`] (build output, VCS, fixture corpora) are pruned.
fn collect_rs(dir: &Path, workspace_mode: bool) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort(); // deterministic walk order ⇒ deterministic report order
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if workspace_mode && policy::SKIP_DIRS.contains(&name) {
                continue;
            }
            out.extend(collect_rs(&path, workspace_mode));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

/// Path relative to the workspace root with `/` separators, for stable
/// diagnostics across platforms and invocation directories.
fn display_path(path: &Path, root: &Path) -> String {
    let rel = path
        .canonicalize()
        .ok()
        .and_then(|c| c.strip_prefix(root).map(Path::to_path_buf).ok())
        .unwrap_or_else(|| path.to_path_buf());
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

// ---------------------------------------------------------------------------
// Selftest: the bad-fixture corpus must trip exactly its declared lints.
// ---------------------------------------------------------------------------

/// Run the fixture corpus; returns human-readable failures (empty = pass).
fn selftest_failures() -> Vec<String> {
    const EXPECT_TAG: &str = "psa-verify-fixture: expect(";
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let files = collect_rs(&fixtures, false);
    let mut failures = Vec::new();
    if files.is_empty() {
        failures.push(format!("no fixtures found under {}", fixtures.display()));
        return failures;
    }

    let mut covered: Vec<&str> = Vec::new();
    for path in &files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        let Ok(src) = std::fs::read_to_string(path) else {
            failures.push(format!("{name}: unreadable"));
            continue;
        };
        // Declared expectations: `// psa-verify-fixture: expect(<lint-id>)`.
        let mut expected: Vec<String> = Vec::new();
        for line in src.lines() {
            if let Some(start) = line.find(EXPECT_TAG) {
                let rest = &line[start + EXPECT_TAG.len()..];
                if let Some(end) = rest.find(')') {
                    expected.push(rest[..end].trim().to_string());
                }
            }
        }
        let fired: Vec<String> = {
            let mut ids: Vec<String> =
                check_source(&name, &src, ALL_LINTS).into_iter().map(|v| v.lint).collect();
            ids.sort();
            ids.dedup();
            ids
        };
        if name.starts_with("good_") {
            if !expected.is_empty() {
                failures.push(format!("{name}: good fixture declares expectations"));
            }
            if !fired.is_empty() {
                failures.push(format!("{name}: good fixture fired {fired:?}"));
            }
            continue;
        }
        if expected.is_empty() {
            failures.push(format!("{name}: bad fixture declares no expectations"));
            continue;
        }
        for want in &expected {
            if lints::by_id(want).is_none() {
                failures.push(format!("{name}: expects unknown lint `{want}`"));
            } else if !fired.iter().any(|f| f == want) {
                failures.push(format!("{name}: expected `{want}` did not fire"));
            }
        }
        for got in &fired {
            if !expected.iter().any(|e| e == got) {
                failures.push(format!("{name}: unexpected lint `{got}` fired"));
            }
        }
        for want in &expected {
            if let Some(l) = lints::by_id(want) {
                if !covered.contains(&l.id) {
                    covered.push(l.id);
                }
            }
        }
    }
    for lint in ALL_LINTS {
        if !covered.contains(&lint.id) {
            failures.push(format!("lint `{}` has no covering fixture", lint.id));
        }
    }
    failures
}

fn run_selftest() -> ExitCode {
    let failures = selftest_failures();
    if failures.is_empty() {
        println!("psa-verify selftest: all lint classes covered, fixtures behave");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("psa-verify selftest: {f}");
        }
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selftest_corpus_passes() {
        let failures = selftest_failures();
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn fixture_corpus_trips_the_checker() {
        // `check` over the fixtures dir (all-lints mode) must find
        // violations — this is the non-zero-exit acceptance path.
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let files = collect_rs(&fixtures, false);
        let mut total = 0usize;
        for f in &files {
            let src = std::fs::read_to_string(f).expect("fixture readable");
            total += check_source("fixture.rs", &src, ALL_LINTS).len();
        }
        assert!(total > 0, "fixture corpus produced no violations");
    }

    #[test]
    fn workspace_walk_skips_fixture_and_target_dirs() {
        let root = workspace_root();
        let files = collect_rs(&root, true);
        assert!(!files.is_empty());
        for f in &files {
            let p = f.to_string_lossy().replace('\\', "/");
            assert!(!p.contains("/fixtures/"), "walked into fixtures: {p}");
            assert!(!p.contains("/target/"), "walked into target: {p}");
        }
    }
}
