//! `psa-verify` — workspace determinism & protocol-safety analysis pass.
//!
//! The compiler cannot see that `HashMap` iteration order breaks
//! bit-reproducible runs, that an `unwrap()` three calls below a message
//! handler deadlocks the executor, or that a new executor sends `Balance`
//! traffic before its `Load` report. This tool parses every source file
//! into a token stream and a function-level AST (`lex` / `ast`), links the
//! functions into a conservative call graph (`graph`), and runs four
//! analyses on top of the token-pattern lints:
//!
//! * nondeterminism taint from ambient sources into the phase entry points
//!   (`taint`);
//! * panic reachability from the protocol send/recv roots (`panics`);
//! * Figure-2 protocol conformance of each executor's extracted send/recv
//!   sequence (`proto`);
//! * a suppression audit that turns dead `allow(...)` annotations into
//!   errors (`audit`).
//!
//! Usage:
//!
//! ```text
//! cargo run -p psa-verify -- check            # analyze the whole workspace
//! cargo run -p psa-verify -- check --json     # same, JSON report on stdout
//! cargo run -p psa-verify -- check PATH...    # analyze specific files/dirs
//!                                             # (ALL lints apply — used on
//!                                             # the bad-fixture corpus)
//! cargo run -p psa-verify -- selftest         # every lint must catch its
//!                                             # fixture; good fixtures must
//!                                             # pass clean
//! cargo run -p psa-verify -- lints            # print every registered lint
//!                                             # id (CI cross-checks fixture
//!                                             # coverage against this)
//! ```
//!
//! Exit codes: 0 clean, 1 violations found (or selftest failure), 2 usage
//! or I/O error.

mod ast;
mod audit;
mod corpus;
mod graph;
mod lex;
mod lints;
mod panics;
mod policy;
mod proto;
mod report;
mod scan;
mod taint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use audit::Raw;
use corpus::Unit;
use graph::CallGraph;
use lints::{run_lints, ALL_LINTS, PROTOCOL_ORDER};
use report::Violation;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let mut json = false;
            let mut paths = Vec::new();
            for a in &args[1..] {
                match a.as_str() {
                    "--json" => json = true,
                    flag if flag.starts_with('-') => {
                        eprintln!("psa-verify: unknown flag `{flag}`");
                        return ExitCode::from(2);
                    }
                    p => paths.push(PathBuf::from(p)),
                }
            }
            run_check(&paths, json)
        }
        Some("selftest") => run_selftest(),
        Some("lints") => {
            for l in ALL_LINTS {
                println!("{}", l.id);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: psa-verify <check [--json] [PATH...] | selftest | lints>");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/psa-verify`, two up.
fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .unwrap_or_else(|_| env!("CARGO_MANIFEST_DIR").to_string());
    Path::new(&manifest).join("../..").canonicalize().unwrap_or_else(|_| PathBuf::from("."))
}

fn run_check(paths: &[PathBuf], json: bool) -> ExitCode {
    let workspace_mode = paths.is_empty();
    let root = workspace_root();
    let files = if workspace_mode {
        collect_rs(&root, true)
    } else {
        let mut out = Vec::new();
        for p in paths {
            if p.is_dir() {
                out.extend(collect_rs(p, false));
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p.clone());
            } else {
                eprintln!("psa-verify: `{}` is not a .rs file or directory", p.display());
                return ExitCode::from(2);
            }
        }
        out
    };

    let mut units = Vec::new();
    for path in &files {
        let rel = display_path(path, &root);
        if workspace_mode && policy::SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(path) else {
            eprintln!("psa-verify: cannot read `{}`", path.display());
            return ExitCode::from(2);
        };
        units.push(Unit::parse(&rel, src));
    }
    let violations = analyze(&units, workspace_mode);

    if json {
        println!("{}", report::json(units.len(), &violations));
    } else {
        print!("{}", report::human(&violations));
        println!("{}", report::summary(units.len(), &violations));
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The whole pipeline over one corpus: token lints, call-graph analyses,
/// protocol conformance, then the central suppression pass + audit.
/// In workspace mode the token-lint set and graph eligibility follow
/// `policy`; in path/fixture mode every lint applies and every unit joins
/// the graph (fixtures opt into roots via pragmas).
fn analyze(units: &[Unit], workspace_mode: bool) -> Vec<Violation> {
    let mut raws: Vec<Raw> = Vec::new();

    for (ui, u) in units.iter().enumerate() {
        let set: Vec<_> =
            if workspace_mode { policy::lints_for(&u.rel) } else { ALL_LINTS.to_vec() };
        let raw_lines = u.raw_lines();
        for (v, key) in run_lints(&u.rel, &u.model, &u.toks, &set, &raw_lines) {
            raws.push(Raw { unit: ui, v, keys: vec![key] });
        }
    }

    let eligible: Vec<bool> =
        units.iter().map(|u| !workspace_mode || policy::graph_eligible(&u.rel)).collect();
    let views: Vec<(&str, &[ast::FnInfo])> = units
        .iter()
        .enumerate()
        .map(|(i, u)| (u.rel.as_str(), if eligible[i] { u.fns.as_slice() } else { &[] }))
        .collect();
    let graph = CallGraph::build(&views);

    raws.extend(taint::run(units, &graph, &eligible, policy::PHASE_ENTRIES));
    raws.extend(panics::run(units, &graph, &eligible));

    for (ui, u) in units.iter().enumerate() {
        let mut roles: Vec<(String, String)> = u.roles.clone();
        if workspace_mode {
            for (file, role, entry) in policy::ROLE_BINDINGS {
                if u.rel == *file {
                    roles.push((role.to_string(), entry.to_string()));
                }
            }
        }
        let raw_lines = u.raw_lines();
        for (role, entry) in &roles {
            let Some(spec) = proto::spec_for_role(role) else {
                raws.push(Raw {
                    unit: ui,
                    v: Violation {
                        lint: PROTOCOL_ORDER.id.to_string(),
                        file: u.rel.clone(),
                        line: 1,
                        needle: format!("unknown protocol role `{role}`"),
                        message: PROTOCOL_ORDER.message.to_string(),
                        severity: "error".to_string(),
                        snippet: String::new(),
                    },
                    keys: vec![PROTOCOL_ORDER.allow_key],
                });
                continue;
            };
            let entry_line =
                u.fns.iter().find(|f| f.name == *entry && !f.is_test).map_or(0, |f| f.line);
            let events = proto::extract_events(&u.fns, entry);
            for v in proto::check_role(&u.rel, role, entry, entry_line, spec, &events, &raw_lines) {
                raws.push(Raw { unit: ui, v, keys: vec![PROTOCOL_ORDER.allow_key] });
            }
        }
    }

    audit::apply(units, raws, true)
}

/// Recursively collect `.rs` files. In workspace mode, directories named in
/// [`policy::SKIP_DIRS`] (build output, VCS, fixture corpora) are pruned.
fn collect_rs(dir: &Path, workspace_mode: bool) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort(); // deterministic walk order ⇒ deterministic report order
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if workspace_mode && policy::SKIP_DIRS.contains(&name) {
                continue;
            }
            out.extend(collect_rs(&path, workspace_mode));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

/// Path relative to the workspace root with `/` separators, for stable
/// diagnostics across platforms and invocation directories.
fn display_path(path: &Path, root: &Path) -> String {
    let rel = path
        .canonicalize()
        .ok()
        .and_then(|c| c.strip_prefix(root).map(Path::to_path_buf).ok())
        .unwrap_or_else(|| path.to_path_buf());
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

// ---------------------------------------------------------------------------
// Selftest: the bad-fixture corpus must trip exactly its declared lints.
// ---------------------------------------------------------------------------

/// Run the fixture corpus; returns human-readable failures (empty = pass).
/// Each fixture is analyzed as its own single-file corpus, so the call
/// graph never links one fixture's functions to another's.
fn selftest_failures() -> Vec<String> {
    const EXPECT_TAG: &str = "psa-verify-fixture: expect(";
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let files = collect_rs(&fixtures, false);
    let mut failures = Vec::new();
    if files.is_empty() {
        failures.push(format!("no fixtures found under {}", fixtures.display()));
        return failures;
    }

    let mut covered: Vec<&str> = Vec::new();
    for path in &files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        let Ok(src) = std::fs::read_to_string(path) else {
            failures.push(format!("{name}: unreadable"));
            continue;
        };
        // Declared expectations: `// psa-verify-fixture: expect(<lint-id>)`.
        let mut expected: Vec<String> = Vec::new();
        for line in src.lines() {
            if let Some(start) = line.find(EXPECT_TAG) {
                let rest = &line[start + EXPECT_TAG.len()..];
                if let Some(end) = rest.find(')') {
                    expected.push(rest[..end].trim().to_string());
                }
            }
        }
        let fired: Vec<String> = {
            let units = vec![Unit::parse(&name, src)];
            let mut ids: Vec<String> = analyze(&units, false).into_iter().map(|v| v.lint).collect();
            ids.sort();
            ids.dedup();
            ids
        };
        if name.starts_with("good_") {
            if !expected.is_empty() {
                failures.push(format!("{name}: good fixture declares expectations"));
            }
            if !fired.is_empty() {
                failures.push(format!("{name}: good fixture fired {fired:?}"));
            }
            continue;
        }
        if expected.is_empty() {
            failures.push(format!("{name}: bad fixture declares no expectations"));
            continue;
        }
        for want in &expected {
            if lints::by_id(want).is_none() {
                failures.push(format!("{name}: expects unknown lint `{want}`"));
            } else if !fired.iter().any(|f| f == want) {
                failures.push(format!("{name}: expected `{want}` did not fire"));
            }
        }
        for got in &fired {
            if !expected.iter().any(|e| e == got) {
                failures.push(format!("{name}: unexpected lint `{got}` fired"));
            }
        }
        for want in &expected {
            if let Some(l) = lints::by_id(want) {
                if !covered.contains(&l.id) {
                    covered.push(l.id);
                }
            }
        }
    }
    for lint in ALL_LINTS {
        if !covered.contains(&lint.id) {
            failures.push(format!("lint `{}` has no covering fixture", lint.id));
        }
    }
    failures
}

fn run_selftest() -> ExitCode {
    let failures = selftest_failures();
    if failures.is_empty() {
        println!("psa-verify selftest: all lint classes covered, fixtures behave");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("psa-verify selftest: {f}");
        }
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selftest_corpus_passes() {
        let failures = selftest_failures();
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn fixture_corpus_trips_the_checker() {
        // `check` over the fixtures dir (all-lints mode) must find
        // violations — this is the non-zero-exit acceptance path.
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let files = collect_rs(&fixtures, false);
        let mut total = 0usize;
        for f in &files {
            let src = std::fs::read_to_string(f).expect("fixture readable");
            let name = f.file_name().and_then(|n| n.to_str()).unwrap_or("fixture.rs").to_string();
            let units = vec![Unit::parse(&name, src)];
            total += analyze(&units, false).len();
        }
        assert!(total > 0, "fixture corpus produced no violations");
    }

    #[test]
    fn workspace_walk_skips_fixture_and_target_dirs() {
        let root = workspace_root();
        let files = collect_rs(&root, true);
        assert!(!files.is_empty());
        for f in &files {
            let p = f.to_string_lossy().replace('\\', "/");
            assert!(!p.contains("/fixtures/"), "walked into fixtures: {p}");
            assert!(!p.contains("/target/"), "walked into target: {p}");
        }
    }

    /// Golden test over the `check --json` schema: downstream tooling (the
    /// CI diagnostics artifact) parses exactly this shape. If this test
    /// needs updating, bump `report::SCHEMA_VERSION`.
    #[test]
    fn json_report_schema_is_golden() {
        let src = "fn phase_calculus() { let t = Instant::now(); }\n";
        let units = vec![Unit::parse("crates/demo/src/lib.rs", src.to_string())];
        let violations = analyze(&units, false);
        let got = report::json(1, &violations);
        let want = concat!(
            "{\"tool\":\"psa-verify\",\"schema_version\":2,\"files_scanned\":1,\"ok\":false,",
            "\"violations\":[",
            "{\"lint\":\"nondet-taint\",\"file\":\"crates/demo/src/lib.rs\",\"line\":1,",
            "\"severity\":\"error\",",
            "\"needle\":\"Instant::now in `phase_calculus` (reachable from phase entry `phase_calculus`)\",",
            "\"message\":\"nondeterministic source reachable from a phase entry point; state ",
            "that feeds fingerprints must be a pure function of the seed — ",
            "route randomness through psa_math::Rng64, timing through the cost ",
            "model, and iteration through ordered collections\",",
            "\"snippet\":\"fn phase_calculus() { let t = Instant::now(); }\"},",
            "{\"lint\":\"wall-clock\",\"file\":\"crates/demo/src/lib.rs\",\"line\":1,",
            "\"severity\":\"error\",",
            "\"needle\":\"Instant::now\",",
            "\"message\":\"wall-clock/sleep in virtual-time code; virtual time must come from ",
            "the cost model, and injected fault delays must be charged as ",
            "virtual ticks (netsim fault plans), or annotate ",
            "`// psa-verify: allow(wall-clock)`\",",
            "\"snippet\":\"fn phase_calculus() { let t = Instant::now(); }\"}",
            "]}",
        );
        assert_eq!(got, want);
    }

    #[test]
    fn reordered_send_sequence_fails_protocol_conformance() {
        // The ISSUE's acceptance probe: a scratch executor that ships its
        // render batch before reporting Load must fail the check.
        let src = "\
// psa-verify: protocol-role(calculator, frame_loop)
fn frame_loop(ep: &E) {
    match ep.recv_deadline(0) { Msg::Particles { batch, .. } => use_batch(batch), }
    match ep.recv_deadline(0) { Msg::EndOfTransmission { .. } => (), }
    ep.send(1, Msg::Particles { batch });
    match ep.recv_deadline(0) { Msg::Particles { batch, .. } => use_batch(batch), }
    ep.send(9, Msg::RenderParticles { batch });
    ep.send(0, Msg::Load { info });
}
";
        let units = vec![Unit::parse("scratch.rs", src.to_string())];
        let violations = analyze(&units, false);
        assert!(
            violations.iter().any(|v| v.lint == "protocol-order"),
            "reorder must fail conformance: {violations:#?}"
        );
    }

    #[test]
    fn unknown_pragma_role_is_an_error() {
        let src = "// psa-verify: protocol-role(render-farm, f)\nfn f() {}\n";
        let units = vec![Unit::parse("x.rs", src.to_string())];
        let violations = analyze(&units, false);
        assert!(violations.iter().any(|v| v.needle.contains("unknown protocol role")));
    }
}
