//! The analysis corpus: one [`Unit`] per source file, parsed once and
//! shared by every pass (token lints, call graph, taint, panic
//! reachability, protocol conformance, suppression audit).
//!
//! Units also carry the two analysis pragmas fixtures use to opt into the
//! graph passes without living at a policy-known workspace path:
//!
//! * `// psa-verify: protocol-role(<role>, <entry_fn>)` — check
//!   `<entry_fn>`'s extracted send/recv sequence against `<role>`'s
//!   Figure-2 table;
//! * `// psa-verify: panic-entry(<fn>)` — treat `<fn>` as a protocol root
//!   for the panic-reachability pass.

use crate::ast::{collect_fns, FnInfo};
use crate::lex::{tokenize, Tok};
use crate::scan::FileModel;

/// One parsed source file.
pub struct Unit {
    /// Workspace-relative path (`/` separators) — drives policy decisions
    /// and appears in diagnostics. For fixtures this is the bare filename.
    pub rel: String,
    /// Raw source, for snippets.
    pub src: String,
    pub model: FileModel,
    pub toks: Vec<Tok>,
    pub fns: Vec<FnInfo>,
    /// `protocol-role(role, fn)` pragmas.
    pub roles: Vec<(String, String)>,
    /// `panic-entry(fn)` pragmas.
    pub panic_entries: Vec<String>,
}

const ROLE_TAG: &str = "psa-verify: protocol-role(";
const PANIC_TAG: &str = "psa-verify: panic-entry(";

impl Unit {
    pub fn parse(rel: &str, src: String) -> Unit {
        let model = FileModel::parse(&src);
        let toks = tokenize(&model.code);
        let fns = collect_fns(&toks, &model);
        let mut roles = Vec::new();
        let mut panic_entries = Vec::new();
        for line in &model.comments {
            if let Some(args) = pragma_args(line, ROLE_TAG) {
                if let Some((role, entry)) = args.split_once(',') {
                    roles.push((role.trim().to_string(), entry.trim().to_string()));
                }
            }
            if let Some(args) = pragma_args(line, PANIC_TAG) {
                panic_entries.push(args.trim().to_string());
            }
        }
        Unit { rel: rel.to_string(), src, model, toks, fns, roles, panic_entries }
    }

    /// Raw source lines (0-based), for snippet extraction.
    pub fn raw_lines(&self) -> Vec<&str> {
        self.src.lines().collect()
    }
}

/// The `...` of `TAG...)` if `line` carries the pragma.
fn pragma_args<'a>(line: &'a str, tag: &str) -> Option<&'a str> {
    let start = line.find(tag)? + tag.len();
    let end = line[start..].find(')')? + start;
    Some(&line[start..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragmas_are_parsed_from_comments_only() {
        let src = "\
// psa-verify: protocol-role(manager, frame_loop)
// psa-verify: panic-entry(handle_msg)
fn frame_loop() {}
fn handle_msg() {}
let s = \"psa-verify: panic-entry(not_me)\";
";
        let u = Unit::parse("fixture.rs", src.to_string());
        assert_eq!(u.roles, vec![("manager".to_string(), "frame_loop".to_string())]);
        assert_eq!(u.panic_entries, vec!["handle_msg".to_string()]);
    }

    #[test]
    fn unit_exposes_fns_and_lines() {
        let u = Unit::parse("x.rs", "fn a() {}\nfn b() { a(); }\n".to_string());
        assert_eq!(u.fns.len(), 2);
        assert_eq!(u.raw_lines().len(), 2);
    }
}
