//! Figure-2 protocol conformance: the six-phase message protocol as an
//! explicit state-machine table, checked against the send/recv sequence
//! statically extracted from each executor's frame loop.
//!
//! ## The spec tables
//!
//! Each executor role has an ordered list of [`Step`]s. `required` steps
//! must appear every frame; optional steps cover the dynamic-balance and
//! fault branches (Orders/NewCut/Domains, ghost exchange, donations) that
//! a static extraction cannot prove taken. The three threaded roles each
//! carry their own table; the virtual executor runs every role inside one
//! engine, so its table is the *interleaved* global order of `run_frames`.
//!
//! ## Extraction
//!
//! Starting from the role's entry function, the checker inlines same-file
//! callees at their *first* call site (in token order) and concatenates
//! the `Msg::Kind` send/recv events it meets. First-site-only inlining is
//! what makes branchy code checkable: `run_frames` calls the same phase
//! methods from both the `PerSystem` and `Batched` schedules, and
//! `phase_balance` reaches `execute_transfers` from two branches — the
//! repeated calls contribute nothing instead of doubling the sequence.
//! Consecutive duplicate events collapse (per-peer send loops).
//!
//! ## Matching
//!
//! Greedy single-pass subsequence match: each extracted event advances a
//! cursor through the spec; *required* steps the cursor skips over are
//! violations, an event that fits nowhere ahead of the cursor restarts a
//! new pass (so a genuinely repeated frame body still checks), and
//! required steps still unmatched when the sequence ends are violations.
//! A role that yields no events at all is also an error — extraction rot
//! must never look like conformance.

use std::collections::BTreeSet;

use crate::ast::{BodyItem, Dir, FnInfo};
use crate::lints::PROTOCOL_ORDER;
use crate::report::Violation;

/// One step of a role's protocol table.
#[derive(Clone, Copy, Debug)]
pub struct Step {
    pub dir: Dir,
    pub kind: &'static str,
    /// Required every frame, or only on a dynamic branch.
    pub required: bool,
}

const fn s(kind: &'static str, required: bool) -> Step {
    Step { dir: Dir::Send, kind, required }
}
const fn r(kind: &'static str, required: bool) -> Step {
    Step { dir: Dir::Recv, kind, required }
}

/// A calculator's frame loop (threaded executor, Figure 2 left column):
/// creation in, compute, exchange, load report, then the dynamic-balance
/// branch (orders / donor cut / domains / donation), then ship.
pub const CALCULATOR: &[Step] = &[
    r("Particles", true),
    r("EndOfTransmission", true),
    s("Particles", true),
    r("Particles", true),
    s("Load", true),
    r("Orders", false),
    s("NewCut", false),
    r("Domains", false),
    s("Particles", false),
    r("Particles", false),
    s("RenderParticles", true),
];

/// The manager's frame loop: emission out, load gather, then the
/// dynamic-balance branch (orders / cut collection / domain broadcast).
pub const MANAGER: &[Step] = &[
    s("Particles", true),
    s("EndOfTransmission", true),
    r("Load", true),
    s("Orders", false),
    r("NewCut", false),
    s("Domains", false),
];

/// The image generator: one render batch per (system, calculator).
pub const IMAGE_GENERATOR: &[Step] = &[r("RenderParticles", true)];

/// The virtual engine runs all roles in one address space, so its table is
/// the interleaved global event order of `run_frames`: creation, addition,
/// optional ghost exchange (collision), exchange, load reports (manager +
/// optional decentralized neighbors), optional orders, optional transfers
/// (via-manager NewCut/Domains, then the decentralized NewCut branch, then
/// donations), and ship.
pub const VIRTUAL_ENGINE: &[Step] = &[
    s("Particles", true),
    s("EndOfTransmission", true),
    r("Particles", true),
    r("EndOfTransmission", true),
    s("Ghosts", false),
    r("Ghosts", false),
    s("Particles", true),
    r("Particles", true),
    s("Load", true),
    r("Load", true),
    s("Orders", false),
    r("Orders", false),
    s("NewCut", false),
    r("NewCut", false),
    s("Domains", false),
    r("Domains", false),
    s("NewCut", false),
    r("NewCut", false),
    s("Particles", false),
    r("Particles", false),
    s("RenderBatch", true),
    r("RenderBatch", true),
];

/// Look up a role table by name (used by workspace policy and the
/// `// psa-verify: protocol-role(<role>, <fn>)` fixture pragma).
pub fn spec_for_role(role: &str) -> Option<&'static [Step]> {
    match role {
        "calculator" => Some(CALCULATOR),
        "manager" => Some(MANAGER),
        "image-generator" => Some(IMAGE_GENERATOR),
        "virtual-engine" => Some(VIRTUAL_ENGINE),
        _ => None,
    }
}

/// One extracted protocol event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    pub dir: Dir,
    pub kind: String,
    pub line: usize,
}

/// Statically extract the ordered event sequence of `entry` within one
/// file's functions, inlining same-file callees at their first call site.
pub fn extract_events(fns: &[FnInfo], entry: &str) -> Vec<Event> {
    let mut events = Vec::new();
    let mut visited: BTreeSet<String> = BTreeSet::new();
    walk(fns, entry, &mut visited, &mut events);
    // Collapse consecutive duplicates: per-peer loops send the same kind
    // once per destination; the protocol table holds one step for them.
    events.dedup_by(|a, b| a.dir == b.dir && a.kind == b.kind);
    events
}

fn walk(fns: &[FnInfo], name: &str, visited: &mut BTreeSet<String>, out: &mut Vec<Event>) {
    if !visited.insert(name.to_string()) {
        return;
    }
    let Some(f) = fns.iter().find(|f| f.name == name && !f.is_test) else {
        return;
    };
    for item in &f.items {
        match item {
            BodyItem::Event { dir, kind, line } => {
                out.push(Event { dir: *dir, kind: kind.clone(), line: *line });
            }
            BodyItem::Call { name: callee, .. } => {
                walk(fns, callee, visited, out);
            }
        }
    }
}

/// Check one role's extracted events against its spec table. Returns raw
/// violations (the suppression pass applies allows later).
pub fn check_role(
    file: &str,
    role: &str,
    entry: &str,
    entry_line: usize,
    spec: &[Step],
    events: &[Event],
    raw_lines: &[&str],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut vio = |line: usize, needle: String| {
        out.push(Violation {
            lint: PROTOCOL_ORDER.id.to_string(),
            file: file.to_string(),
            line: line + 1,
            needle,
            message: PROTOCOL_ORDER.message.to_string(),
            severity: "error".to_string(),
            snippet: raw_lines.get(line).map_or(String::new(), |l| l.trim().to_string()),
        });
    };

    if events.is_empty() {
        vio(
            entry_line,
            format!("role `{role}`: no protocol events extracted from `{entry}` (extraction rot?)"),
        );
        return out;
    }

    let matches = |st: &Step, e: &Event| st.dir == e.dir && st.kind == e.kind;
    let mut cursor = 0usize;
    for e in events {
        // Find the next spec slot this event fits, at or after the cursor.
        if let Some(hit) = spec[cursor..].iter().position(|st| matches(st, e)) {
            for st in &spec[cursor..cursor + hit] {
                if st.required {
                    vio(
                        e.line,
                        format!(
                            "role `{role}`: required step {} {} skipped before {} {}",
                            st.dir.name(),
                            st.kind,
                            e.dir.name(),
                            e.kind
                        ),
                    );
                }
            }
            cursor += hit + 1;
            continue;
        }
        // Doesn't fit ahead: close this pass (flagging what it missed) and
        // restart — a legitimately repeated frame body re-enters the table.
        for st in &spec[cursor..] {
            if st.required {
                vio(
                    e.line,
                    format!(
                        "role `{role}`: required step {} {} missing from frame pass",
                        st.dir.name(),
                        st.kind
                    ),
                );
            }
        }
        if let Some(hit) = spec.iter().position(|st| matches(st, e)) {
            for st in &spec[..hit] {
                if st.required {
                    vio(
                        e.line,
                        format!(
                            "role `{role}`: required step {} {} skipped before {} {}",
                            st.dir.name(),
                            st.kind,
                            e.dir.name(),
                            e.kind
                        ),
                    );
                }
            }
            cursor = hit + 1;
        } else {
            vio(
                e.line,
                format!("role `{role}`: event {} {} is not in the protocol", e.dir.name(), e.kind),
            );
            // leave the cursor where it was: an alien event breaks nothing else
        }
    }
    for st in &spec[cursor..] {
        if st.required {
            vio(
                events.last().map_or(entry_line, |e| e.line),
                format!(
                    "role `{role}`: required step {} {} never happens in `{entry}`",
                    st.dir.name(),
                    st.kind
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::collect_fns;
    use crate::lex::tokenize;
    use crate::scan::FileModel;

    fn events_of(src: &str, entry: &str) -> Vec<Event> {
        let model = FileModel::parse(src);
        let fns = collect_fns(&tokenize(&model.code), &model);
        extract_events(&fns, entry)
    }

    fn kinds(ev: &[Event]) -> Vec<String> {
        ev.iter().map(|e| format!("{} {}", e.dir.name(), e.kind)).collect()
    }

    const GOOD_CALC: &str = r#"
fn frame_loop(ep: &E) {
    let batch = expect_msg!(ep, Msg::Particles { batch, .. } => batch, "Particles");
    expect_msg!(ep, Msg::EndOfTransmission { .. } => (), "EOT");
    exchange(ep);
    ep.send(mgr, Msg::Load { info, migrated });
    ep.send(ig, Msg::RenderParticles { batch });
}
fn exchange(ep: &E) {
    for d in dests {
        ep.send(d, Msg::Particles { batch, scale });
    }
    for d in dests {
        expect_msg!(ep, Msg::Particles { batch, .. } => batch, "Particles");
    }
}
"#;

    #[test]
    fn inlining_follows_first_call_site_in_order() {
        let ev = events_of(GOOD_CALC, "frame_loop");
        assert_eq!(
            kinds(&ev),
            vec![
                "recv Particles",
                "recv EndOfTransmission",
                "send Particles",
                "recv Particles",
                "send Load",
                "send RenderParticles"
            ]
        );
    }

    #[test]
    fn good_calculator_sequence_conforms() {
        let ev = events_of(GOOD_CALC, "frame_loop");
        let v = check_role("f.rs", "calculator", "frame_loop", 0, CALCULATOR, &ev, &[]);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn shipping_before_the_load_report_fails() {
        let src = r#"
fn frame_loop(ep: &E) {
    expect_msg!(ep, Msg::Particles { batch, .. } => batch, "Particles");
    expect_msg!(ep, Msg::EndOfTransmission { .. } => (), "EOT");
    ep.send(d, Msg::Particles { batch });
    expect_msg!(ep, Msg::Particles { batch, .. } => batch, "Particles");
    ep.send(ig, Msg::RenderParticles { batch });
    ep.send(mgr, Msg::Load { info });
}
"#;
        let ev = events_of(src, "frame_loop");
        let v = check_role("f.rs", "calculator", "frame_loop", 0, CALCULATOR, &ev, &[]);
        assert!(!v.is_empty());
        assert!(v.iter().any(|x| x.needle.contains("send Load")), "{v:#?}");
    }

    #[test]
    fn repeated_call_sites_do_not_double_the_sequence() {
        let src = r#"
fn run(ep: &E) {
    if per_system { body(ep); } else { body(ep); }
}
fn body(ep: &E) {
    ep.send(c, Msg::Particles { batch });
    ep.send(c, Msg::EndOfTransmission {});
    expect_msg!(ep, Msg::Load { info, .. } => info, "Load");
}
"#;
        let ev = events_of(src, "run");
        assert_eq!(ev.len(), 3, "{:?}", kinds(&ev));
        let v = check_role("f.rs", "manager", "run", 0, MANAGER, &ev, &[]);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn a_missing_required_step_fails() {
        let src = r#"
fn loop_(ep: &E) {
    ep.send(c, Msg::Particles { batch });
    expect_msg!(ep, Msg::Load { info, .. } => info, "Load");
}
"#;
        let ev = events_of(src, "loop_");
        let v = check_role("f.rs", "manager", "loop_", 0, MANAGER, &ev, &[]);
        assert!(v.iter().any(|x| x.needle.contains("EndOfTransmission")), "{v:#?}");
    }

    #[test]
    fn empty_extraction_is_an_error() {
        let v = check_role("f.rs", "manager", "ghost", 0, MANAGER, &[], &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].needle.contains("no protocol events"));
    }

    #[test]
    fn alien_event_is_flagged() {
        let src = "fn f(ep: &E) { ep.send(c, Msg::FrameDone {}); }\n";
        let ev = events_of(src, "f");
        let v = check_role("f.rs", "image-generator", "f", 0, IMAGE_GENERATOR, &ev, &[]);
        assert!(v.iter().any(|x| x.needle.contains("not in the protocol")), "{v:#?}");
    }

    #[test]
    fn every_named_role_resolves() {
        for role in ["calculator", "manager", "image-generator", "virtual-engine"] {
            assert!(spec_for_role(role).is_some());
        }
        assert!(spec_for_role("nope").is_none());
    }
}
