//! Diagnostics output: human `file:line` text and a machine-readable JSON
//! report. JSON is hand-rolled — this workspace builds fully offline, so
//! `serde` is not available, and the schema is small enough that an escape
//! function plus string assembly is clearer than a dependency would be.
//!
//! The JSON schema is versioned (`schema_version`) and covered by a golden
//! test in `main.rs`, so downstream tooling (the CI diagnostics artifact)
//! can rely on it: stable lint ids, workspace-relative `file` + 1-based
//! `line` spans, and a machine-readable `severity` per violation.

/// JSON schema version; bump when a field changes meaning or disappears.
/// Adding fields is backward compatible and does not bump it.
pub const SCHEMA_VERSION: u32 = 2;

/// One lint finding, located to a file and 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable lint id (`unordered-collections`, `wall-clock`, ...).
    pub lint: String,
    /// Path as displayed — relative to the workspace root when possible.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The token pattern (or analysis fact) that fired the lint.
    pub needle: String,
    /// The lint's explanation of why the construct is banned.
    pub message: String,
    /// Machine-readable severity; every psa-verify finding gates CI, so
    /// this is currently always `error`, but the field is part of the
    /// schema so downstream tooling never has to infer it.
    pub severity: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Render violations as compiler-style human diagnostics.
pub fn human(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!(
            "{}[{}]: {}\n  --> {}:{} (found `{}`)\n   | {}\n",
            v.severity, v.lint, v.message, v.file, v.line, v.needle, v.snippet
        ));
    }
    out
}

/// One-line run summary for the end of the human report.
pub fn summary(files_scanned: usize, violations: &[Violation]) -> String {
    if violations.is_empty() {
        format!("psa-verify: {files_scanned} files scanned, 0 violations")
    } else {
        format!(
            "psa-verify: {files_scanned} files scanned, {} violation(s) in {} file(s)",
            violations.len(),
            distinct_files(violations)
        )
    }
}

fn distinct_files(violations: &[Violation]) -> usize {
    let mut files: Vec<&str> = violations.iter().map(|v| v.file.as_str()).collect();
    files.sort_unstable();
    files.dedup();
    files.len()
}

/// Render the full run as a JSON object:
/// `{"tool":"psa-verify","schema_version":2,"files_scanned":N,"ok":bool,
///   "violations":[{"lint":..,"file":..,"line":..,"severity":..,...}]}`.
pub fn json(files_scanned: usize, violations: &[Violation]) -> String {
    let mut out = String::from("{\"tool\":\"psa-verify\",");
    out.push_str(&format!("\"schema_version\":{SCHEMA_VERSION},"));
    out.push_str(&format!("\"files_scanned\":{files_scanned},"));
    out.push_str(&format!("\"ok\":{},", violations.is_empty()));
    out.push_str("\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"lint\":{},\"file\":{},\"line\":{},\"severity\":{},\"needle\":{},\"message\":{},\"snippet\":{}}}",
            escape(&v.lint),
            escape(&v.file),
            v.line,
            escape(&v.severity),
            escape(&v.needle),
            escape(&v.message),
            escape(&v.snippet)
        ));
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v() -> Violation {
        Violation {
            lint: "wall-clock".into(),
            file: "crates/x/src/a.rs".into(),
            line: 7,
            needle: "Instant::now".into(),
            message: "no \"wall\" clock".into(),
            severity: "error".into(),
            snippet: "let t = Instant::now();".into(),
        }
    }

    #[test]
    fn human_has_file_line_and_lint() {
        let text = human(&[v()]);
        assert!(text.contains("crates/x/src/a.rs:7"));
        assert!(text.contains("error[wall-clock]"));
    }

    #[test]
    fn json_escapes_quotes_and_reports_ok() {
        let j = json(3, &[v()]);
        assert!(j.contains("\"ok\":false"));
        assert!(j.contains("no \\\"wall\\\" clock"));
        assert!(j.contains("\"files_scanned\":3"));
        assert!(j.contains("\"schema_version\":2"));
        assert!(j.contains("\"severity\":\"error\""));
        let clean = json(3, &[]);
        assert!(clean.contains("\"ok\":true"));
        assert!(clean.ends_with("\"violations\":[]}"));
    }

    #[test]
    fn summary_counts_distinct_files() {
        let mut b = v();
        b.line = 9;
        let s = summary(10, &[v(), b]);
        assert!(s.contains("2 violation(s) in 1 file(s)"), "{s}");
    }
}
