//! Tokenizer over the stripped code channel.
//!
//! `syn` is not available to an offline build, so the AST passes are built
//! on a hand-rolled lexer. It runs on [`crate::scan::FileModel::code`] —
//! comments already removed, string/char literal *contents* already
//! blanked — which means the lexer never has to worry about `//` inside a
//! string or a lint token inside a doc comment: those false-positive
//! classes are dead before tokenization starts.
//!
//! The token stream is intentionally small: identifiers (maximal munch, so
//! `unwrap_or_else` is one token and never matches `unwrap`), numeric and
//! blanked string literals, lifetimes, and punctuation. Only the compound
//! puncts the analyses care about are fused (`::`, `=>`, `->`, `..`);
//! everything else stays single-char, which is unambiguous because fusion
//! happens left-to-right on adjacent characters.

/// What kind of lexeme a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap_or_else`, ...).
    Ident,
    /// Numeric literal or a blanked `""` string literal.
    Literal,
    /// Lifetime tick + name (`'a`, `'static`).
    Lifetime,
    /// Punctuation, possibly fused (`::`, `=>`, `->`, `..`, `(`, `{`, ...).
    Punct,
}

/// One token with its 0-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 0-based line in the original file.
    pub line: usize,
}

impl Tok {
    /// Is this token exactly the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this token exactly the punctuation `s`?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Compound puncts the analyses distinguish. Fused by maximal munch over
/// adjacent characters; `..=` is lexed as `..` + `=`, which no pattern
/// cares about.
const FUSED: &[&str] = &["::", "=>", "->", ".."];

/// Tokenize the per-line code channel of one file.
pub fn tokenize(code_lines: &[String]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (line_no, line) in code_lines.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            // Identifier / keyword.
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Tok { kind: TokKind::Ident, text, line: line_no });
                continue;
            }
            // Numeric literal (digits plus type-suffix/float tail; `..` is
            // never swallowed because `.` is only consumed when followed by
            // another digit).
            if c.is_ascii_digit() {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric()
                        || chars[i] == '_'
                        || (chars[i] == '.'
                            && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                            && !chars[start..i].contains(&'.')))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Tok { kind: TokKind::Literal, text, line: line_no });
                continue;
            }
            // Blanked string literal: scan.rs leaves `""` markers.
            if c == '"' {
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                toks.push(Tok { kind: TokKind::Literal, text: "\"\"".into(), line: line_no });
                i = (j + 1).min(chars.len());
                continue;
            }
            // Lifetime: scan.rs only keeps `'` for lifetimes, never chars.
            if c == '\'' {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Tok { kind: TokKind::Lifetime, text, line: line_no });
                continue;
            }
            // Punctuation, fusing the compound forms.
            let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
            if FUSED.contains(&two.as_str()) {
                toks.push(Tok { kind: TokKind::Punct, text: two, line: line_no });
                i += 2;
                continue;
            }
            toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line: line_no });
            i += 1;
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FileModel;

    fn lex(src: &str) -> Vec<Tok> {
        tokenize(&FileModel::parse(src).code)
    }

    fn texts(toks: &[Tok]) -> Vec<&str> {
        toks.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn idents_are_maximal_munch() {
        let t = lex("x.unwrap_or_else(f)");
        assert!(t.iter().any(|t| t.is_ident("unwrap_or_else")));
        assert!(!t.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn compound_puncts_fuse() {
        let t = lex("Instant::now(); a => b; f -> c; 0..n");
        let tx = texts(&t);
        assert!(tx.contains(&"::"));
        assert!(tx.contains(&"=>"));
        assert!(tx.contains(&"->"));
        assert!(tx.contains(&".."));
    }

    #[test]
    fn range_does_not_swallow_numbers() {
        let t = lex("for i in 0..10 {}");
        let tx = texts(&t);
        assert!(tx.contains(&"0") && tx.contains(&"..") && tx.contains(&"10"));
    }

    #[test]
    fn floats_and_method_calls_split_correctly() {
        let t = lex("let x = 1.5e-3; v.len()");
        assert!(t.iter().any(|t| t.text == "1.5e"), "{:?}", texts(&t));
        assert!(t.iter().any(|t| t.is_ident("len")));
        // `1.5e-3` lexes as literal + `-` + literal; no analysis pattern
        // cares, it only must not corrupt neighbouring tokens.
        assert!(t.iter().any(|t| t.is_punct(";")));
    }

    #[test]
    fn strings_are_blank_literals_and_lines_tracked() {
        let t = lex("let s = \"HashMap\";\nlet m = HashMap::new();\n");
        let hash_toks: Vec<_> = t.iter().filter(|t| t.is_ident("HashMap")).collect();
        assert_eq!(hash_toks.len(), 1);
        assert_eq!(hash_toks[0].line, 1);
    }

    #[test]
    fn lifetimes_lex_as_one_token() {
        let t = lex("fn f<'a>(x: &'a str) {}");
        assert!(t.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
    }
}
