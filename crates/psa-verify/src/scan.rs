//! Source model: a lossless-enough view of one Rust file for lexical lints.
//!
//! The scanner does not parse Rust — `syn` is not available to an offline
//! build, and the lints here are lexical by design. What it *does* do is
//! separate the three channels a lint must not confuse:
//!
//! * **code** — the line with every comment removed and every string/char
//!   literal blanked, so `"HashMap"` in a string or `Instant::now` in a
//!   comment never fires a lint;
//! * **comments** — the comment text per line, where the
//!   `// psa-verify: allow(<lint>)` escape hatch lives;
//! * **test mask** — which lines sit inside a `#[cfg(test)]` or `#[test]`
//!   item, for lints that only apply to shipped code.

/// One parsed source file.
#[derive(Debug)]
pub struct FileModel {
    /// Per-line code with comments removed and literal contents blanked.
    pub code: Vec<String>,
    /// Per-line comment text (no `//` / `/*` markers removed — raw tail).
    /// Consumed by `collect_allows` at parse time and by the corpus layer's
    /// analysis pragmas (`protocol-role(...)`, `panic-entry(...)`).
    pub comments: Vec<String>,
    /// True for lines inside a `#[cfg(test)]` / `#[test]` item body.
    pub in_test: Vec<bool>,
    /// `(line, lint)` pairs allowed for the whole file (annotation above
    /// any code). The line locates the annotation for the suppression
    /// audit's diagnostics.
    pub file_allows: Vec<(usize, String)>,
    /// `(line, lint)` pairs: annotation applies to its line and the next.
    pub line_allows: Vec<(usize, String)>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    CharLit,
}

impl FileModel {
    pub fn parse(src: &str) -> FileModel {
        let (code, comments) = split_channels(src);
        let in_test = test_mask(&code);
        let (file_allows, line_allows) = collect_allows(&code, &comments);
        FileModel { code, comments, in_test, file_allows, line_allows }
    }

    /// Is `lint` allowed on `line` (0-based) — by a file-level annotation,
    /// or a line-level one on this or the previous line? Production code
    /// routes suppression through the audit pass (which also tracks
    /// annotation usage); this direct predicate backs the lint unit tests.
    #[cfg(test)]
    pub fn allowed(&self, line: usize, lint: &str) -> bool {
        if self.file_allows.iter().any(|(_, a)| a == lint) {
            return true;
        }
        self.line_allows.iter().any(|(l, a)| a == lint && (*l == line || *l + 1 == line))
    }
}

/// Split source into per-line (code, comment) channels.
fn split_channels(src: &str) -> (Vec<String>, Vec<String>) {
    let chars: Vec<char> = src.chars().collect();
    let mut code_lines = Vec::new();
    let mut com_lines = Vec::new();
    let mut code = String::new();
    let mut com = String::new();
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            code_lines.push(std::mem::take(&mut code));
            com_lines.push(std::mem::take(&mut com));
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                    continue;
                }
                // Raw string r"..." / r#"..."# (not a raw identifier).
                if c == 'r' && !prev_is_ident(&chars, i) && matches!(next, Some('"') | Some('#')) {
                    let mut j = i + 1;
                    let mut hashes = 0u8;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        code.push('"');
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    // char literal vs lifetime: a literal closes with '.
                    let is_escape = next == Some('\\');
                    let closes = chars.get(i + 2) == Some(&'\'');
                    if is_escape || (closes && next.is_some()) {
                        mode = Mode::CharLit;
                        i += 1;
                        continue;
                    }
                    code.push('\''); // lifetime tick
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            Mode::LineComment => {
                com.push(c);
                i += 1;
            }
            Mode::BlockComment(d) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(d + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    mode = if d == 1 { Mode::Code } else { Mode::BlockComment(d - 1) };
                    i += 2;
                } else {
                    com.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2; // skip escaped char
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1; // blank literal content
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                i += 1;
            }
            Mode::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    code_lines.push(code);
    com_lines.push(com);
    (code_lines, com_lines)
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Mark lines inside `#[cfg(test)]` / `#[test]` item bodies by tracking
/// brace depth on the stripped code channel.
fn test_mask(code: &[String]) -> Vec<bool> {
    let mut mask = Vec::with_capacity(code.len());
    let mut depth = 0i32;
    let mut pending = false;
    let mut guard: Option<i32> = None;
    for line in code {
        if line.contains("#[test]") || is_test_cfg(line) {
            pending = true;
        }
        let mut in_test = guard.is_some() || pending;
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending {
                        guard = Some(depth);
                        pending = false;
                        in_test = true;
                    }
                }
                '}' => {
                    if guard == Some(depth) {
                        guard = None;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        mask.push(in_test || guard.is_some());
    }
    mask
}

/// Does this line carry a `#[cfg(...)]` whose predicate mentions `test` as
/// a word? Covers `#[cfg(test)]` but also compound gates like
/// `#[cfg(all(test, not(loom)))]`. A bare `not(test)` gate would be shipped
/// code, but such a gate on an *item* does not occur in this workspace —
/// and treating it as test would only make the lints stricter elsewhere.
fn is_test_cfg(line: &str) -> bool {
    let Some(pos) = line.find("#[cfg(") else {
        return false;
    };
    let pred = &line[pos + 6..];
    let bytes = pred.as_bytes();
    let mut from = 0;
    while let Some(off) = pred[from..].find("test") {
        let start = from + off;
        let end = start + 4;
        let before_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let after_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Extract `psa-verify: allow(<lint>)` annotations. An annotation above any
/// code line covers the whole file; otherwise it covers its own line and
/// the one after it (so it can sit on the line above the finding).
fn collect_allows(
    code: &[String],
    comments: &[String],
) -> (Vec<(usize, String)>, Vec<(usize, String)>) {
    const TAG: &str = "psa-verify: allow(";
    let mut file_allows = Vec::new();
    let mut line_allows = Vec::new();
    let mut seen_code = false;
    for (i, com) in comments.iter().enumerate() {
        if !code[i].trim().is_empty() {
            // annotation on a code line is line-level even at file top
            if let Some(name) = extract(com, TAG) {
                line_allows.push((i, name));
            }
            seen_code = true;
            continue;
        }
        if let Some(name) = extract(com, TAG) {
            if seen_code {
                line_allows.push((i, name));
            } else {
                file_allows.push((i, name));
            }
        }
    }
    (file_allows, line_allows)
}

fn extract(haystack: &str, tag: &str) -> Option<String> {
    let start = haystack.find(tag)? + tag.len();
    let rest = &haystack[start..];
    let end = rest.find(')')?;
    Some(rest[..end].trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_not_code() {
        let m = FileModel::parse(
            "let x = \"HashMap in a string\"; // HashMap in a comment\n/* HashMap */ let y = 1;\n",
        );
        assert!(!m.code[0].contains("HashMap"));
        assert!(m.comments[0].contains("HashMap"));
        assert!(!m.code[1].contains("HashMap"));
        assert!(m.code[1].contains("let y"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let m = FileModel::parse("let s = r#\"Instant::now\"#; let c = '\\'';\nlet l: &'a str;\n");
        assert!(!m.code[0].contains("Instant"));
        assert!(m.code[1].contains("&'a str"), "lifetimes survive: {:?}", m.code[1]);
    }

    #[test]
    fn nested_block_comments() {
        let m = FileModel::parse("/* a /* b */ still comment */ let z = 3;\n");
        assert!(m.code[0].contains("let z"));
        assert!(!m.code[0].contains("still comment"));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn also_real() {}\n";
        let m = FileModel::parse(src);
        assert!(!m.in_test[0]);
        assert!(m.in_test[1] && m.in_test[2] && m.in_test[3] && m.in_test[4]);
        assert!(!m.in_test[5]);
    }

    #[test]
    fn compound_test_cfgs_are_masked() {
        let src = "#[cfg(all(test, not(loom)))]\nmod model {\n    fn f() { x.unwrap(); }\n}\nfn shipped() {}\n";
        let m = FileModel::parse(src);
        assert!(m.in_test[0] && m.in_test[2]);
        assert!(!m.in_test[4]);
        // `tsan`/`testing_x` must not count as the `test` predicate
        let n = FileModel::parse("#[cfg(psa_tsan)]\nfn f() {}\n#[cfg(testing_x)]\nfn g() {}\n");
        assert!(!n.in_test[1] && !n.in_test[3]);
    }

    #[test]
    fn file_level_allow_sits_above_code() {
        let src = "//! docs\n// psa-verify: allow(wall-clock) — reason\nuse std::time::Instant;\n";
        let m = FileModel::parse(src);
        assert_eq!(m.file_allows, vec![(1, "wall-clock".to_string())]);
    }

    #[test]
    fn line_level_allow_covers_next_line() {
        let src = "use x;\n// psa-verify: allow(unordered)\nlet m = HashMap::new();\nlet n = HashMap::new();\n";
        let m = FileModel::parse(src);
        assert!(m.file_allows.is_empty());
        assert!(m.allowed(2, "unordered"));
        assert!(!m.allowed(3, "unordered"));
    }
}
