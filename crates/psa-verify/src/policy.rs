//! Which lints apply where.
//!
//! The mapping is by workspace-relative path, normalised to `/` separators:
//!
//! * **simulation crates** (`psa-core`, `psa-runtime`, `netsim`,
//!   `cluster-sim`) carry the determinism lints — unordered collections,
//!   wall clock, ambient RNG — because their per-frame behaviour must be a
//!   pure function of the seed;
//! * **protocol modules** (`psa-runtime/src/msg.rs` and everything under
//!   `netsim/src/`) additionally forbid panic paths: a panicking rank
//!   thread deadlocks its peers instead of failing the run report;
//! * **blocking transports** (the threaded executor and the thread/fault
//!   fabrics) additionally forbid bare `.recv(` calls: a peer that dies
//!   silently must surface as a typed `Timeout`, never as a hang;
//! * **everything else** (render, api, workloads, benches, binaries) still
//!   gets the ambient-RNG lint — a stray `thread_rng` anywhere feeds
//!   nondeterminism back into workload setup — but may freely use hash
//!   maps and wall clocks.

use crate::lints::{
    LintDef, AMBIENT_RNG, PROTOCOL_PANIC, THREAD_CONFINEMENT, UNBOUNDED_RECV, UNORDERED, WALL_CLOCK,
};

/// Source roots whose iteration order / timing must be deterministic.
pub const SIM_ROOTS: &[&str] = &[
    "crates/psa-core/src",
    "crates/psa-core/tests",
    "crates/psa-runtime/src",
    "crates/psa-chaos/src",
    "crates/psa-trace/src",
    "crates/psa-desim/src",
    "crates/psa-sessions/src",
    "crates/netsim/src",
    "crates/cluster-sim/src",
];

/// Message-handling code that must return typed errors instead of panicking.
pub const PROTOCOL_ROOTS: &[&str] = &["crates/psa-runtime/src/msg.rs", "crates/netsim/src"];

/// Code that receives over *blocking* channels. Only here is a bare
/// `.recv(` a hang risk; the virtual fabric's `recv` is non-blocking and
/// the collective helpers built on it stay out of this list.
pub const BLOCKING_ROOTS: &[&str] = &[
    "crates/psa-runtime/src/threaded.rs",
    "crates/netsim/src/thread_net.rs",
    "crates/netsim/src/fault.rs",
];

/// The one module allowed to spawn compute threads: the chunked kernel,
/// whose chunk-keyed RNG streams and chunk-order merge keep results
/// byte-identical for any worker count.
pub const KERNEL_MODULE: &str = "crates/psa-core/src/kernel.rs";

/// Directory names skipped entirely during the workspace walk.
pub const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures"];

/// Path prefixes excluded from the workspace corpus. The checker's own
/// sources are full of *mentions* of the annotations and pragmas it
/// parses (`allow(<key>)` in rustdoc, role tables, fixture excerpts);
/// scanning itself would report every such mention as a stale annotation
/// or an unknown role. The checker is covered by its unit tests and the
/// fixture selftest instead.
pub const SKIP_PREFIXES: &[&str] = &["crates/psa-verify/"];

/// Roots of the panic-reachability analysis: every non-test function in
/// these files/dirs is a protocol (or report-surface) entry whose callees
/// must not panic. Beyond the protocol modules proper, the run-report and
/// trace accessors are roots because the executors call them from inside
/// the frame loop — an out-of-range rank there kills the run exactly like
/// a protocol panic would.
pub const PANIC_ROOTS: &[&str] = &[
    "crates/psa-runtime/src/msg.rs",
    "crates/psa-runtime/src/checkpoint.rs",
    "crates/netsim/src",
    "crates/psa-trace/src",
    "crates/psa-runtime/src/report.rs",
    "crates/psa-runtime/src/trace.rs",
    "crates/psa-desim/src/fabric.rs",
    "crates/psa-desim/src/queue.rs",
    "crates/psa-desim/src/proc.rs",
    "crates/psa-sessions/src/admission.rs",
    "crates/psa-sessions/src/session.rs",
    "crates/psa-sessions/src/slot.rs",
];

/// Phase entry points of the taint analysis (matched by function name):
/// anything reachable from the six Figure-2 phases, the executor mains, or
/// the deterministic compute kernel must be a pure function of the seed.
pub const PHASE_ENTRIES: &[&str] = &[
    "phase_creation",
    "phase_addition",
    "phase_calculus",
    "phase_collision",
    "phase_exchange",
    "phase_loads",
    "phase_balance",
    "phase_ship",
    "execute_transfers",
    "calculator_main",
    "manager_main",
    "image_generator_main",
    "run_frames",
    "run_sequential",
    "run_actions",
];

/// Workspace protocol-role bindings: `(file, role, entry fn)` checked by
/// the Figure-2 conformance pass (fixtures bind via the `protocol-role`
/// pragma instead).
pub const ROLE_BINDINGS: &[(&str, &str, &str)] = &[
    ("crates/psa-runtime/src/protocol.rs", "calculator", "calculator_main"),
    ("crates/psa-runtime/src/protocol.rs", "manager", "manager_main"),
    ("crates/psa-runtime/src/protocol.rs", "image-generator", "image_generator_main"),
    ("crates/psa-runtime/src/protocol.rs", "virtual-engine", "run_frames"),
];

/// Units that take part in the call-graph analyses: crate sources, minus
/// psa-verify itself (the checker's own parser tables and fixtures are not
/// simulation code).
pub fn graph_eligible(rel: &str) -> bool {
    rel.starts_with("crates/") && rel.contains("/src/") && !rel.starts_with("crates/psa-verify/")
}

pub fn under(rel: &str, root: &str) -> bool {
    rel == root || rel.starts_with(&format!("{root}/"))
}

/// The lint set for one workspace-relative `.rs` path.
pub fn lints_for(rel: &str) -> Vec<&'static LintDef> {
    let mut set: Vec<&'static LintDef> = vec![&AMBIENT_RNG];
    if SIM_ROOTS.iter().any(|r| under(rel, r)) {
        set.push(&UNORDERED);
        set.push(&WALL_CLOCK);
        if rel != KERNEL_MODULE {
            set.push(&THREAD_CONFINEMENT);
        }
    }
    if PROTOCOL_ROOTS.iter().any(|r| under(rel, r)) {
        set.push(&PROTOCOL_PANIC);
    }
    if BLOCKING_ROOTS.iter().any(|r| under(rel, r)) {
        set.push(&UNBOUNDED_RECV);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(rel: &str) -> Vec<&'static str> {
        lints_for(rel).iter().map(|l| l.id).collect()
    }

    #[test]
    fn sim_crates_get_determinism_lints() {
        let got = ids("crates/psa-runtime/src/threaded.rs");
        assert!(got.contains(&"unordered-collections"));
        assert!(got.contains(&"wall-clock"));
        assert!(got.contains(&"ambient-rng"));
        assert!(!got.contains(&"protocol-panic"));
    }

    #[test]
    fn protocol_modules_also_ban_panics() {
        assert!(ids("crates/psa-runtime/src/msg.rs").contains(&"protocol-panic"));
        assert!(ids("crates/netsim/src/thread_net.rs").contains(&"protocol-panic"));
        assert!(ids("crates/netsim/src/virtual_net.rs").contains(&"protocol-panic"));
    }

    #[test]
    fn other_crates_only_get_ambient_rng() {
        assert_eq!(ids("crates/psa-render/src/raster.rs"), vec!["ambient-rng"]);
        assert_eq!(ids("src/bin/animate.rs"), vec!["ambient-rng"]);
    }

    #[test]
    fn prefix_match_is_path_aware() {
        // `crates/netsim/src-extra` must not inherit netsim's protocol rules
        assert!(!ids("crates/netsim/src-extra/x.rs").contains(&"protocol-panic"));
    }

    #[test]
    fn blocking_transports_ban_bare_recv() {
        assert!(ids("crates/psa-runtime/src/threaded.rs").contains(&"no-unbounded-recv"));
        assert!(ids("crates/netsim/src/thread_net.rs").contains(&"no-unbounded-recv"));
        assert!(ids("crates/netsim/src/fault.rs").contains(&"no-unbounded-recv"));
        // The virtual fabric's recv is non-blocking: collectives and the
        // virtual executor must be free to call it bare.
        assert!(!ids("crates/netsim/src/collectives.rs").contains(&"no-unbounded-recv"));
        assert!(!ids("crates/psa-runtime/src/virtual_exec.rs").contains(&"no-unbounded-recv"));
    }

    #[test]
    fn thread_confinement_spares_only_the_kernel() {
        assert!(!ids(KERNEL_MODULE).contains(&"thread-confinement"));
        assert!(ids("crates/psa-core/src/subdomain.rs").contains(&"thread-confinement"));
        assert!(ids("crates/psa-runtime/src/threaded.rs").contains(&"thread-confinement"));
        assert!(ids("crates/netsim/src/thread_net.rs").contains(&"thread-confinement"));
        // Non-sim crates may thread freely (e.g. render workers).
        assert!(!ids("crates/psa-render/src/raster.rs").contains(&"thread-confinement"));
    }

    #[test]
    fn chaos_crate_is_a_sim_root() {
        let got = ids("crates/psa-chaos/src/matrix.rs");
        assert!(got.contains(&"unordered-collections"));
        assert!(got.contains(&"wall-clock"));
    }

    #[test]
    fn graph_eligibility_covers_crate_sources_but_not_the_checker() {
        assert!(graph_eligible("crates/psa-core/src/kernel.rs"));
        assert!(graph_eligible("crates/netsim/src/virtual_net.rs"));
        assert!(!graph_eligible("crates/psa-verify/src/main.rs"));
        assert!(!graph_eligible("crates/psa-core/tests/determinism.rs"));
        assert!(!graph_eligible("src/bin/animate.rs"));
    }

    #[test]
    fn role_bindings_and_panic_roots_are_well_formed() {
        for (file, role, _) in ROLE_BINDINGS {
            assert!(crate::proto::spec_for_role(role).is_some(), "unknown role {role}");
            assert!(graph_eligible(file), "{file} must be analyzable");
        }
        for root in PANIC_ROOTS {
            assert!(root.starts_with("crates/"), "{root}");
        }
    }

    #[test]
    fn desim_crate_is_a_sim_root() {
        // The event loop IS the scheduler: a HashMap drain, a host clock,
        // or a stray thread in psa-desim breaks heap-order determinism.
        for file in [
            "crates/psa-desim/src/queue.rs",
            "crates/psa-desim/src/fabric.rs",
            "crates/psa-desim/src/exec.rs",
        ] {
            let got = ids(file);
            assert!(got.contains(&"unordered-collections"), "{file}");
            assert!(got.contains(&"wall-clock"), "{file}");
            assert!(got.contains(&"thread-confinement"), "{file}");
        }
        // And the fabric/queue/proc trio are panic roots: every entry the
        // engine calls mid-frame must come back as a typed error.
        for root in [
            "crates/psa-desim/src/fabric.rs",
            "crates/psa-desim/src/queue.rs",
            "crates/psa-desim/src/proc.rs",
        ] {
            assert!(PANIC_ROOTS.contains(&root), "{root} must be a panic root");
        }
    }

    #[test]
    fn sessions_crate_is_a_sim_root() {
        // The pool multiplexes runs whose fingerprints must stay
        // byte-identical to solo runs: a HashMap in the tenant tables, a
        // wall clock in the lane arithmetic, or a stray thread would make
        // scheduling order (and with it latency numbers) host-dependent.
        for file in [
            "crates/psa-sessions/src/manager.rs",
            "crates/psa-sessions/src/slot.rs",
            "crates/psa-sessions/src/main.rs",
        ] {
            let got = ids(file);
            assert!(got.contains(&"unordered-collections"), "{file}");
            assert!(got.contains(&"wall-clock"), "{file}");
            assert!(got.contains(&"thread-confinement"), "{file}");
        }
        // Admission decisions, seed derivation, and the slot arena are
        // called from inside the dispatch loop: a panic there takes the
        // whole pool down, so they are panic roots like the fabric trio.
        for root in [
            "crates/psa-sessions/src/admission.rs",
            "crates/psa-sessions/src/session.rs",
            "crates/psa-sessions/src/slot.rs",
        ] {
            assert!(PANIC_ROOTS.contains(&root), "{root} must be a panic root");
        }
    }

    #[test]
    fn checkpoint_codec_is_a_panic_root() {
        // The snapshot codec runs on the recovery path: a decode panic on a
        // corrupt or truncated checkpoint would kill the rollback at the
        // exact moment it is supposed to save the run. Every decode failure
        // must come back as a typed `CodecError` instead.
        assert!(PANIC_ROOTS.contains(&"crates/psa-runtime/src/checkpoint.rs"));
        // And as psa-runtime source it keeps the determinism lints too —
        // snapshots are fingerprinted, so encode order must be stable.
        let got = ids("crates/psa-runtime/src/checkpoint.rs");
        assert!(got.contains(&"unordered-collections"));
        assert!(got.contains(&"wall-clock"));
    }

    #[test]
    fn trace_crate_is_a_sim_root() {
        // The recorder runs inside the executors' frame loop; a HashMap or
        // an unannotated Instant there would break the quietness guarantee.
        let got = ids("crates/psa-trace/src/recorder.rs");
        assert!(got.contains(&"unordered-collections"));
        assert!(got.contains(&"wall-clock"));
        assert!(got.contains(&"ambient-rng"));
    }
}
