//! Panic reachability from the protocol send/recv paths.
//!
//! A rank thread that panics mid-protocol does not fail the run — it
//! leaves every peer blocked on a receive that will never complete. The
//! `protocol-panic` token lint bans panic constructs *inside* the protocol
//! modules; this pass walks the call graph outward from those modules'
//! functions (plus any `// psa-verify: panic-entry(<fn>)` pragma roots)
//! and flags what the lexical rule cannot see:
//!
//! * **`panic-reach`** — `.unwrap()` / `.expect(` / panic-family macros in
//!   a *reachable* function outside the protocol modules themselves
//!   (inside them the token lint already fires; double-reporting the same
//!   line under two ids would just be noise);
//! * **`index-panic`** — slice/array indexing with a non-literal index in
//!   any reachable function. Indexing is split into its own lint because
//!   the fabric hot paths index rank-keyed vectors by construction-bounded
//!   values; those files carry one documented file-level
//!   `allow(index-panic)` each, without blunting the unwrap/panic rule.

use crate::audit::Raw;
use crate::corpus::Unit;
use crate::graph::{CallGraph, FnRef};
use crate::lints::{INDEX_PANIC, PANIC_REACH};
use crate::policy;
use crate::report::Violation;

/// Run the panic-reachability pass. Roots are every non-test function in a
/// file under [`policy::PANIC_ROOTS`], plus pragma-named functions.
pub fn run(units: &[Unit], graph: &CallGraph, eligible: &[bool]) -> Vec<Raw> {
    let mut entries: Vec<FnRef> = Vec::new();
    for (fi, unit) in units.iter().enumerate() {
        if !eligible[fi] {
            continue;
        }
        let is_root_file = policy::PANIC_ROOTS.iter().any(|r| policy::under(&unit.rel, r));
        for (xi, f) in unit.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            if is_root_file || unit.panic_entries.iter().any(|e| e == &f.name) {
                entries.push(FnRef { file: fi, idx: xi });
            }
        }
    }
    let origin = graph.reach(&entries);

    let mut out = Vec::new();
    for (&r, &from) in &origin {
        let unit = &units[r.file];
        let f = &unit.fns[r.idx];
        if f.is_test {
            continue;
        }
        let root_name = units[from.file].fns[from.idx].name.as_str();
        let raw_lines = unit.raw_lines();
        let in_protocol_module = policy::PROTOCOL_ROOTS.iter().any(|p| policy::under(&unit.rel, p));
        let mut push = |lint: &'static crate::lints::LintDef, what: &str, line: usize| {
            out.push(Raw {
                unit: r.file,
                v: Violation {
                    lint: lint.id.to_string(),
                    file: unit.rel.clone(),
                    line: line + 1,
                    needle: format!(
                        "{} in `{}` (reachable from protocol root `{}`)",
                        what, f.name, root_name
                    ),
                    message: lint.message.to_string(),
                    severity: "error".to_string(),
                    snippet: raw_lines.get(line).map_or(String::new(), |l| l.trim().to_string()),
                },
                keys: vec![lint.allow_key],
            });
        };
        if !in_protocol_module {
            for site in &f.panics {
                if unit.model.in_test.get(site.line).copied().unwrap_or(false) {
                    continue;
                }
                push(&PANIC_REACH, &site.what, site.line);
            }
        }
        for site in &f.indexing {
            if unit.model.in_test.get(site.line).copied().unwrap_or(false) {
                continue;
            }
            push(&INDEX_PANIC, &site.what, site.line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(files: &[(&str, &str)]) -> (Vec<Unit>, CallGraph, Vec<bool>) {
        let units: Vec<Unit> =
            files.iter().map(|(rel, src)| Unit::parse(rel, src.to_string())).collect();
        let views: Vec<(&str, &[crate::ast::FnInfo])> =
            units.iter().map(|u| (u.rel.as_str(), u.fns.as_slice())).collect();
        let graph = CallGraph::build(&views);
        let eligible = vec![true; units.len()];
        (units, graph, eligible)
    }

    #[test]
    fn unwrap_reachable_from_a_protocol_root_fires_outside_it() {
        let (units, graph, elig) = corpus(&[
            (
                "crates/netsim/src/virtual_net.rs",
                // unwrap here is the token lint's job, not ours
                "fn deliver() { q.front().unwrap(); decode_batch(); }\n",
            ),
            (
                "crates/psa-core/src/codec.rs",
                "fn decode_batch() { hdr.first().expect(\"hdr\"); }\n",
            ),
        ]);
        let raws = run(&units, &graph, &elig);
        let reach: Vec<&Raw> = raws.iter().filter(|r| r.v.lint == "panic-reach").collect();
        assert_eq!(reach.len(), 1, "{raws:#?}");
        assert_eq!(reach[0].v.file, "crates/psa-core/src/codec.rs");
        assert!(reach[0].v.needle.contains("deliver"), "{}", reach[0].v.needle);
    }

    #[test]
    fn indexing_fires_everywhere_reachable_including_root_files() {
        let (units, graph, elig) = corpus(&[(
            "crates/netsim/src/virtual_net.rs",
            "fn route(&mut self, r: usize) { self.clocks[r] += 1; }\n",
        )]);
        let raws = run(&units, &graph, &elig);
        assert_eq!(raws.len(), 1);
        assert_eq!(raws[0].v.lint, "index-panic");
        assert_eq!(raws[0].keys, vec!["index-panic"]);
    }

    #[test]
    fn pragma_entry_roots_a_fixture_file() {
        let (units, graph, elig) = corpus(&[(
            "fixture.rs",
            "// psa-verify: panic-entry(handle)\nfn handle() { helper(); }\nfn helper() { x.unwrap(); }\nfn cold() { y.unwrap(); }\n",
        )]);
        let raws = run(&units, &graph, &elig);
        assert_eq!(raws.len(), 1, "{raws:#?}");
        assert!(raws[0].v.needle.contains("helper"));
        assert!(raws[0].v.needle.contains("handle"));
    }

    #[test]
    fn unreachable_panics_are_not_flagged() {
        let (units, graph, elig) =
            corpus(&[("crates/psa-core/src/lib.rs", "fn free_standing() { x.unwrap(); }\n")]);
        assert!(run(&units, &graph, &elig).is_empty());
    }
}
