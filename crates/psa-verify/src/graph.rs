//! Symbol table + conservative call graph over the workspace.
//!
//! Resolution is by callee *name* — without type information a method
//! call `x.f()` could target any function named `f`. Three rules keep that
//! conservatism useful instead of deafening (all three are deliberate
//! soundness trade-offs, documented in DESIGN.md):
//!
//! 1. **std-name blocklist** — names that overwhelmingly mean a std-library
//!    method (`len`, `push`, `iter`, ...) never resolve to workspace
//!    functions; otherwise every `.len()` would edge into any type that
//!    also has a `len`.
//! 2. **same-crate first** — if the caller's crate defines the name, only
//!    those candidates are used; cross-crate candidates are considered
//!    only when the caller's crate has none.
//! 3. **ambiguity cap** — a name with more than [`MAX_CANDIDATES`]
//!    cross-crate candidates resolves to none (it behaves like a std
//!    name).

use std::collections::BTreeMap;

use crate::ast::FnInfo;

/// A function, addressed by (file index, fn index) into the corpus.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnRef {
    pub file: usize,
    pub idx: usize,
}

/// Names that resolve to std-library methods, never workspace functions.
const STD_NAMES: &[&str] = &[
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "cloned",
    "copied",
    "collect",
    "extend",
    "drain",
    "retain",
    "clear",
    "contains",
    "contains_key",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "min",
    "max",
    "sum",
    "product",
    "map",
    "filter",
    "filter_map",
    "fold",
    "for_each",
    "and_then",
    "or_else",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "ok",
    "err",
    "take",
    "replace",
    "swap",
    "split",
    "split_at",
    "join",
    "find",
    "position",
    "any",
    "all",
    "zip",
    "rev",
    "chain",
    "enumerate",
    "flat_map",
    "flatten",
    "last",
    "first",
    "entry",
    "or_insert",
    "or_insert_with",
    "to_string",
    "to_vec",
    "to_owned",
    "as_str",
    "as_slice",
    "as_ref",
    "as_mut",
    "as_bytes",
    "into",
    "from",
    "try_from",
    "try_into",
    "parse",
    "abs",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "floor",
    "ceil",
    "round",
    "sqrt",
    "powi",
    "powf",
    "exp",
    "ln",
    "new",
    "with_capacity",
    "default",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "index",
    "windows",
    "chunks",
    "starts_with",
    "ends_with",
    "trim",
    "lines",
    "chars",
    "bytes",
    "count",
    "rem_euclid",
    "clamp",
    "max_element",
    "min_element",
    "total_cmp",
    "is_finite",
    "is_nan",
    "wrapping_add",
    "wrapping_mul",
    "saturating_sub",
    "saturating_add",
    "checked_sub",
    "write",
    "writeln",
    "format",
    "print",
    "println",
    "eprintln",
    "vec",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "matches",
    "skip",
    "step_by",
    "resize",
    "truncate",
    "append",
    "binary_search",
    "binary_search_by",
    "partition_point",
    "split_off",
    "keys",
    "values",
    "values_mut",
    "range",
    "rotate_left",
    "rotate_right",
    "fill",
    "concat",
    "repeat",
    "splitn",
    "split_whitespace",
    "find_map",
    "peekable",
    "peek",
    "by_ref",
    "cycle",
    "inspect",
    "nth",
    "reduce",
    "scan",
    "take_while",
    "skip_while",
    "lt",
    "le",
    "gt",
    "ge",
    "then",
    "then_some",
    "map_or",
    "map_err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "as_deref",
    "as_mut_slice",
];

/// Cross-crate candidate cap; past this the name is treated like std.
const MAX_CANDIDATES: usize = 6;

/// The call graph: adjacency from each function to its resolved callees.
pub struct CallGraph {
    /// Per (file, fn): resolved callees.
    edges: BTreeMap<FnRef, Vec<FnRef>>,
}

/// The crate a workspace-relative path belongs to (`crates/<name>/...`),
/// or the path's first component for root sources.
fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(c)) => c,
        (Some(first), _) => first,
        _ => rel,
    }
}

impl CallGraph {
    /// Build from the corpus: `files[i]` is `(rel_path, fns)`.
    pub fn build(files: &[(&str, &[FnInfo])]) -> CallGraph {
        // Symbol table: name -> every function carrying it.
        let mut by_name: BTreeMap<&str, Vec<FnRef>> = BTreeMap::new();
        for (fi, (_, fns)) in files.iter().enumerate() {
            for (xi, f) in fns.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push(FnRef { file: fi, idx: xi });
            }
        }
        let mut edges: BTreeMap<FnRef, Vec<FnRef>> = BTreeMap::new();
        for (fi, (rel, fns)) in files.iter().enumerate() {
            let caller_crate = crate_of(rel);
            for (xi, f) in fns.iter().enumerate() {
                let mut out = Vec::new();
                for (callee, _) in f.calls() {
                    if STD_NAMES.contains(&callee) {
                        continue;
                    }
                    let Some(cands) = by_name.get(callee) else { continue };
                    let same: Vec<FnRef> = cands
                        .iter()
                        .copied()
                        .filter(|r| crate_of(files[r.file].0) == caller_crate)
                        .collect();
                    let chosen: &[FnRef] = if !same.is_empty() {
                        &same
                    } else if cands.len() <= MAX_CANDIDATES {
                        cands
                    } else {
                        &[]
                    };
                    for &r in chosen {
                        if r != (FnRef { file: fi, idx: xi }) && !out.contains(&r) {
                            out.push(r);
                        }
                    }
                }
                edges.insert(FnRef { file: fi, idx: xi }, out);
            }
        }
        CallGraph { edges }
    }

    /// BFS over the graph from `entries`; returns, for every reachable
    /// function, the entry it was first reached from (entries map to
    /// themselves). Deterministic: entries are visited in order and
    /// adjacency lists preserve call order.
    pub fn reach(&self, entries: &[FnRef]) -> BTreeMap<FnRef, FnRef> {
        use std::collections::btree_map::Entry;
        let mut origin: BTreeMap<FnRef, FnRef> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnRef> = std::collections::VecDeque::new();
        for &e in entries {
            if let Entry::Vacant(slot) = origin.entry(e) {
                slot.insert(e);
                queue.push_back(e);
            }
        }
        while let Some(cur) = queue.pop_front() {
            let Some(&root) = origin.get(&cur) else { continue };
            if let Some(nexts) = self.edges.get(&cur) {
                for &n in nexts {
                    if let Entry::Vacant(slot) = origin.entry(n) {
                        slot.insert(root);
                        queue.push_back(n);
                    }
                }
            }
        }
        origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::collect_fns;
    use crate::lex::tokenize;
    use crate::scan::FileModel;

    fn parse(src: &str) -> Vec<FnInfo> {
        let model = FileModel::parse(src);
        collect_fns(&tokenize(&model.code), &model)
    }

    #[test]
    fn same_crate_beats_cross_crate() {
        let a = parse("fn top() { helper(); }\nfn helper() {}\n");
        let b = parse("fn helper() { x.unwrap(); }\n");
        let files: Vec<(&str, &[FnInfo])> =
            vec![("crates/a/src/lib.rs", &a), ("crates/b/src/lib.rs", &b)];
        let g = CallGraph::build(&files);
        let reached = g.reach(&[FnRef { file: 0, idx: 0 }]);
        assert!(reached.contains_key(&FnRef { file: 0, idx: 1 }), "same-crate helper");
        assert!(!reached.contains_key(&FnRef { file: 1, idx: 0 }), "cross-crate shadowed");
    }

    #[test]
    fn cross_crate_resolves_when_local_is_absent() {
        let a = parse("fn top() { run_actions(); }\n");
        let b = parse("fn run_actions() {}\n");
        let files: Vec<(&str, &[FnInfo])> =
            vec![("crates/a/src/lib.rs", &a), ("crates/b/src/kernel.rs", &b)];
        let g = CallGraph::build(&files);
        let reached = g.reach(&[FnRef { file: 0, idx: 0 }]);
        assert!(reached.contains_key(&FnRef { file: 1, idx: 0 }));
    }

    #[test]
    fn std_names_never_resolve() {
        let a = parse("fn top(v: &mut Vec<u32>) { v.push(1); v.len(); }\n");
        let b = parse("fn push() { panic!(); }\nfn len() -> usize { 0 }\n");
        let files: Vec<(&str, &[FnInfo])> =
            vec![("crates/a/src/lib.rs", &a), ("crates/b/src/lib.rs", &b)];
        let g = CallGraph::build(&files);
        let reached = g.reach(&[FnRef { file: 0, idx: 0 }]);
        assert_eq!(reached.len(), 1, "{reached:?}");
    }

    #[test]
    fn origin_tracks_the_first_entry() {
        let a = parse("fn entry_a() { shared(); }\nfn entry_b() { shared(); }\nfn shared() {}\n");
        let files: Vec<(&str, &[FnInfo])> = vec![("crates/a/src/lib.rs", &a)];
        let g = CallGraph::build(&files);
        let reached = g.reach(&[FnRef { file: 0, idx: 0 }, FnRef { file: 0, idx: 1 }]);
        assert_eq!(reached[&FnRef { file: 0, idx: 2 }], FnRef { file: 0, idx: 0 });
    }
}
