//! Nondeterminism taint: ambient sources (wall clock, unordered
//! collections, ambient RNG, thread identity) inside any function
//! *reachable from a phase entry point* over the conservative call graph.
//!
//! The token lints already flag these sources where policy applies them;
//! this pass closes the gap the lexical scanner structurally cannot see —
//! a helper in a crate outside the policy roots (or a future refactor that
//! moves tainted code there) still taints the frame loop that calls it.
//! Each finding names both the tainted function and the phase entry it was
//! reached from, so the fix site and the contract it violates are in the
//! same diagnostic.
//!
//! Findings carry *two* allow keys: the analysis key (`nondet-taint`) and
//! the source-class key of the matching token lint (`wall-clock`,
//! `unordered`, `ambient-rng`). An existing, justified
//! `// psa-verify: allow(wall-clock)` therefore suppresses the taint
//! finding for that source too — one annotation, one audited escape hatch,
//! both layers. Thread identity has no per-source key: only an explicit
//! `allow(nondet-taint)` can excuse it.

use crate::audit::Raw;
use crate::corpus::Unit;
use crate::graph::{CallGraph, FnRef};
use crate::lints::NONDET_TAINT;
use crate::report::Violation;

/// Run the taint pass. `eligible[i]` gates which units participate (the
/// graph is built over all units with ineligible ones contributing no
/// functions, keeping `FnRef.file` aligned with `units`); `entry_names`
/// are the phase entry points, matched by function name.
pub fn run(units: &[Unit], graph: &CallGraph, eligible: &[bool], entry_names: &[&str]) -> Vec<Raw> {
    let mut entries: Vec<FnRef> = Vec::new();
    for (fi, unit) in units.iter().enumerate() {
        if !eligible[fi] {
            continue;
        }
        for (xi, f) in unit.fns.iter().enumerate() {
            if !f.is_test && entry_names.contains(&f.name.as_str()) {
                entries.push(FnRef { file: fi, idx: xi });
            }
        }
    }
    let origin = graph.reach(&entries);

    let mut out = Vec::new();
    for (&r, &from) in &origin {
        let unit = &units[r.file];
        let f = &unit.fns[r.idx];
        if f.is_test {
            continue;
        }
        let entry_name = units[from.file].fns[from.idx].name.as_str();
        let raw_lines = unit.raw_lines();
        for hit in &f.sources {
            if unit.model.in_test.get(hit.line).copied().unwrap_or(false) {
                continue;
            }
            let mut keys = vec![NONDET_TAINT.allow_key];
            if let Some(k) = hit.class.allow_key() {
                keys.push(k);
            }
            out.push(Raw {
                unit: r.file,
                v: Violation {
                    lint: NONDET_TAINT.id.to_string(),
                    file: unit.rel.clone(),
                    line: hit.line + 1,
                    needle: format!(
                        "{} in `{}` (reachable from phase entry `{}`)",
                        hit.what, f.name, entry_name
                    ),
                    message: NONDET_TAINT.message.to_string(),
                    severity: "error".to_string(),
                    snippet: raw_lines
                        .get(hit.line)
                        .map_or(String::new(), |l| l.trim().to_string()),
                },
                keys,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(files: &[(&str, &str)]) -> (Vec<Unit>, CallGraph, Vec<bool>) {
        let units: Vec<Unit> =
            files.iter().map(|(rel, src)| Unit::parse(rel, src.to_string())).collect();
        let views: Vec<(&str, &[crate::ast::FnInfo])> =
            units.iter().map(|u| (u.rel.as_str(), u.fns.as_slice())).collect();
        let graph = CallGraph::build(&views);
        let eligible = vec![true; units.len()];
        (units, graph, eligible)
    }

    #[test]
    fn transitive_taint_is_found_and_names_the_entry() {
        let (units, graph, elig) = corpus(&[
            (
                "crates/a/src/lib.rs",
                "fn phase_calculus() { helper(); }\nfn unrelated() { also_tainted(); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "fn helper() { let t = Instant::now(); }\nfn also_tainted() { let m = HashMap::new(); }\n",
            ),
        ]);
        let raws = run(&units, &graph, &elig, &["phase_calculus"]);
        assert_eq!(raws.len(), 1, "{raws:#?}");
        let v = &raws[0].v;
        assert_eq!(v.lint, "nondet-taint");
        assert_eq!(v.file, "crates/b/src/lib.rs");
        assert!(v.needle.contains("Instant::now"));
        assert!(v.needle.contains("phase_calculus"), "{}", v.needle);
        assert_eq!(raws[0].keys, vec!["nondet-taint", "wall-clock"]);
    }

    #[test]
    fn sources_in_test_code_are_exempt() {
        let (units, graph, elig) = corpus(&[(
            "crates/a/src/lib.rs",
            "fn phase_exchange() {}\n#[cfg(test)]\nmod tests {\n    fn phase_exchange_t() { let t = Instant::now(); }\n}\n",
        )]);
        assert!(run(&units, &graph, &elig, &["phase_exchange"]).is_empty());
    }

    #[test]
    fn thread_identity_has_no_per_source_escape() {
        let (units, graph, elig) = corpus(&[(
            "crates/a/src/lib.rs",
            "fn phase_ship() { let id = thread::current().id(); }\n",
        )]);
        let raws = run(&units, &graph, &elig, &["phase_ship"]);
        assert_eq!(raws.len(), 1);
        assert_eq!(raws[0].keys, vec!["nondet-taint"]);
    }

    #[test]
    fn ineligible_units_contribute_no_entries() {
        let units: Vec<Unit> = vec![Unit::parse(
            "crates/a/src/lib.rs",
            "fn phase_loads() { let t = Instant::now(); }\n".to_string(),
        )];
        let views: Vec<(&str, &[crate::ast::FnInfo])> = vec![("crates/a/src/lib.rs", &[])];
        let graph = CallGraph::build(&views);
        assert!(run(&units, &graph, &[false], &["phase_loads"]).is_empty());
    }
}
