// psa-verify-fixture: expect(index-panic)
// A snapshot decoder that trusts the length it just read: a truncated or
// corrupt checkpoint buffer panics the decode — which is exactly the
// moment recovery is trying to restore a crashed rank, so the rollback
// dies instead of the run degrading with a typed CodecError. The real
// codec (psa-runtime/src/checkpoint.rs) is a panic root for this reason.
// psa-verify: panic-entry(decode_snapshot)

pub fn decode_snapshot(bytes: &[u8]) -> u64 {
    read_word(bytes, 8)
}

fn read_word(bytes: &[u8], pos: usize) -> u64 {
    let mut w = 0u64;
    for i in 0..8 {
        w = (w << 8) | bytes[pos + i] as u64;
    }
    w
}
