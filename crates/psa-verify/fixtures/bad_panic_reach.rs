// psa-verify-fixture: expect(panic-reach)
// psa-verify-fixture: expect(protocol-panic)
// A panic two calls below a message handler: the handler itself is clean,
// but the decoder it calls unwraps. When a torn-down peer sends a short
// frame, the rank thread dies holding its channels and every peer blocked
// on a receive deadlocks. The token lint flags the unwrap line; the
// reachability pass proves the protocol root reaches it.
// psa-verify: panic-entry(handle_frame)

pub fn handle_frame(bytes: &[u8]) -> u64 {
    decode_header(bytes)
}

fn decode_header(bytes: &[u8]) -> u64 {
    bytes.first().copied().unwrap() as u64
}
