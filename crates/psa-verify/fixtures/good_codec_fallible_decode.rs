// The fallible twin of bad_codec_truncation_panic, shaped like the real
// checkpoint codec: every read is a get() and truncation surfaces as a
// typed error the recovery path can report instead of dying on. Must
// produce zero violations.
// psa-verify: panic-entry(decode_snapshot)

pub fn decode_snapshot(bytes: &[u8]) -> Result<u64, String> {
    read_word(bytes, 8).ok_or_else(|| "truncated snapshot".to_string())
}

fn read_word(bytes: &[u8], pos: usize) -> Option<u64> {
    let mut w = 0u64;
    for i in 0..8 {
        w = (w << 8) | bytes.get(pos + i).copied()? as u64;
    }
    Some(w)
}
