// psa-verify-fixture: expect(wall-clock)
// A session pool that measures queue wait with the host clock: the wait a
// session reports now depends on machine load and admission wall timing,
// so the same admission sequence produces different latency tables on
// every run — and BENCH_7 stops replaying. Queue waits must be computed
// from the pool-virtual lane clocks (`busy_until`), which advance only by
// the virtual frame times the sessions' own fabrics report.

use std::time::Instant;

pub struct TimedAdmission {
    arrivals: Vec<(u64, Instant)>,
}

impl TimedAdmission {
    pub fn admit(&mut self, session: u64) {
        self.arrivals.push((session, Instant::now()));
    }

    pub fn queue_wait_secs(&self, session: u64) -> f64 {
        for (id, arrived) in &self.arrivals {
            if *id == session {
                return arrived.elapsed().as_secs_f64();
            }
        }
        0.0
    }
}
