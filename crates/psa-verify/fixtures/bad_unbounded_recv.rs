// psa-verify-fixture: expect(no-unbounded-recv)
// A protocol loop that blocks forever on a silent peer: if the sender
// crashed before its load report, this rank hangs the whole executor
// instead of reporting a typed timeout with rank/frame context.

pub struct Endpoint;

impl Endpoint {
    pub fn recv(&self, _from: usize) -> Result<u64, String> {
        Ok(0)
    }
    pub fn recv_deadline(&self, _from: usize, _wait: f64) -> Result<u64, String> {
        Ok(0)
    }
}

pub fn gather_loads(ep: &Endpoint, peers: usize) -> Result<u64, String> {
    let mut total = 0;
    for from in 0..peers {
        total += ep.recv(from)?;
    }
    Ok(total)
}

pub fn gather_loads_bounded(ep: &Endpoint, peers: usize) -> Result<u64, String> {
    let mut total = 0;
    for from in 0..peers {
        total += ep.recv_deadline(from, 2.0e-3)?;
    }
    Ok(total)
}
