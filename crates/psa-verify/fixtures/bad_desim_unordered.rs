// psa-verify-fixture: expect(unordered-collections)
// An event-fabric inbox keyed by (to, from) in a HashMap: drain order then
// depends on the hasher seed, so two same-seed event runs can deliver
// concurrent arrivals in different orders and their fingerprints drift.
// The real fabric keys its inboxes with a BTreeMap and drains by send
// sequence number.

use std::collections::HashMap;

pub struct LossyInbox {
    pending: HashMap<(usize, usize), Vec<u64>>,
}

impl LossyInbox {
    pub fn deliver(&mut self, to: usize, from: usize, seq: u64) {
        self.pending.entry((to, from)).or_default().push(seq);
    }

    pub fn drain_all(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for (_link, seqs) in self.pending.drain() {
            out.extend(seqs);
        }
        out
    }
}
