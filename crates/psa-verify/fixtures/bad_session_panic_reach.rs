// psa-verify-fixture: expect(panic-reach)
// psa-verify-fixture: expect(protocol-panic)
// A slot acquire that unwraps the free list one call down: a saturated
// arena returns None, the dispatch loop panics, and the whole pool dies
// with every queued tenant's work — the exact failure admission control
// exists to make impossible. Acquire must hand back an Option the
// admission layer turns into a typed Queued/Rejected decision.
// psa-verify: panic-entry(acquire_slot)

pub fn acquire_slot(free: &mut Vec<usize>) -> usize {
    next_free_index(free)
}

fn next_free_index(free: &mut Vec<usize>) -> usize {
    free.pop().unwrap()
}
