// psa-verify-fixture: expect(unordered-collections)
// A simulation-crate file that iterates a hash map per frame: iteration
// order depends on the hasher seed, so two same-seed runs can exchange
// particles in different orders and drift apart bit-wise.

use std::collections::HashMap;

pub fn tally(ranks: &[usize]) -> Vec<(usize, usize)> {
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for &r in ranks {
        *counts.entry(r).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
