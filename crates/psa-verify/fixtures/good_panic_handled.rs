// The fallible twin of bad_panic_reach / bad_index_panic: the same
// protocol root, but the lookup is a get() and the absence case surfaces
// as a typed error the executor can put in the run report. Must produce
// zero violations.
// psa-verify: panic-entry(deliver)

pub fn deliver(queue: &[u64], r: usize) -> Result<u64, String> {
    lookup(queue, r).ok_or_else(|| format!("rank {r} out of range"))
}

fn lookup(queue: &[u64], r: usize) -> Option<u64> {
    queue.get(r).copied()
}
