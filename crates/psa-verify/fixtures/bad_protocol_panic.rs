// psa-verify-fixture: expect(protocol-panic)
// A message handler that panics on a torn-down peer: the rank thread dies
// holding its channels and every peer blocked on recv deadlocks. Protocol
// code must surface a typed ProtocolError to the executor instead.

pub fn handle(mailbox: Option<Vec<u8>>) -> Vec<u8> {
    let msg = mailbox.unwrap();
    if msg.is_empty() {
        panic!("empty frame message");
    }
    decode(&msg).expect("peer sent garbage")
}

fn decode(bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.len() > 1 {
        Some(bytes.to_vec())
    } else {
        None
    }
}
