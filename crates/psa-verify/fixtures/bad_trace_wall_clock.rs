// psa-verify-fixture: expect(wall-clock)
// A phase recorder that charges timings from the host clock without the
// allow-annotation: inside the virtual executor this would make the trace
// (and anything derived from it) vary with machine load, silently breaking
// the instrumented-equals-bare fingerprint guarantee.

use std::time::Instant;

pub struct BadRecorder {
    mark: Instant,
    pub compute_seconds: f64,
}

impl BadRecorder {
    pub fn start() -> Self {
        BadRecorder { mark: Instant::now(), compute_seconds: 0.0 }
    }

    pub fn end_compute(&mut self) {
        self.compute_seconds += self.mark.elapsed().as_secs_f64();
        self.mark = Instant::now();
    }
}
