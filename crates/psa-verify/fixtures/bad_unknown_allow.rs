// psa-verify-fixture: expect(stale-allow)
// An allow-annotation naming a key no lint registers (here a typo of
// `wall-clock`): it can never suppress anything, so it is flagged even
// though it sits right where the author intended it to work.

pub fn frame_cost_placeholder() -> f64 {
    // psa-verify: allow(wallclock) — typo: names no registered lint key
    0.0
}
