// A thread-identity read in a function *no phase entry reaches*: taint is
// about reachability, not mere presence. Debug/diagnostic helpers outside
// the frame loop may inspect the current thread without poisoning the
// determinism contract. Must produce zero violations.

pub fn debug_worker_label() -> String {
    format!("worker {:?}", std::thread::current().id())
}
