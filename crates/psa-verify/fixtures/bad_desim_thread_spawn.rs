// psa-verify-fixture: expect(thread-confinement)
// An "event-driven" executor that spawns one OS thread per rank defeats
// the whole design: the scheduler decides which rank's events interleave
// first, determinism is gone, and 1,024 ranks means 1,024 threads. The
// event core runs every rank inside ONE loop over the virtual-time heap.

pub fn run_ranks(ranks: usize) -> Vec<u64> {
    let mut handles = Vec::new();
    for r in 0..ranks {
        handles.push(std::thread::spawn(move || (r as u64) * 3));
    }
    handles.into_iter().map(|h| h.join().unwrap_or(0)).collect()
}
