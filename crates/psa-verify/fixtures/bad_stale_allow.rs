// psa-verify-fixture: expect(stale-allow)
// An allow-annotation left behind after the code it excused was fixed:
// the map below became a BTreeMap, so the annotation suppresses nothing.
// Dead escape hatches are errors — otherwise they silently re-arm the
// moment someone reintroduces the construct nearby.

pub fn tally(ranks: &[usize]) -> Vec<(usize, usize)> {
    // psa-verify: allow(unordered) — left behind after a BTreeMap refactor
    let mut counts: std::collections::BTreeMap<usize, usize> = Default::default();
    for &r in ranks {
        *counts.entry(r).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
