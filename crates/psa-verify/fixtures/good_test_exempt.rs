// A clean file: panics inside #[cfg(test)] / #[test] items are exempt from
// the protocol-panic lint (tests SHOULD assert hard), and banned names in
// strings or comments never count as uses. Must produce zero violations.

pub fn shipped(input: Option<u32>) -> Result<u32, String> {
    // Instant::now in a comment is not a use.
    let banned = "HashMap and thread_rng in a string are not uses";
    input.map(|v| v + banned.len() as u32).ok_or_else(|| "no input".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_accepts_some() {
        assert_eq!(shipped(Some(1)).unwrap(), 48);
        shipped(None).expect_err("must reject none");
    }
}
