// Regression corpus for the v1 substring scanner's false-positive
// classes: identifiers that *contain* a banned name, method names that
// extend one, banned names in strings/doc comments, and test-only code.
// The token-sequence matcher must fire on none of these.
// Must produce zero violations.

/// Discusses HashMap and Instant::now in prose — docs are not uses.
pub struct BuildHashMapConfig {
    pub shards: usize,
}

pub fn unwrap_or_else_is_not_unwrap(v: Option<u64>) -> u64 {
    v.unwrap_or_else(|| 0)
}

pub fn identifiers_are_atomic(thread_rng_label: &str) -> usize {
    let recv_window = "ep.recv(peer) in a string is not a call";
    thread_rng_label.len() + recv_window.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_panic_spawn_and_block() {
        let h = std::thread::spawn(|| 1u64);
        assert_eq!(h.join().unwrap(), 1);
        BuildHashMapConfig { shards: 1 }.shards.checked_sub(1).expect("shards");
    }
}
