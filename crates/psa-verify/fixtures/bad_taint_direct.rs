// psa-verify-fixture: expect(nondet-taint)
// psa-verify-fixture: expect(wall-clock)
// A phase entry that reads the host clock directly: the compute phase's
// output now depends on machine load. The token lint flags the clock read
// itself; the taint analysis additionally proves it sits on a path from a
// phase entry point, so moving it behind a helper cannot hide it.

pub fn phase_calculus(dt: f64) -> f64 {
    let t0 = std::time::Instant::now();
    integrate(dt);
    t0.elapsed().as_secs_f64()
}

fn integrate(_dt: f64) {}
