// psa-verify-fixture: expect(index-panic)
// Rank-indexed state reached from a protocol root: a peer that reports a
// rank beyond the cluster size panics the router thread. Use get_mut()
// with a typed error — or, for fabric hot paths whose indices are bounded
// by construction, a documented file-level allow(index-panic).
// psa-verify: panic-entry(route)

pub fn route(clocks: &mut [u64], r: usize) {
    bump(clocks, r);
}

fn bump(clocks: &mut [u64], r: usize) {
    clocks[r] += 1;
}
