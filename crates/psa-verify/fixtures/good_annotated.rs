// psa-verify: allow(wall-clock) — fixture: a real-time fabric file; the
// clock is its epoch and never feeds virtual time.
//
// A clean file: ordered collections, annotated clock use, fallible message
// handling, and a seeded RNG. Must produce zero violations.

use std::collections::BTreeMap;
use std::time::Instant;

pub fn epoch() -> Instant {
    Instant::now()
}

pub fn tally(ranks: &[usize]) -> BTreeMap<usize, usize> {
    let mut counts = BTreeMap::new();
    for &r in ranks {
        *counts.entry(r).or_insert(0) += 1;
    }
    counts
}

// psa-verify: allow(unordered) — scratch set, drained and sorted before use
pub fn scratch() -> std::collections::HashSet<usize> { std::collections::HashSet::new() }

pub fn handle(mailbox: Option<Vec<u8>>) -> Result<Vec<u8>, String> {
    mailbox.ok_or_else(|| "peer disconnected".to_string())
}
