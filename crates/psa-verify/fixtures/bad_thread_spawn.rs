// psa-verify-fixture: expect(thread-confinement)
// Ad-hoc thread spawns in simulation code: the scheduler decides which
// worker touches which particles first, so RNG draws (and therefore the
// animation) differ between runs and worker counts. Parallel compute must
// go through psa_core::kernel's chunk-keyed streams instead.

pub fn parallel_sum(parts: &mut [Vec<f64>]) -> f64 {
    let mut handles = Vec::new();
    for part in parts.iter_mut() {
        handles.push(std::thread::spawn(move || part.iter().sum::<f64>()));
    }
    handles.into_iter().map(|h| h.join().unwrap_or(0.0)).sum()
}

pub fn scoped_update(parts: &mut [Vec<f64>]) {
    std::thread::scope(|s| {
        for part in parts.iter_mut() {
            s.spawn(|| part.iter_mut().for_each(|v| *v += 1.0));
        }
    });
}
