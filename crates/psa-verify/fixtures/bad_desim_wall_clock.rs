// psa-verify-fixture: expect(wall-clock)
// An event loop that stamps arrivals with the host clock instead of the
// cost model's virtual time: pop order now depends on machine load, the
// heap's (time, seq) tie-break loses its meaning, and the BENCH_5 sweep
// stops replaying. Virtual time must come from WireState charge math only.

use std::time::Instant;

pub struct WallClockQueue {
    epoch: Option<Instant>,
    events: Vec<(f64, u64)>,
}

impl WallClockQueue {
    pub fn push(&mut self, seq: u64) {
        let epoch = *self.epoch.get_or_insert_with(Instant::now);
        let now = Instant::now().duration_since(epoch).as_secs_f64();
        self.events.push((now, seq));
    }
}
