// psa-verify-fixture: expect(wall-clock)
// Virtual-time code that reads the host clock: frame times now depend on
// machine load instead of the cost model, so the reproduced tables change
// from run to run.

use std::time::{Duration, Instant};

pub fn frame_cost() -> Duration {
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_millis(1));
    t0.elapsed()
}
