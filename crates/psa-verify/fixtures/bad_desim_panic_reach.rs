// psa-verify-fixture: expect(panic-reach)
// psa-verify-fixture: expect(protocol-panic)
// An event-fabric recv that unwraps its inbox pop two calls down: a link
// that never carried traffic returns None, the rank "thread" panics the
// whole single-threaded event loop, and a 1,024-rank sweep dies on the
// first idle link. Fabric entries must return typed transport errors.
// psa-verify: panic-entry(recv_event)

pub fn recv_event(inbox: &mut Vec<(f64, u64)>) -> u64 {
    pop_front_seq(inbox)
}

fn pop_front_seq(inbox: &mut Vec<(f64, u64)>) -> u64 {
    let (_time, seq) = inbox.pop().unwrap();
    seq
}
