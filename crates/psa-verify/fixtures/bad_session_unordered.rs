// psa-verify-fixture: expect(unordered-collections)
// Per-tenant in-flight accounting in a HashMap: queue promotion scans
// "each tenant" in hasher order, so which queued session gets the freed
// slot depends on the process's hash seed — two same-seed pool runs then
// dispatch different sessions first and every latency percentile drifts.
// The real pool keys its tenant tables with BTreeMap and promotes in
// queue order.

use std::collections::HashMap;

pub struct TenantTable {
    in_flight: HashMap<u32, usize>,
}

impl TenantTable {
    pub fn release(&mut self, tenant: u32) {
        if let Some(n) = self.in_flight.get_mut(&tenant) {
            *n = n.saturating_sub(1);
        }
    }

    pub fn first_idle_tenant(&self) -> Option<u32> {
        for (tenant, n) in &self.in_flight {
            if *n == 0 {
                return Some(*tenant);
            }
        }
        None
    }
}
