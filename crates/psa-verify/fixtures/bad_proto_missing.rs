// psa-verify-fixture: expect(protocol-order)
// A manager that forgets the EndOfTransmission fence after emitting new
// particles: calculators cannot tell where this frame's creation stream
// ends, so they block waiting for more particles that never come. A
// required step missing from the extracted sequence fails conformance.
// psa-verify: protocol-role(manager, manager_loop)

pub fn manager_loop(ep: &Endpoint) {
    ep.send(1, Msg::Particles { batch: emit_new() });
    match ep.recv_deadline(0) {
        Msg::Load { info, .. } => record(info),
    }
}
