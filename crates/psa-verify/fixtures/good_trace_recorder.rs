// A clean trace-recorder file, mirroring `psa-trace`: dense Vec storage
// (no hash maps), virtual timings passed in as plain numbers, and the one
// legitimate wall-clock epoch annotated for the threaded executor. Must
// produce zero violations.

use std::time::Instant;

/// Wall epoch for threaded-executor phase marks. The reading never feeds
/// virtual time; it only labels a measurement as wall-clock derived.
pub struct WallEpoch {
    start: Instant,
}

impl WallEpoch {
    pub fn begin() -> Self {
        WallEpoch { start: Instant::now() } // psa-verify: allow(wall-clock)
    }

    pub fn seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Per-rank per-phase accumulator: dense, ordered, deterministic.
pub struct PhaseRows {
    rows: Vec<[f64; 6]>,
}

impl PhaseRows {
    pub fn new(ranks: usize) -> Self {
        PhaseRows { rows: vec![[0.0; 6]; ranks] }
    }

    /// `seconds` comes from the caller's clock (virtual or annotated wall);
    /// the recorder itself never reads any clock.
    pub fn charge(&mut self, rank: usize, phase: usize, seconds: f64) {
        self.rows[rank][phase] += seconds.max(0.0);
    }

    pub fn totals(&self) -> [f64; 6] {
        let mut out = [0.0; 6];
        for row in &self.rows {
            for (acc, v) in out.iter_mut().zip(row.iter()) {
                *acc += v;
            }
        }
        out
    }
}
