// psa-verify-fixture: expect(nondet-taint)
// psa-verify-fixture: expect(ambient-rng)
// Transitive taint: the phase entry is clean, but two calls down a helper
// samples the OS entropy pool. A lexical scan of the entry file would
// never see it; the call-graph pass walks phase_exchange → jitter_all →
// seed_noise and pins the finding to the source line, naming the entry.

pub fn phase_exchange(n: usize) -> f64 {
    jitter_all(n)
}

fn jitter_all(n: usize) -> f64 {
    seed_noise() * n as f64
}

fn seed_noise() -> f64 {
    rand::random::<f64>()
}
