// psa-verify-fixture: expect(unordered-collections)
// psa-verify-fixture: expect(ambient-rng)
// psa-verify-fixture: expect(wall-clock)
// A balancer strategy written the tempting-but-wrong way: per-rank loads
// tallied in a HashMap (iteration order depends on the hasher seed, so
// the same load vector can emit transfers in a different order on the
// next run) and donor/receiver tie-breaks drawn from the wall clock and
// the thread-local RNG instead of the run's seeded `Rng64` stream. Any
// of these defects alone is enough to make same-seed runs diverge; the
// real suite in `psa-runtime/src/balancers.rs` works over index-ordered
// slices and is a pure function of its inputs.

use std::collections::HashMap;

pub struct Transfer {
    pub donor: usize,
    pub receiver: usize,
    pub amount: usize,
}

pub fn decide(loads: &[usize]) -> Vec<Transfer> {
    let mut by_rank: HashMap<usize, usize> = HashMap::new();
    for (rank, &count) in loads.iter().enumerate() {
        by_rank.insert(rank, count);
    }
    let mean = loads.iter().sum::<usize>() / loads.len().max(1);
    let mut out = Vec::new();
    for (&rank, &count) in by_rank.iter() {
        if count > mean && rank + 1 < loads.len() {
            // Coin-flip tie-breaks from the wall clock and the ambient
            // OS-seeded generator: neither can be replayed from the seed.
            let flip = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() & 1)
                .unwrap_or(0);
            let nudge = if rand::random::<bool>() { 1 } else { 0 };
            let receiver = if flip == 0 { rank + 1 } else { rank.saturating_sub(1) };
            out.push(Transfer { donor: rank, receiver, amount: (count - mean) / 2 + nudge });
        }
    }
    out
}
