// A conforming calculator frame loop, including a helper the extractor
// must inline at its call site: creation in, exchange (sends then
// receives), load report, ship. The optional dynamic-balance steps
// (Orders/NewCut/Domains) are legitimately absent — a run with balancing
// disabled still conforms. Must produce zero violations.
// psa-verify: protocol-role(calculator, frame_loop)

pub fn frame_loop(ep: &Endpoint) {
    match ep.recv_deadline(0) {
        Msg::Particles { batch, .. } => stage(batch),
    }
    match ep.recv_deadline(0) {
        Msg::EndOfTransmission { .. } => (),
    }
    exchange(ep);
    ep.send(0, Msg::Load { info: cost_info() });
    ep.send(9, Msg::RenderParticles { batch: take_render() });
}

fn exchange(ep: &Endpoint) {
    for dest in neighbors() {
        ep.send(dest, Msg::Particles { batch: outgoing_for(dest) });
    }
    for _ in neighbors() {
        match ep.recv_deadline(0) {
            Msg::Particles { batch, .. } => stage(batch),
        }
    }
}
