// psa-verify-fixture: expect(protocol-order)
// A calculator that ships its render batch BEFORE reporting Load: the
// manager's balance decision for this frame never sees this rank's cost,
// so the Figure-2 six-phase cycle silently degrades to static balancing.
// The conformance pass extracts the send/recv sequence and rejects the
// reordering against the calculator's state-machine table.
// psa-verify: protocol-role(calculator, frame_loop)

pub fn frame_loop(ep: &Endpoint) {
    match ep.recv_deadline(0) {
        Msg::Particles { batch, .. } => stage(batch),
    }
    match ep.recv_deadline(0) {
        Msg::EndOfTransmission { .. } => (),
    }
    ep.send(1, Msg::Particles { batch: take_outgoing() });
    match ep.recv_deadline(0) {
        Msg::Particles { batch, .. } => stage(batch),
    }
    ep.send(9, Msg::RenderParticles { batch: take_render() });
    ep.send(0, Msg::Load { info: cost_info() });
}
