// psa-verify-fixture: expect(ambient-rng)
// Ambient randomness: emission that samples an OS-seeded generator cannot
// be regenerated from the run's u64 seed. All randomness must flow through
// the seeded psa_math::Rng64 streams.

pub fn jitter() -> f32 {
    let mut rng = rand::thread_rng();
    rand::random::<f32>() + sample(&mut rng)
}

fn sample<R>(_rng: &mut R) -> f32 {
    0.0
}
