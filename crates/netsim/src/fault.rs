//! Deterministic fault injection for both fabrics.
//!
//! A [`FaultPlan`] is a *plan*, not a random process: it is built once from
//! a seed (always through `psa-math`'s splittable [`Rng64`] streams, never
//! ambient RNG) and then replayed. Every stochastic decision the injector
//! makes — drop this send? how much jitter? — comes from a per-directed-link
//! child stream keyed by `(plan seed, from, to)`, so the same plan wrapped
//! around the same deterministic run produces byte-identical perturbations.
//! This is the FoundationDB-style discipline: faults are part of the seed.
//!
//! Two adapters apply a plan to the two fabrics:
//!
//! * [`FaultyVirtualNet`] charges fault costs as **virtual time** on the
//!   deterministic fabric (extra delivery delay, timed-out waits);
//! * [`FaultyThreadEndpoint`] injects **real** delays and errors on the
//!   thread fabric (used by unit tests and the threaded executor's
//!   hardening tests; real time is inherently non-replayable, so the chaos
//!   matrix gates on the virtual adapter).

// psa-verify: allow(index-panic) — the plan's `ranks` and `links` tables
// are sized by the constructor from the cluster's rank count, and every
// accessor derives its index from `(from, to)` pairs the executors bound
// to 0..ranks; a wire payload never chooses an index.
use std::time::Duration;

use psa_math::Rng64;

use cluster_sim::NetworkModel;

use crate::thread_net::{ThreadEndpoint, TransportError};
use crate::virtual_net::VirtualNet;
use crate::WireSize;

/// Stream salt separating fault draws from every simulation stream.
const TAG_FAULT: u64 = 0xFA_17;

/// Per-calculator perturbations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankFault {
    /// CPU throttle: compute on this rank takes `slowdown` × as long
    /// (1.0 = healthy; the paper's heterogeneity knob turned hostile).
    pub slowdown: f64,
    /// One-shot stall: at frame `.0`, the rank freezes for `.1` virtual
    /// seconds before doing anything else.
    pub stall: Option<(u64, f64)>,
    /// Fail-stop crash: from this frame on, the rank neither computes nor
    /// sends nor receives. `None` = never crashes.
    pub crash_at: Option<u64>,
}

impl Default for RankFault {
    fn default() -> Self {
        RankFault { slowdown: 1.0, stall: None, crash_at: None }
    }
}

impl RankFault {
    /// A healthy rank (identity perturbation).
    pub fn healthy() -> Self {
        Self::default()
    }

    pub fn is_healthy(&self) -> bool {
        self.slowdown == 1.0 && self.stall.is_none() && self.crash_at.is_none()
    }
}

/// Per-directed-link perturbations.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFault {
    /// Probability a send on this link fails transiently (retriable).
    pub drop_prob: f64,
    /// Probability a delivered message is jittered.
    pub jitter_prob: f64,
    /// Maximum jitter added to a jittered delivery, seconds.
    pub max_jitter: f64,
    /// Fixed extra latency on every delivery, seconds.
    pub extra_latency: f64,
    /// Extra seconds per payload byte (bandwidth degradation).
    pub per_byte_delay: f64,
}

impl LinkFault {
    /// A link degraded relative to `model`: `bw_scale` × less bandwidth,
    /// `lat_scale` × more latency (both ≥ 1.0). Expressed as additive
    /// delays so the injector stays independent of the fabric's own cost
    /// accounting.
    pub fn degraded(model: &NetworkModel, bw_scale: f64, lat_scale: f64) -> Self {
        debug_assert!(bw_scale >= 1.0 && lat_scale >= 1.0);
        LinkFault {
            drop_prob: 0.0,
            jitter_prob: 0.0,
            max_jitter: 0.0,
            extra_latency: model.latency * (lat_scale - 1.0),
            per_byte_delay: (bw_scale - 1.0) / model.bandwidth,
        }
    }

    /// A lossy link: each send fails transiently with probability `p`.
    pub fn lossy(p: f64) -> Self {
        debug_assert!((0.0..1.0).contains(&p));
        LinkFault { drop_prob: p, ..Default::default() }
    }

    /// A jittery link: each delivery is delayed by up to `max_jitter`
    /// seconds with probability `p`.
    pub fn jittery(p: f64, max_jitter: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&p) && max_jitter >= 0.0);
        LinkFault { jitter_prob: p, max_jitter, ..Default::default() }
    }

    pub fn is_healthy(&self) -> bool {
        self == &LinkFault::default()
    }
}

/// The full description of what goes wrong in a run: one [`RankFault`] per
/// rank, one [`LinkFault`] per directed rank pair, and the seed the
/// injector's stochastic draws derive from.
///
/// Equality is structural, which is what the reproducibility tests lean on:
/// same seed + same construction ⇒ identical plan ⇒ identical faulty run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's per-link draw streams.
    pub seed: u64,
    ranks: Vec<RankFault>,
    /// Indexed `from * ranks + to`.
    links: Vec<LinkFault>,
}

impl FaultPlan {
    /// A quiet plan over `ranks` ranks: nothing fails.
    pub fn none(seed: u64, ranks: usize) -> Self {
        FaultPlan {
            seed,
            ranks: vec![RankFault::default(); ranks],
            links: vec![LinkFault::default(); ranks * ranks],
        }
    }

    pub fn ranks(&self) -> usize {
        self.ranks.len()
    }

    pub fn rank(&self, r: usize) -> &RankFault {
        &self.ranks[r]
    }

    pub fn rank_mut(&mut self, r: usize) -> &mut RankFault {
        &mut self.ranks[r]
    }

    pub fn link(&self, from: usize, to: usize) -> &LinkFault {
        &self.links[from * self.ranks.len() + to]
    }

    pub fn link_mut(&mut self, from: usize, to: usize) -> &mut LinkFault {
        &mut self.links[from * self.ranks.len() + to]
    }

    /// Apply `fault` to every directed link touching `rank` (both ways).
    pub fn set_links_of(&mut self, rank: usize, fault: LinkFault) {
        for other in 0..self.ranks() {
            if other != rank {
                *self.link_mut(rank, other) = fault;
                *self.link_mut(other, rank) = fault;
            }
        }
    }

    /// Apply `fault` to every directed link in the fabric.
    pub fn set_all_links(&mut self, fault: LinkFault) {
        self.links.fill(fault);
    }

    /// True when the plan perturbs nothing.
    pub fn is_quiet(&self) -> bool {
        self.ranks.iter().all(RankFault::is_healthy) && self.links.iter().all(LinkFault::is_healthy)
    }
}

/// What the injector decided about one send.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SendFate {
    /// Deliver, with this much extra delay (0.0 = untouched).
    Deliver { extra_delay: f64 },
    /// Reject transiently; the caller may retry.
    FailTransient,
}

/// The injection point both fabric adapters share.
///
/// `on_send` may consume entropy (it takes `&mut self`); the read-only
/// queries never do, so call order of the queries cannot perturb a replay.
pub trait FaultInjector {
    /// Decide the fate of a `bytes`-byte send from `from` to `to`.
    fn on_send(&mut self, from: usize, to: usize, bytes: u64) -> SendFate;

    /// CPU throttle for `rank` (compute takes this × as long; 1.0 = none).
    fn compute_factor(&self, _rank: usize) -> f64 {
        1.0
    }

    /// One-shot stall charged to `rank` at `frame`, seconds.
    fn stall_seconds(&self, _rank: usize, _frame: u64) -> f64 {
        0.0
    }

    /// Frame at which `rank` fail-stops, if ever.
    fn crash_frame(&self, _rank: usize) -> Option<u64> {
        None
    }

    /// Raw states of the injector's draw streams, for checkpointing. The
    /// plan itself is construction-time configuration and is *not* captured;
    /// only the mutable stream cursors are. Stateless injectors return an
    /// empty vec.
    fn stream_states(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Rewind the injector's draw streams to previously captured states.
    /// Must accept exactly what [`stream_states`](Self::stream_states)
    /// produced for an injector of the same shape.
    fn restore_stream_states(&mut self, _states: &[u64]) {}
}

/// An injector that never injects anything (the identity adapter).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn on_send(&mut self, _from: usize, _to: usize, _bytes: u64) -> SendFate {
        SendFate::Deliver { extra_delay: 0.0 }
    }
}

/// Executes a [`FaultPlan`]: every probabilistic decision draws from a
/// dedicated per-directed-link `Rng64` stream derived from the plan seed,
/// so two injectors built from equal plans make identical decisions in
/// identical call order.
#[derive(Clone, Debug)]
pub struct PlanInjector {
    plan: FaultPlan,
    /// One draw stream per directed link, indexed `from * ranks + to`.
    streams: Vec<Rng64>,
}

/// Uniform f64 in `[0, 1)` with 53 mantissa bits (probabilities need more
/// resolution than the f32 `unit()` offers).
fn unit64(rng: &mut Rng64) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl PlanInjector {
    pub fn new(plan: FaultPlan) -> Self {
        let n = plan.ranks();
        let root = Rng64::new(plan.seed).split(TAG_FAULT);
        let streams =
            (0..n * n).map(|i| root.split((i / n) as u64).split((i % n) as u64)).collect();
        PlanInjector { plan, streams }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FaultInjector for PlanInjector {
    fn on_send(&mut self, from: usize, to: usize, bytes: u64) -> SendFate {
        let n = self.plan.ranks();
        let link = *self.plan.link(from, to);
        if link.is_healthy() {
            return SendFate::Deliver { extra_delay: 0.0 };
        }
        let stream = &mut self.streams[from * n + to];
        if link.drop_prob > 0.0 && unit64(stream) < link.drop_prob {
            return SendFate::FailTransient;
        }
        let mut delay = link.extra_latency + link.per_byte_delay * bytes as f64;
        if link.jitter_prob > 0.0 && unit64(stream) < link.jitter_prob {
            delay += unit64(stream) * link.max_jitter;
        }
        SendFate::Deliver { extra_delay: delay }
    }

    fn compute_factor(&self, rank: usize) -> f64 {
        self.plan.rank(rank).slowdown
    }

    fn stall_seconds(&self, rank: usize, frame: u64) -> f64 {
        match self.plan.rank(rank).stall {
            Some((at, secs)) if at == frame => secs,
            _ => 0.0,
        }
    }

    fn crash_frame(&self, rank: usize) -> Option<u64> {
        self.plan.rank(rank).crash_at
    }

    fn stream_states(&self) -> Vec<u64> {
        self.streams.iter().map(Rng64::state).collect()
    }

    fn restore_stream_states(&mut self, states: &[u64]) {
        assert_eq!(states.len(), self.streams.len(), "injector stream count mismatch");
        for (s, &st) in self.streams.iter_mut().zip(states) {
            *s = Rng64::new(st);
        }
    }
}

/// Retry/timeout policy the protocol-hardening layer runs under. All times
/// are **virtual seconds** on the deterministic fabric (the threaded
/// executor maps its own wall-clock deadline from `RunConfig`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPolicy {
    /// Total attempts per logical send (first try + retries).
    pub send_attempts: u32,
    /// Backoff charged before retry `k` is `backoff × 2^k` seconds.
    pub backoff: f64,
    /// Virtual seconds a timed-out deterministic receive charges.
    pub recv_wait: f64,
    /// Consecutive missed load reports before a rank is declared dead.
    pub dead_after: u32,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy { send_attempts: 6, backoff: 50.0e-6, recv_wait: 2.0e-3, dead_after: 3 }
    }
}

/// A send the injector rejected: the message comes back to the caller so a
/// retry needs no `Clone`.
#[derive(Debug)]
pub struct FailedSend<M> {
    pub msg: M,
    pub error: TransportError,
}

/// [`VirtualNet`] with a [`FaultInjector`] in front of every send. Fault
/// costs are charged as virtual time, keeping faulty runs bit-replayable.
pub struct FaultyVirtualNet<M, I> {
    net: VirtualNet<M>,
    inj: I,
}

impl<M: WireSize, I: FaultInjector> FaultyVirtualNet<M, I> {
    pub fn new(net: VirtualNet<M>, inj: I) -> Self {
        FaultyVirtualNet { net, inj }
    }

    /// Send through the injector: a transiently-failed send returns the
    /// message (the sender is *not* charged wire time for it — the failure
    /// models a NIC/queue rejection before occupancy).
    pub fn send(&mut self, from: usize, to: usize, msg: M) -> Result<(), FailedSend<M>> {
        match self.inj.on_send(from, to, msg.wire_bytes()) {
            SendFate::Deliver { extra_delay } => {
                self.net.send_delayed(from, to, msg, extra_delay);
                Ok(())
            }
            SendFate::FailTransient => {
                Err(FailedSend { msg, error: TransportError::SendFailed { rank: from, peer: to } })
            }
        }
    }

    pub fn recv(&mut self, to: usize, from: usize) -> Result<M, TransportError> {
        // Delegates to the *virtual* fabric's recv: an empty queue is an
        // immediate `NoMessage`, never a hang; `recv_deadline` below is for
        // charging bounded waits.
        // psa-verify: allow(unbounded-recv) — non-blocking virtual recv
        self.net.recv(to, from)
    }

    pub fn recv_deadline(
        &mut self,
        to: usize,
        from: usize,
        wait: f64,
    ) -> Result<M, TransportError> {
        self.net.recv_deadline(to, from, wait)
    }

    pub fn take_queued(&mut self, to: usize, from: usize) -> Vec<M> {
        self.net.take_queued(to, from)
    }

    pub fn has_message(&self, to: usize, from: usize) -> bool {
        self.net.has_message(to, from)
    }

    /// Senders with traffic queued toward `to` — see
    /// [`VirtualNet::queued_senders`].
    pub fn queued_senders(&self, to: usize) -> Vec<usize> {
        self.net.queued_senders(to)
    }

    pub fn now(&self, rank: usize) -> f64 {
        self.net.now(rank)
    }

    pub fn advance(&mut self, rank: usize, seconds: f64) {
        self.net.advance(rank, seconds);
    }

    /// Compute charge for `rank`: `seconds` scaled by the injector's CPU
    /// throttle for that rank.
    pub fn advance_compute(&mut self, rank: usize, seconds: f64) {
        let f = self.inj.compute_factor(rank);
        self.net.advance(rank, seconds * f);
    }

    pub fn barrier(&mut self, ranks: &[usize]) {
        self.net.barrier(ranks);
    }

    pub fn makespan(&self) -> f64 {
        self.net.makespan()
    }

    pub fn ranks(&self) -> usize {
        self.net.ranks()
    }

    pub fn stats(&self) -> crate::TrafficStats {
        self.net.stats()
    }

    /// One rank's *sent* traffic — see [`VirtualNet::rank_stats`].
    pub fn rank_stats(&self, rank: usize) -> crate::TrafficStats {
        self.net.rank_stats(rank)
    }

    pub fn reset_stats(&mut self) {
        self.net.reset_stats();
    }

    pub fn model(&self) -> &NetworkModel {
        self.net.model()
    }

    pub fn injector(&self) -> &I {
        &self.inj
    }

    pub fn injector_mut(&mut self) -> &mut I {
        &mut self.inj
    }

    pub fn inner(&self) -> &VirtualNet<M> {
        &self.net
    }

    pub fn inner_mut(&mut self) -> &mut VirtualNet<M> {
        &mut self.net
    }

    /// Capture the fabric's mutable state: the wire checkpoint plus the
    /// injector's draw-stream cursors (see [`VirtualNet::wire_checkpoint`]
    /// for why message queues are deliberately excluded).
    pub fn fabric_checkpoint(&self) -> (crate::virtual_net::WireCheckpoint, Vec<u64>) {
        (self.net.wire_checkpoint(), self.inj.stream_states())
    }

    /// Rewind wire and injector streams to a captured checkpoint, dropping
    /// any queued messages.
    pub fn restore_fabric(&mut self, wire: &crate::virtual_net::WireCheckpoint, streams: &[u64]) {
        self.net.restore_wire(wire);
        self.inj.restore_stream_states(streams);
    }
}

/// [`ThreadEndpoint`] with a [`FaultInjector`] in front of every send.
/// Delays here are *real* (the calling thread sleeps), so this adapter is
/// for hardening tests, not for replay-gated determinism.
#[derive(Debug)]
pub struct FaultyThreadEndpoint<M, I> {
    ep: ThreadEndpoint<M>,
    inj: I,
}

impl<M: Send + WireSize, I: FaultInjector> FaultyThreadEndpoint<M, I> {
    pub fn new(ep: ThreadEndpoint<M>, inj: I) -> Self {
        FaultyThreadEndpoint { ep, inj }
    }

    pub fn rank(&self) -> usize {
        self.ep.rank()
    }

    pub fn ranks(&self) -> usize {
        self.ep.ranks()
    }

    pub fn send(&mut self, to: usize, msg: M) -> Result<(), FailedSend<M>> {
        let rank = self.ep.rank();
        match self.inj.on_send(rank, to, msg.wire_bytes()) {
            SendFate::Deliver { extra_delay } => {
                if extra_delay > 0.0 {
                    // psa-verify: allow(wall-clock) — injects real delay on the real-time fabric
                    std::thread::sleep(Duration::from_secs_f64(extra_delay));
                }
                self.ep.send_reclaim(to, msg).map_err(|(msg, error)| FailedSend { msg, error })
            }
            SendFate::FailTransient => {
                Err(FailedSend { msg, error: TransportError::SendFailed { rank, peer: to } })
            }
        }
    }

    /// Bounded receive — the only receive this adapter offers, so code
    /// written against it cannot hang on a lost peer.
    pub fn recv_deadline(&self, from: usize, timeout: Duration) -> Result<M, TransportError> {
        self.ep.recv_deadline(from, timeout)
    }

    pub fn try_recv(&self, from: usize) -> Result<Option<M>, TransportError> {
        self.ep.try_recv(from)
    }

    pub fn now(&self) -> f64 {
        self.ep.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadNet;
    use cluster_sim::NetworkModel;

    #[derive(Debug, PartialEq)]
    struct Blob(u64);

    impl WireSize for Blob {
        fn wire_bytes(&self) -> u64 {
            self.0
        }
    }

    fn lossy_plan(p: f64) -> FaultPlan {
        let mut plan = FaultPlan::none(7, 2);
        *plan.link_mut(0, 1) = LinkFault::lossy(p);
        plan
    }

    #[test]
    fn equal_plans_make_identical_decisions() {
        let mut a = PlanInjector::new(lossy_plan(0.5));
        let mut b = PlanInjector::new(lossy_plan(0.5));
        let fates_a: Vec<_> = (0..256).map(|i| a.on_send(0, 1, i)).collect();
        let fates_b: Vec<_> = (0..256).map(|i| b.on_send(0, 1, i)).collect();
        assert_eq!(fates_a, fates_b);
        assert!(fates_a.contains(&SendFate::FailTransient));
        assert!(fates_a.iter().any(|f| matches!(f, SendFate::Deliver { .. })));
    }

    #[test]
    fn different_seeds_make_different_decisions() {
        let mut plan_b = lossy_plan(0.5);
        plan_b.seed = 8;
        let mut a = PlanInjector::new(lossy_plan(0.5));
        let mut b = PlanInjector::new(plan_b);
        let fates_a: Vec<_> = (0..256).map(|_| a.on_send(0, 1, 100)).collect();
        let fates_b: Vec<_> = (0..256).map(|_| b.on_send(0, 1, 100)).collect();
        assert_ne!(fates_a, fates_b);
    }

    #[test]
    fn healthy_links_draw_no_entropy() {
        // A quiet link must not consume stream state: fault decisions on
        // other links stay identical whether or not quiet sends interleave.
        let mut a = PlanInjector::new(lossy_plan(0.5));
        let mut b = PlanInjector::new(lossy_plan(0.5));
        let fa: Vec<_> = (0..64)
            .map(|_| {
                let _ = a.on_send(1, 0, 9); // healthy direction
                a.on_send(0, 1, 9)
            })
            .collect();
        let fb: Vec<_> = (0..64).map(|_| b.on_send(0, 1, 9)).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn degraded_link_delay_math() {
        let model = NetworkModel::myrinet();
        let f = LinkFault::degraded(&model, 4.0, 3.0);
        // 3× latency = base + 2× extra; 4× slower wire = 3 extra
        // occupancies per byte.
        assert!((f.extra_latency - model.latency * 2.0).abs() < 1e-15);
        assert!((f.per_byte_delay - 3.0 / model.bandwidth).abs() < 1e-15);
        let mut inj = PlanInjector::new({
            let mut p = FaultPlan::none(1, 2);
            *p.link_mut(0, 1) = f;
            p
        });
        match inj.on_send(0, 1, 1000) {
            SendFate::Deliver { extra_delay } => {
                let want = f.extra_latency + f.per_byte_delay * 1000.0;
                assert!((extra_delay - want).abs() < 1e-15);
            }
            SendFate::FailTransient => panic!("degraded links do not drop"),
        }
    }

    #[test]
    fn faulty_virtual_net_charges_extra_delay() {
        let mut plan = FaultPlan::none(3, 2);
        plan.link_mut(0, 1).extra_latency = 0.5;
        let net: VirtualNet<Blob> = VirtualNet::new(NetworkModel::myrinet(), vec![0, 1], 2);
        let mut faulty = FaultyVirtualNet::new(net, PlanInjector::new(plan));
        faulty.send(0, 1, Blob(64)).map_err(|f| f.error).unwrap();
        faulty.recv(1, 0).unwrap();
        assert!(faulty.now(1) >= 0.5, "extra latency must reach the receiver clock");
    }

    #[test]
    fn faulty_virtual_net_returns_message_on_transient_failure() {
        let mut plan = FaultPlan::none(11, 2);
        *plan.link_mut(0, 1) = LinkFault::lossy(0.999_999);
        let net: VirtualNet<Blob> = VirtualNet::new(NetworkModel::myrinet(), vec![0, 1], 2);
        let mut faulty = FaultyVirtualNet::new(net, PlanInjector::new(plan));
        let failed = faulty.send(0, 1, Blob(42)).expect_err("p≈1 must drop");
        assert_eq!(failed.msg, Blob(42));
        assert_eq!(failed.error, TransportError::SendFailed { rank: 0, peer: 1 });
        assert_eq!(faulty.stats().messages, 0, "failed sends put nothing on the wire");
    }

    #[test]
    fn compute_factor_scales_advance() {
        let mut plan = FaultPlan::none(0, 2);
        plan.rank_mut(1).slowdown = 3.0;
        let net: VirtualNet<Blob> = VirtualNet::new(NetworkModel::myrinet(), vec![0, 1], 2);
        let mut faulty = FaultyVirtualNet::new(net, PlanInjector::new(plan));
        faulty.advance_compute(0, 1.0);
        faulty.advance_compute(1, 1.0);
        assert_eq!(faulty.now(0), 1.0);
        assert_eq!(faulty.now(1), 3.0);
    }

    #[test]
    fn stall_and_crash_lookups() {
        let mut plan = FaultPlan::none(0, 3);
        plan.rank_mut(1).stall = Some((5, 2.0));
        plan.rank_mut(2).crash_at = Some(20);
        let inj = PlanInjector::new(plan);
        assert_eq!(inj.stall_seconds(1, 4), 0.0);
        assert_eq!(inj.stall_seconds(1, 5), 2.0);
        assert_eq!(inj.stall_seconds(1, 6), 0.0);
        assert_eq!(inj.crash_frame(2), Some(20));
        assert_eq!(inj.crash_frame(0), None);
    }

    #[test]
    fn faulty_thread_endpoint_rejects_transiently() {
        let mut plan = FaultPlan::none(3, 2);
        *plan.link_mut(0, 1) = LinkFault::lossy(0.999_999);
        let mut eps = ThreadNet::build::<Vec<u8>>(2).into_iter();
        let e0 = eps.next().unwrap();
        let _e1 = eps.next().unwrap();
        let mut faulty = FaultyThreadEndpoint::new(e0, PlanInjector::new(plan));
        let failed = faulty.send(1, vec![1, 2, 3]).expect_err("p≈1 must drop");
        assert_eq!(failed.msg, vec![1, 2, 3]);
        assert_eq!(failed.error, TransportError::SendFailed { rank: 0, peer: 1 });
    }

    #[test]
    fn stream_states_checkpoint_and_resume_fates_exactly() {
        let mut live = PlanInjector::new(lossy_plan(0.5));
        for i in 0..37 {
            let _ = live.on_send(0, 1, i);
        }
        let states = live.stream_states();
        let tail: Vec<_> = (0..64).map(|i| live.on_send(0, 1, i)).collect();
        // Rewind a diverged twin back to the captured cursor: the fate
        // sequence from that point must repeat bit-for-bit.
        let mut twin = PlanInjector::new(lossy_plan(0.5));
        for _ in 0..99 {
            let _ = twin.on_send(0, 1, 5);
        }
        twin.restore_stream_states(&states);
        let replay: Vec<_> = (0..64).map(|i| twin.on_send(0, 1, i)).collect();
        assert_eq!(tail, replay);
    }

    #[test]
    fn quiet_plan_is_quiet() {
        assert!(FaultPlan::none(0, 4).is_quiet());
        let mut p = FaultPlan::none(0, 4);
        p.rank_mut(2).crash_at = Some(1);
        assert!(!p.is_quiet());
        let mut q = FaultPlan::none(0, 4);
        q.set_links_of(1, LinkFault::lossy(0.1));
        assert!(!q.is_quiet());
        assert_eq!(q.link(1, 3).drop_prob, 0.1);
        assert_eq!(q.link(3, 1).drop_prob, 0.1);
        assert_eq!(q.link(0, 2).drop_prob, 0.0);
    }
}
