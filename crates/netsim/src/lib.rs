//! Message-passing transports for the animation model.
//!
//! Two fabrics share one message vocabulary:
//!
//! * [`VirtualNet`] — a deterministic, single-threaded fabric with per-rank
//!   virtual clocks and a network cost model from `cluster-sim`. The
//!   virtual-time executor in `psa-runtime` interleaves rank execution
//!   itself and uses this fabric to account for every byte the paper's
//!   protocol would put on Myrinet or Fast-Ethernet. Determinism is total:
//!   same seed, same tables.
//! * [`ThreadNet`] — a channel-per-pair SPMD fabric for running the same
//!   protocol on real host threads with wall-clock timing (the
//!   demonstration that the library actually parallelizes, not only
//!   simulates).
//!
//! Messages implement [`WireSize`] so the virtual fabric can charge
//! occupancy without serializing anything.

pub mod collectives;
pub mod fault;
pub mod thread_net;
pub mod virtual_net;

pub use collectives::{all_to_all, broadcast, gather, reduce};
pub use fault::{
    FailedSend, FaultInjector, FaultPlan, FaultPolicy, FaultyThreadEndpoint, FaultyVirtualNet,
    LinkFault, NoFaults, PlanInjector, RankFault, SendFate,
};
pub use thread_net::{ThreadEndpoint, ThreadNet, TransportError};
pub use virtual_net::{TrafficStats, VirtualNet, WireCheckpoint, WireState};

/// Bytes a message would occupy on the wire.
///
/// Implementations should report *payload* bytes; the fabric adds protocol
/// framing itself.
pub trait WireSize {
    fn wire_bytes(&self) -> u64;
}

/// Fixed framing overhead charged per message (headers, MPI envelope).
pub const FRAME_OVERHEAD_BYTES: u64 = 64;

impl WireSize for () {
    fn wire_bytes(&self) -> u64 {
        0
    }
}

impl WireSize for Vec<u8> {
    fn wire_bytes(&self) -> u64 {
        self.len() as u64
    }
}
