//! The deterministic virtual fabric.
//!
//! Each rank has a virtual clock. Compute advances a clock directly; a send
//! occupies the sender until the message leaves its NIC (blocking send),
//! occupies the involved links per the `NetworkModel`, and is stamped with
//! a delivery time; a receive advances the receiver's clock to at least the
//! delivery stamp. A barrier aligns every clock to the maximum plus a
//! log₂-depth synchronization cost.
//!
//! The timing arithmetic lives in [`WireState`] so that every virtual
//! transport — the per-pair-queue [`VirtualNet`] here and the event-heap
//! fabric in `psa-desim` — charges byte-for-byte identical costs: one
//! implementation of clocks, link occupancy, topology-aware latency, and
//! traffic counters, two message-delivery disciplines on top.
//!
//! The fabric is intentionally **not** thread-safe: the virtual-time
//! executor interleaves ranks itself in a fixed order, which is what makes
//! the reproduction bit-deterministic.

// psa-verify: allow(index-panic) — fabric hot path: every rank/node index
// comes from the constructor-validated topology (`new` sizes clocks,
// rank_stats, node_of, link_free, and queues to `ranks`/`nodes`), and the
// executors address ranks 0..ranks by construction. Out-of-range here is a
// checker-caught bug upstream, not a runtime input.
use std::collections::VecDeque;

use cluster_sim::NetworkModel;

use crate::{TransportError, WireSize, FRAME_OVERHEAD_BYTES};

/// Aggregate traffic counters (resettable, e.g. per frame).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrafficStats {
    pub messages: u64,
    pub payload_bytes: u64,
}

/// The clock-and-link half of a virtual fabric: per-rank virtual clocks,
/// per-node NIC occupancy (or a shared medium), topology-aware latency, and
/// traffic counters. Owns no message queues — callers decide how delivery
/// stamps turn into deliveries ([`VirtualNet`] uses per-pair FIFO queues;
/// the event-driven fabric uses a global (time, seq) heap).
pub struct WireState {
    net: NetworkModel,
    /// Virtual clock per rank, seconds.
    clocks: Vec<f64>,
    /// Node hosting each rank (link contention granularity).
    node_of: Vec<usize>,
    /// Time each node's NIC becomes free.
    link_free: Vec<f64>,
    /// Time the shared medium becomes free (Fast-Ethernet mode).
    shared_free: f64,
    stats: TrafficStats,
    /// Per-sender traffic counters (endpoint-layer accounting for the
    /// observability stack; same reset cadence as `stats`).
    rank_stats: Vec<TrafficStats>,
}

impl WireState {
    /// Create the clock state for ranks living on the given nodes.
    /// `node_of[rank]` maps each rank to its node index.
    pub fn new(net: NetworkModel, node_of: Vec<usize>, node_count: usize) -> Self {
        let ranks = node_of.len();
        assert!(ranks > 0);
        assert!(node_of.iter().all(|&n| n < node_count));
        WireState {
            net,
            clocks: vec![0.0; ranks],
            node_of,
            link_free: vec![0.0; node_count],
            shared_free: 0.0,
            stats: TrafficStats::default(),
            rank_stats: vec![TrafficStats::default(); ranks],
        }
    }

    pub fn ranks(&self) -> usize {
        self.clocks.len()
    }

    /// Current virtual time of `rank`.
    pub fn now(&self, rank: usize) -> f64 {
        self.clocks[rank]
    }

    /// Charge `seconds` of local compute to `rank`.
    pub fn advance(&mut self, rank: usize, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot advance time backwards ({seconds})");
        self.clocks[rank] += seconds;
    }

    /// Charge the full sender-side cost of one message of `payload` bytes
    /// from `from` to `to` and return its delivery stamp. This is the
    /// single implementation of the send timing model: counters, sender CPU,
    /// link/medium occupancy (the sender blocks until NIC hand-off), and
    /// topology-aware latency. Local (same-rank) and intra-node sends skip
    /// the NIC, exactly as before the extraction.
    pub fn charge_send(&mut self, from: usize, to: usize, payload: u64, extra_delay: f64) -> f64 {
        debug_assert!(extra_delay >= 0.0, "delays cannot be negative ({extra_delay})");
        self.stats.messages += 1;
        self.stats.payload_bytes += payload;
        self.rank_stats[from].messages += 1;
        self.rank_stats[from].payload_bytes += payload;
        if from == to {
            return self.clocks[from] + extra_delay;
        }
        let bytes = payload + FRAME_OVERHEAD_BYTES;
        // Sender CPU cost of initiating the message.
        self.clocks[from] += self.net.per_message_cpu;
        let occupancy = self.net.occupancy(bytes);
        let (src, dst) = (self.node_of[from], self.node_of[to]);
        let start = if self.net.shared_medium {
            self.shared_free.max(self.clocks[from])
        } else {
            if src == dst {
                // intra-node: memory copy, no NIC involvement; charge a
                // fraction of wire occupancy for the copy itself.
                let t = self.clocks[from] + occupancy * 0.1;
                self.clocks[from] = t;
                return t + extra_delay;
            }
            self.clocks[from].max(self.link_free[src]).max(self.link_free[dst])
        };
        let done = start + occupancy;
        if self.net.shared_medium {
            self.shared_free = done;
        } else {
            self.link_free[src] = done;
            self.link_free[dst] = done;
        }
        // Blocking semantics: the sender is busy until its NIC hand-off
        // completes.
        self.clocks[from] = done;
        done + self.net.latency_between(src, dst) + extra_delay
    }

    /// Advance `to`'s clock to a message's delivery stamp if it is still
    /// behind it; returns whether the clock moved (a fast-forward past idle
    /// virtual time).
    pub fn observe_delivery(&mut self, to: usize, deliver_at: f64) -> bool {
        if deliver_at > self.clocks[to] {
            self.clocks[to] = deliver_at;
            true
        } else {
            false
        }
    }

    /// Synchronize a set of ranks: all clocks advance to the maximum plus a
    /// dissemination-barrier cost of `latency × ⌈log₂ n⌉`.
    pub fn barrier(&mut self, ranks: &[usize]) {
        let max = ranks.iter().map(|&r| self.clocks[r]).fold(f64::NEG_INFINITY, f64::max);
        let depth = (ranks.len() as f64).log2().ceil().max(0.0);
        let t = max + self.net.latency * depth;
        for &r in ranks {
            self.clocks[r] = t;
        }
    }

    /// Maximum clock across all ranks — the virtual makespan.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().copied().fold(0.0, f64::max)
    }

    /// Snapshot of traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Snapshot of one rank's *sent* traffic (endpoint-layer attribution:
    /// a message is charged to the sender that initiated it).
    pub fn rank_stats(&self, rank: usize) -> TrafficStats {
        self.rank_stats[rank]
    }

    /// Reset traffic counters (per-frame accounting).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::default();
        self.rank_stats.fill(TrafficStats::default());
    }

    /// The network model in use.
    pub fn model(&self) -> &NetworkModel {
        &self.net
    }

    /// Capture every mutable field of the wire — clocks, NIC/medium
    /// occupancy, traffic counters — into a [`WireCheckpoint`]. The network
    /// model and rank→node placement are construction constants and are
    /// *not* captured: a checkpoint only makes sense against a fabric built
    /// from the same topology, which [`restore_checkpoint`] asserts.
    ///
    /// [`restore_checkpoint`]: Self::restore_checkpoint
    pub fn checkpoint(&self) -> WireCheckpoint {
        WireCheckpoint {
            clocks: self.clocks.clone(),
            link_free: self.link_free.clone(),
            shared_free: self.shared_free,
            stats: self.stats,
            rank_stats: self.rank_stats.clone(),
        }
    }

    /// Rewind the wire to a previously captured [`WireCheckpoint`].
    ///
    /// Panics if the checkpoint's rank/node shape does not match this
    /// wire's — restoring across topologies is always a caller bug.
    pub fn restore_checkpoint(&mut self, ck: &WireCheckpoint) {
        assert_eq!(ck.clocks.len(), self.clocks.len(), "checkpoint rank count mismatch");
        assert_eq!(ck.link_free.len(), self.link_free.len(), "checkpoint node count mismatch");
        self.clocks.copy_from_slice(&ck.clocks);
        self.link_free.copy_from_slice(&ck.link_free);
        self.shared_free = ck.shared_free;
        self.stats = ck.stats;
        self.rank_stats.copy_from_slice(&ck.rank_stats);
    }
}

/// The mutable half of a [`WireState`], captured at a point in virtual
/// time: per-rank clocks, per-node NIC occupancy, the shared-medium cursor,
/// and both layers of traffic counters. Produced by
/// [`WireState::checkpoint`], consumed by [`WireState::restore_checkpoint`].
#[derive(Clone, Debug, PartialEq)]
pub struct WireCheckpoint {
    /// Virtual clock per rank, seconds.
    pub clocks: Vec<f64>,
    /// Time each node's NIC becomes free.
    pub link_free: Vec<f64>,
    /// Time the shared medium becomes free (Fast-Ethernet mode).
    pub shared_free: f64,
    /// Aggregate traffic counters at capture time.
    pub stats: TrafficStats,
    /// Per-sender traffic counters at capture time.
    pub rank_stats: Vec<TrafficStats>,
}

struct Envelope<M> {
    deliver_at: f64,
    msg: M,
}

/// Deterministic virtual message fabric over `R` ranks placed on nodes.
pub struct VirtualNet<M> {
    wire: WireState,
    /// queues[to * ranks + from]
    queues: Vec<VecDeque<Envelope<M>>>,
}

impl<M: WireSize> VirtualNet<M> {
    /// Create a fabric for ranks living on the given nodes.
    /// `node_of[rank]` maps each rank to its node index.
    pub fn new(net: NetworkModel, node_of: Vec<usize>, node_count: usize) -> Self {
        let ranks = node_of.len();
        VirtualNet {
            wire: WireState::new(net, node_of, node_count),
            queues: (0..ranks * ranks).map(|_| VecDeque::new()).collect(),
        }
    }

    pub fn ranks(&self) -> usize {
        self.wire.ranks()
    }

    /// Current virtual time of `rank`.
    pub fn now(&self, rank: usize) -> f64 {
        self.wire.now(rank)
    }

    /// Charge `seconds` of local compute to `rank`.
    pub fn advance(&mut self, rank: usize, seconds: f64) {
        self.wire.advance(rank, seconds);
    }

    /// Blocking send of `msg` from `from` to `to`.
    ///
    /// Local (same-rank) sends are free of wire costs but still pass
    /// through the queue, so protocol code does not special-case them.
    pub fn send(&mut self, from: usize, to: usize, msg: M) {
        self.send_delayed(from, to, msg, 0.0);
    }

    /// [`send`](Self::send) with `extra_delay` virtual seconds added to the
    /// delivery stamp — the hook fault injection uses for message jitter
    /// and degraded links. The sender is *not* occupied by the extra delay
    /// (it models in-flight perturbation, not NIC time).
    pub fn send_delayed(&mut self, from: usize, to: usize, msg: M, extra_delay: f64) {
        let deliver_at = self.wire.charge_send(from, to, msg.wire_bytes(), extra_delay);
        let r = self.wire.ranks();
        self.queues[to * r + from].push_back(Envelope { deliver_at, msg });
    }

    /// Receive the next message sent from `from` to `to`.
    ///
    /// Returns [`TransportError::NoMessage`] if nothing is queued — under
    /// the deterministic executor a missing message is a protocol bug, not
    /// a timing race, and the caller decides how to surface it.
    pub fn recv(&mut self, to: usize, from: usize) -> Result<M, TransportError> {
        let r = self.wire.ranks();
        let env = self.queues[to * r + from]
            .pop_front()
            .ok_or(TransportError::NoMessage { rank: to, peer: from })?;
        self.wire.observe_delivery(to, env.deliver_at);
        Ok(env.msg)
    }

    /// Receive with a deadline: like [`recv`](Self::recv), but an empty
    /// queue charges `wait` virtual seconds to `to` and returns
    /// [`TransportError::Timeout`] instead of `NoMessage`.
    ///
    /// Under the deterministic executor every receive happens at a schedule
    /// point where the message either is queued or never will be, so the
    /// deadline does not poll — it models the time a real endpoint would
    /// burn discovering that a peer went silent.
    pub fn recv_deadline(
        &mut self,
        to: usize,
        from: usize,
        wait: f64,
    ) -> Result<M, TransportError> {
        debug_assert!(wait >= 0.0, "deadline waits cannot be negative ({wait})");
        if !self.has_message(to, from) {
            self.wire.advance(to, wait);
            return Err(TransportError::Timeout { rank: to, peer: from });
        }
        self.recv(to, from)
    }

    /// Drain every queued message from `from` to `to` without touching any
    /// clock — used to confiscate the in-flight traffic of a rank that has
    /// been declared dead, so its particles can be counted as lost instead
    /// of rotting in a queue.
    pub fn take_queued(&mut self, to: usize, from: usize) -> Vec<M> {
        let r = self.wire.ranks();
        self.queues[to * r + from].drain(..).map(|e| e.msg).collect()
    }

    /// Whether a message from `from` to `to` is queued.
    pub fn has_message(&self, to: usize, from: usize) -> bool {
        !self.queues[to * self.wire.ranks() + from].is_empty()
    }

    /// The senders with at least one message queued toward `to`, in rank
    /// order — lets a receiver drain exactly the traffic that exists
    /// instead of polling all `ranks` peers (sparse exchange at scale).
    pub fn queued_senders(&self, to: usize) -> Vec<usize> {
        let r = self.wire.ranks();
        (0..r).filter(|&from| !self.queues[to * r + from].is_empty()).collect()
    }

    /// Synchronize a set of ranks: all clocks advance to the maximum plus a
    /// dissemination-barrier cost of `latency × ⌈log₂ n⌉`.
    pub fn barrier(&mut self, ranks: &[usize]) {
        self.wire.barrier(ranks);
    }

    /// Maximum clock across all ranks — the virtual makespan.
    pub fn makespan(&self) -> f64 {
        self.wire.makespan()
    }

    /// Snapshot of traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.wire.stats()
    }

    /// Snapshot of one rank's *sent* traffic (endpoint-layer attribution:
    /// a message is charged to the sender that initiated it).
    pub fn rank_stats(&self, rank: usize) -> TrafficStats {
        self.wire.rank_stats(rank)
    }

    /// Reset traffic counters (per-frame accounting).
    pub fn reset_stats(&mut self) {
        self.wire.reset_stats();
    }

    /// The network model in use.
    pub fn model(&self) -> &NetworkModel {
        self.wire.model()
    }

    /// Capture the wire's mutable state (clocks, occupancy, counters).
    ///
    /// The fabric's message queues are *not* part of a checkpoint. At a
    /// frame boundary every healthy link is drained by the protocol's
    /// lock-step schedule; the one exception is traffic queued toward a
    /// crashed-but-undeclared rank, and dropping it is *correct* by
    /// design — a later death declaration would purge those queues, and a
    /// recovery rolls back to before the sends happened and replays them.
    /// [`restore_wire`](Self::restore_wire) therefore clears all queues.
    pub fn wire_checkpoint(&self) -> WireCheckpoint {
        self.wire.checkpoint()
    }

    /// Rewind the wire to `ck` and drop any queued messages (replay from a
    /// frame boundary regenerates all traffic deterministically).
    pub fn restore_wire(&mut self, ck: &WireCheckpoint) {
        self.wire.restore_checkpoint(ck);
        for q in &mut self.queues {
            q.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Blob(u64);

    impl WireSize for Blob {
        fn wire_bytes(&self) -> u64 {
            self.0
        }
    }

    fn net2() -> VirtualNet<Blob> {
        // two ranks on two nodes, Myrinet
        VirtualNet::new(NetworkModel::myrinet(), vec![0, 1], 2)
    }

    #[test]
    fn send_recv_delivers_in_order() {
        let mut n = net2();
        n.send(0, 1, Blob(10));
        n.send(0, 1, Blob(20));
        assert_eq!(n.recv(1, 0).unwrap(), Blob(10));
        assert_eq!(n.recv(1, 0).unwrap(), Blob(20));
    }

    #[test]
    fn recv_without_send_is_a_typed_error() {
        let mut n = net2();
        assert_eq!(n.recv(1, 0), Err(TransportError::NoMessage { rank: 1, peer: 0 }));
    }

    #[test]
    fn receiver_clock_advances_to_delivery() {
        let mut n = net2();
        n.advance(0, 1.0);
        n.send(0, 1, Blob(160_000_000)); // 1s of occupancy on Myrinet
        assert_eq!(n.now(1), 0.0);
        n.recv(1, 0).unwrap();
        // ≈ 1.0 (sender clock) + per_message_cpu + 1.0 occupancy + latency
        assert!(n.now(1) > 2.0 && n.now(1) < 2.1, "got {}", n.now(1));
    }

    #[test]
    fn sender_blocks_for_occupancy() {
        let mut n = net2();
        n.send(0, 1, Blob(160_000_000));
        assert!(n.now(0) >= 1.0, "blocking send occupies sender, got {}", n.now(0));
    }

    #[test]
    fn link_contention_serializes_into_one_node() {
        // three ranks on three nodes; 1 and 2 both ship 1s of data to 0.
        let mut n: VirtualNet<Blob> = VirtualNet::new(NetworkModel::myrinet(), vec![0, 1, 2], 3);
        n.send(1, 0, Blob(160_000_000));
        n.send(2, 0, Blob(160_000_000));
        n.recv(0, 1).unwrap();
        n.recv(0, 2).unwrap();
        // The second transfer had to wait for rank 0's link.
        assert!(n.now(0) >= 2.0, "ingress link must serialize, got {}", n.now(0));
    }

    #[test]
    fn switched_fabric_allows_disjoint_pairs_in_parallel() {
        // ranks 0->1 and 2->3 on four nodes can overlap on Myrinet.
        let mut n: VirtualNet<Blob> = VirtualNet::new(NetworkModel::myrinet(), vec![0, 1, 2, 3], 4);
        n.send(0, 1, Blob(160_000_000));
        n.send(2, 3, Blob(160_000_000));
        n.recv(1, 0).unwrap();
        n.recv(3, 2).unwrap();
        assert!(n.now(1) < 1.1 && n.now(3) < 1.1, "disjoint transfers overlap");
    }

    #[test]
    fn shared_medium_serializes_everything() {
        let mut n: VirtualNet<Blob> =
            VirtualNet::new(NetworkModel::fast_ethernet_hub(), vec![0, 1, 2, 3], 4);
        n.send(0, 1, Blob(12_500_000)); // 1s on FE
        n.send(2, 3, Blob(12_500_000));
        n.recv(1, 0).unwrap();
        n.recv(3, 2).unwrap();
        assert!(n.now(3) >= 2.0, "shared medium must serialize, got {}", n.now(3));
    }

    #[test]
    fn same_rank_send_is_free() {
        let mut n = net2();
        n.send(0, 0, Blob(1 << 30));
        let t = n.now(0);
        assert_eq!(t, 0.0);
        n.recv(0, 0).unwrap();
        assert_eq!(n.now(0), 0.0);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut n: VirtualNet<Blob> = VirtualNet::new(NetworkModel::myrinet(), vec![0, 1, 2], 3);
        n.advance(0, 5.0);
        n.advance(1, 1.0);
        n.barrier(&[0, 1, 2]);
        let t = n.now(0);
        assert!(t >= 5.0);
        assert_eq!(n.now(1), t);
        assert_eq!(n.now(2), t);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut n = net2();
        n.send(0, 1, Blob(100));
        n.send(0, 1, Blob(50));
        assert_eq!(n.stats().messages, 2);
        assert_eq!(n.stats().payload_bytes, 150);
        n.reset_stats();
        assert_eq!(n.stats(), TrafficStats::default());
    }

    #[test]
    fn rank_stats_attribute_traffic_to_the_sender() {
        let mut n = net2();
        n.send(0, 1, Blob(100));
        n.send(1, 0, Blob(7));
        n.send(0, 1, Blob(50));
        assert_eq!(n.rank_stats(0), TrafficStats { messages: 2, payload_bytes: 150 });
        assert_eq!(n.rank_stats(1), TrafficStats { messages: 1, payload_bytes: 7 });
        // Per-rank counters sum to the aggregate.
        let total = n.stats();
        assert_eq!(total.messages, n.rank_stats(0).messages + n.rank_stats(1).messages);
        assert_eq!(
            total.payload_bytes,
            n.rank_stats(0).payload_bytes + n.rank_stats(1).payload_bytes
        );
        n.reset_stats();
        assert_eq!(n.rank_stats(0), TrafficStats::default());
    }

    #[test]
    fn send_delayed_postpones_delivery_without_occupying_sender() {
        let mut plain = net2();
        plain.send(0, 1, Blob(4096));
        let mut delayed = net2();
        delayed.send_delayed(0, 1, Blob(4096), 0.25);
        // Sender-side cost identical; only the delivery stamp shifts.
        assert_eq!(plain.now(0).to_bits(), delayed.now(0).to_bits());
        plain.recv(1, 0).unwrap();
        delayed.recv(1, 0).unwrap();
        assert!((delayed.now(1) - plain.now(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn recv_deadline_charges_wait_and_times_out() {
        let mut n = net2();
        assert_eq!(n.recv_deadline(1, 0, 0.5), Err(TransportError::Timeout { rank: 1, peer: 0 }));
        assert_eq!(n.now(1), 0.5);
        n.send(0, 1, Blob(8));
        assert_eq!(n.recv_deadline(1, 0, 0.5).unwrap(), Blob(8));
    }

    #[test]
    fn take_queued_confiscates_in_flight_messages() {
        let mut n = net2();
        n.send(0, 1, Blob(1));
        n.send(0, 1, Blob(2));
        let before = n.now(1);
        let taken = n.take_queued(1, 0);
        assert_eq!(taken, vec![Blob(1), Blob(2)]);
        assert_eq!(n.now(1), before, "confiscation must not move clocks");
        assert!(!n.has_message(1, 0));
    }

    #[test]
    fn queued_senders_lists_exactly_the_pending_peers() {
        let mut n: VirtualNet<Blob> = VirtualNet::new(NetworkModel::myrinet(), vec![0, 1, 2], 3);
        assert!(n.queued_senders(0).is_empty());
        n.send(1, 0, Blob(8));
        n.send(2, 0, Blob(8));
        n.send(1, 0, Blob(8));
        assert_eq!(n.queued_senders(0), vec![1, 2]);
        n.recv(0, 2).unwrap();
        assert_eq!(n.queued_senders(0), vec![1]);
    }

    #[test]
    fn wire_state_charge_matches_queue_fabric() {
        // The extracted WireState must stay bit-identical to the fabric
        // that drives it (EventFabric parity depends on this).
        let mut v = net2();
        let mut w = WireState::new(NetworkModel::myrinet(), vec![0, 1], 2);
        v.advance(0, 0.5);
        w.advance(0, 0.5);
        v.send(0, 1, Blob(4096));
        let stamp = w.charge_send(0, 1, 4096, 0.0);
        assert_eq!(v.now(0).to_bits(), w.now(0).to_bits());
        v.recv(1, 0).unwrap();
        assert!(w.observe_delivery(1, stamp));
        assert_eq!(v.now(1).to_bits(), w.now(1).to_bits());
        assert_eq!(v.stats(), w.stats());
    }

    #[test]
    fn wire_checkpoint_rewinds_clocks_and_counters_exactly() {
        let drive = |n: &mut VirtualNet<Blob>| {
            n.advance(0, 0.123);
            n.send(0, 1, Blob(4096));
            n.recv(1, 0).unwrap();
            n.barrier(&[0, 1]);
        };
        let mut n = net2();
        drive(&mut n);
        let ck = n.wire_checkpoint();
        let (t0, t1, stats) = (n.now(0), n.now(1), n.stats());
        // Diverge, then rewind: every observable must come back bit-equal.
        n.send(1, 0, Blob(65536));
        n.recv(0, 1).unwrap();
        n.advance(0, 9.0);
        n.restore_wire(&ck);
        assert_eq!(n.now(0).to_bits(), t0.to_bits());
        assert_eq!(n.now(1).to_bits(), t1.to_bits());
        assert_eq!(n.stats(), stats);
        assert!(!n.has_message(0, 1), "restore drops queued messages");
        // Replay after restore charges identical costs.
        let mut fresh = net2();
        drive(&mut fresh);
        n.send(0, 1, Blob(64));
        fresh.send(0, 1, Blob(64));
        assert_eq!(n.now(0).to_bits(), fresh.now(0).to_bits());
        assert_eq!(n.makespan().to_bits(), fresh.makespan().to_bits());
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut n = net2();
            n.advance(0, 0.123);
            n.send(0, 1, Blob(4096));
            n.recv(1, 0).unwrap();
            n.barrier(&[0, 1]);
            n.makespan()
        };
        assert_eq!(run(), run());
    }
}
