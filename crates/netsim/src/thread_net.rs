//! Real-thread SPMD transport.
//!
//! One crossbeam channel per (sender, receiver) pair gives the directed
//! `recv_from` semantics the frame protocol uses, with no selective-receive
//! machinery. Each rank thread owns a [`ThreadEndpoint`]; timing is wall
//! clock.

use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Factory for a fully-connected set of endpoints.
pub struct ThreadNet;

impl ThreadNet {
    /// Build `ranks` endpoints; endpoint `i` is moved onto rank `i`'s
    /// thread.
    pub fn build<M: Send>(ranks: usize) -> Vec<ThreadEndpoint<M>> {
        assert!(ranks > 0);
        // txs[to][from], rxs[to][from]
        let mut txs: Vec<Vec<Option<Sender<M>>>> = (0..ranks)
            .map(|_| (0..ranks).map(|_| None).collect())
            .collect();
        let mut rxs: Vec<Vec<Option<Receiver<M>>>> = (0..ranks)
            .map(|_| (0..ranks).map(|_| None).collect())
            .collect();
        for to in 0..ranks {
            for from in 0..ranks {
                let (tx, rx) = unbounded();
                txs[to][from] = Some(tx);
                rxs[to][from] = Some(rx);
            }
        }
        // Endpoint `r` needs: senders to every destination (tx stored at
        // [dest][r]) and receivers from every source (rx stored at [r][src]).
        let started = Instant::now();
        (0..ranks)
            .map(|r| {
                let to_others: Vec<Sender<M>> = (0..ranks)
                    .map(|dest| txs[dest][r].take().expect("tx taken once"))
                    .collect();
                let from_others: Vec<Receiver<M>> = (0..ranks)
                    .map(|src| rxs[r][src].take().expect("rx taken once"))
                    .collect();
                ThreadEndpoint { rank: r, ranks, to_others, from_others, started }
            })
            .collect()
    }
}

/// One rank's handle on the thread fabric.
pub struct ThreadEndpoint<M> {
    rank: usize,
    ranks: usize,
    to_others: Vec<Sender<M>>,
    from_others: Vec<Receiver<M>>,
    started: Instant,
}

impl<M: Send> ThreadEndpoint<M> {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Send `msg` to `to` (never blocks; channels are unbounded).
    pub fn send(&self, to: usize, msg: M) {
        self.to_others[to]
            .send(msg)
            .expect("receiver endpoint dropped while protocol still running");
    }

    /// Block until a message from `from` arrives.
    pub fn recv(&self, from: usize) -> M {
        self.from_others[from]
            .recv()
            .expect("sender endpoint dropped while protocol still running")
    }

    /// Seconds since the fabric was built (shared epoch across ranks).
    pub fn now(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ring_passes_token() {
        let n = 4;
        let endpoints = ThreadNet::build::<u64>(n);
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                thread::spawn(move || {
                    let r = ep.rank();
                    if r == 0 {
                        ep.send(1, 100);
                        ep.recv(n - 1)
                    } else {
                        let v = ep.recv(r - 1);
                        ep.send((r + 1) % n, v + 1);
                        v
                    }
                })
            })
            .collect();
        let results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results, vec![103, 100, 101, 102]);
    }

    #[test]
    fn directed_channels_do_not_cross() {
        let endpoints = ThreadNet::build::<&'static str>(3);
        let mut it = endpoints.into_iter();
        let e0 = it.next().unwrap();
        let e1 = it.next().unwrap();
        let e2 = it.next().unwrap();
        e1.send(0, "from-1");
        e2.send(0, "from-2");
        // Directed receive must pick by source regardless of arrival order.
        assert_eq!(e0.recv(2), "from-2");
        assert_eq!(e0.recv(1), "from-1");
    }

    #[test]
    fn gather_pattern() {
        let n = 5;
        let endpoints = ThreadNet::build::<usize>(n);
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                thread::spawn(move || {
                    let r = ep.rank();
                    if r == 0 {
                        (1..n).map(|src| ep.recv(src)).sum::<usize>()
                    } else {
                        ep.send(0, r * r);
                        0
                    }
                })
            })
            .collect();
        let total = handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>();
        assert_eq!(total, 1 + 4 + 9 + 16);
    }
}
