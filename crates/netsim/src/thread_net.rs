//! Real-thread SPMD transport.
//!
//! One mpsc channel per (sender, receiver) pair gives the directed
//! `recv_from` semantics the frame protocol uses, with no selective-receive
//! machinery. Each rank thread owns a [`ThreadEndpoint`]; timing is wall
//! clock.
//!
//! Error model: the protocol code must never panic on a torn-down peer.
//! [`ThreadEndpoint::send`] and [`ThreadEndpoint::recv`] return
//! [`TransportError`] when the far side of a channel has been dropped, and
//! the executor decides whether that is an orderly shutdown or a protocol
//! violation. The shutdown ordering guarantee — every message sent before a
//! sender is dropped is still received, and only then does the receiver see
//! [`TransportError::Disconnected`] — is exercised exhaustively by the
//! interleaving model tests at the bottom of this file (and by real `loom`
//! tests under `--cfg loom` in CI).

// psa-verify: allow(wall-clock) — this fabric is the real-time executor's
// transport; `now()` is its epoch clock and never feeds virtual time.
// psa-verify: allow(index-panic) — `build(ranks)` creates the full
// (sender, receiver) channel matrix and hands each endpoint Vecs of
// exactly `ranks` entries; peer indices come from the executor's static
// rank assignment, never from the wire.
use std::cell::Cell;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

use crate::{TrafficStats, WireSize};

/// A transport-layer failure: the far side of a directed channel is gone,
/// silent, or (under fault injection) refusing a delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The destination endpoint was dropped while a send was attempted.
    Disconnected {
        /// Rank that observed the failure.
        rank: usize,
        /// Peer rank whose endpoint is gone.
        peer: usize,
    },
    /// A receive found no queued message where the protocol required one
    /// (deterministic fabrics only — a real-time fabric blocks instead).
    NoMessage {
        /// Rank that tried to receive.
        rank: usize,
        /// Peer rank the message was expected from.
        peer: usize,
    },
    /// A bounded receive gave up before anything arrived: the peer is still
    /// connected but silent past the deadline (likely stalled or crashed).
    Timeout {
        /// Rank that waited.
        rank: usize,
        /// Peer rank that never answered.
        peer: usize,
    },
    /// A send was rejected by the fabric (fault injection: transient link
    /// failure). Retriable, unlike `Disconnected`.
    SendFailed {
        /// Rank whose send was rejected.
        rank: usize,
        /// Destination rank of the rejected send.
        peer: usize,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected { rank, peer } => {
                write!(f, "rank {rank}: channel to/from rank {peer} disconnected")
            }
            TransportError::NoMessage { rank, peer } => {
                write!(f, "rank {rank}: no queued message from rank {peer}")
            }
            TransportError::Timeout { rank, peer } => {
                write!(f, "rank {rank}: timed out waiting for rank {peer}")
            }
            TransportError::SendFailed { rank, peer } => {
                write!(f, "rank {rank}: transient send failure towards rank {peer}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Factory for a fully-connected set of endpoints.
#[derive(Debug)]
pub struct ThreadNet;

impl ThreadNet {
    /// Build `ranks` endpoints; endpoint `i` is moved onto rank `i`'s
    /// thread.
    ///
    /// # Panics
    /// Panics if `ranks == 0` — a fabric with no endpoints is a caller bug,
    /// not a runtime condition.
    pub fn build<M: Send>(ranks: usize) -> Vec<ThreadEndpoint<M>> {
        assert!(ranks > 0);
        // Endpoint `r` needs senders to every destination (to_others[to])
        // and receivers from every source (from_others[from]). Building the
        // pair channels with `from` as the outer loop pushes each rank's
        // vectors in ascending peer order without any placeholder state.
        let mut to_others: Vec<Vec<Sender<M>>> = (0..ranks).map(|_| Vec::new()).collect();
        let mut from_others: Vec<Vec<Receiver<M>>> = (0..ranks).map(|_| Vec::new()).collect();
        for from in 0..ranks {
            for to in 0..ranks {
                let (tx, rx) = channel();
                to_others[from].push(tx);
                from_others[to].push(rx);
            }
        }
        let started = Instant::now();
        to_others
            .into_iter()
            .zip(from_others)
            .enumerate()
            .map(|(r, (to_others, from_others))| ThreadEndpoint {
                rank: r,
                ranks,
                to_others,
                from_others,
                started,
                sent: Cell::new(TrafficStats::default()),
            })
            .collect()
    }
}

/// One rank's handle on the thread fabric.
#[derive(Debug)]
pub struct ThreadEndpoint<M> {
    rank: usize,
    ranks: usize,
    to_others: Vec<Sender<M>>,
    from_others: Vec<Receiver<M>>,
    started: Instant,
    /// Endpoint-layer traffic accounting: what this rank has *sent*.
    /// `Cell` suffices — an endpoint is owned by exactly one rank thread.
    sent: Cell<TrafficStats>,
}

impl<M: Send> ThreadEndpoint<M> {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Send `msg` to `to` (never blocks; channels are unbounded).
    ///
    /// Returns [`TransportError::Disconnected`] if rank `to` has already
    /// dropped its endpoint.
    pub fn send(&self, to: usize, msg: M) -> Result<(), TransportError> {
        self.to_others[to]
            .send(msg)
            .map_err(|_| TransportError::Disconnected { rank: self.rank, peer: to })?;
        let mut s = self.sent.get();
        s.messages += 1;
        self.sent.set(s);
        Ok(())
    }

    /// Like [`send`](Self::send), but hands the message back on failure so
    /// fault-injection retry layers need no `Clone`.
    pub fn send_reclaim(&self, to: usize, msg: M) -> Result<(), (M, TransportError)> {
        self.to_others[to]
            .send(msg)
            .map_err(|e| (e.0, TransportError::Disconnected { rank: self.rank, peer: to }))
    }

    /// Block until a message from `from` arrives.
    ///
    /// Messages already in flight are delivered even after the sender drops
    /// its endpoint; only once the directed channel is both empty and closed
    /// does this return [`TransportError::Disconnected`].
    pub fn recv(&self, from: usize) -> Result<M, TransportError> {
        // This is the primitive the deadline wrapper is built on; protocol
        // loops use `recv_deadline`.
        self.from_others[from]
            // psa-verify: allow(unbounded-recv) — the blocking primitive itself
            .recv()
            .map_err(|_| TransportError::Disconnected { rank: self.rank, peer: from })
    }

    /// Block until a message from `from` arrives or `timeout` elapses.
    ///
    /// A silent-but-connected peer surfaces as [`TransportError::Timeout`]
    /// instead of hanging the caller forever; a dropped peer still drains
    /// in-flight messages first and then reports
    /// [`TransportError::Disconnected`].
    pub fn recv_deadline(&self, from: usize, timeout: Duration) -> Result<M, TransportError> {
        use std::sync::mpsc::RecvTimeoutError;
        match self.from_others[from].recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => {
                Err(TransportError::Timeout { rank: self.rank, peer: from })
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(TransportError::Disconnected { rank: self.rank, peer: from })
            }
        }
    }

    /// Non-blocking receive: `Ok(None)` when no message is waiting.
    pub fn try_recv(&self, from: usize) -> Result<Option<M>, TransportError> {
        use std::sync::mpsc::TryRecvError;
        match self.from_others[from].try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => {
                Err(TransportError::Disconnected { rank: self.rank, peer: from })
            }
        }
    }

    /// Seconds since the fabric was built (shared epoch across ranks).
    pub fn now(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Traffic this endpoint has sent so far (messages always counted;
    /// payload bytes only via [`send_sized`](Self::send_sized)).
    pub fn sent_stats(&self) -> TrafficStats {
        self.sent.get()
    }
}

impl<M: Send + WireSize> ThreadEndpoint<M> {
    /// [`send`](Self::send) with payload-byte accounting — the
    /// endpoint-layer hook the observability trace reads via
    /// [`sent_stats`](Self::sent_stats).
    pub fn send_sized(&self, to: usize, msg: M) -> Result<(), TransportError> {
        let bytes = msg.wire_bytes();
        self.send(to, msg)?;
        if bytes > 0 {
            let mut s = self.sent.get();
            s.payload_bytes += bytes;
            self.sent.set(s);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ring_passes_token() {
        let n = 4;
        let endpoints = ThreadNet::build::<u64>(n);
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                thread::spawn(move || {
                    let r = ep.rank();
                    if r == 0 {
                        ep.send(1, 100).unwrap();
                        ep.recv(n - 1).unwrap()
                    } else {
                        let v = ep.recv(r - 1).unwrap();
                        ep.send((r + 1) % n, v + 1).unwrap();
                        v
                    }
                })
            })
            .collect();
        let results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results, vec![103, 100, 101, 102]);
    }

    #[test]
    fn directed_channels_do_not_cross() {
        let endpoints = ThreadNet::build::<&'static str>(3);
        let mut it = endpoints.into_iter();
        let e0 = it.next().unwrap();
        let e1 = it.next().unwrap();
        let e2 = it.next().unwrap();
        e1.send(0, "from-1").unwrap();
        e2.send(0, "from-2").unwrap();
        // Directed receive must pick by source regardless of arrival order.
        assert_eq!(e0.recv(2), Ok("from-2"));
        assert_eq!(e0.recv(1), Ok("from-1"));
    }

    #[test]
    fn gather_pattern() {
        let n = 5;
        let endpoints = ThreadNet::build::<usize>(n);
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                thread::spawn(move || {
                    let r = ep.rank();
                    if r == 0 {
                        (1..n).map(|src| ep.recv(src).unwrap()).sum::<usize>()
                    } else {
                        ep.send(0, r * r).unwrap();
                        0
                    }
                })
            })
            .collect();
        let total = handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>();
        assert_eq!(total, 1 + 4 + 9 + 16);
    }

    #[test]
    fn send_to_dropped_peer_is_an_error_not_a_panic() {
        let endpoints = ThreadNet::build::<u32>(2);
        let mut it = endpoints.into_iter();
        let e0 = it.next().unwrap();
        drop(it.next().unwrap()); // rank 1 is gone
        assert_eq!(e0.send(1, 7), Err(TransportError::Disconnected { rank: 0, peer: 1 }));
    }

    #[test]
    fn recv_drains_in_flight_messages_before_reporting_disconnect() {
        let endpoints = ThreadNet::build::<u32>(2);
        let mut it = endpoints.into_iter();
        let e0 = it.next().unwrap();
        let e1 = it.next().unwrap();
        e1.send(0, 1).unwrap();
        e1.send(0, 2).unwrap();
        drop(e1);
        // Buffered messages survive the sender's shutdown.
        assert_eq!(e0.recv(1), Ok(1));
        assert_eq!(e0.recv(1), Ok(2));
        assert_eq!(e0.recv(1), Err(TransportError::Disconnected { rank: 0, peer: 1 }));
    }

    #[test]
    fn recv_deadline_times_out_on_silent_peer() {
        let endpoints = ThreadNet::build::<u32>(2);
        let mut it = endpoints.into_iter();
        let e0 = it.next().unwrap();
        let _e1 = it.next().unwrap(); // alive but silent
        assert_eq!(
            e0.recv_deadline(1, Duration::from_millis(5)),
            Err(TransportError::Timeout { rank: 0, peer: 1 })
        );
    }

    #[test]
    fn recv_deadline_delivers_queued_and_reports_disconnect() {
        let endpoints = ThreadNet::build::<u32>(2);
        let mut it = endpoints.into_iter();
        let e0 = it.next().unwrap();
        let e1 = it.next().unwrap();
        e1.send(0, 42).unwrap();
        drop(e1);
        let t = Duration::from_millis(5);
        assert_eq!(e0.recv_deadline(1, t), Ok(42));
        assert_eq!(e0.recv_deadline(1, t), Err(TransportError::Disconnected { rank: 0, peer: 1 }));
    }

    #[test]
    fn try_recv_reports_empty_channel_without_blocking() {
        let endpoints = ThreadNet::build::<u32>(2);
        let mut it = endpoints.into_iter();
        let e0 = it.next().unwrap();
        let e1 = it.next().unwrap();
        assert_eq!(e0.try_recv(1), Ok(None));
        e1.send(0, 9).unwrap();
        assert_eq!(e0.try_recv(1), Ok(Some(9)));
        drop(e1);
        assert_eq!(e0.try_recv(1), Err(TransportError::Disconnected { rank: 0, peer: 1 }));
    }
}

/// Exhaustive interleaving model of the mailbox handoff during shutdown.
///
/// The container this repo builds in has no registry access, so the real
/// `loom` crate cannot be a dependency; a faithful `loom::model` version of
/// these tests lives under `#[cfg(loom)]` below and runs in the CI loom job
/// (`RUSTFLAGS="--cfg loom" cargo test -p netsim --release`). This module
/// keeps the same guarantee checked offline: because each directed channel
/// is a buffered queue with a single producer and single consumer, every
/// thread interleaving of {send×k, drop-sender} against {recv×j} is
/// equivalent to some sequential schedule that respects each side's program
/// order. We enumerate *all* such schedules (interleavings of two ordered
/// event lists) and assert the shutdown invariant on each: the receiver
/// sees every sent message, in order, and then `Disconnected` — never a
/// panic, never a lost or reordered message.
#[cfg(all(test, not(loom)))]
mod shutdown_model {
    use super::*;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Ev {
        Send(u32),
        DropSender,
        Recv,
    }

    /// All interleavings of two program-ordered event sequences.
    fn interleavings(a: &[Ev], b: &[Ev]) -> Vec<Vec<Ev>> {
        fn rec(a: &[Ev], b: &[Ev], cur: &mut Vec<Ev>, out: &mut Vec<Vec<Ev>>) {
            if a.is_empty() && b.is_empty() {
                out.push(cur.clone());
                return;
            }
            if let Some((&h, t)) = a.split_first() {
                cur.push(h);
                rec(t, b, cur, out);
                cur.pop();
            }
            if let Some((&h, t)) = b.split_first() {
                cur.push(h);
                rec(a, t, cur, out);
                cur.pop();
            }
        }
        let mut out = Vec::new();
        rec(a, b, &mut Vec::new(), &mut out);
        out
    }

    fn check_schedule(schedule: &[Ev], sent: &[u32]) {
        let endpoints = ThreadNet::build::<u32>(2);
        let mut it = endpoints.into_iter();
        let receiver = it.next().expect("rank 0");
        let mut sender = Some(it.next().expect("rank 1"));
        let mut delivered: Vec<u32> = Vec::new();
        let mut saw_disconnect = false;
        for ev in schedule {
            match ev {
                Ev::Send(v) => {
                    let ep = sender.as_ref().expect("send after drop violates program order");
                    ep.send(0, *v).expect("receiver alive for whole schedule");
                }
                Ev::DropSender => {
                    sender = None;
                }
                Ev::Recv => {
                    // A real receiver thread would block here until the
                    // message arrives; sequentially, "blocked" states are
                    // exactly the schedules where a Recv precedes its Send,
                    // which the channel resolves once the Send happens. We
                    // model that by polling: a Recv that finds the channel
                    // empty while the sender is alive re-runs after the
                    // remaining events (equivalent to the blocked thread
                    // being scheduled last).
                    match receiver.try_recv(1) {
                        Ok(Some(v)) => delivered.push(v),
                        Ok(None) => {} // would block; drained at the end
                        Err(TransportError::Disconnected { .. }) => saw_disconnect = true,
                        Err(e) => panic!("unexpected transport error: {e}"),
                    }
                }
            }
        }
        // Drain what a blocked receiver would eventually observe.
        loop {
            match receiver.try_recv(1) {
                Ok(Some(v)) => delivered.push(v),
                Ok(None) => break, // sender still alive, nothing in flight
                Err(TransportError::Disconnected { .. }) => {
                    saw_disconnect = true;
                    break;
                }
                Err(e) => panic!("unexpected transport error: {e}"),
            }
        }
        assert_eq!(delivered, sent, "schedule {schedule:?} lost or reordered messages");
        if sender.is_none() {
            assert!(
                saw_disconnect || delivered.len() == sent.len(),
                "schedule {schedule:?}: disconnect swallowed messages"
            );
        }
    }

    #[test]
    fn all_shutdown_interleavings_preserve_messages_then_disconnect() {
        let sent = [10u32, 20, 30];
        let producer = [Ev::Send(10), Ev::Send(20), Ev::Send(30), Ev::DropSender];
        let consumer = [Ev::Recv, Ev::Recv, Ev::Recv, Ev::Recv];
        let schedules = interleavings(&producer, &consumer);
        // C(8,4) = 70 distinct interleavings; every one must uphold the
        // shutdown ordering invariant.
        assert_eq!(schedules.len(), 70);
        for s in &schedules {
            check_schedule(s, &sent);
        }
    }

    #[test]
    fn immediate_drop_interleavings_only_report_disconnect() {
        let producer = [Ev::DropSender];
        let consumer = [Ev::Recv, Ev::Recv];
        for s in interleavings(&producer, &consumer) {
            check_schedule(&s, &[]);
        }
    }
}

/// Real `loom` model of the same handoff, compiled only under
/// `RUSTFLAGS="--cfg loom"` in environments where the loom crate is
/// available (see .github/workflows/ci.yml). Kept in-tree so the model and
/// the offline enumeration above cannot drift apart silently.
#[cfg(all(test, loom))]
mod loom_model {
    use loom::sync::mpsc::channel;
    use loom::thread;

    #[test]
    fn mailbox_handoff_shutdown_ordering() {
        loom::model(|| {
            let (tx, rx) = channel::<u32>();
            let producer = thread::spawn(move || {
                tx.send(1).expect("receiver alive");
                tx.send(2).expect("receiver alive");
                // Dropping tx here closes the channel after both sends.
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            producer.join().expect("producer panicked");
            assert_eq!(got, vec![1, 2]);
        });
    }
}
