//! Collective operations over the deterministic virtual fabric.
//!
//! The frame protocol uses gather (load reports), broadcast (domains) and
//! all-to-all (exchange) patterns; these helpers implement them once with
//! the same directed, deterministic semantics the executor uses inline, so
//! other tools (the repro harness, the decentralized-balancer studies) can
//! reuse them. Every collective propagates [`TransportError`] instead of
//! panicking, so a mis-sequenced protocol surfaces as a typed error at the
//! executor.

use crate::virtual_net::VirtualNet;
use crate::{TransportError, WireSize};

/// Gather one message from every rank in `sources` (in order) at `root`.
pub fn gather<M: WireSize, F: FnMut(usize) -> M>(
    net: &mut VirtualNet<M>,
    sources: &[usize],
    root: usize,
    mut produce: F,
) -> Result<Vec<M>, TransportError> {
    for &s in sources {
        let msg = produce(s);
        net.send(s, root, msg);
    }
    sources.iter().map(|&s| net.recv(root, s)).collect()
}

/// Broadcast clones of `msg` from `root` to every rank in `dests`;
/// returns the received copies in `dests` order.
pub fn broadcast<M: WireSize + Clone>(
    net: &mut VirtualNet<M>,
    root: usize,
    dests: &[usize],
    msg: &M,
) -> Result<Vec<M>, TransportError> {
    for &d in dests {
        net.send(root, d, msg.clone());
    }
    dests.iter().map(|&d| net.recv(d, root)).collect()
}

/// All-to-all among `ranks`: `produce(from, to)` yields the message for
/// each ordered pair (self-pairs skipped); `consume(to, from, msg)` receives
/// them. Sends complete before any receive, mirroring the executor's
/// deadlock-free exchange pattern.
pub fn all_to_all<M: WireSize, P, C>(
    net: &mut VirtualNet<M>,
    ranks: &[usize],
    mut produce: P,
    mut consume: C,
) -> Result<(), TransportError>
where
    P: FnMut(usize, usize) -> M,
    C: FnMut(usize, usize, M),
{
    for &from in ranks {
        for &to in ranks {
            if from != to {
                let m = produce(from, to);
                net.send(from, to, m);
            }
        }
    }
    for &to in ranks {
        for &from in ranks {
            if from != to {
                let m = net.recv(to, from)?;
                consume(to, from, m);
            }
        }
    }
    Ok(())
}

/// Reduce values from `sources` at `root` with a fold — the "global
/// quantities such as the energy are reduced" pattern of the related-work
/// discussion. Messages carry the per-rank partial value.
pub fn reduce<M, T, F, G>(
    net: &mut VirtualNet<M>,
    sources: &[usize],
    root: usize,
    mut produce: F,
    init: T,
    mut fold: G,
) -> Result<T, TransportError>
where
    M: WireSize,
    F: FnMut(usize) -> M,
    G: FnMut(T, M) -> T,
{
    let msgs = gather(net, sources, root, &mut produce)?;
    Ok(msgs.into_iter().fold(init, &mut fold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::NetworkModel;

    #[derive(Clone, Debug, PartialEq)]
    struct Val(u64);

    impl WireSize for Val {
        fn wire_bytes(&self) -> u64 {
            8
        }
    }

    fn net(ranks: usize) -> VirtualNet<Val> {
        VirtualNet::new(NetworkModel::myrinet(), (0..ranks).collect(), ranks)
    }

    #[test]
    fn gather_collects_in_order() {
        let mut n = net(4);
        let got = gather(&mut n, &[0, 1, 2], 3, |s| Val(s as u64 * 10)).unwrap();
        assert_eq!(got, vec![Val(0), Val(10), Val(20)]);
        assert!(n.now(3) > 0.0, "root paid for the receives");
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let mut n = net(4);
        let got = broadcast(&mut n, 0, &[1, 2, 3], &Val(7)).unwrap();
        assert_eq!(got, vec![Val(7); 3]);
        for r in 1..4 {
            assert!(n.now(r) > 0.0);
        }
    }

    #[test]
    fn all_to_all_routes_every_pair() {
        let mut n = net(3);
        let mut seen = Vec::new();
        all_to_all(
            &mut n,
            &[0, 1, 2],
            |from, to| Val((from * 10 + to) as u64),
            |to, from, m| seen.push((to, from, m.0)),
        )
        .unwrap();
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&(2, 0, 2)));
        assert!(seen.contains(&(0, 2, 20)));
    }

    #[test]
    fn reduce_folds_partials() {
        let mut n = net(5);
        let total =
            reduce(&mut n, &[0, 1, 2, 3], 4, |s| Val(s as u64 + 1), 0u64, |acc, m| acc + m.0)
                .unwrap();
        assert_eq!(total, 10);
    }
}
