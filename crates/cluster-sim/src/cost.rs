//! The virtual-time cost model.
//!
//! Translates *counted work* (particle·action applications, particles
//! packed, bytes sorted, pairs evaluated) into seconds on a node of a given
//! relative speed. All constants are expressed in seconds at speed 1.0
//! (an E800 under GCC) and were calibrated so the reproduced tables land in
//! the paper's range; EXPERIMENTS.md records the paper-vs-measured values.
//!
//! The `scale` field lets benches run with fewer *real* particles while
//! charging virtual time (and migration bytes) as if the full population
//! were present: virtual counts are `real count × scale`. With `scale = 1`
//! the model is exact for the population actually simulated.

/// Cost constants (seconds at relative speed 1.0).
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// One particle·action application of weight 1.0. ~200 cycles on the
    /// 1 GHz P-III.
    pub per_action_unit: f64,
    /// Emitting one particle at the manager: sampling several
    /// distributions (Box–Muller, trig), routing into per-domain send
    /// buffers, and the MPI marshalling of its 70 wire bytes. Creation is
    /// the protocol's serial component (calculators wait on it every
    /// frame), and McAllister-style sources are empirically far more
    /// expensive than a force pass.
    pub per_create: f64,
    /// Checking one particle against its domain slice and re-bucketing
    /// (the end-of-frame leaver scan).
    pub per_exchange_check: f64,
    /// Packing or unpacking one particle for a message.
    pub per_pack: f64,
    /// Comparison cost inside the donation sort (charged n·log₂n).
    pub per_sort_cmp: f64,
    /// Rasterizing one particle at the image generator.
    pub per_render: f64,
    /// Fixed per-frame cost at the image generator (clear, encode).
    pub per_frame_render_fixed: f64,
    /// Evaluating one neighbor pair at the manager during DLB.
    pub per_balance_pair: f64,
    /// Per-particle cost of one collision broadphase pass (grid build +
    /// 27-cell neighborhood tests + occasional impulse).
    pub per_collision: f64,
    /// Multiplier from real particle counts to virtual particle counts.
    pub scale: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_action_unit: 0.20e-6,
            per_create: 3.5e-6,
            per_exchange_check: 0.12e-6,
            per_pack: 0.25e-6,
            per_sort_cmp: 0.015e-6,
            per_render: 0.05e-6,
            per_frame_render_fixed: 2.0e-3,
            per_balance_pair: 5.0e-6,
            per_collision: 0.9e-6,
            scale: 1.0,
        }
    }
}

impl CostModel {
    /// A model that charges time as if `scale`× more particles existed.
    pub fn scaled(scale: f64) -> Self {
        assert!(scale > 0.0);
        CostModel { scale, ..Default::default() }
    }

    /// Virtual count for a real count.
    #[inline]
    pub fn virt(&self, real: usize) -> f64 {
        real as f64 * self.scale
    }

    /// Seconds for `n` real particles undergoing actions of summed weight
    /// `weight` on a node of relative `speed`.
    pub fn action_time(&self, n: usize, weight: f64, speed: f64) -> f64 {
        self.virt(n) * weight * self.per_action_unit / speed
    }

    /// Seconds for `weighted` particle·action applications (already summed
    /// as `Σ applied_i × weight_i` by the action list).
    pub fn weighted_work_time(&self, weighted: f64, speed: f64) -> f64 {
        weighted * self.scale * self.per_action_unit / speed
    }

    /// Seconds for the manager to create `n` real particles.
    pub fn create_time(&self, n: usize, speed: f64) -> f64 {
        self.virt(n) * self.per_create / speed
    }

    /// Seconds for the leaver scan over `n` real particles.
    pub fn exchange_check_time(&self, n: usize, speed: f64) -> f64 {
        self.virt(n) * self.per_exchange_check / speed
    }

    /// Seconds to pack (or unpack) `n` real particles.
    pub fn pack_time(&self, n: usize, speed: f64) -> f64 {
        self.virt(n) * self.per_pack / speed
    }

    /// Seconds to sort `n` real particles for donation.
    pub fn sort_time(&self, n: usize, speed: f64) -> f64 {
        let v = self.virt(n);
        if v < 2.0 {
            return 0.0;
        }
        v * v.log2() * self.per_sort_cmp / speed
    }

    /// Seconds for the image generator to rasterize `n` real particles.
    pub fn render_time(&self, n: usize, speed: f64) -> f64 {
        self.virt(n) * self.per_render / speed + self.per_frame_render_fixed / speed
    }

    /// Seconds for the manager to evaluate `pairs` neighbor pairs.
    pub fn balance_eval_time(&self, pairs: usize, speed: f64) -> f64 {
        pairs as f64 * self.per_balance_pair / speed
    }

    /// Seconds for one collision broadphase over `n` real particles
    /// (locals plus ghosts).
    pub fn collision_time(&self, n: usize, speed: f64) -> f64 {
        self.virt(n) * self.per_collision / speed
    }

    /// Virtual bytes on the wire for `n` real particles of `wire_bytes`
    /// each.
    pub fn wire_bytes(&self, n: usize, wire_bytes: usize) -> u64 {
        (self.virt(n) * wire_bytes as f64).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_divides_time() {
        let m = CostModel::default();
        let slow = m.action_time(1000, 6.0, 0.5);
        let fast = m.action_time(1000, 6.0, 1.0);
        assert!((slow / fast - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scale_multiplies_counts_and_bytes() {
        let m = CostModel::scaled(10.0);
        let base = CostModel::default();
        assert!((m.action_time(100, 1.0, 1.0) - base.action_time(1000, 1.0, 1.0)).abs() < 1e-15);
        assert_eq!(m.wire_bytes(100, 70), base.wire_bytes(1000, 70));
    }

    #[test]
    fn sort_time_is_superlinear_and_safe_for_tiny_n() {
        let m = CostModel::default();
        assert_eq!(m.sort_time(0, 1.0), 0.0);
        assert_eq!(m.sort_time(1, 1.0), 0.0);
        let t1 = m.sort_time(1000, 1.0);
        let t2 = m.sort_time(2000, 1.0);
        assert!(t2 > 2.0 * t1, "n log n growth");
    }

    #[test]
    fn render_has_fixed_component() {
        let m = CostModel::default();
        let empty = m.render_time(0, 1.0);
        assert!(empty > 0.0);
        assert!(m.render_time(1_000_000, 1.0) > empty);
    }

    #[test]
    fn sequential_frame_magnitude_is_sane() {
        // 3.2M particles × ~6 weighted actions at speed 1.0 should be a few
        // seconds — the regime the paper's per-frame times live in.
        let m = CostModel::default();
        let t = m.action_time(3_200_000, 6.0, 1.0);
        assert!(t > 1.0 && t < 10.0, "sequential frame compute {t}s");
    }
}
