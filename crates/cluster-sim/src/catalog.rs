//! The paper's hardware catalog (§5).
//!
//! * type A — HP NetServer E60, dual Pentium III 550 MHz, 256 MB;
//! * type B — HP NetServer E800, dual Pentium III 1 GHz, 256 MB;
//! * type C — HP Workstation zx2000, Itanium II 900 MHz, 1 GB
//!   (single CPU; only on Fast-Ethernet in the paper's testbed).
//!
//! Speed calibration, from the paper's own observations:
//! * E800 under GCC is the best GCC sequential machine → defined as 1.0;
//! * E60 scales roughly with clock (550 MHz vs 1 GHz) → 0.55;
//! * the Itanium under ICC is the best sequential combination overall
//!   (Table 2 speed-ups are computed against it) but "the performance of
//!   the Itanium nodes was not satisfactory" in parallel — we set 1.25
//!   under ICC and a poor 0.70 under GCC (Itanium was notoriously weak on
//!   code not scheduled by a good compiler);
//! * ICC on the Pentium III gives a modest boost (1.10 vs 1.0).

use crate::node::NodeSpec;

/// Type A node: HP NetServer E60 (dual Pentium III 550 MHz).
pub fn e60() -> NodeSpec {
    NodeSpec {
        model: "HP NetServer E60 (2x P-III 550 MHz)".into(),
        tag: 'A',
        cpus: 2,
        speed_gcc: 0.28,
        speed_icc: 0.30,
        ram_mib: 256,
    }
}

/// Type B node: HP NetServer E800 (dual Pentium III 1 GHz).
pub fn e800() -> NodeSpec {
    NodeSpec {
        model: "HP NetServer E800 (2x P-III 1 GHz)".into(),
        tag: 'B',
        cpus: 2,
        speed_gcc: 1.0,
        speed_icc: 1.10,
        ram_mib: 256,
    }
}

/// Type C node: HP Workstation zx2000 (Itanium II 900 MHz).
pub fn zx2000() -> NodeSpec {
    NodeSpec {
        model: "HP zx2000 (Itanium II 900 MHz)".into(),
        tag: 'C',
        cpus: 1,
        speed_gcc: 0.70,
        speed_icc: 1.25,
        ram_mib: 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Compiler;

    #[test]
    fn calibration_baselines() {
        // E800+GCC is the unit of speed (Table 1/3 baseline).
        assert_eq!(e800().speed(Compiler::Gcc), 1.0);
        // Itanium+ICC is the fastest sequential combination (Table 2
        // baseline) …
        let best = [e60(), e800(), zx2000()]
            .iter()
            .flat_map(|n| [n.speed(Compiler::Gcc), n.speed(Compiler::Icc)])
            .fold(0.0f64, f64::max);
        assert_eq!(best, zx2000().speed(Compiler::Icc));
        // … but the Itanium is mediocre under GCC.
        assert!(zx2000().speed(Compiler::Gcc) < e800().speed(Compiler::Gcc));
    }

    #[test]
    fn e60_is_deeply_slower() {
        // Measured-power calibration, not clock ratio (see module docs).
        assert!(e60().speed_gcc < 0.5 * e800().speed_gcc);
        assert_eq!(e60().cpus, 2);
        assert_eq!(zx2000().cpus, 1);
    }

    #[test]
    fn tags_match_paper() {
        assert_eq!(e60().tag, 'A');
        assert_eq!(e800().tag, 'B');
        assert_eq!(zx2000().tag, 'C');
    }
}
