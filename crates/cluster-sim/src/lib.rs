//! Heterogeneous cluster substrate.
//!
//! The paper's experiments ran on an 18-node HP cluster (8× NetServer E60,
//! 8× NetServer E800, 2× zx2000 Itanium workstations) connected by Myrinet
//! and Fast-Ethernet, compiled with GNU GCC or Intel ICC. We do not have
//! that hardware, so this crate models it:
//!
//! * [`node`] / [`catalog`] — node types with per-compiler relative speeds
//!   (calibrated so E800+GCC ≡ 1.0, the paper's GCC speed-up baseline);
//! * [`net`] — first-order `latency + bytes/bandwidth` network models with
//!   per-node link occupancy (switched Myrinet) or a shared medium
//!   (Fast-Ethernet), which is what separates the paper's Table 1 from its
//!   Fast-Ethernet results;
//! * [`cluster`] — cluster assembly and process placement;
//! * [`cost`] — the virtual-time cost model translating work counts
//!   (particle·action applications, bytes, sorts) into seconds on a node.
//!
//! The load balancer in `psa-runtime` only ever observes (particle count,
//! time) pairs, so a calibrated virtual clock reproduces the *decisions*
//! the real system would make; absolute seconds differ from the 2005
//! testbed but ratios (speed-ups) carry the signal.

pub mod catalog;
pub mod cluster;
pub mod cost;
pub mod net;
pub mod node;

pub use catalog::{e60, e800, zx2000};
pub use cluster::{ClusterSpec, Placement};
pub use cost::CostModel;
pub use net::{NetworkModel, Topology};
pub use node::{Compiler, NodeSpec};
