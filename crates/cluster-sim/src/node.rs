//! Node specifications.

/// Compiler used for a run — the paper reports separate results for GNU GCC
/// and Intel ICC because the Itanium nodes were only competitive under ICC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Compiler {
    #[default]
    Gcc,
    Icc,
}

impl std::fmt::Display for Compiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Compiler::Gcc => write!(f, "GNU/GCC"),
            Compiler::Icc => write!(f, "Intel ICC"),
        }
    }
}

/// One machine of the cluster.
///
/// `speed_*` values are relative throughputs on the particle workload
/// (work units per second relative to an E800 under GCC = 1.0). The paper
/// estimates exactly this quantity by running the sequential program on
/// each machine type (§4: "we used the sequential execution time as the
/// comparison measure of processing power"); [`crate::cost::CostModel`]
/// consumes it the same way.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSpec {
    /// Model name for reports ("HP NetServer E800" …).
    pub model: String,
    /// Short tag used in table rows ("A", "B", "C").
    pub tag: char,
    /// Number of processors (process slots running at full speed).
    pub cpus: usize,
    /// Relative speed under GCC.
    pub speed_gcc: f64,
    /// Relative speed under ICC.
    pub speed_icc: f64,
    /// MiB of RAM (only used for sanity reporting; the 2005 runs fit).
    pub ram_mib: usize,
}

impl NodeSpec {
    /// Relative speed of one processor of this node under `compiler`.
    pub fn speed(&self, compiler: Compiler) -> f64 {
        match compiler {
            Compiler::Gcc => self.speed_gcc,
            Compiler::Icc => self.speed_icc,
        }
    }

    /// Aggregate speed with all processors busy.
    pub fn total_speed(&self, compiler: Compiler) -> f64 {
        self.speed(compiler) * self.cpus as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> NodeSpec {
        NodeSpec {
            model: "Test".into(),
            tag: 'T',
            cpus: 2,
            speed_gcc: 1.0,
            speed_icc: 1.2,
            ram_mib: 256,
        }
    }

    #[test]
    fn speed_selects_compiler() {
        let s = spec();
        assert_eq!(s.speed(Compiler::Gcc), 1.0);
        assert_eq!(s.speed(Compiler::Icc), 1.2);
    }

    #[test]
    fn total_speed_scales_with_cpus() {
        assert_eq!(spec().total_speed(Compiler::Gcc), 2.0);
    }

    #[test]
    fn compiler_display() {
        assert_eq!(Compiler::Gcc.to_string(), "GNU/GCC");
        assert_eq!(Compiler::Icc.to_string(), "Intel ICC");
    }
}
