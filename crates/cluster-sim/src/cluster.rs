//! Cluster assembly and process placement.

use crate::net::NetworkModel;
use crate::node::{Compiler, NodeSpec};

/// A cluster: nodes, the fabric connecting them, and the compiler the
/// binaries were built with (which scales each node's speed).
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSpec {
    pub net: NetworkModel,
    pub compiler: Compiler,
    /// `(node, calculator processes placed on it)` in placement order.
    groups: Vec<(NodeSpec, usize)>,
}

/// Where each calculator process lives and how fast it runs.
#[derive(Clone, Debug, PartialEq)]
pub struct Placement {
    /// Per-calculator `(node index, relative speed)`.
    pub ranks: Vec<RankInfo>,
    /// Node hosting the manager and image generator (the "front end").
    pub frontend_node: usize,
    /// Relative speed of the front-end processes.
    pub frontend_speed: f64,
    /// Total number of nodes.
    pub node_count: usize,
}

/// One calculator's placement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankInfo {
    pub node: usize,
    pub speed: f64,
}

impl ClusterSpec {
    pub fn new(net: NetworkModel, compiler: Compiler) -> Self {
        ClusterSpec { net, compiler, groups: Vec::new() }
    }

    /// Add `count` identical nodes, each running `procs_per_node`
    /// calculator processes — mirroring the paper's "4*B (8P.)" notation
    /// (`add_nodes(e800(), 4, 2)`).
    pub fn add_nodes(mut self, node: NodeSpec, count: usize, procs_per_node: usize) -> Self {
        assert!(count > 0 && procs_per_node > 0);
        for _ in 0..count {
            self.groups.push((node.clone(), procs_per_node));
        }
        self
    }

    /// A homogeneous cluster in one call.
    pub fn homogeneous(
        net: NetworkModel,
        compiler: Compiler,
        node: NodeSpec,
        count: usize,
        procs_per_node: usize,
    ) -> Self {
        ClusterSpec::new(net, compiler).add_nodes(node, count, procs_per_node)
    }

    /// Total calculator processes.
    pub fn total_procs(&self) -> usize {
        self.groups.iter().map(|(_, p)| p).sum()
    }

    pub fn node_count(&self) -> usize {
        self.groups.len()
    }

    pub fn nodes(&self) -> impl Iterator<Item = &NodeSpec> {
        self.groups.iter().map(|(n, _)| n)
    }

    /// Paper-style description, e.g. `4*B(4P.) + 2*C(2P.)`.
    pub fn describe(&self) -> String {
        // Compress consecutive identical groups.
        let mut parts: Vec<(char, usize, usize)> = Vec::new(); // tag, nodes, procs
        for (node, procs) in &self.groups {
            match parts.last_mut() {
                Some((tag, n, p)) if *tag == node.tag && *p == *procs => *n += 1,
                _ => parts.push((node.tag, 1, *procs)),
            }
        }
        parts
            .iter()
            .map(|(tag, n, p)| format!("{n}*{tag}({}P.)", n * p))
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// Compute the placement of calculators onto nodes.
    ///
    /// Oversubscription (more processes than CPUs on a node) divides the
    /// per-process speed — two processes time-sharing one CPU each run at
    /// half speed. The front end (manager + image generator) lives on node
    /// 0; in the paper's runs the front-end work is light relative to a
    /// calculator and the dual-CPU head node absorbs it, so it does not
    /// consume a calculator slot.
    pub fn placement(&self) -> Placement {
        let mut ranks = Vec::with_capacity(self.total_procs());
        for (node_idx, (node, procs)) in self.groups.iter().enumerate() {
            let slowdown = if *procs > node.cpus { node.cpus as f64 / *procs as f64 } else { 1.0 };
            let speed = node.speed(self.compiler) * slowdown;
            for _ in 0..*procs {
                ranks.push(RankInfo { node: node_idx, speed });
            }
        }
        let frontend_speed = self.groups[0].0.speed(self.compiler);
        Placement { ranks, frontend_node: 0, frontend_speed, node_count: self.groups.len() }
    }

    /// Fastest single-processor sequential speed in this cluster under its
    /// compiler — the machine the paper would run the sequential baseline
    /// on.
    pub fn best_sequential_speed(&self) -> f64 {
        self.groups.iter().map(|(n, _)| n.speed(self.compiler)).fold(0.0, f64::max)
    }
}

impl Placement {
    pub fn calculators(&self) -> usize {
        self.ranks.len()
    }

    /// Sum of calculator speeds — the ideal aggregate throughput.
    pub fn total_speed(&self) -> f64 {
        self.ranks.iter().map(|r| r.speed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{e60, e800, zx2000};

    fn myr() -> NetworkModel {
        NetworkModel::myrinet()
    }

    #[test]
    fn homogeneous_table1_configs() {
        // "8*B / 16 P." — 8 E800 nodes, two processes per node.
        let c = ClusterSpec::homogeneous(myr(), Compiler::Gcc, e800(), 8, 2);
        assert_eq!(c.total_procs(), 16);
        assert_eq!(c.node_count(), 8);
        let p = c.placement();
        assert_eq!(p.calculators(), 16);
        // dual-CPU nodes: no oversubscription penalty at 2 procs/node
        assert!(p.ranks.iter().all(|r| (r.speed - 1.0).abs() < 1e-12));
        assert_eq!(p.total_speed(), 16.0);
    }

    #[test]
    fn oversubscription_divides_speed() {
        let c = ClusterSpec::homogeneous(myr(), Compiler::Gcc, e800(), 1, 4);
        let p = c.placement();
        assert_eq!(p.calculators(), 4);
        for r in &p.ranks {
            assert!((r.speed - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn heterogeneous_table2_mix() {
        // "2*B (4P.) + 2*C (2P.) = 6 P." — the paper's best mix.
        let c = ClusterSpec::new(NetworkModel::fast_ethernet(), Compiler::Icc)
            .add_nodes(e800(), 2, 2)
            .add_nodes(zx2000(), 2, 1);
        assert_eq!(c.total_procs(), 6);
        assert_eq!(c.describe(), "2*B(4P.) + 2*C(2P.)");
        let p = c.placement();
        assert_eq!(p.ranks[0].speed, e800().speed(Compiler::Icc));
        assert_eq!(p.ranks[4].speed, zx2000().speed(Compiler::Icc));
        // Baseline for Table 2 is the Itanium under ICC.
        assert_eq!(c.best_sequential_speed(), zx2000().speed(Compiler::Icc));
    }

    #[test]
    fn describe_compresses_mixed_groups() {
        let c =
            ClusterSpec::new(myr(), Compiler::Gcc).add_nodes(e800(), 4, 1).add_nodes(e60(), 4, 1);
        assert_eq!(c.describe(), "4*B(4P.) + 4*A(4P.)");
    }

    #[test]
    fn node_indices_are_stable() {
        let c =
            ClusterSpec::new(myr(), Compiler::Gcc).add_nodes(e800(), 2, 2).add_nodes(e60(), 1, 1);
        let p = c.placement();
        assert_eq!(p.ranks.iter().map(|r| r.node).collect::<Vec<_>>(), vec![0, 0, 1, 1, 2]);
        assert_eq!(p.node_count, 3);
        assert_eq!(p.frontend_node, 0);
    }
}
