//! Network cost models.
//!
//! A first-order α+β model: a message of `b` bytes costs
//! `latency + b / bandwidth` of wire time, plus per-message CPU overhead on
//! the sender (protocol stack). Two refinements carry the paper's
//! Myrinet-vs-Fast-Ethernet signal:
//!
//! * **Per-node link occupancy** — a node's NIC serializes its transfers.
//!   On switched Myrinet different node pairs communicate concurrently, but
//!   eight calculators shipping frames into the image generator still queue
//!   at *its* link; this is what bends the speed-up curves.
//! * **Shared medium** — the paper's Fast-Ethernet behaves like a single
//!   collision domain under the all-to-one traffic of frame generation; we
//!   model it as one global link every transfer must occupy.

/// How the nodes are wired together, for latency purposes.
///
/// The paper's 8-node clusters hang off one switch ([`Topology::Flat`]:
/// every pair is one hop). Scaling studies past a few dozen nodes need a
/// multi-stage fabric: [`Topology::FatTree`] groups `radix` nodes per edge
/// switch and charges extra hops (edge–spine–edge) for traffic that leaves
/// the group. Bandwidth is assumed fully provisioned (no oversubscription);
/// only latency is topology-dependent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Single switch: uniform one-hop latency between all node pairs.
    Flat,
    /// Two-level fat tree: nodes `k*radix .. (k+1)*radix` share an edge
    /// switch; inter-group messages traverse edge→spine→edge (3 hops).
    FatTree { radix: usize },
}

/// A network fabric model.
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkModel {
    pub name: String,
    /// One-way message latency, seconds.
    pub latency: f64,
    /// Sustained bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Sender CPU time per message, seconds (stack traversal, interrupt).
    pub per_message_cpu: f64,
    /// If true, all transfers serialize on a single shared medium
    /// (Fast-Ethernet hub-like behaviour); if false, only per-node links
    /// serialize (switched fabric).
    pub shared_medium: bool,
    /// Node wiring; [`Topology::Flat`] reproduces the paper exactly.
    pub topology: Topology,
}

impl NetworkModel {
    /// Myrinet (Boden et al. 1995): ~9 µs latency, 1.28 Gbit/s full duplex,
    /// OS-bypass so per-message CPU is small.
    pub fn myrinet() -> Self {
        NetworkModel {
            name: "Myrinet".into(),
            latency: 9.0e-6,
            bandwidth: 160.0e6,
            per_message_cpu: 2.0e-6,
            shared_medium: false,
            topology: Topology::Flat,
        }
    }

    /// Fast-Ethernet (switched): ~70 µs latency through the kernel TCP
    /// stack, 100 Mbit/s per link, heavier per-message CPU. Per-node links
    /// still serialize, which is what chokes the all-to-one frame traffic.
    pub fn fast_ethernet() -> Self {
        NetworkModel {
            name: "Fast-Ethernet".into(),
            latency: 70.0e-6,
            bandwidth: 12.5e6,
            per_message_cpu: 25.0e-6,
            shared_medium: false,
            topology: Topology::Flat,
        }
    }

    /// Fast-Ethernet through a hub (single collision domain) — used by the
    /// network ablation bench to show why a switched fabric matters.
    pub fn fast_ethernet_hub() -> Self {
        NetworkModel {
            name: "Fast-Ethernet (hub)".into(),
            shared_medium: true,
            ..Self::fast_ethernet()
        }
    }

    /// An idealized zero-cost network (useful for isolating compute effects
    /// in ablation benches).
    pub fn ideal() -> Self {
        NetworkModel {
            name: "ideal".into(),
            latency: 0.0,
            bandwidth: f64::INFINITY,
            per_message_cpu: 0.0,
            shared_medium: false,
            topology: Topology::Flat,
        }
    }

    /// The same model rewired over `topology` (builder style).
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Pure wire occupancy time for `bytes` (excludes latency).
    pub fn occupancy(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth
    }

    /// One-way latency between two *nodes* under the configured topology.
    /// [`Topology::Flat`] returns `latency` exactly (bit-identical to the
    /// pre-topology model); a fat tree charges 3 hops across groups.
    pub fn latency_between(&self, node_a: usize, node_b: usize) -> f64 {
        match self.topology {
            Topology::Flat => self.latency,
            Topology::FatTree { radix } => {
                let radix = radix.max(1);
                if node_a / radix == node_b / radix {
                    self.latency
                } else {
                    3.0 * self.latency
                }
            }
        }
    }

    /// End-to-end uncontended time for one message of `bytes`.
    pub fn message_time(&self, bytes: u64) -> f64 {
        self.latency + self.occupancy(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn myrinet_beats_fast_ethernet() {
        let m = NetworkModel::myrinet();
        let fe = NetworkModel::fast_ethernet();
        for bytes in [64u64, 4096, 1 << 20] {
            assert!(m.message_time(bytes) < fe.message_time(bytes));
        }
    }

    #[test]
    fn message_time_composition() {
        let m = NetworkModel::myrinet();
        let t = m.message_time(160_000_000);
        assert!((t - (9.0e-6 + 1.0)).abs() < 1e-9, "1s of occupancy plus latency");
    }

    #[test]
    fn ideal_network_is_free() {
        let n = NetworkModel::ideal();
        assert_eq!(n.message_time(u64::MAX), 0.0);
        assert_eq!(n.occupancy(1 << 30), 0.0);
    }

    #[test]
    fn medium_flags_match_fabric() {
        assert!(!NetworkModel::myrinet().shared_medium);
        assert!(!NetworkModel::fast_ethernet().shared_medium);
        assert!(NetworkModel::fast_ethernet_hub().shared_medium);
    }

    #[test]
    fn flat_topology_latency_is_uniform() {
        let m = NetworkModel::myrinet();
        assert_eq!(m.topology, Topology::Flat);
        // Bit-identical to the plain latency: the pre-topology model.
        assert_eq!(m.latency_between(0, 0).to_bits(), m.latency.to_bits());
        assert_eq!(m.latency_between(0, 77).to_bits(), m.latency.to_bits());
    }

    #[test]
    fn fat_tree_charges_extra_hops_across_groups() {
        let m = NetworkModel::myrinet().with_topology(Topology::FatTree { radix: 4 });
        // Same edge switch: one hop.
        assert_eq!(m.latency_between(0, 3), m.latency);
        assert_eq!(m.latency_between(5, 6), m.latency);
        // Across groups: edge-spine-edge.
        assert_eq!(m.latency_between(3, 4), 3.0 * m.latency);
        assert_eq!(m.latency_between(0, 63), 3.0 * m.latency);
        // Degenerate radix never divides by zero.
        let z = NetworkModel::myrinet().with_topology(Topology::FatTree { radix: 0 });
        assert_eq!(z.latency_between(1, 2), 3.0 * z.latency);
    }
}
