//! Minimal cameras: orthographic and look-at perspective.

use psa_math::{Aabb, Scalar, Vec3};

/// Projection of a world point to the screen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Projected {
    /// Pixel x (may be off-screen; the rasterizer clips).
    pub x: Scalar,
    /// Pixel y.
    pub y: Scalar,
    /// Depth for the z-buffer (larger = farther).
    pub z: Scalar,
    /// World-to-pixel scale at this depth (for splat radii).
    pub pixels_per_unit: Scalar,
}

/// A camera mapping world space to pixel coordinates.
#[derive(Clone, Debug, PartialEq)]
pub enum Camera {
    /// Orthographic view down -z: the world rectangle maps to the full
    /// viewport.
    Ortho { view: Aabb, width: usize, height: usize },
    /// Perspective look-at camera.
    LookAt {
        eye: Vec3,
        target: Vec3,
        up: Vec3,
        /// Vertical field of view in radians.
        fov_y: Scalar,
        width: usize,
        height: usize,
    },
}

impl Camera {
    /// An orthographic camera framing `view` (xy extents used; z kept for
    /// depth ordering).
    pub fn ortho(view: Aabb, width: usize, height: usize) -> Self {
        Camera::Ortho { view, width, height }
    }

    pub fn look_at(eye: Vec3, target: Vec3, width: usize, height: usize) -> Self {
        Camera::LookAt { eye, target, up: Vec3::Y, fov_y: 1.0, width, height }
    }

    pub fn viewport(&self) -> (usize, usize) {
        match self {
            Camera::Ortho { width, height, .. } | Camera::LookAt { width, height, .. } => {
                (*width, *height)
            }
        }
    }

    /// Project a world point; `None` when behind a perspective camera.
    pub fn project(&self, p: Vec3) -> Option<Projected> {
        match self {
            Camera::Ortho { view, width, height } => {
                let size = view.size();
                let sx = (p.x - view.min.x) / size.x;
                // screen y grows downward
                let sy = 1.0 - (p.y - view.min.y) / size.y;
                Some(Projected {
                    x: sx * *width as Scalar,
                    y: sy * *height as Scalar,
                    z: -p.z,
                    pixels_per_unit: *width as Scalar / size.x,
                })
            }
            Camera::LookAt { eye, target, up, fov_y, width, height } => {
                let fwd = (*target - *eye).normalized();
                let right = fwd.cross(*up).normalized();
                let cup = right.cross(fwd);
                let rel = p - *eye;
                let zc = rel.dot(fwd);
                if zc <= 1e-4 {
                    return None;
                }
                let xc = rel.dot(right);
                let yc = rel.dot(cup);
                let half_h = (fov_y * 0.5).tan();
                let aspect = *width as Scalar / *height as Scalar;
                let ndc_x = xc / (zc * half_h * aspect);
                let ndc_y = yc / (zc * half_h);
                Some(Projected {
                    x: (ndc_x * 0.5 + 0.5) * *width as Scalar,
                    y: (1.0 - (ndc_y * 0.5 + 0.5)) * *height as Scalar,
                    z: zc,
                    pixels_per_unit: *height as Scalar / (2.0 * zc * half_h),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ortho() -> Camera {
        Camera::ortho(
            Aabb::new(Vec3::new(-10.0, -10.0, -10.0), Vec3::new(10.0, 10.0, 10.0)),
            200,
            100,
        )
    }

    #[test]
    fn ortho_center_maps_to_middle() {
        let c = ortho();
        let p = c.project(Vec3::ZERO).unwrap();
        assert!((p.x - 100.0).abs() < 1e-3);
        assert!((p.y - 50.0).abs() < 1e-3);
    }

    #[test]
    fn ortho_y_is_flipped() {
        let c = ortho();
        let top = c.project(Vec3::new(0.0, 9.0, 0.0)).unwrap();
        let bottom = c.project(Vec3::new(0.0, -9.0, 0.0)).unwrap();
        assert!(top.y < bottom.y, "screen y grows downward");
    }

    #[test]
    fn ortho_depth_orders_by_negative_z() {
        let c = ortho();
        let near = c.project(Vec3::new(0.0, 0.0, 5.0)).unwrap();
        let far = c.project(Vec3::new(0.0, 0.0, -5.0)).unwrap();
        assert!(near.z < far.z);
    }

    #[test]
    fn perspective_center_ray() {
        let c = Camera::look_at(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, 100, 100);
        let p = c.project(Vec3::ZERO).unwrap();
        assert!((p.x - 50.0).abs() < 1e-3);
        assert!((p.y - 50.0).abs() < 1e-3);
        assert!((p.z - 10.0).abs() < 1e-4);
    }

    #[test]
    fn perspective_culls_behind() {
        let c = Camera::look_at(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, 100, 100);
        assert!(c.project(Vec3::new(0.0, 0.0, 20.0)).is_none());
    }

    #[test]
    fn perspective_shrinks_with_distance() {
        let c = Camera::look_at(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, 100, 100);
        let near = c.project(Vec3::new(0.0, 0.0, 5.0)).unwrap();
        let far = c.project(Vec3::new(0.0, 0.0, -5.0)).unwrap();
        assert!(near.pixels_per_unit > far.pixels_per_unit);
    }
}
