//! Point-splat rasterization of particle sets and external objects.

use psa_core::objects::ExternalObject;
use psa_core::Particle;
use psa_math::{Scalar, Vec3};

use crate::camera::Camera;
use crate::framebuffer::Framebuffer;

/// Rasterization settings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplatConfig {
    /// Additive (glow) instead of alpha blending.
    pub additive: bool,
    /// Global multiplier on particle screen radii.
    pub radius_scale: Scalar,
    /// Clamp on splat radius in pixels (keeps close particles from
    /// swallowing the frame).
    pub max_radius_px: Scalar,
}

impl Default for SplatConfig {
    fn default() -> Self {
        SplatConfig { additive: false, radius_scale: 1.0, max_radius_px: 16.0 }
    }
}

/// Render `particles` through `camera` into `fb`. Returns the number of
/// particles that landed on-screen (the image generator's work counter).
pub fn render_particles(
    fb: &mut Framebuffer,
    camera: &Camera,
    particles: &[Particle],
    cfg: &SplatConfig,
) -> usize {
    let (w, h) = (fb.width() as isize, fb.height() as isize);
    let mut drawn = 0;
    for p in particles {
        let Some(proj) = camera.project(p.position) else {
            continue;
        };
        let radius =
            (p.size * proj.pixels_per_unit * cfg.radius_scale).min(cfg.max_radius_px).max(0.5);
        let (cx, cy) = (proj.x, proj.y);
        let r = radius.ceil() as isize;
        let (px, py) = (cx.floor() as isize, cy.floor() as isize);
        if px + r < 0 || py + r < 0 || px - r >= w || py - r >= h {
            continue;
        }
        drawn += 1;
        let r2 = radius * radius;
        for y in (py - r).max(0)..=(py + r).min(h - 1) {
            for x in (px - r).max(0)..=(px + r).min(w - 1) {
                let dx = x as Scalar + 0.5 - cx;
                let dy = y as Scalar + 0.5 - cy;
                let d2 = dx * dx + dy * dy;
                if d2 > r2 {
                    continue;
                }
                // soft falloff toward the rim
                let falloff = 1.0 - d2 / r2;
                if cfg.additive {
                    fb.add(x as usize, y as usize, p.color * (p.alpha * falloff), proj.z);
                } else {
                    fb.blend(x as usize, y as usize, p.color, p.alpha * falloff, proj.z);
                }
            }
        }
    }
    drawn
}

/// Render particles as orientation-aligned streaks — the use the paper's
/// mandatory *orientation* property exists for (falling rain/snow reads as
/// short strokes along the motion axis, not dots). Each particle draws as
/// `steps` sub-splats along its orientation vector scaled by
/// `streak_length`, with alpha fading toward the tail.
pub fn render_streaks(
    fb: &mut Framebuffer,
    camera: &Camera,
    particles: &[Particle],
    cfg: &SplatConfig,
    streak_length: Scalar,
    steps: usize,
) -> usize {
    assert!(steps >= 1);
    let mut drawn = 0;
    let mut ghost = Vec::with_capacity(1);
    for p in particles {
        let dir = p.orientation.normalized();
        let mut any = false;
        for s in 0..steps {
            let t = s as Scalar / steps as Scalar;
            let mut sub = *p;
            sub.position = p.position - dir * (streak_length * t);
            sub.alpha = p.alpha * (1.0 - 0.7 * t);
            ghost.clear();
            ghost.push(sub);
            any |= render_particles(fb, camera, &ghost, cfg) > 0;
        }
        if any {
            drawn += 1;
        }
    }
    drawn
}

/// Render external objects as flat-shaded silhouettes (the image generator
/// is also responsible for "render\[ing\] external objects that exist in the
/// simulation", paper §3.2.4). A coarse screen-space point-membership test
/// is plenty for scene context.
pub fn render_objects(fb: &mut Framebuffer, camera: &Camera, objects: &[(ExternalObject, Vec3)]) {
    if objects.is_empty() {
        return;
    }
    // For each object, rasterize by sampling a bounding patch of world
    // points. Objects in these scenes are grounds, pools and obstacles, so
    // a fixed sampling density is acceptable.
    for (obj, color) in objects {
        match obj {
            ExternalObject::Plane { normal, d } => {
                // Draw the plane's trace as a band one pixel thick in world
                // units, so it is visible at any resolution.
                let tol = match camera {
                    Camera::Ortho { view, height, .. } => {
                        (view.size().y / *height as Scalar).max(0.05)
                    }
                    _ => 0.05,
                };
                sample_world_grid(fb, camera, *color, |p| (p.dot(*normal) - d).abs() < tol);
            }
            ExternalObject::Sphere { center, radius } => {
                let c = *center;
                let r = *radius;
                sample_world_grid(fb, camera, *color, move |p| p.distance(c) <= r);
            }
            ExternalObject::Box(b) => {
                let bb = *b;
                sample_world_grid(fb, camera, *color, move |p| bb.contains(p));
            }
        }
    }
}

/// Sample a camera-facing world grid and paint pixels whose world sample
/// satisfies `hit`. Orthographic only; perspective scenes draw objects as
/// particles instead.
fn sample_world_grid<F: Fn(Vec3) -> bool>(
    fb: &mut Framebuffer,
    camera: &Camera,
    color: Vec3,
    hit: F,
) {
    let Camera::Ortho { view, width, height } = camera else {
        return;
    };
    let (w, h) = (*width, *height);
    let size = view.size();
    for y in 0..h {
        for x in 0..w {
            let wx = view.min.x + (x as Scalar + 0.5) / w as Scalar * size.x;
            let wy = view.min.y + (1.0 - (y as Scalar + 0.5) / h as Scalar) * size.y;
            let p = Vec3::new(wx, wy, 0.0);
            if hit(p) {
                fb.blend(x, y, color, 1.0, Scalar::MAX / 2.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::Aabb;

    fn scene() -> (Framebuffer, Camera) {
        let mut fb = Framebuffer::new(64, 64);
        fb.clear(Vec3::ZERO);
        let cam = Camera::ortho(
            Aabb::new(Vec3::new(-10.0, -10.0, -10.0), Vec3::new(10.0, 10.0, 10.0)),
            64,
            64,
        );
        (fb, cam)
    }

    #[test]
    fn single_particle_lights_pixels() {
        let (mut fb, cam) = scene();
        let p = Particle::at(Vec3::ZERO).with_size(1.0);
        let drawn = render_particles(&mut fb, &cam, &[p], &SplatConfig::default());
        assert_eq!(drawn, 1);
        assert!(fb.lit_pixels(Vec3::ZERO) > 0);
        // center pixel should be brightest
        assert!(fb.pixel(32, 32).length() > 0.5);
    }

    #[test]
    fn offscreen_particle_skipped() {
        let (mut fb, cam) = scene();
        let p = Particle::at(Vec3::new(1000.0, 0.0, 0.0));
        let drawn = render_particles(&mut fb, &cam, &[p], &SplatConfig::default());
        assert_eq!(drawn, 0);
        assert_eq!(fb.lit_pixels(Vec3::ZERO), 0);
    }

    #[test]
    fn nearer_particle_occludes() {
        let (mut fb, cam) = scene();
        let far = Particle::at(Vec3::new(0.0, 0.0, -5.0)).with_color(Vec3::X);
        let near = Particle::at(Vec3::new(0.0, 0.0, 5.0)).with_color(Vec3::Y);
        // draw near first, far second: far must not overwrite
        render_particles(&mut fb, &cam, &[near], &SplatConfig::default());
        render_particles(&mut fb, &cam, &[far], &SplatConfig::default());
        let c = fb.pixel(32, 32);
        assert!(c.y > c.x, "near (green) must win: {c:?}");
    }

    #[test]
    fn additive_mode_accumulates() {
        let (mut fb, cam) = scene();
        let p = Particle::at(Vec3::ZERO).with_color(Vec3::splat(0.3));
        let cfg = SplatConfig { additive: true, ..Default::default() };
        render_particles(&mut fb, &cam, &[p, p], &cfg);
        assert!(fb.pixel(32, 32).x > 0.3, "two additive splats stack");
    }

    #[test]
    fn radius_clamp_bounds_work() {
        let (mut fb, cam) = scene();
        let huge = Particle::at(Vec3::ZERO).with_size(1000.0);
        let cfg = SplatConfig { max_radius_px: 2.0, ..Default::default() };
        render_particles(&mut fb, &cam, &[huge], &cfg);
        // radius clamp of 2px → at most ~5x5 box of lit pixels
        assert!(fb.lit_pixels(Vec3::ZERO) <= 25);
    }

    #[test]
    fn streaks_extend_along_orientation() {
        let (mut fb, cam) = scene();
        let mut p = Particle::at(Vec3::ZERO).with_size(0.5);
        p.orientation = Vec3::Y;
        let drawn = render_streaks(&mut fb, &cam, &[p], &SplatConfig::default(), 3.0, 6);
        assert_eq!(drawn, 1);
        // streak trails upward from the head (orientation is the fall
        // direction reversed in screen space: tail at -dir... here +y tail)
        let lit = fb.lit_pixels(Vec3::ZERO);
        let (mut fb2, _) = scene();
        render_particles(&mut fb2, &cam, &[p], &SplatConfig::default());
        let dot = fb2.lit_pixels(Vec3::ZERO);
        assert!(lit > dot, "streak {lit} px must cover more than dot {dot} px");
    }

    #[test]
    fn streak_tail_is_fainter_than_head() {
        let (mut fb, cam) = scene();
        let mut p = Particle::at(Vec3::ZERO).with_size(0.8);
        p.orientation = Vec3::Y;
        render_streaks(&mut fb, &cam, &[p], &SplatConfig::default(), 6.0, 8);
        // head at (32,32); tail ~19 px up the screen (y smaller is up? tail
        // at position - dir*len → world y smaller → screen y larger)
        let head = fb.pixel(32, 32).length();
        let tail = fb.pixel(32, 50).length();
        assert!(head > tail, "head {head} should outshine tail {tail}");
        assert!(tail > 0.0, "tail still visible");
    }

    #[test]
    fn ground_plane_renders_band() {
        let (mut fb, cam) = scene();
        render_objects(&mut fb, &cam, &[(ExternalObject::ground(0.0), Vec3::new(0.2, 0.4, 0.2))]);
        assert!(fb.lit_pixels(Vec3::ZERO) > 0);
    }

    #[test]
    fn sphere_object_renders_disc() {
        let (mut fb, cam) = scene();
        render_objects(
            &mut fb,
            &cam,
            &[(ExternalObject::Sphere { center: Vec3::ZERO, radius: 3.0 }, Vec3::X)],
        );
        let lit = fb.lit_pixels(Vec3::ZERO);
        // a radius-3 disc in a 20-unit/64-px view ≈ π(3/20·64)² ≈ 290 px
        assert!(lit > 150 && lit < 500, "lit {lit}");
    }
}
