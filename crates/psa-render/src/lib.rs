//! Software renderer for the image generator process.
//!
//! The paper's image generator "collects the particles sent by the
//! calculators and renders each one of the frames of the animation", plus
//! any external objects in the scene. This crate is that renderer: a
//! z-buffered point-splat rasterizer with alpha blending, simple cameras,
//! color ramps, and PPM/PGM output — enough to write real animation frames
//! to disk from the examples and to give the cost model a faithful
//! per-particle render cost.

pub mod camera;
pub mod colormap;
pub mod framebuffer;
pub mod image;
pub mod splat;

pub use camera::Camera;
pub use colormap::ColorMap;
pub use framebuffer::Framebuffer;
pub use splat::{render_objects, render_particles, render_streaks, SplatConfig};
