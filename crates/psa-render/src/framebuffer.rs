//! RGB framebuffer with z-buffer.

use psa_math::{clamp, Scalar, Vec3};

/// A linear-color RGB framebuffer with a depth buffer.
#[derive(Clone, Debug)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    /// Linear RGB, row-major.
    color: Vec<Vec3>,
    /// Depth per pixel; larger = farther. Cleared to +inf.
    depth: Vec<Scalar>,
}

impl Framebuffer {
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "framebuffer must be non-empty");
        Framebuffer {
            width,
            height,
            color: vec![Vec3::ZERO; width * height],
            depth: vec![Scalar::INFINITY; width * height],
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    /// Reset to a background color and infinite depth.
    pub fn clear(&mut self, background: Vec3) {
        self.color.fill(background);
        self.depth.fill(Scalar::INFINITY);
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Read a pixel.
    pub fn pixel(&self, x: usize, y: usize) -> Vec3 {
        self.color[self.idx(x, y)]
    }

    /// Alpha-blend `rgb` over the pixel if `z` passes the depth test
    /// (closer-or-equal). Depth is only *written* for effectively opaque
    /// splats so translucent particles accumulate.
    #[inline]
    pub fn blend(&mut self, x: usize, y: usize, rgb: Vec3, alpha: Scalar, z: Scalar) {
        let i = self.idx(x, y);
        if z > self.depth[i] {
            return;
        }
        let a = clamp(alpha, 0.0, 1.0);
        self.color[i] = self.color[i] * (1.0 - a) + rgb * a;
        if a > 0.95 {
            self.depth[i] = z;
        }
    }

    /// Additive blend (fireworks-style glow); ignores the depth test but
    /// respects already-written opaque depth.
    #[inline]
    pub fn add(&mut self, x: usize, y: usize, rgb: Vec3, z: Scalar) {
        let i = self.idx(x, y);
        if z > self.depth[i] {
            return;
        }
        self.color[i] += rgb;
    }

    /// Convert to 8-bit sRGB-ish bytes (gamma 2.2), row-major RGB.
    pub fn to_rgb8(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.color.len() * 3);
        for c in &self.color {
            for ch in [c.x, c.y, c.z] {
                let v = clamp(ch, 0.0, 1.0).powf(1.0 / 2.2);
                out.push((v * 255.0 + 0.5) as u8);
            }
        }
        out
    }

    /// Mean luminance — cheap test/diagnostic scalar.
    pub fn mean_luminance(&self) -> f64 {
        if self.color.is_empty() {
            return 0.0;
        }
        let sum: f64 =
            self.color.iter().map(|c| (0.2126 * c.x + 0.7152 * c.y + 0.0722 * c.z) as f64).sum();
        sum / self.color.len() as f64
    }

    /// Count pixels whose color differs from `background`.
    pub fn lit_pixels(&self, background: Vec3) -> usize {
        self.color.iter().filter(|&&c| c != background).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_sets_everything() {
        let mut fb = Framebuffer::new(4, 3);
        fb.clear(Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(fb.pixel(0, 0), Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(fb.pixel(3, 2), Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(fb.lit_pixels(Vec3::new(0.1, 0.2, 0.3)), 0);
    }

    #[test]
    fn blend_respects_depth() {
        let mut fb = Framebuffer::new(2, 2);
        fb.clear(Vec3::ZERO);
        fb.blend(0, 0, Vec3::ONE, 1.0, 1.0); // opaque at depth 1
        fb.blend(0, 0, Vec3::X, 1.0, 2.0); // behind: rejected
        assert_eq!(fb.pixel(0, 0), Vec3::ONE);
        fb.blend(0, 0, Vec3::X, 1.0, 0.5); // in front: wins
        assert_eq!(fb.pixel(0, 0), Vec3::X);
    }

    #[test]
    fn translucent_blend_accumulates() {
        let mut fb = Framebuffer::new(1, 1);
        fb.clear(Vec3::ZERO);
        fb.blend(0, 0, Vec3::ONE, 0.5, 1.0);
        assert_eq!(fb.pixel(0, 0), Vec3::splat(0.5));
        // translucent splat must not write depth: same-depth splats keep
        // accumulating
        fb.blend(0, 0, Vec3::ONE, 0.5, 1.0);
        assert_eq!(fb.pixel(0, 0), Vec3::splat(0.75));
    }

    #[test]
    fn additive_blend() {
        let mut fb = Framebuffer::new(1, 1);
        fb.clear(Vec3::ZERO);
        fb.add(0, 0, Vec3::splat(0.4), 1.0);
        fb.add(0, 0, Vec3::splat(0.4), 1.0);
        assert_eq!(fb.pixel(0, 0), Vec3::splat(0.8));
    }

    #[test]
    fn rgb8_gamma_and_clamp() {
        let mut fb = Framebuffer::new(1, 1);
        fb.clear(Vec3::new(2.0, 0.0, 1.0)); // over-range red
        let bytes = fb.to_rgb8();
        assert_eq!(bytes, vec![255, 0, 255]);
    }

    #[test]
    fn mean_luminance_behaves() {
        let mut fb = Framebuffer::new(2, 1);
        fb.clear(Vec3::ZERO);
        assert_eq!(fb.mean_luminance(), 0.0);
        fb.blend(0, 0, Vec3::ONE, 1.0, 0.0);
        assert!(fb.mean_luminance() > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_size_panics() {
        let _ = Framebuffer::new(0, 5);
    }
}
