//! Color ramps for mapping particle scalars (age, speed) to colors.

use psa_math::{clamp, lerp, Scalar, Vec3};

/// A piecewise-linear color ramp over `t ∈ [0, 1]`.
#[derive(Clone, Debug, PartialEq)]
pub struct ColorMap {
    /// Sorted `(t, color)` control points; at least two.
    stops: Vec<(Scalar, Vec3)>,
}

impl ColorMap {
    /// Build from control points (must be sorted by t, at least two).
    pub fn new(stops: Vec<(Scalar, Vec3)>) -> Self {
        assert!(stops.len() >= 2, "a ramp needs at least two stops");
        assert!(stops.windows(2).all(|w| w[0].0 <= w[1].0), "ramp stops must be sorted");
        ColorMap { stops }
    }

    /// Black → red → orange → white: fire / fireworks.
    pub fn fire() -> Self {
        ColorMap::new(vec![
            (0.0, Vec3::new(0.02, 0.0, 0.0)),
            (0.4, Vec3::new(0.9, 0.1, 0.0)),
            (0.7, Vec3::new(1.0, 0.6, 0.1)),
            (1.0, Vec3::new(1.0, 1.0, 0.9)),
        ])
    }

    /// Deep blue → cyan → white: water / fountain spray.
    pub fn water() -> Self {
        ColorMap::new(vec![
            (0.0, Vec3::new(0.05, 0.15, 0.5)),
            (0.6, Vec3::new(0.3, 0.6, 0.9)),
            (1.0, Vec3::new(0.95, 0.98, 1.0)),
        ])
    }

    /// Grayscale.
    pub fn gray() -> Self {
        ColorMap::new(vec![(0.0, Vec3::ZERO), (1.0, Vec3::ONE)])
    }

    /// Evaluate the ramp at `t` (clamped).
    pub fn at(&self, t: Scalar) -> Vec3 {
        let t = clamp(t, self.stops[0].0, self.stops.last().unwrap().0);
        let mut prev = self.stops[0];
        for &(ti, ci) in &self.stops[1..] {
            if t <= ti {
                let span = ti - prev.0;
                let u = if span > 0.0 { (t - prev.0) / span } else { 1.0 };
                return Vec3::new(
                    lerp(prev.1.x, ci.x, u),
                    lerp(prev.1.y, ci.y, u),
                    lerp(prev.1.z, ci.z, u),
                );
            }
            prev = (ti, ci);
        }
        prev.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_exact() {
        let m = ColorMap::gray();
        assert_eq!(m.at(0.0), Vec3::ZERO);
        assert_eq!(m.at(1.0), Vec3::ONE);
        assert_eq!(m.at(0.5), Vec3::splat(0.5));
    }

    #[test]
    fn clamps_out_of_range() {
        let m = ColorMap::gray();
        assert_eq!(m.at(-5.0), Vec3::ZERO);
        assert_eq!(m.at(5.0), Vec3::ONE);
    }

    #[test]
    fn multi_stop_interpolation() {
        let m = ColorMap::fire();
        let mid = m.at(0.55);
        // between red-ish and orange-ish
        assert!(mid.x > 0.8);
        assert!(mid.y > 0.1 && mid.y < 0.7);
    }

    #[test]
    fn duplicate_stop_does_not_divide_by_zero() {
        let m = ColorMap::new(vec![
            (0.0, Vec3::ZERO),
            (0.5, Vec3::X),
            (0.5, Vec3::Y),
            (1.0, Vec3::ONE),
        ]);
        let c = m.at(0.5);
        assert!(c.is_finite());
    }

    #[test]
    #[should_panic]
    fn unsorted_stops_panic() {
        let _ = ColorMap::new(vec![(0.5, Vec3::ZERO), (0.0, Vec3::ONE)]);
    }
}
