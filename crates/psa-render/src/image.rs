//! PPM/PGM image output.
//!
//! Binary PPM (P6) is trivially written without dependencies and plays well
//! with `ffmpeg`/ImageMagick for turning frame sequences into videos.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::framebuffer::Framebuffer;

/// Write a framebuffer as binary PPM (P6).
pub fn write_ppm(fb: &Framebuffer, path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    write!(w, "P6\n{} {}\n255\n", fb.width(), fb.height())?;
    w.write_all(&fb.to_rgb8())?;
    w.flush()
}

/// Write a grayscale PGM (P5) of the luminance channel.
pub fn write_pgm(fb: &Framebuffer, path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    write!(w, "P5\n{} {}\n255\n", fb.width(), fb.height())?;
    let rgb = fb.to_rgb8();
    let gray: Vec<u8> = rgb
        .chunks_exact(3)
        .map(|c| (0.2126 * c[0] as f32 + 0.7152 * c[1] as f32 + 0.0722 * c[2] as f32) as u8)
        .collect();
    w.write_all(&gray)?;
    w.flush()
}

/// Format a frame filename like `snow_0042.ppm`.
pub fn frame_filename(prefix: &str, frame: u64) -> String {
    format!("{prefix}_{frame:04}.ppm")
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::Vec3;

    #[test]
    fn ppm_roundtrip_header_and_size() {
        let mut fb = Framebuffer::new(3, 2);
        fb.clear(Vec3::new(1.0, 0.0, 0.0));
        let dir = std::env::temp_dir().join("psa_render_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ppm");
        write_ppm(&fb, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(data.len(), 11 + 3 * 2 * 3);
        // first pixel red
        assert_eq!(&data[11..14], &[255, 0, 0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn pgm_is_single_channel() {
        let mut fb = Framebuffer::new(2, 2);
        fb.clear(Vec3::ONE);
        let dir = std::env::temp_dir().join("psa_render_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        write_pgm(&fb, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(data.len(), 11 + 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn filename_padding() {
        assert_eq!(frame_filename("snow", 7), "snow_0007.ppm");
        assert_eq!(frame_filename("f", 12345), "f_12345.ppm");
    }
}
