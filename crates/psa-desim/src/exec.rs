//! The event-driven virtual executor.
//!
//! [`EventSim`] is the discrete-event counterpart of
//! `psa_runtime::VirtualSim`: the same shared protocol engine
//! ([`psa_runtime::protocol::Engine`]) over the [`EventFabric`] instead of
//! the queue-stepped fabric. Healthy and faulty runs are
//! fingerprint-identical to `VirtualSim` for any configuration both can
//! express (the parity suite pins this at 4–16 ranks across the full
//! scenario matrix); what the event core adds is *scale* — sparse per-link
//! state instead of `ranks²` queues lets sweeps run 1,024 calculators ×
//! 100+ particle systems in seconds, which is what the BENCH_5 scaling
//! tables are built from.
//!
//! For 1,000+-rank runs switch the engine to
//! [`ExchangeMode::Sparse`](psa_runtime::ExchangeMode): the dense Figure-2
//! exchange is n² messages per system per frame and dominates everything
//! past a few hundred ranks. Sparse runs are internally consistent but not
//! fingerprint-comparable with dense runs (empty messages carry virtual
//! cost), so parity tests always compare dense against dense.

use cluster_sim::{ClusterSpec, CostModel, Placement};
use netsim::{FaultPlan, FaultPolicy};
use psa_runtime::config::RunConfig;
use psa_runtime::msg::ProtocolError;
use psa_runtime::protocol::{node_layout, Engine};
use psa_runtime::report::RunReport;
use psa_runtime::scene::Scene;
use psa_runtime::trace::Trace;

use crate::fabric::EventFabric;
use crate::proc::SimStats;

/// The event-driven virtual executor. API mirrors `VirtualSim` so callers
/// (benches, chaos matrix, parity tests) can swap executors in one line.
pub struct EventSim {
    scene: Scene,
    cfg: RunConfig,
    cluster: ClusterSpec,
    placement: Placement,
    cost: CostModel,
    trace: Trace,
    plan: Option<FaultPlan>,
    policy: FaultPolicy,
    instrument: bool,
    last_stats: SimStats,
}

impl EventSim {
    pub fn new(scene: Scene, cfg: RunConfig, cluster: ClusterSpec, cost: CostModel) -> Self {
        assert!(!scene.systems.is_empty(), "scene needs at least one system");
        let placement = cluster.placement();
        EventSim {
            scene,
            cfg,
            cluster,
            placement,
            cost,
            trace: Trace::disabled(),
            plan: None,
            policy: FaultPolicy::default(),
            instrument: false,
            last_stats: SimStats::default(),
        }
    }

    /// Record protocol events (used by conformance tests; off by default).
    pub fn with_trace(mut self) -> Self {
        self.trace = Trace::enabled();
        self
    }

    /// Record the per-phase observability trace (off by default); quiet —
    /// fingerprints are unchanged.
    pub fn with_phases(mut self) -> Self {
        self.instrument = true;
        self
    }

    /// Inject the given fault plan (must cover `calculators + 2` ranks).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Override the retry/timeout/death policy (defaults are sane).
    pub fn with_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Event-loop counters of the most recent run (all zero before the
    /// first run): events processed, sends, clock fast-forwards, bounded
    /// waits, heap high-water mark.
    pub fn sim_stats(&self) -> SimStats {
        self.last_stats
    }

    /// Run the animation; returns the report (virtual makespan included),
    /// or the protocol error that ended the run early.
    pub fn try_run(&mut self) -> Result<RunReport, ProtocolError> {
        let n = self.placement.calculators();
        let plan = self.plan.clone().unwrap_or_else(|| FaultPlan::none(self.cfg.seed, n + 2));
        assert_eq!(
            plan.ranks(),
            n + 2,
            "fault plan must cover calculators + manager + image generator"
        );
        let (node_of, node_count) = node_layout(&self.placement);
        let fabric = EventFabric::new(self.cluster.net.clone(), node_of, node_count, plan);
        let mut engine = Engine::new(
            self.scene.clone(),
            self.cfg.clone(),
            &self.placement,
            self.cost.clone(),
            fabric,
            self.policy,
            std::mem::take(&mut self.trace),
            self.instrument,
        );
        let (outcome, trace) = engine.run(self.cluster.describe());
        self.last_stats = engine.fabric().sim_stats();
        self.trace = trace;
        outcome
    }

    /// Run the animation, panicking on a protocol failure (healthy runs
    /// and survivable fault plans never fail).
    pub fn run(&mut self) -> RunReport {
        match self.try_run() {
            Ok(report) => report,
            Err(e) => panic!("event-driven protocol run failed: {e}"),
        }
    }
}
