//! Virtual process bookkeeping for the event-driven executor.
//!
//! Each simulated rank is a *virtual process*: it is `Ready` while the
//! engine can make progress on its behalf and `BlockedRecv` while it is
//! parked on a directed receive that no queued event can satisfy yet. The
//! table is observational — the shared protocol engine decides the actual
//! interleaving — but it is what turns the fabric into a legible simulator:
//! the [`SimStats`] snapshot reports how many events the heap processed,
//! how often a receiver's clock fast-forwarded past idle virtual time, and
//! how deep the in-flight event set grew, which is exactly the data the
//! BENCH_5 scaling sweep aggregates per cell.

/// Scheduling state of one virtual rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ProcState {
    /// Runnable: the engine may charge compute or initiate sends.
    #[default]
    Ready,
    /// Parked on a directed receive from `from` with nothing deliverable.
    BlockedRecv { from: usize },
}

/// Per-rank state table, index-panic-free by construction.
pub struct ProcTable {
    states: Vec<ProcState>,
}

impl ProcTable {
    pub fn new(ranks: usize) -> Self {
        ProcTable { states: vec![ProcState::Ready; ranks] }
    }

    pub fn get(&self, rank: usize) -> Option<ProcState> {
        self.states.get(rank).copied()
    }

    pub fn set_ready(&mut self, rank: usize) {
        if let Some(s) = self.states.get_mut(rank) {
            *s = ProcState::Ready;
        }
    }

    pub fn block_recv(&mut self, rank: usize, from: usize) {
        if let Some(s) = self.states.get_mut(rank) {
            *s = ProcState::BlockedRecv { from };
        }
    }

    /// Number of ranks currently parked on a receive.
    pub fn blocked(&self) -> usize {
        self.states.iter().filter(|s| matches!(s, ProcState::BlockedRecv { .. })).count()
    }

    pub fn ranks(&self) -> usize {
        self.states.len()
    }
}

/// Counters the event fabric accumulates over a run. Pure observability:
/// none of these feed back into timing or protocol state, so an
/// instrumented run is byte-identical to a blind one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Delivery events popped off the heap.
    pub events: u64,
    /// Messages accepted onto the wire (transient injected failures are
    /// not counted — they never became events).
    pub sends: u64,
    /// Receives that fast-forwarded the receiver's clock past idle virtual
    /// time (the receiver was "ahead of" no one — it slept until delivery).
    pub fast_forwards: u64,
    /// Bounded receives that found nothing deliverable and charged the
    /// wait (the degraded-mode path around crashed peers).
    pub blocked_recvs: u64,
    /// High-water mark of in-flight events on the heap.
    pub max_heap_depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_tracks_block_and_ready_transitions() {
        let mut t = ProcTable::new(3);
        assert_eq!(t.get(1), Some(ProcState::Ready));
        assert_eq!(t.blocked(), 0);
        t.block_recv(1, 2);
        assert_eq!(t.get(1), Some(ProcState::BlockedRecv { from: 2 }));
        assert_eq!(t.blocked(), 1);
        t.set_ready(1);
        assert_eq!(t.blocked(), 0);
    }

    #[test]
    fn out_of_range_ranks_are_ignored_not_panics() {
        let mut t = ProcTable::new(2);
        assert_eq!(t.get(7), None);
        t.set_ready(7);
        t.block_recv(7, 0);
        assert_eq!(t.ranks(), 2);
        assert_eq!(t.blocked(), 0);
    }
}
