//! The deterministic event queue: a binary min-heap over virtual time.
//!
//! Discrete-event simulators live or die on tie-breaking. Two events with
//! the same virtual timestamp must pop in a *defined* order or the run
//! stops being a pure function of the seed — the FoundationDB-style
//! discipline this workspace enforces everywhere. The queue therefore
//! orders entries by `(time, seq)` where `seq` is the monotone insertion
//! counter: ties resolve in submission order, and because `f64::total_cmp`
//! is a total order even over NaN/±0.0, the heap can never reach an
//! incomparable state.
//!
//! The pop order is a pure function of the *set* of `(time, seq)` keys —
//! not of heap-internal layout — which is what the shuffled-insertion
//! property test at the bottom pins down: any permutation of pushes with
//! explicit keys drains in identical order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event.
struct Entry<T> {
    time: f64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    /// Reversed comparison: `BinaryHeap` is a max-heap, so "greatest" must
    /// mean "earliest `(time, seq)`".
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.total_cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// Min-heap of timed events with stable `(time, seq)` tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    max_depth: usize,
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, max_depth: 0 }
    }

    /// Schedule `item` at virtual `time`; returns the sequence number that
    /// breaks timestamp ties (and doubles as the fabric's per-link FIFO
    /// key).
    pub fn push(&mut self, time: f64, item: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.heap.push(Entry { time, seq, item });
        self.max_depth = self.max_depth.max(self.heap.len());
        seq
    }

    /// Schedule with an explicit sequence key (tests and replay tooling;
    /// the normal path lets [`push`](Self::push) assign keys monotonically).
    pub fn push_keyed(&mut self, time: f64, seq: u64, item: T) {
        self.next_seq = self.next_seq.max(seq.wrapping_add(1));
        self.heap.push(Entry { time, seq, item });
        self.max_depth = self.max_depth.max(self.heap.len());
    }

    /// Pop the earliest event: least `(time, seq)`.
    pub fn pop(&mut self) -> Option<(f64, u64, T)> {
        self.heap.pop().map(|e| (e.time, e.seq, e.item))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of in-flight events over the queue's lifetime.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::Rng64;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, i)| i)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_in_submission_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(1.0, i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, s, _)| s)).collect();
        assert_eq!(order, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn total_cmp_handles_signed_zero_and_infinity() {
        let mut q = EventQueue::new();
        q.push(f64::INFINITY, "inf");
        q.push(0.0, "pz");
        q.push(-0.0, "nz");
        // total_cmp: -0.0 < +0.0 < inf
        assert_eq!(q.pop().map(|(_, _, i)| i), Some("nz"));
        assert_eq!(q.pop().map(|(_, _, i)| i), Some("pz"));
        assert_eq!(q.pop().map(|(_, _, i)| i), Some("inf"));
    }

    #[test]
    fn max_depth_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        q.push(1.0, ());
        q.push(2.0, ());
        q.push(3.0, ());
        q.pop();
        q.push(4.0, ());
        assert_eq!(q.max_depth(), 3);
    }

    /// The satellite property test: for a fixed set of `(time, seq)` keys,
    /// the drain order is identical under *any* insertion order. 64 trials
    /// of a seeded Fisher–Yates shuffle over a key set with heavy timestamp
    /// collisions (8 distinct times × 32 seqs) all reproduce the reference
    /// drain byte-for-byte.
    #[test]
    fn drain_order_is_invariant_under_shuffled_insertion() {
        let keys: Vec<(f64, u64)> = (0..256u64).map(|i| (((i % 8) as f64) * 0.125, i)).collect();

        let reference: Vec<(f64, u64)> = {
            let mut q = EventQueue::new();
            for &(t, s) in &keys {
                q.push_keyed(t, s, ());
            }
            std::iter::from_fn(|| q.pop().map(|(t, s, ())| (t, s))).collect()
        };
        // Sanity: the reference really is the sorted key order.
        let mut sorted = keys.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        assert_eq!(reference, sorted);

        let mut rng = Rng64::new(0xDE51_u64);
        for trial in 0..64u64 {
            let mut shuffled = keys.clone();
            // Seeded Fisher–Yates (no ambient RNG in a sim crate).
            for i in (1..shuffled.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                shuffled.swap(i, j);
            }
            let mut q = EventQueue::new();
            for &(t, s) in &shuffled {
                q.push_keyed(t, s, ());
            }
            let drained: Vec<(f64, u64)> =
                std::iter::from_fn(|| q.pop().map(|(t, s, ())| (t, s))).collect();
            assert_eq!(drained, reference, "trial {trial} diverged");
        }
    }
}
