//! `psa-desim` — the event-driven virtual executor.
//!
//! A deterministic discrete-event simulation core for the paper's frame
//! protocol: a binary-heap event loop over virtual time with stable
//! `(time, seq)` tie-breaking ([`queue`]), per-rank virtual process states
//! ([`proc`]), and a message fabric that turns every send into a scheduled
//! arrival event charged through the same `netsim` cost arithmetic the
//! queue-stepped fabric uses ([`fabric`]). The executor itself ([`exec`])
//! drives the one shared protocol engine in `psa_runtime::protocol` — this
//! crate adds no fourth protocol copy, only a fabric.
//!
//! Guarantees, in order of importance:
//!
//! 1. **Parity** — `EventSim` runs are fingerprint-identical to
//!    `VirtualSim` runs for every configuration both express (same seed,
//!    same cluster, dense exchange). Held by construction (same engine,
//!    same `WireState` arithmetic, per-link FIFO) and pinned by the parity
//!    suite over the full scenario matrix at 4–16 ranks.
//! 2. **Determinism** — runs are a pure function of `(seed, plan, config)`;
//!    the event heap's pop order is invariant under insertion order.
//! 3. **Scale** — per-link state is sparse, so 1,024 calculators × 100+
//!    systems sweep in seconds (the BENCH_5 tables; use sparse exchange).

pub mod exec;
pub mod fabric;
pub mod proc;
pub mod queue;

pub use exec::EventSim;
pub use fabric::EventFabric;
pub use proc::{ProcState, ProcTable, SimStats};
pub use queue::EventQueue;
